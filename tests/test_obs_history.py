"""Bounded telemetry time series (repro.obs.history).

The load-bearing properties: memory is deterministically bounded no
matter how long sampling runs, tier stitching never represents an
observation twice (double-counting would corrupt window rates and
count-weighted means), empty windows answer nan/None instead of
raising, and a save -> load -> save round trip is bit-identical —
that is how the service proves drained history survives a restart.
"""

import json
import math

import pytest

from repro.obs.history import HistoryConfig, MetricsHistory, ROLLUP_WIDTHS
from repro.obs.registry import MetricsRegistry


def fed_history(n, dt=1.0, config=None, start=0.0):
    """A history fed ``n`` counter+gauge samples, ``dt`` apart."""
    history = MetricsHistory(config or HistoryConfig(
        sample_min_interval_s=0.0
    ))
    reg = MetricsRegistry()
    counter = reg.counter("events_total")
    gauge = reg.gauge("depth")
    for i in range(n):
        counter.inc()
        gauge.set(float(i % 7))
        assert history.sample(reg, start + i * dt)
    return history


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"raw_capacity": 0},
            {"rollup_capacity": 0},
            {"coarse_capacity": -1},
            {"histogram_capacity": 0},
            {"max_series": 0},
            {"sample_min_interval_s": -0.1},
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            HistoryConfig(**kwargs)


class TestSampling:
    def test_records_every_metric_kind(self):
        reg = MetricsRegistry()
        reg.counter("events_total").inc(5)
        reg.gauge("depth").set(3.0)
        reg.meter("rate").observe(10.0)
        hist = reg.histogram("lat_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(2.0)
        history = MetricsHistory()
        assert history.sample(reg, 100.0)
        names = {s["name"] for s in history.series()}
        assert names == {"events_total", "depth", "rate", "lat_seconds"}
        assert history.latest("events_total") == 5.0
        assert history.latest("depth") == 3.0
        # Histograms have no scalar "latest".
        assert history.latest("lat_seconds") is None

    def test_throttle_and_force(self):
        history = MetricsHistory(HistoryConfig(sample_min_interval_s=1.0))
        reg = MetricsRegistry()
        reg.gauge("depth").set(1.0)
        assert history.sample(reg, 10.0)
        assert not history.sample(reg, 10.5)  # inside min interval
        assert history.sample(reg, 10.6, force=True)
        assert history.sample(reg, 12.0)
        assert history.n_samples == 3

    def test_labeled_series_are_distinct(self):
        reg = MetricsRegistry()
        reg.counter("requests_total", route="a").inc(1)
        reg.counter("requests_total", route="b").inc(2)
        history = MetricsHistory()
        history.sample(reg, 1.0)
        keys = {s["series"] for s in history.series()}
        assert keys == {
            'requests_total{route="a"}',
            'requests_total{route="b"}',
        }

    def test_append_derived_series(self):
        history = MetricsHistory()
        history.append("shard_healthy", 1.0, 1.0, labels={"shard": 0})
        history.append("shard_healthy", 2.0, 0.0, labels={"shard": 0})
        assert history.latest('shard_healthy{shard="0"}') == 0.0

    def test_sampling_never_mutates_the_registry(self):
        reg = MetricsRegistry()
        reg.counter("events_total").inc(5)
        before = reg.snapshot()
        MetricsHistory().sample(reg, 1.0)
        assert reg.snapshot() == before


class TestBoundsAndStitching:
    def test_memory_is_bounded_forever(self):
        config = HistoryConfig(
            raw_capacity=16, rollup_capacity=8, coarse_capacity=4,
            sample_min_interval_s=0.0,
        )
        history = fed_history(5000, dt=30.0, config=config)
        # raw + (closed + open) per tier, per series, times 2 series.
        per_series = 16 + (8 + 1) + (4 + 1)
        assert history.point_count() <= 2 * per_series

    def test_stitched_points_ascend_and_never_double_count(self):
        config = HistoryConfig(
            raw_capacity=32, rollup_capacity=16, coarse_capacity=8,
            sample_min_interval_s=0.0,
        )
        n = 4000
        history = fed_history(n, dt=30.0, config=config)
        points = history.range("events_total", n * 30.0)["points"]
        ts = [p["t"] for p in points]
        assert ts == sorted(ts)
        # Every observation appears in at most one stitched point: the
        # total count can never exceed the number of samples taken.
        assert sum(p["count"] for p in points) <= n
        # The tiers actually engaged (coarse buckets carry count > 1).
        assert any(p["count"] > 1 for p in points)

    def test_rollup_buckets_keep_spike_extremes(self):
        config = HistoryConfig(raw_capacity=4, sample_min_interval_s=0.0)
        history = MetricsHistory(config)
        reg = MetricsRegistry()
        gauge = reg.gauge("depth")
        width = ROLLUP_WIDTHS[0]
        # One spike early on, then enough flat samples to evict it
        # from the tiny raw ring.
        for i in range(60):
            gauge.set(1000.0 if i == 3 else 1.0)
            history.sample(reg, i * 10.0)
        points = history.range("depth", 600.0)["points"]
        assert max(p["max"] for p in points) == 1000.0
        raw_window = points[-4:]
        assert all(p["max"] == 1.0 for p in raw_window)
        assert width  # silence unused warning if widths change


class TestRangeQueries:
    def test_window_filters_and_unknown_series_is_empty(self):
        history = fed_history(100, dt=1.0)
        out = history.range("events_total", 10.0, now=99.0)
        assert all(89.0 <= p["t"] <= 99.0 for p in out["points"])
        assert history.range("nope", 60.0) == {
            "series": "nope", "kind": None, "points": [],
        }

    def test_step_resampling_folds_points(self):
        history = fed_history(100, dt=1.0)
        out = history.range("depth", 100.0, step_s=10.0)
        points = out["points"]
        assert len(points) <= 11
        assert sum(p["count"] for p in points) == 100
        for p in points:
            assert p["min"] <= p["mean"] <= p["max"]
            assert p["t"] == math.floor(p["t"] / 10.0) * 10.0


class TestRate:
    def test_counter_rate(self):
        history = fed_history(61, dt=1.0)  # +1 per second
        assert history.rate("events_total", 60.0) == pytest.approx(1.0)

    def test_nan_for_unknown_sparse_or_reset(self):
        history = fed_history(10, dt=1.0)
        assert math.isnan(history.rate("nope", 60.0))
        assert math.isnan(history.rate("events_total", 0.0))
        # A decrease (process restart) is not a rate.
        history.append("events_total", 100.0, 0.0, kind="counter")
        assert math.isnan(history.rate("events_total", 200.0))


class TestQuantileOverTime:
    def fed(self):
        history = MetricsHistory(HistoryConfig(sample_min_interval_s=0.0))
        reg = MetricsRegistry()
        hist = reg.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for i in range(20):
            hist.observe(0.05 if i < 10 else 5.0)
            history.sample(reg, float(i))
        return history

    def test_quantile_differences_window_edges(self):
        history = self.fed()
        # Window [10, 19] saw only the ten 5.0s -> p50 in (1, 10].
        q = history.quantile_over_time("lat", 0.5, 9.0, now=19.0)
        assert 1.0 < q <= 10.0
        # The full window mixes both modes; p25 stays in the low bucket.
        q_low = history.quantile_over_time("lat", 0.25, 19.0, now=19.0)
        assert q_low <= 0.1

    def test_nan_for_unknown_non_histogram_or_empty(self):
        history = self.fed()
        assert math.isnan(history.quantile_over_time("nope", 0.5, 60.0))
        history.append("scalar", 1.0, 1.0)
        assert math.isnan(history.quantile_over_time("scalar", 0.5, 60.0))
        assert math.isnan(
            history.quantile_over_time("lat", 0.5, 1.0, now=1000.0)
        )

    def test_nan_on_counter_reset_inside_window(self):
        history = MetricsHistory(HistoryConfig(sample_min_interval_s=0.0))
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(1.0,)).observe(0.5)
        history.sample(reg, 0.0)
        fresh = MetricsRegistry()  # worker restart: counts reset
        fresh.histogram("lat", buckets=(1.0,))
        history.sample(fresh, 1.0)
        assert math.isnan(history.quantile_over_time("lat", 0.5, 10.0))


class TestWindowAggregate:
    def fed(self):
        history = MetricsHistory()
        for i in range(11):
            history.append("depth", float(i), float(i), {"shard": 0})
            history.append("depth", float(i), 2.0 * i, {"shard": 1})
        return history

    def test_aggregates(self):
        history = self.fed()
        agg = history.window_aggregate
        assert agg("depth", {}, 10.0, "min") == 0.0
        assert agg("depth", {}, 10.0, "max") == 20.0
        assert agg("depth", {}, 10.0, "last") == 30.0  # summed lasts
        assert agg("depth", {}, 10.0, "delta") == 30.0
        assert agg("depth", {}, 10.0, "rate") == pytest.approx(3.0)
        assert agg("depth", {"shard": 0}, 10.0, "mean") == pytest.approx(5.0)

    def test_label_subset_and_no_match(self):
        history = self.fed()
        assert history.window_aggregate(
            "depth", {"shard": 1}, 10.0, "max"
        ) == 20.0
        assert history.window_aggregate("nope", {}, 10.0, "max") is None
        assert history.window_aggregate(
            "depth", {"shard": 9}, 10.0, "max"
        ) is None

    def test_unknown_agg_raises(self):
        with pytest.raises(ValueError, match="unknown aggregate"):
            self.fed().window_aggregate("depth", {}, 10.0, "median")


class TestSeriesCap:
    def test_overflow_is_counted_never_silent(self):
        history = MetricsHistory(HistoryConfig(max_series=2))
        reg = MetricsRegistry()
        for i in range(5):
            reg.gauge(f"g{i}").set(1.0)
        history.sample(reg, 1.0)
        assert len(history.series()) == 2
        assert history.n_dropped_series == 3


class TestPersistence:
    def test_save_load_save_is_bit_identical(self, tmp_path):
        config = HistoryConfig(
            raw_capacity=8, rollup_capacity=4, coarse_capacity=2,
            sample_min_interval_s=0.0,
        )
        history = fed_history(500, dt=45.0, config=config)
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(0.1, 1.0)).observe(0.5)
        history.sample(reg, 500 * 45.0)
        first = history.save(tmp_path / "a.jsonl")
        restored = MetricsHistory.load(first)
        second = restored.save(tmp_path / "b.jsonl")
        assert first.read_bytes() == second.read_bytes()

    def test_load_restores_state_and_throttle(self, tmp_path):
        config = HistoryConfig(sample_min_interval_s=5.0)
        history = fed_history(10, dt=10.0, config=config)
        path = history.save(tmp_path / "h.jsonl")
        restored = MetricsHistory.load(path)
        assert restored.n_samples == 10
        assert restored.latest("events_total") == 10.0
        # The persisted last-sample time keeps throttling across the
        # restart: a sample too soon after the drain is rejected.
        assert not restored.sample(MetricsRegistry(), 91.0)
        assert restored.sample(MetricsRegistry(), 96.0)

    def test_load_rejects_foreign_and_empty_files(self, tmp_path):
        other = tmp_path / "other.json"
        other.write_text(json.dumps({"kind": "manifest"}) + "\n")
        with pytest.raises(ValueError, match="not a metrics-history"):
            MetricsHistory.load(other)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            MetricsHistory.load(empty)

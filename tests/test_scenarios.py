"""Tests for named scenarios (datasets and the campus)."""

import numpy as np
import pytest

from repro.simulation.scenarios import (
    build_campus,
    schedule_for,
    survey_population,
)


class TestSchedules:
    def test_s51w_two_weeks(self):
        s = schedule_for("S51W")
        assert s.n_days == pytest.approx(14, abs=0.01)
        assert len(s.restart_rounds()) == 0

    def test_a12w_35_days_with_restarts(self):
        s = schedule_for("A12W")
        assert s.n_days == pytest.approx(35, abs=0.01)
        assert len(s.restart_rounds()) > 100
        assert s.start_s > 0  # 17:18 UTC start, exercises midnight trim

    def test_vantage_points_share_schedule(self):
        w, j, c = schedule_for("A12W"), schedule_for("A12J"), schedule_for("A12C")
        assert w.n_rounds == j.n_rounds == c.n_rounds

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            schedule_for("A99X")


class TestSurveyPopulation:
    def test_population_size_and_ids_unique(self):
        blocks = survey_population(40, seed=0)
        assert len(blocks) == 40
        ids = [b.block_id for b in blocks]
        assert len(set(ids)) == 40

    def test_deterministic(self):
        a = survey_population(10, seed=1)
        b = survey_population(10, seed=1)
        for x, y in zip(a, b):
            assert np.array_equal(x.behavior.kinds, y.behavior.kinds)

    def test_mixture_includes_diurnal_and_stable(self):
        from repro.net.addrmodel import AddressKind

        blocks = survey_population(60, seed=2)
        has_diurnal = any(
            (b.behavior.kinds == AddressKind.DIURNAL).sum() >= 50 for b in blocks
        )
        has_stable_only = any(
            (b.behavior.kinds == AddressKind.DIURNAL).sum() == 0
            and (b.behavior.kinds == AddressKind.ALWAYS_ON).sum() > 0
            for b in blocks
        )
        assert has_diurnal and has_stable_only


class TestCampus:
    @pytest.fixture(scope="class")
    def campus(self):
        # Scaled-down campus for test speed; benches use paper counts.
        return build_campus(
            seed=0, n_wireless=20, n_dynamic=8, n_general=12,
            n_general_with_pocket=4, n_server=4,
        )

    def test_counts(self, campus):
        by_usage = {}
        for cb in campus:
            by_usage[cb.usage] = by_usage.get(cb.usage, 0) + 1
        assert by_usage == {"wireless": 20, "dynamic": 8, "general": 12, "server": 4}

    def test_wireless_sparse(self, campus):
        """USC wireless is overprovisioned: ~10 live of 256 — below
        Trinocular's 15-address probing floor."""
        for cb in campus:
            if cb.usage == "wireless":
                assert len(cb.block.ever_active()) < 15

    def test_wireless_truly_diurnal(self, campus):
        assert all(cb.truly_diurnal for cb in campus if cb.usage == "wireless")

    def test_servers_not_diurnal(self, campus):
        assert not any(cb.truly_diurnal for cb in campus if cb.usage == "server")

    def test_general_pockets_of_16(self, campus):
        from repro.net.addrmodel import AddressKind

        pockets = [
            cb for cb in campus if cb.usage == "general" and cb.truly_diurnal
        ]
        assert len(pockets) == 4
        for cb in pockets:
            assert (cb.block.behavior.kinds == AddressKind.DIURNAL).sum() == 16

    def test_rdns_names_match_usage(self, campus):
        from repro.linktype import classify_block_names

        for cb in campus:
            result = classify_block_names(cb.rdns_names, keep_discarded=True)
            if cb.usage == "wireless":
                assert "wireless" in result.counts
            elif cb.usage == "dynamic":
                assert "dyn" in result.labels
            elif cb.usage == "server":
                assert "srv" in result.labels

    def test_unique_block_ids(self, campus):
        ids = [cb.block.block_id for cb in campus]
        assert len(set(ids)) == len(ids)

"""Service-level telemetry history + incident capture (ISSUE 10).

The acceptance properties from the issue:

* a shard killed during ingest produces **exactly one** deduplicated
  incident bundle per fired rule, whose manifest trace ids and event
  records resolve against the service event log;
* drained history survives a restart **bit-identically** (same
  config, load-then-save reproduces the drained file byte for byte);
* ``GET /metrics/history`` and ``GET /dashboard`` serve from the live
  store, and both 404 cleanly when history is disabled.
"""

import json
import os
import shutil
import time
from pathlib import Path

import pytest

from repro.obs import MetricsRegistry
from repro.obs.alerts import AlertRule
from repro.obs.events import EventLogger, read_event_log
from repro.obs.history import HistoryConfig, MetricsHistory
from repro.obs.incidents import IncidentConfig
from repro.obs.tracing import Tracer
from repro.serve import ServiceRunner

from tests.test_serve_api import make_harness
from tests.test_serve_service import WINDOW, interleaved, service_config

RESPAWN_RULE = AlertRule(
    name="respawn-seen",
    metric="service_shard_respawns_total",
    op=">",
    threshold=0,
    level="critical",
    description="a shard respawned",
)


def bundles_in(root):
    if not root.exists():
        return []
    return sorted(p for p in root.iterdir() if p.is_dir()
                  and not p.name.startswith("."))


@pytest.mark.watchdog(180)
def test_kill_during_ingest_captures_one_bundle_per_rule(tmp_path):
    incident_dir = tmp_path / "incidents"
    event_log = tmp_path / "events.jsonl"
    config = service_config(
        tmp_path,
        history=HistoryConfig(sample_min_interval_s=0.0),
        incidents=IncidentConfig(dir=incident_dir, min_interval_s=0.0),
    )
    runner = ServiceRunner(
        config,
        metrics=MetricsRegistry(),
        events=EventLogger(sink=str(event_log)),
        alert_rules=[RESPAWN_RULE],
        tracer=Tracer(),
    )
    try:
        runner.start()
        runner.ingest(interleaved(WINDOW))
        victim = runner.owner(0)
        runner.kill_shard(victim)
        assert runner.wait_healthy(timeout_s=60.0), "shard never rejoined"
        runner.ingest(interleaved(6, start_round=WINDOW))
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline and not bundles_in(incident_dir):
            time.sleep(0.05)
        # The rule stays breached (the respawn counter never goes
        # back down) — give the supervision loop a few more cycles to
        # prove the dedup latch holds, then require exactly one.
        time.sleep(0.5)
        bundles = bundles_in(incident_dir)
        assert len(bundles) == 1, [b.name for b in bundles]
        [bundle] = bundles
        assert bundle.name.endswith("-respawn-seen")

        manifest = json.loads((bundle / "manifest.json").read_text())
        assert manifest["rule"] == "respawn-seen"
        assert manifest["level"] == "critical"
        assert manifest["value"] >= 1.0
        assert manifest["n_events"] > 0

        # Every record and trace id in the bundle resolves against
        # the service event log — the bundle is a correlated excerpt,
        # not a side channel.
        log_records = read_event_log(event_log)
        log_pairs = {(r["ts"], r["event"]) for r in log_records}
        log_traces = {r["trace_id"] for r in log_records
                      if r.get("trace_id")}
        bundle_records = [
            json.loads(line) for line in
            (bundle / "events.jsonl").read_text().splitlines()
        ]
        assert bundle_records
        for record in bundle_records:
            assert (record["ts"], record["event"]) in log_pairs
        assert manifest["trace_ids"]
        assert set(manifest["trace_ids"]) <= log_traces

        # The history windows in the bundle lead with the firing
        # rule's own metric and carry real points.
        windows = [
            json.loads(line) for line in
            (bundle / "history.jsonl").read_text().splitlines()
        ]
        assert windows[0]["series"].startswith(
            "service_shard_respawns_total"
        )
        assert all(w["points"] for w in windows)

        # The capture itself is in the event log too.
        assert any(r["event"] == "incident.captured" for r in log_records)

        # CI keeps the bundle as a build artifact when asked — the
        # evidence a green chaos run produced, not just failures.
        keep = os.environ.get("REPRO_KEEP_INCIDENT_DIR")
        if keep:
            shutil.copytree(bundle, Path(keep) / bundle.name,
                            dirs_exist_ok=True)
    finally:
        runner.stop(drain=False)


@pytest.mark.watchdog(180)
def test_history_survives_drain_restart_bit_identically(tmp_path):
    # A huge sample interval freezes the store between explicit
    # samples, so the restarted runner's supervision loop cannot
    # perturb what it loaded before we compare.
    history_config = HistoryConfig(sample_min_interval_s=1e9)
    config = service_config(tmp_path, history=history_config)
    runner = ServiceRunner(config, metrics=MetricsRegistry())
    runner.start()
    try:
        runner.ingest(interleaved(WINDOW))
        for i in range(5):
            runner.history.sample(
                runner.fleet_registry(), time.time() + i * 0.01, force=True
            )
    finally:
        report = runner.stop(drain=True)
    drained_path = report["history_path"]
    assert drained_path == str(config.history_path)
    drained = config.history_path.read_bytes()
    assert runner.history.n_samples >= 6  # forced samples + drain capture

    restarted = ServiceRunner(config, metrics=MetricsRegistry())
    restarted.start()
    try:
        assert restarted.history.n_samples == runner.history.n_samples
        resaved = restarted.history.save(tmp_path / "resaved.jsonl")
        assert resaved.read_bytes() == drained
    finally:
        restarted.stop(drain=False)


@pytest.mark.watchdog(180)
def test_corrupt_history_file_starts_fresh(tmp_path):
    config = service_config(tmp_path)
    config.history_path.parent.mkdir(parents=True, exist_ok=True)
    config.history_path.write_text("not json\n")
    runner = ServiceRunner(config, metrics=MetricsRegistry())
    try:
        runner.start()  # must not raise
        assert isinstance(runner.history, MetricsHistory)
        assert runner.history.n_samples == 0
    finally:
        runner.stop(drain=False)


@pytest.mark.watchdog(180)
class TestHistoryApi:
    def test_history_endpoint_serves_catalog_and_windows(self, tmp_path):
        harness = make_harness(
            tmp_path,
            history=HistoryConfig(sample_min_interval_s=0.0),
        )
        try:
            harness.runner.ingest(interleaved(WINDOW))
            deadline = time.monotonic() + 10.0
            while (time.monotonic() < deadline
                   and harness.runner.history.n_samples < 2):
                time.sleep(0.05)
            status, catalog, _ = harness.request("GET", "/metrics/history")
            assert status == 200
            names = {s["name"] for s in catalog["series"]}
            assert "service_ingest_observations_total" in names
            assert "service_shard_healthy" in names

            status, payload, _ = harness.request(
                "GET",
                "/metrics/history"
                "?series=service_ingest_observations_total"
                "&window=600&step=1",
            )
            assert status == 200
            assert payload["window"] == 600.0
            [series] = payload["series"]
            points = series["points"]
            assert points
            assert all(
                set(p) == {"t", "min", "max", "mean", "last", "count"}
                for p in points
            )

            status, _, _ = harness.request(
                "GET", "/metrics/history?window=0"
            )
            assert status == 400
        finally:
            harness.close()

    def test_dashboard_serves_sparklines(self, tmp_path):
        harness = make_harness(
            tmp_path,
            history=HistoryConfig(sample_min_interval_s=0.0),
        )
        try:
            harness.runner.ingest(interleaved(WINDOW))
            deadline = time.monotonic() + 10.0
            while (time.monotonic() < deadline
                   and harness.runner.history.n_samples < 3):
                time.sleep(0.05)
            status, body, headers = harness.request("GET", "/dashboard")
            assert status == 200
            assert "text/html" in headers["Content-Type"]
            html = body.decode() if isinstance(body, bytes) else body
            assert "<svg" in html and "<polyline" in html
            assert "Ingest rate" in html and "Shed ratio" in html
            # Shard status is never conveyed by color alone.
            assert "healthy" in html
        finally:
            harness.close()

    def test_disabled_history_404s(self, tmp_path):
        harness = make_harness(tmp_path, history=None)
        try:
            status, _, _ = harness.request("GET", "/metrics/history")
            assert status == 404
            status, _, _ = harness.request("GET", "/dashboard")
            assert status == 404
        finally:
            harness.close()

    def test_healthz_reports_replication_fields(self, tmp_path):
        harness = make_harness(tmp_path, replication=2)
        try:
            status, payload, _ = harness.request("GET", "/healthz")
            assert status == 200
            assert payload["replication"] == 2
            assert payload["replicas_syncing"] == 0
            assert payload["stale"] == 0
        finally:
            harness.close()

"""Cross-process telemetry primitives (repro.obs.distributed)."""

import os

import pytest

from repro.obs.distributed import (
    FleetView,
    TelemetryDelta,
    WorkerTelemetry,
    aggregate_registries,
)
from repro.obs.events import FlightRecorder
from repro.obs.registry import MetricsRegistry, diff_states
from repro.obs.tracing import TraceContext, Tracer


def populate(reg, n=1):
    reg.counter("tasks_total").inc(n)
    reg.counter("tasks_total", outcome="failed").inc(2 * n)
    reg.gauge("depth").set(float(n))
    reg.histogram("lat", buckets=(1.0, 10.0)).observe(0.5)
    reg.meter("rate").observe(float(n))


class TestStateTransfer:
    def test_merge_of_diff_reproduces_state(self):
        source = MetricsRegistry()
        populate(source)
        before = source.state()
        populate(source, n=3)  # more activity after the first cut

        mirror = MetricsRegistry()
        mirror.merge(before)
        mirror.merge(diff_states(source.state(), before))
        assert mirror.state() == source.state()

    def test_diff_of_unchanged_state_is_empty(self):
        reg = MetricsRegistry()
        populate(reg)
        state = reg.state()
        assert diff_states(state, state) == []


class TestWorkerTelemetry:
    def test_cut_delta_ships_increments(self):
        telem = WorkerTelemetry(worker_id=3)
        telem.registry.counter("tasks_total").inc(2)
        first = telem.cut_delta()
        assert first.worker_id == 3
        assert first.seq == 1
        assert first.pid == os.getpid()
        [entry] = first.metrics
        assert entry["name"] == "tasks_total" and entry["value"] == 2

        telem.registry.counter("tasks_total").inc(5)
        second = telem.cut_delta()
        assert second.seq == 2
        assert second.metrics[0]["value"] == 5  # increment, not total

    def test_quiet_cut_is_empty(self):
        telem = WorkerTelemetry(worker_id=0)
        telem.registry.counter("x").inc()
        assert not telem.cut_delta().is_empty
        assert telem.cut_delta().is_empty

    def test_events_carry_worker_id_and_trace(self):
        telem = WorkerTelemetry(worker_id=7)
        with telem.tracer.trace("worker.measure_block") as span:
            telem.events.warning("block.retry", attempt=1)
        delta = telem.cut_delta()
        [record] = delta.events
        assert record["worker_id"] == 7
        assert record["trace_id"] == span.trace_id
        assert record["span_id"] == span.span_id
        # The finished span tree ships in the same delta.
        assert [s["name"] for s in delta.spans] == ["worker.measure_block"]
        # Events are drained by the cut, spans ship once.
        assert telem.cut_delta().is_empty

    def test_recorder_tees_records(self):
        recorder = FlightRecorder()
        telem = WorkerTelemetry(worker_id=1, recorder=recorder)
        telem.events.debug("chatter")
        assert recorder.snapshot()["events"][0]["event"] == "chatter"
        # The cut still ships the same record: tee, not redirect.
        assert telem.cut_delta().events[0]["event"] == "chatter"

    def test_worker_spans_parent_under_shipped_context(self):
        supervisor = Tracer()
        dispatch = supervisor.begin("pool.dispatch")
        ctx = TraceContext(dispatch.trace_id, dispatch.span_id)

        telem = WorkerTelemetry(worker_id=0)
        with telem.tracer.trace("worker.measure_block", parent_context=ctx):
            pass
        [shipped] = telem.cut_delta().spans
        assert shipped["trace_id"] == dispatch.trace_id
        assert shipped["parent_span_id"] == dispatch.span_id

        grafted = supervisor.graft(shipped, parent=dispatch)
        supervisor.end(dispatch)
        # The remote tree is resolvable through the local root...
        assert supervisor.resolve(grafted.span_id) is grafted
        # ...and its stage durations folded into the local aggregates.
        assert supervisor.stage_timings()["worker.measure_block"]["count"] == 1


class TestFleetView:
    def delta(self, seq=1, pid=100, worker_id=0, n=1):
        reg = MetricsRegistry()
        reg.counter("tasks_total").inc(n)
        return TelemetryDelta(
            worker_id=worker_id, seq=seq, pid=pid, metrics=reg.state()
        )

    def value(self, registry, name):
        return registry.counter(name).value

    def test_apply_accumulates_per_worker(self):
        fleet = FleetView()
        assert fleet.apply(self.delta(seq=1, n=2))
        assert fleet.apply(self.delta(seq=2, n=3))
        assert fleet.apply(self.delta(seq=1, worker_id=1, n=10))
        assert self.value(fleet.worker(0), "tasks_total") == 5
        assert self.value(fleet.worker(1), "tasks_total") == 10
        assert self.value(fleet.aggregate(), "tasks_total") == 15
        assert fleet.worker_ids() == [0, 1]
        assert fleet.n_deltas == 3

    def test_replayed_delta_is_a_noop(self):
        fleet = FleetView()
        delta = self.delta(seq=1, n=4)
        assert fleet.apply(delta)
        assert not fleet.apply(delta)
        assert self.value(fleet.worker(0), "tasks_total") == 4
        assert fleet.n_replayed == 1

    def test_new_incarnation_restarts_sequence(self):
        fleet = FleetView()
        assert fleet.apply(self.delta(seq=1, pid=100))
        assert fleet.apply(self.delta(seq=2, pid=100))
        # The respawned worker (new pid) legitimately starts at seq 1.
        assert fleet.apply(self.delta(seq=1, pid=200))
        assert self.value(fleet.worker(0), "tasks_total") == 3

    def test_unknown_worker_raises(self):
        with pytest.raises(KeyError):
            FleetView().worker(5)

    def test_aggregate_includes_extra_registries(self):
        fleet = FleetView()
        fleet.apply(self.delta(n=2))
        own = MetricsRegistry()
        own.counter("tasks_total").inc(7)
        assert self.value(fleet.aggregate(own), "tasks_total") == 9

    def test_snapshot_shape(self):
        fleet = FleetView()
        fleet.apply(self.delta(n=2))
        snap = fleet.snapshot()
        assert snap["n_deltas"] == 1
        assert snap["workers"]["0"]["counters"]["tasks_total"] == 2
        assert snap["aggregate"]["counters"]["tasks_total"] == 2


class TestAggregateRegistries:
    def test_counters_and_histograms_add_exactly(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        populate(a, n=1)
        populate(b, n=2)
        agg = aggregate_registries([a, b]).snapshot()
        assert agg["counters"]["tasks_total"] == 3
        assert agg["counters"]['tasks_total{outcome="failed"}'] == 6
        assert agg["histograms"]["lat"]["count"] == 2
        assert agg["histograms"]["lat"]["sum"] == 1.0

    def test_gauges_sum_across_members(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("depth").set(1.5)
        b.gauge("depth").set(2.0)
        agg = aggregate_registries([a, b])
        assert agg.gauge("depth").value == 3.5

    def test_meters_combine_count_weighted(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for _ in range(3):
            a.meter("rate").observe(10.0)
        b.meter("rate").observe(40.0)
        merged = aggregate_registries([a, b]).meter("rate")
        assert merged.count == 4
        # 3 observations at level 10 and 1 at level 40, count-weighted.
        assert merged.rate_short == pytest.approx(
            (3 * a.meter("rate").rate_short + 1 * b.meter("rate").rate_short)
            / 4
        )

    def test_aggregation_does_not_mutate_members(self):
        a = MetricsRegistry()
        populate(a)
        before = a.state()
        aggregate_registries([a, a])
        assert a.state() == before

"""Tests for the EWMA availability estimators (paper section 2.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimator import (
    AvailabilityEstimator,
    DirectEwmaEstimator,
    EstimatorConfig,
    RestartPolicy,
    estimate_series,
)


class TestConfig:
    def test_paper_defaults(self):
        cfg = EstimatorConfig()
        assert cfg.alpha_short == 0.1
        assert cfg.alpha_long == 0.01
        assert cfg.operational_floor == 0.1
        assert cfg.deviation_margin == 0.5

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            EstimatorConfig(alpha_short=0.0)
        with pytest.raises(ValueError):
            EstimatorConfig(alpha_long=1.5)

    def test_rejects_bad_initial(self):
        with pytest.raises(ValueError):
            EstimatorConfig(initial_availability=1.2)
        with pytest.raises(ValueError):
            EstimatorConfig(initial_weight=0.0)


class TestStreaming:
    def test_initial_estimate(self):
        est = AvailabilityEstimator(EstimatorConfig(initial_availability=0.4))
        assert est.a_short == pytest.approx(0.4)
        assert est.a_long == pytest.approx(0.4)

    def test_converges_to_true_ratio(self):
        est = AvailabilityEstimator()
        rng = np.random.default_rng(0)
        for _ in range(3000):
            t = 4
            p = rng.binomial(t, 0.3)
            est.observe(p, t)
        assert est.a_short == pytest.approx(0.3, abs=0.1)
        assert est.a_long == pytest.approx(0.3, abs=0.03)

    def test_short_term_adapts_faster(self):
        est = AvailabilityEstimator(EstimatorConfig(initial_availability=0.9))
        for _ in range(30):
            est.observe(0, 3)
        assert est.a_short < est.a_long

    def test_operational_below_long_term(self):
        est = AvailabilityEstimator()
        rng = np.random.default_rng(1)
        for _ in range(500):
            est.observe(int(rng.random() < 0.6), 1)
        assert est.a_operational < est.a_long

    def test_operational_floor(self):
        est = AvailabilityEstimator()
        for _ in range(2000):
            est.observe(0, 15)
        assert est.a_operational == 0.1

    def test_zero_total_is_noop(self):
        est = AvailabilityEstimator()
        state = (est.p_short, est.t_short, est.p_long, est.t_long, est.deviation)
        est.observe(0, 0)
        assert state == (est.p_short, est.t_short, est.p_long, est.t_long, est.deviation)
        assert est.n_observed == 0

    def test_rejects_bad_counts(self):
        est = AvailabilityEstimator()
        with pytest.raises(ValueError):
            est.observe(5, 3)
        with pytest.raises(ValueError):
            est.observe(-1, 3)

    def test_single_round_update_matches_paper_equations(self):
        cfg = EstimatorConfig(initial_availability=0.5, initial_weight=2.0)
        est = AvailabilityEstimator(cfg)
        est.observe(2, 5)
        # p̂_s = 0.1·2 + 0.9·(0.5·2) = 1.1 ; t̂_s = 0.1·5 + 0.9·2 = 2.3
        assert est.p_short == pytest.approx(1.1)
        assert est.t_short == pytest.approx(2.3)
        assert est.a_short == pytest.approx(1.1 / 2.3)

    def test_restart_is_noop_by_default(self):
        """Checkpointed state survives a prober restart (default policy)."""
        est = AvailabilityEstimator()
        for _ in range(200):
            est.observe(1, 1)
        before = (est.a_short, est.a_long, est.deviation)
        est.restart()
        assert (est.a_short, est.a_long, est.deviation) == before

    def test_restart_reset_short_policy(self):
        cfg = EstimatorConfig(restart=RestartPolicy(reset_short=True))
        est = AvailabilityEstimator(cfg)
        for _ in range(200):
            est.observe(1, 1)
        long_before = est.a_long
        est.restart()
        assert est.a_short == pytest.approx(cfg.initial_availability)
        assert est.a_long == pytest.approx(long_before)

    def test_restart_policy_all(self):
        cfg = EstimatorConfig(
            restart=RestartPolicy(reset_short=True, reset_long=True, reset_deviation=True)
        )
        est = AvailabilityEstimator(cfg)
        for _ in range(200):
            est.observe(1, 1)
        est.restart()
        assert est.a_long == pytest.approx(cfg.initial_availability)
        assert est.deviation == pytest.approx(cfg.initial_deviation)


class TestDirectEwmaBias:
    def test_direct_variant_overestimates(self):
        """The A_12w legacy estimator over-estimates A (paper section 2.1.2).

        Feed both estimators counts from stop-on-first-positive probing of a
        block with true availability 0.3: most rounds end with (1, small t),
        and ratio-smoothing weights those 1.0 samples far too heavily.
        """
        true_a = 0.3
        rng = np.random.default_rng(2)
        ratio_est = DirectEwmaEstimator()
        count_est = AvailabilityEstimator()
        ratio_values = []
        count_values = []
        for _ in range(4000):
            t = 0
            p = 0
            while t < 15:
                t += 1
                if rng.random() < true_a:
                    p = 1
                    break
            ratio_est.observe(p, t)
            count_est.observe(p, t)
            ratio_values.append(ratio_est.a_short)
            count_values.append(count_est.a_short)
        count_mean = np.mean(count_values[500:])
        ratio_mean = np.mean(ratio_values[500:])
        assert count_mean == pytest.approx(true_a, abs=0.05)
        assert ratio_mean > count_mean + 0.2

    def test_direct_restart(self):
        cfg = EstimatorConfig(restart=RestartPolicy(reset_short=True))
        est = DirectEwmaEstimator(cfg)
        for _ in range(100):
            est.observe(0, 1)
        est.restart()
        assert est.a_short == est.config.initial_availability


class TestVectorized:
    def test_matches_streaming_exactly(self):
        rng = np.random.default_rng(3)
        totals = rng.integers(0, 16, size=(4, 300))
        positives = np.minimum(rng.integers(0, 2, size=(4, 300)), totals)
        batch = estimate_series(positives, totals)
        for b in range(4):
            est = AvailabilityEstimator()
            for r in range(300):
                est.observe(int(positives[b, r]), int(totals[b, r]))
                assert batch.a_short[b, r] == pytest.approx(est.a_short, rel=1e-12)
                assert batch.a_long[b, r] == pytest.approx(est.a_long, rel=1e-12)
                assert batch.a_operational[b, r] == pytest.approx(
                    est.a_operational, rel=1e-12
                )

    def test_matches_streaming_with_restarts(self):
        cfg = EstimatorConfig(
            restart=RestartPolicy(reset_short=True, reset_deviation=True)
        )
        rng = np.random.default_rng(4)
        totals = rng.integers(1, 16, size=(2, 100))
        positives = (rng.random((2, 100)) < 0.5).astype(int)
        restarts = np.array([30, 60])
        batch = estimate_series(positives, totals, cfg, restart_rounds=restarts)
        for b in range(2):
            est = AvailabilityEstimator(cfg)
            for r in range(100):
                if r in restarts:
                    est.restart()
                est.observe(int(positives[b, r]), int(totals[b, r]))
                assert batch.a_short[b, r] == pytest.approx(est.a_short, rel=1e-12)
                assert batch.a_operational[b, r] == pytest.approx(
                    est.a_operational, rel=1e-12
                )

    def test_1d_input_gives_1d_output(self):
        series = estimate_series(np.array([1, 0, 1]), np.array([1, 1, 2]))
        assert series.a_short.shape == (3,)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            estimate_series(np.zeros((2, 3)), np.zeros((2, 4)))


@settings(max_examples=30, deadline=None)
@given(
    data=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)), min_size=1, max_size=200
    )
)
def test_estimates_always_in_unit_interval(data):
    est = AvailabilityEstimator()
    for t, p_raw in data:
        p = min(p_raw, t)
        est.observe(p, t)
        assert 0.0 <= est.a_short <= 1.0
        assert 0.0 <= est.a_long <= 1.0
        assert 0.1 <= est.a_operational <= 1.0


@settings(max_examples=30, deadline=None)
@given(
    a=st.floats(min_value=0.05, max_value=0.95),
    seed=st.integers(0, 2**31 - 1),
)
def test_long_term_tracks_any_availability(a, seed):
    est = AvailabilityEstimator()
    rng = np.random.default_rng(seed)
    for _ in range(2000):
        est.observe(int(rng.binomial(5, a)), 5)
    assert est.a_long == pytest.approx(a, abs=0.08)

"""Tests for the unified retry policy (repro.core.retry).

The properties that matter: schedules are deterministic (seeded jitter,
no wall clock, no global RNG), the deadline budget withholds retries it
cannot afford, and the default zero-delay policy is bit-identical to
the legacy instant-retry loops it replaced.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.retry import RetryPolicy


class TestConfig:
    def test_defaults_are_instant(self):
        policy = RetryPolicy()
        assert policy.schedule() == [0.0]
        assert policy.delay_s(1) == 0.0

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(max_retries=-1), "max_retries"),
            (dict(base_delay_s=-0.1), "base_delay_s"),
            (dict(multiplier=0.5), "multiplier"),
            (dict(max_delay_s=-1.0), "max_delay_s"),
            (dict(jitter=1.5), "jitter"),
            (dict(jitter=-0.1), "jitter"),
            (dict(deadline_s=-1.0), "deadline_s"),
        ],
    )
    def test_rejects_bad_values(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            RetryPolicy(**kwargs)


class TestSchedule:
    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(
            max_retries=6, base_delay_s=1.0, multiplier=2.0, max_delay_s=10.0
        )
        assert policy.schedule() == [1.0, 2.0, 4.0, 8.0, 10.0, 10.0]

    def test_attempt_zero_has_no_delay(self):
        policy = RetryPolicy(max_retries=2, base_delay_s=1.0)
        assert policy.delay_s(0) == 0.0

    def test_jitter_is_deterministic(self):
        a = RetryPolicy(max_retries=5, base_delay_s=1.0, jitter=0.5, seed=42)
        b = RetryPolicy(max_retries=5, base_delay_s=1.0, jitter=0.5, seed=42)
        assert a.schedule() == b.schedule()

    def test_jitter_varies_with_seed(self):
        schedules = {
            tuple(
                RetryPolicy(
                    max_retries=4, base_delay_s=1.0, jitter=0.9, seed=s
                ).schedule()
            )
            for s in range(8)
        }
        assert len(schedules) > 1

    @given(
        seed=st.integers(0, 2**31),
        jitter=st.floats(0.0, 1.0),
        base=st.floats(0.001, 10.0),
    )
    def test_jitter_stays_in_band(self, seed, jitter, base):
        policy = RetryPolicy(
            max_retries=4,
            base_delay_s=base,
            max_delay_s=1e9,
            jitter=jitter,
            seed=seed,
        )
        for attempt in range(1, 5):
            raw = base * policy.multiplier ** (attempt - 1)
            delay = policy.delay_s(attempt)
            assert raw * (1 - jitter) - 1e-9 <= delay
            assert delay <= raw * (1 + jitter) + 1e-9


class TestAttempts:
    def test_yields_all_attempts_with_sleeps(self):
        policy = RetryPolicy(max_retries=3, base_delay_s=1.0)
        slept = []
        attempts = list(policy.attempts(sleep=slept.append, clock=lambda: 0.0))
        assert attempts == [0, 1, 2, 3]
        assert slept == [1.0, 2.0, 4.0]

    def test_zero_delay_never_sleeps(self):
        policy = RetryPolicy(max_retries=3)
        slept = []
        attempts = list(policy.attempts(sleep=slept.append))
        assert attempts == [0, 1, 2, 3]
        assert slept == []

    def test_deadline_withholds_unaffordable_retry(self):
        # Budget of 2.5s affords the 1s and 2s... no: 1 + 2 = 3 > 2.5,
        # so only the first retry fits.
        policy = RetryPolicy(max_retries=3, base_delay_s=1.0, deadline_s=2.5)
        clock = iter([0.0, 0.0, 1.0, 3.0]).__next__
        slept = []
        attempts = list(policy.attempts(sleep=slept.append, clock=clock))
        assert attempts == [0, 1]
        assert slept == [1.0]

    def test_zero_deadline_means_one_shot(self):
        policy = RetryPolicy(max_retries=5, base_delay_s=1.0, deadline_s=0.0)
        attempts = list(
            policy.attempts(sleep=lambda _: None, clock=lambda: 0.0)
        )
        assert attempts == [0]


class TestCall:
    def test_returns_first_success(self):
        policy = RetryPolicy(max_retries=3)
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        assert policy.call(flaky, retry_on=(OSError,)) == "ok"
        assert len(calls) == 3

    def test_reraises_last_error_when_exhausted(self):
        policy = RetryPolicy(max_retries=2)
        with pytest.raises(OSError, match="always"):
            policy.call(
                self._always_fail, retry_on=(OSError,), sleep=lambda _: None
            )

    @staticmethod
    def _always_fail():
        raise OSError("always")

    def test_unmatched_error_propagates_immediately(self):
        policy = RetryPolicy(max_retries=5)
        calls = []

        def bad():
            calls.append(1)
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            policy.call(bad, retry_on=(OSError,))
        assert len(calls) == 1

    def test_on_retry_sees_attempt_and_error(self):
        policy = RetryPolicy(max_retries=2)
        seen = []

        def flaky():
            if len(seen) < 1:
                raise OSError("boom")
            return 7

        assert (
            policy.call(
                flaky,
                retry_on=(OSError,),
                on_retry=lambda a, e: seen.append((a, str(e))),
            )
            == 7
        )
        assert seen == [(1, "boom")]

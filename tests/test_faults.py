"""Tests for the fault-injection subsystem (repro.faults)."""

import numpy as np
import pytest

from repro.core import DiurnalClass, MeasurementConfig, measure_block
from repro.faults import (
    ClockSkewInjector,
    FaultConfig,
    FaultPlan,
    GapInjector,
    LossyOracle,
    ObservationStream,
    ProberCrashInjector,
    RoundDropInjector,
    RoundDuplicateInjector,
)
from repro.net import Block24, make_always_on, make_dead, make_diurnal, merge_behaviors
from repro.probing import RoundSchedule

ROUND = 660.0


def diurnal_block(block_id=1):
    behavior = merge_behaviors(
        make_always_on(50),
        make_diurnal(100, phase_s=8 * 3600),
        make_dead(106),
    )
    return Block24(block_id, behavior)


def stable_oracle(n_rounds=200, seed=0):
    block = Block24(
        7, merge_behaviors(make_always_on(60, p_response=0.9), make_dead(196))
    )
    times = np.arange(n_rounds) * ROUND
    return block.realize(times, np.random.default_rng(seed))


class TestFaultConfig:
    def test_default_is_clean(self):
        assert FaultConfig().is_clean

    def test_any_rate_makes_it_dirty(self):
        assert not FaultConfig(probe_loss_rate=0.01).is_clean
        assert not FaultConfig(crashes_per_day=1.0).is_clean

    def test_bad_rates_rejected(self):
        with pytest.raises(ValueError):
            FaultConfig(probe_loss_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(round_drop_rate=-0.1)
        with pytest.raises(ValueError):
            FaultConfig(gaps_per_day=-1.0)
        with pytest.raises(ValueError):
            FaultConfig(mean_gap_rounds=0.5)


class TestLossyOracle:
    def test_loss_flips_positives_to_negatives(self):
        oracle = stable_oracle()
        lossy = LossyOracle(oracle, 0.5, np.random.default_rng(0))
        raw = sum(oracle.probe(h, 0) for h in oracle.ever_active)
        seen = sum(lossy.probe(h, 0) for h in oracle.ever_active)
        assert seen < raw

    def test_ground_truth_unaffected(self):
        oracle = stable_oracle()
        lossy = LossyOracle(oracle, 0.9, np.random.default_rng(0))
        assert np.array_equal(lossy.true_availability(), oracle.true_availability())

    def test_zero_loss_transparent(self):
        oracle = stable_oracle()
        lossy = LossyOracle(oracle, 0.0, np.random.default_rng(0))
        outcomes = [lossy.probe(h, 3) for h in oracle.ever_active]
        expected = [oracle.probe(h, 3) for h in oracle.ever_active]
        assert outcomes == expected

    def test_probe_many_applies_loss(self):
        oracle = stable_oracle()
        lossy = LossyOracle(oracle, 1.0, np.random.default_rng(0))
        assert not lossy.probe_many(oracle.ever_active, 0).any()


class TestStreamInjectors:
    def setup_method(self):
        self.n = 500
        self.stream = ObservationStream(
            np.arange(self.n) * ROUND, np.linspace(0.2, 0.8, self.n)
        )
        self.rng = np.random.default_rng(42)

    def test_drop_removes_observations(self):
        out = RoundDropInjector(0.2).corrupt_stream(self.stream, ROUND, self.rng)
        assert out.n_observations < self.n
        assert out.n_observations > 0.6 * self.n

    def test_duplicate_adds_same_round_copies(self):
        out = RoundDuplicateInjector(0.2).corrupt_stream(
            self.stream, ROUND, self.rng
        )
        assert out.n_observations > self.n
        extra = out.n_observations - self.n
        # Duplicates land within the same round (offset < round/2).
        assert extra > 0
        dup_times = out.times[self.n :]
        assert np.allclose(dup_times % ROUND, 0.25 * ROUND)

    def test_gap_injector_cuts_consecutive_runs(self):
        out = GapInjector(gaps_per_day=8.0, mean_gap_rounds=10).corrupt_stream(
            self.stream, ROUND, self.rng
        )
        kept = np.round(out.times / ROUND).astype(int)
        missing = np.setdiff1d(np.arange(self.n), kept)
        assert len(missing) > 0
        # At least one gap of length >= 2 (gaps are multi-round by design).
        runs = np.split(missing, np.flatnonzero(np.diff(missing) > 1) + 1)
        assert max(len(r) for r in runs) >= 2

    def test_clock_skew_shifts_late_timestamps_more(self):
        out = ClockSkewInjector(jitter_s=0.0, skew_ppm=1000.0).corrupt_stream(
            self.stream, ROUND, self.rng
        )
        drift = out.times - self.stream.times
        assert drift[0] == 0.0
        assert drift[-1] > drift[1] > 0

    def test_jitter_can_reorder_but_sort_recovers(self):
        out = ClockSkewInjector(jitter_s=400.0, skew_ppm=0.0).corrupt_stream(
            self.stream, ROUND, self.rng
        )
        sorted_stream = out.sorted()
        assert np.all(np.diff(sorted_stream.times) >= 0)

    def test_crash_rounds_within_schedule(self):
        schedule = RoundSchedule.for_days(7)
        rounds = ProberCrashInjector(2.0).crash_rounds(
            schedule, np.random.default_rng(0)
        )
        assert len(rounds) > 0
        assert rounds.min() > 0
        assert rounds.max() < schedule.n_rounds

    def test_mismatched_stream_shapes_rejected(self):
        with pytest.raises(ValueError):
            ObservationStream(np.zeros(3), np.zeros(4))


class TestFaultPlan:
    def test_clean_config_builds_no_injectors(self):
        plan = FaultPlan(FaultConfig())
        assert plan.is_clean
        assert plan.describe() == "clean (no faults)"

    def test_all_faults_active(self):
        config = FaultConfig(
            probe_loss_rate=0.1,
            round_drop_rate=0.1,
            round_duplicate_rate=0.1,
            gaps_per_day=1.0,
            clock_jitter_s=10.0,
            crashes_per_day=1.0,
        )
        plan = FaultPlan(config)
        assert len(plan.injectors) == 6
        assert "ProbeLoss" in plan.describe()

    def test_degrade_stream_is_deterministic(self):
        config = FaultConfig(
            round_drop_rate=0.1, clock_jitter_s=20.0, seed=5
        )
        times = np.arange(300) * ROUND
        values = np.linspace(0, 1, 300)
        a = FaultPlan(config).degrade_stream(times, values, ROUND)
        b = FaultPlan(config).degrade_stream(times, values, ROUND)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_per_block_plans_differ(self):
        config = FaultConfig(round_drop_rate=0.2, seed=5)
        times = np.arange(300) * ROUND
        values = np.linspace(0, 1, 300)
        plan = FaultPlan(config)
        a = plan.for_block(0).degrade_stream(times, values, ROUND)
        b = plan.for_block(1).degrade_stream(times, values, ROUND)
        assert len(a[0]) != len(b[0]) or not np.array_equal(a[0], b[0])

    def test_toggling_one_injector_keeps_others_draws(self):
        times = np.arange(300) * ROUND
        values = np.linspace(0, 1, 300)
        only_drop = FaultPlan(FaultConfig(round_drop_rate=0.2, seed=9))
        drop_and_crash = FaultPlan(
            FaultConfig(round_drop_rate=0.2, crashes_per_day=2.0, seed=9)
        )
        a = only_drop.degrade_stream(times, values, ROUND)
        b = drop_and_crash.degrade_stream(times, values, ROUND)
        assert np.array_equal(a[0], b[0])

    def test_crash_rounds_deterministic(self):
        config = FaultConfig(crashes_per_day=1.0, seed=3)
        schedule = RoundSchedule.for_days(7)
        assert np.array_equal(
            FaultPlan(config).crash_rounds(schedule),
            FaultPlan(config).crash_rounds(schedule),
        )


class TestDegradedMeasurement:
    def test_mild_degradation_keeps_strong_diurnal_label(self):
        schedule = RoundSchedule.for_days(14)
        clean = measure_block(
            diurnal_block(), schedule, np.random.default_rng(0), walk_seed=7
        )
        config = FaultConfig(
            probe_loss_rate=0.03,
            round_drop_rate=0.05,
            round_duplicate_rate=0.03,
            seed=1,
        )
        degraded = measure_block(
            diurnal_block(),
            schedule,
            np.random.default_rng(0),
            walk_seed=7,
            faults=FaultPlan(config),
        )
        assert clean.report.label is DiurnalClass.STRICT
        assert degraded.report.label is DiurnalClass.STRICT
        assert degraded.quality is not None
        assert degraded.quality.gap_fraction < 0.15

    def test_quality_report_counts_duplicates_and_fills(self):
        schedule = RoundSchedule.for_days(7)
        config = FaultConfig(
            round_drop_rate=0.05, round_duplicate_rate=0.05, seed=2
        )
        result = measure_block(
            diurnal_block(),
            schedule,
            np.random.default_rng(0),
            faults=FaultPlan(config),
        )
        assert result.quality.n_duplicates > 0
        assert result.quality.n_filled > 0
        assert result.quality.n_observed < schedule.n_rounds

    def test_extreme_loss_yields_insufficient_data(self):
        schedule = RoundSchedule.for_days(7)
        config = FaultConfig(round_drop_rate=0.9, seed=3)
        result = measure_block(
            diurnal_block(),
            schedule,
            np.random.default_rng(0),
            faults=FaultPlan(config),
        )
        assert result.report.label is DiurnalClass.INSUFFICIENT
        assert not result.report.is_diurnal
        assert not result.report.is_strict

    def test_nan_fill_policy_refuses_classification_on_gaps(self):
        schedule = RoundSchedule.for_days(7)
        config = FaultConfig(round_drop_rate=0.2, seed=4)
        m_config = MeasurementConfig(fill_policy="nan")
        result = measure_block(
            diurnal_block(),
            schedule,
            np.random.default_rng(0),
            m_config,
            faults=FaultPlan(config),
        )
        assert np.isnan(result.a_short).any()
        assert result.report.label is DiurnalClass.INSUFFICIENT

    def test_crash_faults_add_probe_churn(self):
        """Unscheduled crashes reset the walk: the block stays measurable
        but the restart artifact machinery is exercised."""
        schedule = RoundSchedule.for_days(7)
        config = FaultConfig(crashes_per_day=4.0, seed=5)
        result = measure_block(
            diurnal_block(),
            schedule,
            np.random.default_rng(0),
            walk_seed=7,
            faults=FaultPlan(config),
        )
        assert not result.skipped
        assert result.report is not None

    def test_ground_truth_classification_unaffected_by_faults(self):
        schedule = RoundSchedule.for_days(14)
        clean = measure_block(
            diurnal_block(), schedule, np.random.default_rng(0), walk_seed=7
        )
        config = FaultConfig(probe_loss_rate=0.1, round_drop_rate=0.1, seed=6)
        degraded = measure_block(
            diurnal_block(),
            schedule,
            np.random.default_rng(0),
            walk_seed=7,
            faults=FaultPlan(config),
        )
        assert np.array_equal(
            clean.true_availability, degraded.true_availability
        )
        assert clean.true_report.label == degraded.true_report.label

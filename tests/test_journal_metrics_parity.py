"""Journal replay reproduces a live run's stream metrics exactly.

The write-ahead journal's promise is that replaying it is
indistinguishable from the live ingest it recorded.  The verdict side
of that promise is covered by the recovery tests; this module covers
the *telemetry* side: an instrumented engine fed by ``replay_journal``
must end with the same observation, late-drop, freeze, and
window-close counters as the instrumented live engine whose
observations were journaled — including when the stream arrives out of
order and triggers late drops.
"""

import numpy as np

from repro.obs.registry import MetricsRegistry
from repro.stream import (
    StreamConfig,
    StreamEngine,
    StreamJournal,
    replay_journal,
)

ROUND = 660.0
DAY = 86400.0


def scrambled_stream(n_days=4, seed=3):
    """A diurnal stream with injected out-of-order arrivals.

    Every 53rd observation is swapped 3 positions earlier, so it
    arrives behind the watermark (``lateness_rounds=0``) and must be
    dropped as late — the interesting path for metric parity.
    """
    rng = np.random.default_rng(seed)
    n = int(n_days * DAY / ROUND)
    times = np.arange(n) * ROUND
    values = (
        0.5
        + 0.4 * np.sin(2 * np.pi * times / DAY)
        + 0.02 * rng.standard_normal(n)
    )
    order = list(range(n))
    for i in range(10, n, 53):
        order[i], order[i - 3] = order[i - 3], order[i]
    return [(0, times[j], values[j]) for j in order]


def stream_counters(registry):
    return {
        key: value
        for key, value in registry.snapshot()["counters"].items()
        if key.startswith("stream_")
    }


def config():
    return StreamConfig.for_days(2.0, hop_days=1.0, label_dwell=1)


class TestJournalMetricsParity:
    def test_replay_reproduces_live_counters(self, tmp_path):
        observations = scrambled_stream()

        live_metrics = MetricsRegistry()
        live = StreamEngine(config(), metrics=live_metrics)
        path = tmp_path / "wal"
        with StreamJournal(path) as journal:
            for block_id, time_s, value in observations:
                journal.append(block_id, time_s, value)
                live.ingest(block_id, time_s, value)
        live.flush()

        replay_metrics = MetricsRegistry()
        replayed = StreamEngine(config(), metrics=replay_metrics)
        last_seq = replay_journal(path, replayed, metrics=replay_metrics)
        replayed.flush()

        assert last_seq == len(observations)
        live_counters = stream_counters(live_metrics)
        # The scramble really exercised the late path...
        assert live_counters["stream_late_observations_total"] > 0
        # ...and accepted + dropped accounts for every arrival.
        assert (
            live_counters["stream_observations_total"]
            + live_counters["stream_late_observations_total"]
            == len(observations)
        )
        # ...and the replayed engine counted the identical history.
        assert stream_counters(replay_metrics) == live_counters

    def test_second_replay_is_metric_noop(self, tmp_path):
        observations = scrambled_stream(n_days=3)
        path = tmp_path / "wal"
        with StreamJournal(path) as journal:
            for block_id, time_s, value in observations:
                journal.append(block_id, time_s, value)

        metrics = MetricsRegistry()
        engine = StreamEngine(config(), metrics=metrics)
        last_seq = replay_journal(path, engine, metrics=metrics)
        engine.flush()
        before = stream_counters(metrics)

        again = replay_journal(
            path, engine, after_seq=last_seq, metrics=metrics
        )
        engine.flush()
        assert again == last_seq
        assert stream_counters(metrics) == before
        assert (
            metrics.counter(
                "journal_records_skipped_total", reason="already_applied"
            ).value
            == len(observations)
        )

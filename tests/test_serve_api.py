"""HTTP-layer tests for the service API (repro.serve.api).

The API runs in a background event-loop thread; tests speak real
HTTP/1.1 over ``http.client`` so the hand-rolled parser, keep-alive
handling, and status/header semantics (404, 429 + Retry-After,
503 + Retry-After) are exercised end to end against live shard
processes.
"""

import asyncio
import json
import threading
from http.client import HTTPConnection

import pytest

from repro.core.retry import RetryPolicy
from repro.obs import MetricsRegistry
from repro.obs.events import EventLogger, read_event_log
from repro.obs.tracing import Tracer, parse_traceparent
from repro.serve import ServiceAPI, ServiceConfig, ServiceRunner
from repro.stream.engine import StreamConfig
from repro.stream.overload import OverloadConfig

from tests.test_serve_service import ROUND, interleaved, N_BLOCKS, WINDOW


class ApiHarness:
    """A live runner + API on an ephemeral port, driven from tests."""

    def __init__(self, runner: ServiceRunner, enable_profiler=False) -> None:
        self.runner = runner
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self.loop.run_forever, name="api-loop", daemon=True
        )
        self.thread.start()
        runner.start()
        self.api = ServiceAPI(runner, port=0, enable_profiler=enable_profiler)
        asyncio.run_coroutine_threadsafe(
            self.api.start(), self.loop
        ).result(timeout=10)

    def request(self, method, path, body=None, conn=None, headers=None):
        own = conn is None
        if own:
            conn = HTTPConnection("127.0.0.1", self.api.port, timeout=30)
        try:
            conn.request(
                method,
                path,
                body=json.dumps(body) if body is not None else None,
                headers={"Content-Type": "application/json", **(headers or {})},
            )
            response = conn.getresponse()
            payload = response.read()
            headers = dict(response.getheaders())
            try:
                payload = json.loads(payload)
            except (json.JSONDecodeError, UnicodeDecodeError):
                pass
            return response.status, payload, headers
        finally:
            if own:
                conn.close()

    def close(self) -> None:
        asyncio.run_coroutine_threadsafe(
            self.api.stop(), self.loop
        ).result(timeout=10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.runner.stop(drain=False)


def make_harness(
    tmp_path, runner_kwargs=None, enable_profiler=False, **config_overrides
) -> ApiHarness:
    defaults = dict(
        stream=StreamConfig(window_rounds=WINDOW, round_s=ROUND),
        journal_dir=tmp_path / "journals",
        n_shards=2,
        seed=11,
    )
    defaults.update(config_overrides)
    kwargs = dict(metrics=MetricsRegistry())
    kwargs.update(runner_kwargs or {})
    runner = ServiceRunner(ServiceConfig(**defaults), **kwargs)
    return ApiHarness(runner, enable_profiler=enable_profiler)


@pytest.fixture
def harness(tmp_path):
    instance = make_harness(tmp_path)
    yield instance
    instance.close()


@pytest.mark.watchdog(120)
def test_ingest_and_block_state_roundtrip(harness):
    observations = [list(t) for t in interleaved(2 * WINDOW)]
    status, report, _ = harness.request(
        "POST", "/observations", {"observations": observations}
    )
    assert status == 200
    assert report["accepted"] == len(observations)
    harness.runner.flush()
    for block_id in range(N_BLOCKS):
        status, state, _ = harness.request(
            "GET", f"/blocks/{block_id}/state"
        )
        assert status == 200
        # The HTTP payload is the runner's own snapshot, JSON-rendered.
        assert state == harness.runner.query_block(block_id)
        assert state["n_closed"] == 2
        assert state["last_report"]["label"] is not None


@pytest.mark.watchdog(120)
def test_phase_map_fleet_metrics_healthz(harness):
    observations = [list(t) for t in interleaved(2 * WINDOW)]
    harness.request("POST", "/observations", {"observations": observations})
    harness.runner.flush()

    status, phase_map, _ = harness.request("GET", "/phase-map")
    assert status == 200
    assert not phase_map["partial"]
    assert phase_map["blocks"]  # JSON object: str block ids
    for entry in phase_map["blocks"].values():
        assert entry["label"] in ("strict", "relaxed")

    status, fleet, _ = harness.request("GET", "/fleet")
    assert status == 200
    assert fleet["n_shards"] == 2
    assert all(s["healthy"] for s in fleet["shards"].values())

    status, text, headers = harness.request("GET", "/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain")
    assert b"stream_observations_total" in text
    assert b"service_ingest_observations_total" in text

    status, snap, _ = harness.request("GET", "/metrics?format=json")
    assert status == 200
    assert snap["service"]["run_id"] == harness.runner.run_id

    status, health, _ = harness.request("GET", "/healthz")
    assert status == 200 and health["status"] == "ok"


@pytest.mark.watchdog(120)
def test_error_statuses(harness):
    status, body, _ = harness.request("GET", "/blocks/12345/state")
    assert status == 404 and "error" in body
    status, body, _ = harness.request("GET", "/blocks/xyz/state")
    assert status == 400
    status, body, _ = harness.request("POST", "/observations", {"nope": 1})
    assert status == 400
    status, body, _ = harness.request(
        "POST", "/observations", {"observations": [[1, 2]]}
    )
    assert status == 400
    status, body, _ = harness.request("GET", "/no/such/route")
    assert status == 404
    status, body, _ = harness.request("GET", "/observations")
    assert status == 405
    status, body, _ = harness.request("POST", "/phase-map", {})
    assert status == 405


@pytest.mark.watchdog(120)
def test_keep_alive_serves_multiple_requests(harness):
    conn = HTTPConnection("127.0.0.1", harness.api.port, timeout=30)
    try:
        for _ in range(3):
            status, health, _ = harness.request(
                "GET", "/healthz", conn=conn
            )
            assert status == 200 and health["status"] == "ok"
    finally:
        conn.close()


@pytest.mark.watchdog(120)
def test_backpressure_answers_429_with_retry_after(tmp_path):
    harness = make_harness(
        tmp_path,
        n_shards=1,
        overload=OverloadConfig(
            capacity=64, high_watermark=0.5, low_watermark=0.25
        ),
        pump_budget=1,
        retry_after_s=2.0,
    )
    try:
        burst = [[7, r * ROUND, 0.5] for r in range(60)]
        status, _, _ = harness.request(
            "POST", "/observations", {"observations": burst}
        )
        assert status == 200
        status, body, headers = harness.request(
            "POST", "/observations", {"observations": [[7, 61 * ROUND, 0.5]]}
        )
        assert status == 429
        assert headers["Retry-After"] == "2"
        assert "error" in body
        # The backpressure answer is still a first-class traced request.
        assert body["request_id"] == headers["X-Request-Id"]
        assert headers["X-Request-Id"] in headers["traceparent"]
        harness.runner.flush()
        status, _, _ = harness.request(
            "POST", "/observations", {"observations": [[7, 61 * ROUND, 0.5]]}
        )
        assert status == 200
    finally:
        harness.close()


@pytest.mark.watchdog(120)
def test_down_shard_answers_503_with_retry_after(tmp_path):
    harness = make_harness(
        tmp_path,
        respawn_backoff=RetryPolicy(base_delay_s=120.0),
    )
    try:
        observations = [list(t) for t in interleaved(WINDOW)]
        harness.request(
            "POST", "/observations", {"observations": observations}
        )
        victim = harness.runner.owner(0)
        harness.runner.kill_shard(victim)
        status, body, headers = harness.request("GET", "/blocks/0/state")
        assert status == 503
        # Retry-After is integer seconds on 503 exactly as on 429, and
        # the degraded answer still carries its request id.
        assert headers["Retry-After"] == "1"
        assert body["request_id"] == headers["X-Request-Id"]
        status, body, _ = harness.request(
            "POST", "/observations", {"observations": [[0, 999 * ROUND, 0.5]]}
        )
        assert status == 503
        status, phase_map, _ = harness.request("GET", "/phase-map")
        assert status == 200 and phase_map["partial"]
        status, health, _ = harness.request("GET", "/healthz")
        assert status == 503 and health["status"] == "degraded"
    finally:
        harness.close()


# -- observability: tracing, request ids, SLO metrics, profiler ------------

TRACEPARENT = "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01"


@pytest.mark.watchdog(120)
def test_every_response_carries_request_id_and_traceparent(harness):
    cases = [
        ("GET", "/healthz", None, 200),
        ("GET", "/no/such/route", None, 404),
        ("POST", "/observations", {"nope": 1}, 400),
        ("GET", "/observations", None, 405),
    ]
    for method, path, body, want in cases:
        status, payload, headers = harness.request(method, path, body)
        assert status == want, path
        request_id = headers["X-Request-Id"]
        assert len(request_id) == 16
        int(request_id, 16)  # well-formed hex
        context = parse_traceparent(headers["traceparent"])
        assert context is not None and context.span_id == request_id
        if status >= 400:
            # Error payloads echo the id so a client report names the
            # exact access-log line and span.
            assert payload["request_id"] == request_id


@pytest.mark.watchdog(120)
def test_incoming_traceparent_joins_the_callers_trace(harness):
    status, _, headers = harness.request(
        "GET", "/healthz", headers={"traceparent": TRACEPARENT}
    )
    assert status == 200
    context = parse_traceparent(headers["traceparent"])
    assert context.trace_id == "ab" * 16  # the caller's trace continues
    assert context.span_id != "cd" * 8  # under a freshly minted span
    assert headers["X-Request-Id"] == context.span_id


@pytest.mark.watchdog(120)
def test_malformed_traceparent_starts_a_fresh_trace(harness):
    status, _, headers = harness.request(
        "GET", "/healthz", headers={"traceparent": "00-beef-cafe-01"}
    )
    assert status == 200
    context = parse_traceparent(headers["traceparent"])
    assert context is not None and context.trace_id != "beef"


@pytest.mark.watchdog(120)
def test_traced_ingest_produces_one_resolvable_span_tree(tmp_path):
    """The acceptance path: one POST /observations, one span tree.

    Every traced record in the event log must resolve against the
    runner tracer, and the resolved spans must chain
    http.request -> route -> shard.rpc -> engine.ingest under the
    caller's trace id — including the engine.ingest leaves, which ran
    in shard subprocesses and came home on telemetry deltas.
    """
    log_path = tmp_path / "events.jsonl"
    harness = make_harness(
        tmp_path,
        runner_kwargs=dict(
            tracer=Tracer(), events=EventLogger(sink=log_path)
        ),
    )
    try:
        observations = [list(t) for t in interleaved(WINDOW)]
        status, _, headers = harness.request(
            "POST",
            "/observations",
            {"observations": observations},
            headers={"traceparent": TRACEPARENT},
        )
        assert status == 200
        trace_id = "ab" * 16
        request_id = headers["X-Request-Id"]

        tracer = harness.runner.tracer
        by_name = {}
        for span in tracer.trace_spans(trace_id):
            by_name.setdefault(span.name, []).append(span)
        assert set(by_name) == {
            "http.request", "route", "shard.rpc", "engine.ingest"
        }

        [request_span] = by_name["http.request"]
        assert request_span.span_id == request_id
        assert request_span.parent_span_id == "cd" * 8  # caller's span
        [route_span] = by_name["route"]
        assert route_span.parent_span_id == request_id
        rpc_ids = {s.span_id for s in by_name["shard.rpc"]}
        assert len(rpc_ids) == 2  # both shards took part of the batch
        for span in by_name["shard.rpc"]:
            assert span.parent_span_id == route_span.span_id
        for span in by_name["engine.ingest"]:
            assert span.parent_span_id in rpc_ids

        records = [
            r for r in read_event_log(log_path)
            if r.get("trace_id") == trace_id
        ]
        seen = {r["event"] for r in records}
        assert {
            "http.access", "service.route", "service.shard_rpc",
            "shard.ingest",
        } <= seen
        for record in records:
            span = tracer.resolve(record["span_id"])
            assert span is not None, record["event"]
            assert span.trace_id == trace_id

        [access] = [r for r in records if r["event"] == "http.access"]
        assert access["request_id"] == request_id
        assert access["route"] == "/observations"
        assert access["status"] == 200
        assert access["duration_s"] >= 0.0
    finally:
        harness.close()


@pytest.mark.watchdog(120)
def test_per_route_latency_metrics_and_json_schema(harness):
    harness.request("GET", "/healthz")
    harness.request("GET", "/no/such/route")
    harness.request(
        "POST",
        "/observations",
        {"observations": [[0, 0.0, 0.5], [1, ROUND, 0.5]]},
    )

    status, text, _ = harness.request("GET", "/metrics")
    assert status == 200
    text = text.decode()
    assert "service_requests_total" in text
    assert 'route="/observations"' in text
    assert 'status="404"' in text  # the unmatched route was counted too
    assert "service_request_seconds_bucket" in text
    assert "service_request_seconds_count" in text
    assert "service_requests_in_flight" in text

    status, snap, _ = harness.request("GET", "/metrics?format=json")
    assert status == 200
    assert set(snap) == {"metrics", "service"}
    assert set(snap["service"]) == {"run_id", "respawns", "n_deltas"}
    metrics = snap["metrics"]
    assert set(metrics) == {"counters", "gauges", "histograms", "meters"}
    assert any(
        key.startswith("service_request_seconds")
        for key in metrics["histograms"]
    )
    assert any(
        key.startswith("service_requests_total")
        for key in metrics["counters"]
    )
    assert "service_requests_in_flight" in metrics["gauges"]


@pytest.mark.watchdog(120)
def test_debug_profile_endpoint(tmp_path):
    harness = make_harness(tmp_path, enable_profiler=True)
    try:
        status, text, headers = harness.request(
            "GET", "/debug/profile?seconds=0.2"
        )
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        for line in text.decode().splitlines():
            stack, count = line.rsplit(" ", 1)
            assert ";" in stack and int(count) >= 1
        status, _, _ = harness.request("GET", "/debug/profile?seconds=nope")
        assert status == 400
        status, _, _ = harness.request("GET", "/debug/profile?seconds=-1")
        assert status == 400
    finally:
        harness.close()


@pytest.mark.watchdog(120)
def test_debug_profile_is_404_unless_enabled(harness):
    status, body, headers = harness.request(
        "GET", "/debug/profile?seconds=1"
    )
    assert status == 404
    assert body["request_id"] == headers["X-Request-Id"]


@pytest.mark.watchdog(60)
def test_slo_alerts_fire_from_request_metrics(tmp_path):
    """Injected slow/faulted traffic trips the default service SLOs."""
    from repro.obs.alerts import AlertEngine, default_service_rules

    registry = MetricsRegistry()
    runner = ServiceRunner(
        ServiceConfig(
            stream=StreamConfig(window_rounds=WINDOW, round_s=ROUND),
            journal_dir=tmp_path / "journals",
            n_shards=2,
            seed=11,
        ),
        metrics=registry,
    )
    runner.alerts = AlertEngine(
        default_service_rules(max_request_p99_s=0.25, max_error_ratio=0.1),
        metrics=registry,
    )
    # Injected slow requests: the whole distribution sits above the
    # p99 threshold, so the derived gauge breaches every cycle.
    hist = registry.histogram(
        "service_request_seconds", buckets=(0.1, 0.5),
        route="/observations",
    )
    ok = registry.counter(
        "service_requests_total",
        route="/observations", method="POST", status="200",
    )
    for _ in range(50):
        hist.observe(0.4)
        ok.inc()
    for _ in range(3):
        runner._evaluate_alerts()  # for_cycles=3 hysteresis
    assert "service-request-p99" in runner.alerts.firing()

    # Injected shard faults: a sustained 5xx plateau drives the
    # per-cycle burn-rate meter over its budget.
    bad = registry.counter(
        "service_requests_total",
        route="/observations", method="POST", status="503",
    )
    for _ in range(3):
        bad.inc(100)
        runner._evaluate_alerts()
    assert "service-error-ratio" in runner.alerts.firing()

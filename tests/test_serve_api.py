"""HTTP-layer tests for the service API (repro.serve.api).

The API runs in a background event-loop thread; tests speak real
HTTP/1.1 over ``http.client`` so the hand-rolled parser, keep-alive
handling, and status/header semantics (404, 429 + Retry-After,
503 + Retry-After) are exercised end to end against live shard
processes.
"""

import asyncio
import json
import threading
from http.client import HTTPConnection

import pytest

from repro.core.retry import RetryPolicy
from repro.obs import MetricsRegistry
from repro.serve import ServiceAPI, ServiceConfig, ServiceRunner
from repro.stream.engine import StreamConfig
from repro.stream.overload import OverloadConfig

from tests.test_serve_service import ROUND, interleaved, N_BLOCKS, WINDOW


class ApiHarness:
    """A live runner + API on an ephemeral port, driven from tests."""

    def __init__(self, runner: ServiceRunner) -> None:
        self.runner = runner
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self.loop.run_forever, name="api-loop", daemon=True
        )
        self.thread.start()
        runner.start()
        self.api = ServiceAPI(runner, port=0)
        asyncio.run_coroutine_threadsafe(
            self.api.start(), self.loop
        ).result(timeout=10)

    def request(self, method, path, body=None, conn=None):
        own = conn is None
        if own:
            conn = HTTPConnection("127.0.0.1", self.api.port, timeout=30)
        try:
            conn.request(
                method,
                path,
                body=json.dumps(body) if body is not None else None,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            payload = response.read()
            headers = dict(response.getheaders())
            try:
                payload = json.loads(payload)
            except (json.JSONDecodeError, UnicodeDecodeError):
                pass
            return response.status, payload, headers
        finally:
            if own:
                conn.close()

    def close(self) -> None:
        asyncio.run_coroutine_threadsafe(
            self.api.stop(), self.loop
        ).result(timeout=10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.runner.stop(drain=False)


def make_harness(tmp_path, **config_overrides) -> ApiHarness:
    defaults = dict(
        stream=StreamConfig(window_rounds=WINDOW, round_s=ROUND),
        journal_dir=tmp_path / "journals",
        n_shards=2,
        seed=11,
    )
    defaults.update(config_overrides)
    runner = ServiceRunner(
        ServiceConfig(**defaults), metrics=MetricsRegistry()
    )
    return ApiHarness(runner)


@pytest.fixture
def harness(tmp_path):
    instance = make_harness(tmp_path)
    yield instance
    instance.close()


@pytest.mark.watchdog(120)
def test_ingest_and_block_state_roundtrip(harness):
    observations = [list(t) for t in interleaved(2 * WINDOW)]
    status, report, _ = harness.request(
        "POST", "/observations", {"observations": observations}
    )
    assert status == 200
    assert report["accepted"] == len(observations)
    harness.runner.flush()
    for block_id in range(N_BLOCKS):
        status, state, _ = harness.request(
            "GET", f"/blocks/{block_id}/state"
        )
        assert status == 200
        # The HTTP payload is the runner's own snapshot, JSON-rendered.
        assert state == harness.runner.query_block(block_id)
        assert state["n_closed"] == 2
        assert state["last_report"]["label"] is not None


@pytest.mark.watchdog(120)
def test_phase_map_fleet_metrics_healthz(harness):
    observations = [list(t) for t in interleaved(2 * WINDOW)]
    harness.request("POST", "/observations", {"observations": observations})
    harness.runner.flush()

    status, phase_map, _ = harness.request("GET", "/phase-map")
    assert status == 200
    assert not phase_map["partial"]
    assert phase_map["blocks"]  # JSON object: str block ids
    for entry in phase_map["blocks"].values():
        assert entry["label"] in ("strict", "relaxed")

    status, fleet, _ = harness.request("GET", "/fleet")
    assert status == 200
    assert fleet["n_shards"] == 2
    assert all(s["healthy"] for s in fleet["shards"].values())

    status, text, headers = harness.request("GET", "/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain")
    assert b"stream_observations_total" in text
    assert b"service_ingest_observations_total" in text

    status, snap, _ = harness.request("GET", "/metrics?format=json")
    assert status == 200
    assert snap["service"]["run_id"] == harness.runner.run_id

    status, health, _ = harness.request("GET", "/healthz")
    assert status == 200 and health["status"] == "ok"


@pytest.mark.watchdog(120)
def test_error_statuses(harness):
    status, body, _ = harness.request("GET", "/blocks/12345/state")
    assert status == 404 and "error" in body
    status, body, _ = harness.request("GET", "/blocks/xyz/state")
    assert status == 400
    status, body, _ = harness.request("POST", "/observations", {"nope": 1})
    assert status == 400
    status, body, _ = harness.request(
        "POST", "/observations", {"observations": [[1, 2]]}
    )
    assert status == 400
    status, body, _ = harness.request("GET", "/no/such/route")
    assert status == 404
    status, body, _ = harness.request("GET", "/observations")
    assert status == 405
    status, body, _ = harness.request("POST", "/phase-map", {})
    assert status == 405


@pytest.mark.watchdog(120)
def test_keep_alive_serves_multiple_requests(harness):
    conn = HTTPConnection("127.0.0.1", harness.api.port, timeout=30)
    try:
        for _ in range(3):
            status, health, _ = harness.request(
                "GET", "/healthz", conn=conn
            )
            assert status == 200 and health["status"] == "ok"
    finally:
        conn.close()


@pytest.mark.watchdog(120)
def test_backpressure_answers_429_with_retry_after(tmp_path):
    harness = make_harness(
        tmp_path,
        n_shards=1,
        overload=OverloadConfig(
            capacity=64, high_watermark=0.5, low_watermark=0.25
        ),
        pump_budget=1,
        retry_after_s=2.0,
    )
    try:
        burst = [[7, r * ROUND, 0.5] for r in range(60)]
        status, _, _ = harness.request(
            "POST", "/observations", {"observations": burst}
        )
        assert status == 200
        status, body, headers = harness.request(
            "POST", "/observations", {"observations": [[7, 61 * ROUND, 0.5]]}
        )
        assert status == 429
        assert headers["Retry-After"] == "2"
        assert "error" in body
        harness.runner.flush()
        status, _, _ = harness.request(
            "POST", "/observations", {"observations": [[7, 61 * ROUND, 0.5]]}
        )
        assert status == 200
    finally:
        harness.close()


@pytest.mark.watchdog(120)
def test_down_shard_answers_503_with_retry_after(tmp_path):
    harness = make_harness(
        tmp_path,
        respawn_backoff=RetryPolicy(base_delay_s=120.0),
    )
    try:
        observations = [list(t) for t in interleaved(WINDOW)]
        harness.request(
            "POST", "/observations", {"observations": observations}
        )
        victim = harness.runner.owner(0)
        harness.runner.kill_shard(victim)
        status, body, headers = harness.request("GET", "/blocks/0/state")
        assert status == 503
        assert "Retry-After" in headers
        status, body, _ = harness.request(
            "POST", "/observations", {"observations": [[0, 999 * ROUND, 0.5]]}
        )
        assert status == 503
        status, phase_map, _ = harness.request("GET", "/phase-map")
        assert status == 200 and phase_map["partial"]
        status, health, _ = harness.request("GET", "/healthz")
        assert status == 503 and health["status"] == "degraded"
    finally:
        harness.close()

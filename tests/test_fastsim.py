"""Tests for the vectorized scale path, including its fidelity to the
address-level prober it summarizes."""

import numpy as np
import pytest

from repro.net import Block24, make_always_on, make_dead, merge_behaviors
from repro.probing import AdaptiveProber, RoundSchedule
from repro.probing.prober import FixedAvailability
from repro.simulation import WorldConfig, generate_world
from repro.simulation.fastsim import (
    adaptive_counts,
    apply_restart_bias,
    designed_mean_availability,
    measure_world,
    synthesize_availability,
)


@pytest.fixture(scope="module")
def world():
    return generate_world(WorldConfig(n_blocks=1500, seed=3))


class TestSynthesizeAvailability:
    def test_shape_and_range(self, world):
        times = RoundSchedule.for_days(3).times()
        a = synthesize_availability(world, np.arange(50), times, np.random.default_rng(0))
        assert a.shape == (50, len(times))
        assert (a > 0).all() and (a < 1).all()

    def test_diurnal_blocks_oscillate_daily(self, world):
        times = RoundSchedule.for_days(7).times()
        idx = np.flatnonzero(world.is_diurnal)[:20]
        a = synthesize_availability(world, idx, times, np.random.default_rng(1))
        day = (times // 86400).astype(int)
        for row in range(20):
            daily_max = np.array([a[row][day == d].max() for d in range(7)])
            daily_min = np.array([a[row][day == d].min() for d in range(7)])
            assert (daily_max - daily_min).mean() > 0.15

    def test_mean_matches_design(self, world):
        times = RoundSchedule.for_days(7).times()
        idx = np.arange(100)
        a = synthesize_availability(world, idx, times, np.random.default_rng(2))
        lease_free = world.lease_amp[idx] < 0.01
        expected = designed_mean_availability(world)[idx]
        got = a.mean(axis=1)
        err = np.abs(got - expected)[lease_free]
        assert np.median(err) < 0.05


class TestAdaptiveCounts:
    def test_counts_consistent(self):
        rng = np.random.default_rng(0)
        a = np.full((10, 500), 0.5)
        p, t = adaptive_counts(a, rng, missing_fraction=0.0)
        assert ((p == 1) | (p == 0)).all()
        assert (t >= 1).all() and (t <= 15).all()
        assert (p[t == 15] <= 1).all()

    def test_ratio_unbiased(self):
        rng = np.random.default_rng(1)
        for a_true in (0.2, 0.5, 0.9):
            a = np.full((1, 20000), a_true)
            p, t = adaptive_counts(a, rng, missing_fraction=0.0)
            assert p.sum() / t.sum() == pytest.approx(a_true, abs=0.02)

    def test_missing_fraction(self):
        rng = np.random.default_rng(2)
        a = np.full((20, 1000), 0.7)
        p, t = adaptive_counts(a, rng, missing_fraction=0.1)
        assert (t == 0).mean() == pytest.approx(0.1, abs=0.02)
        assert (p[t == 0] == 0).all()

    def test_extreme_availability(self):
        rng = np.random.default_rng(3)
        p, t = adaptive_counts(np.full((1, 100), 0.999), rng, missing_fraction=0.0)
        assert (t == 1).all() and (p == 1).all()
        p, t = adaptive_counts(np.full((1, 100), 0.001), rng, missing_fraction=0.0)
        # P(success within 15 probes) = 1.5%, so nearly every round runs
        # to the cap and comes back empty.
        assert (t == 15).mean() > 0.9 and (p == 0).mean() > 0.9

    def test_matches_real_prober_distribution(self):
        """The geometric-cap approximation must match the address-level
        prober's per-round probe counts for a live block."""
        a_true = 0.4
        n_rounds = 2000
        behavior = merge_behaviors(
            make_always_on(100, p_response=a_true), make_dead(156)
        )
        block = Block24(1, behavior)
        schedule = RoundSchedule(n_rounds)
        oracle = block.realize(schedule.times(), np.random.default_rng(4))
        prober = AdaptiveProber(oracle.ever_active)
        log = prober.run(oracle, schedule, FixedAvailability(a_true))

        rng = np.random.default_rng(5)
        a = np.full((1, n_rounds), a_true)
        p_fast, t_fast = adaptive_counts(a, rng, missing_fraction=0.0)

        assert t_fast.mean() == pytest.approx(log.totals.mean(), rel=0.1)
        assert p_fast.mean() == pytest.approx(log.positives.mean(), rel=0.05)


class TestRestartBias:
    def test_no_restarts_no_change(self):
        a = np.full((3, 100), 0.5)
        out = apply_restart_bias(a, np.array([], dtype=int), np.random.default_rng(0))
        assert out is a

    def test_bias_decays(self):
        a = np.full((200, 100), 0.5)
        restarts = np.array([50])
        out = apply_restart_bias(a, restarts, np.random.default_rng(1))
        d0 = np.abs(out[:, 50] - 0.5).mean()
        d3 = np.abs(out[:, 53] - 0.5).mean()
        assert d0 > d3 > 0
        assert np.abs(out[:, 40] - 0.5).max() == 0

    def test_restart_near_end_clipped(self):
        a = np.full((2, 52), 0.5)
        out = apply_restart_bias(a, np.array([50]), np.random.default_rng(2))
        assert out.shape == a.shape

    def test_values_stay_in_unit_interval(self):
        a = np.full((50, 100), 0.99)
        out = apply_restart_bias(a, np.array([10, 40, 70]), np.random.default_rng(3))
        assert (out > 0).all() and (out < 1).all()


class TestMeasureWorld:
    def test_global_fractions_match_paper_shape(self, world):
        schedule = RoundSchedule.for_days(14, restart_interval_s=5.5 * 3600)
        m = measure_world(world, schedule)
        # Paper: 11% strict, 25% either.  Allow generous tolerance at this
        # small world size.
        assert 0.08 < m.fraction_strict() < 0.20
        assert 0.18 < m.fraction_diurnal() < 0.38
        assert m.fraction_diurnal() >= m.fraction_strict()

    def test_detection_agrees_with_design(self, world):
        schedule = RoundSchedule.for_days(14)
        m = measure_world(world, schedule)
        truth = world.is_diurnal
        assert m.strict_mask[truth].mean() > 0.9
        assert m.strict_mask[~truth].mean() < 0.05

    def test_phases_in_range(self, world):
        schedule = RoundSchedule.for_days(14)
        m = measure_world(world, schedule)
        assert (np.abs(m.phases) <= np.pi + 1e-9).all()

    def test_reproducible(self, world):
        schedule = RoundSchedule.for_days(7)
        a = measure_world(world, schedule, seed=5)
        b = measure_world(world, schedule, seed=5)
        assert np.array_equal(a.labels, b.labels)

    def test_chunking_invariant(self, world):
        """Chunk size must not change results (same per-chunk seeds only
        when chunk boundaries match, so compare whole-run determinism at
        two sizes against block-level statistics)."""
        schedule = RoundSchedule.for_days(7)
        big = measure_world(world, schedule, chunk_size=1500, seed=9)
        small = measure_world(world, schedule, chunk_size=500, seed=9)
        # Different chunking reshuffles randomness; statistics must agree.
        assert big.fraction_strict() == pytest.approx(
            small.fraction_strict(), abs=0.02
        )

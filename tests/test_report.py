"""Tests for the command-line report generator."""

import io

import pytest

from repro.report import build_parser, run_report


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.blocks == 8000
        assert args.days == 14.0
        assert not args.skip_validation

    def test_custom_args(self):
        args = build_parser().parse_args(
            ["--blocks", "500", "--days", "7", "--seed", "3",
             "--out", "x", "--skip-validation"]
        )
        assert args.blocks == 500
        assert args.days == 7.0
        assert args.skip_validation


class TestRunReport:
    @pytest.fixture(scope="class")
    def report_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("report")
        args = build_parser().parse_args(
            ["--blocks", "1200", "--days", "7", "--out", str(out),
             "--survey-blocks", "15"]
        )
        run_report(args, out=io.StringIO())
        return out

    def test_all_artifacts_written(self, report_dir):
        expected = {
            "tab3_countries", "tab4_regions", "fig16_gdp_scatter",
            "tab5_anova", "fig12_13_maps", "fig14_phase_longitude",
            "fig15_allocation", "fig10_freq_cdf", "fig17_linktype",
            "tab2_cross_site", "app_census", "fig04_05_availability",
            "tab1_validation", "outage_validation",
        }
        written = {p.stem for p in report_dir.glob("*.txt")}
        assert expected <= written

    def test_tables_not_empty(self, report_dir):
        for path in report_dir.glob("*.txt"):
            assert path.read_text().strip(), path.name

    def test_country_table_has_us(self, report_dir):
        assert "US" in (report_dir / "tab3_countries.txt").read_text()

    def test_skip_validation(self, tmp_path):
        args = build_parser().parse_args(
            ["--blocks", "600", "--days", "7", "--out", str(tmp_path),
             "--skip-validation"]
        )
        run_report(args, out=io.StringIO())
        assert not (tmp_path / "tab1_validation.txt").exists()
        assert (tmp_path / "tab3_countries.txt").exists()

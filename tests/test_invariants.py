"""Cross-module property-based tests on core invariants.

These guard the contracts the analyses silently rely on: estimator
outputs are probabilities, classification is deterministic and invariant
to irrelevant transformations, phase behaves like an angle, and the
vectorized paths agree with their scalar counterparts under arbitrary
inputs (not just the happy paths unit tests exercise).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classify import classify_series
from repro.core.estimator import AvailabilityEstimator, estimate_series
from repro.core.spectral import compute_spectrum, diurnal_bin
from repro.stats.anova import anova_lm
from repro.stats.descriptive import pearson

ROUND = 660.0
DAY = 86400.0


def daily(n_days, amp, phase, noise, seed):
    n = int(n_days * DAY / ROUND)
    t = np.arange(n) * ROUND
    rng = np.random.default_rng(seed)
    return 0.5 + amp * np.cos(2 * np.pi * t / DAY + phase) + rng.normal(0, noise, n)


@settings(max_examples=25, deadline=None)
@given(
    counts=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)),
        min_size=5,
        max_size=300,
    )
)
def test_vectorized_estimator_matches_scalar_everywhere(counts):
    totals = np.array([t for t, _ in counts])
    positives = np.array([min(p, t) for t, p in counts])
    batch = estimate_series(positives, totals)
    est = AvailabilityEstimator()
    for r in range(len(counts)):
        est.observe(int(positives[r]), int(totals[r]))
        assert batch.a_short[r] == pytest.approx(est.a_short, rel=1e-12)
        assert batch.a_operational[r] == pytest.approx(
            est.a_operational, rel=1e-12
        )


@settings(max_examples=20, deadline=None)
@given(
    amp=st.floats(min_value=0.05, max_value=0.4),
    phase=st.floats(min_value=-3.1, max_value=3.1),
    seed=st.integers(0, 10_000),
)
def test_classification_invariant_to_offset_and_scale(amp, phase, seed):
    """Adding a constant or scaling the series must not change the label:
    diurnalness is about *relative* spectral structure."""
    values = daily(14, amp, phase, amp / 15, seed)
    base = classify_series(values, ROUND)
    shifted = classify_series(values + 0.17, ROUND)
    scaled = classify_series(values * 2.5, ROUND)
    assert shifted.label is base.label
    assert scaled.label is base.label
    assert shifted.phase == pytest.approx(base.phase, abs=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    amp=st.floats(min_value=0.05, max_value=0.4),
    phase=st.floats(min_value=-3.1, max_value=3.1),
    shift_days=st.integers(min_value=1, max_value=5),
    seed=st.integers(0, 10_000),
)
def test_whole_day_shift_preserves_phase(amp, phase, shift_days, seed):
    """Dropping whole days from the front must not move the 1 c/d phase
    (this is why the paper trims to midnight)."""
    values = daily(21, amp, phase, 0.0, seed)
    per_day = int(round(DAY / ROUND))
    full = classify_series(values[: 14 * per_day], ROUND)
    shifted = classify_series(
        values[shift_days * per_day : (14 + shift_days) * per_day], ROUND
    )
    delta = np.angle(np.exp(1j * (full.phase - shifted.phase)))
    assert abs(delta) < 0.25


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=20, max_value=200),
    seed=st.integers(0, 10_000),
)
def test_anova_p_values_are_probabilities(n, seed):
    rng = np.random.default_rng(seed)
    y = rng.normal(0, 1, n)
    a = rng.normal(0, 1, n)
    b = rng.normal(0, 1, n)
    table = anova_lm(y, {"a": a, "b": b}, ["a", "b", "a:b"])
    for row in table.rows:
        assert 0.0 <= row.p_value <= 1.0
        assert row.sum_sq >= -1e-9


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=100),
    seed=st.integers(0, 10_000),
    scale=st.floats(min_value=0.01, max_value=100.0),
    offset=st.floats(min_value=-50.0, max_value=50.0),
)
def test_pearson_affine_invariance(n, seed, scale, offset):
    rng = np.random.default_rng(seed)
    x = rng.normal(0, 1, n)
    y = rng.normal(0, 1, n)
    base = pearson(x, y)
    transformed = pearson(x * scale + offset, y)
    assert transformed == pytest.approx(base, abs=1e-9)


@settings(max_examples=15, deadline=None)
@given(
    days=st.integers(min_value=2, max_value=35),
)
def test_diurnal_bin_matches_frequency(days):
    """Bin k = N_d must always correspond to ~1 cycle/day."""
    n = int(days * DAY / ROUND)
    k = diurnal_bin(n, ROUND)
    spectrum = compute_spectrum(np.zeros(n), ROUND)
    assert spectrum.cycles_per_day(k) == pytest.approx(1.0, abs=0.51 / days)

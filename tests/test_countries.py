"""Tests for the embedded country covariate table."""

import pytest

from repro.geo.regions import REGIONS
from repro.simulation.countries import COUNTRIES, country_by_code, total_blocks

# The paper's Table 3 (top-20 diurnal countries plus the US).
TABLE3 = {
    "AM": (1075, 0.630, 5900),
    "GE": (1395, 0.546, 6000),
    "BY": (1748, 0.512, 15900),
    "CN": (394244, 0.498, 9300),
    "PE": (4600, 0.401, 10900),
    "KZ": (3832, 0.400, 14100),
    "RS": (4429, 0.393, 10600),
    "AR": (20382, 0.339, 18400),
    "TH": (10986, 0.336, 10300),
    "SV": (1145, 0.311, 7600),
    "UA": (16575, 0.289, 7500),
    "CO": (9379, 0.261, 11000),
    "MY": (9747, 0.247, 17200),
    "PH": (5721, 0.239, 4500),
    "IN": (36470, 0.225, 3900),
    "MA": (2115, 0.185, 5400),
    "BR": (79095, 0.185, 12100),
    "VN": (8197, 0.183, 3600),
    "ID": (7617, 0.166, 5100),
    "RU": (53048, 0.159, 18000),
    "US": (672104, 0.002, 50700),
}


class TestTable3Fidelity:
    def test_all_table3_countries_present(self):
        for code in TABLE3:
            country_by_code(code)

    def test_block_counts_match_paper(self):
        for code, (blocks, _, _) in TABLE3.items():
            assert country_by_code(code).blocks == blocks, code

    def test_diurnal_fractions_match_paper(self):
        for code, (_, frac, _) in TABLE3.items():
            assert country_by_code(code).diurnal_frac == pytest.approx(frac), code

    def test_gdp_matches_paper(self):
        for code, (_, _, gdp) in TABLE3.items():
            assert country_by_code(code).gdp_pc == gdp, code


class TestTableConsistency:
    def test_every_country_has_region(self):
        for country in COUNTRIES:
            assert country.region in REGIONS

    def test_no_duplicate_codes(self):
        codes = [c.code for c in COUNTRIES]
        assert len(codes) == len(set(codes))

    def test_fractions_are_probabilities(self):
        for country in COUNTRIES:
            assert 0.0 <= country.diurnal_frac <= 1.0

    def test_positive_covariates(self):
        for country in COUNTRIES:
            assert country.blocks > 0
            assert country.gdp_pc > 0
            assert country.elec_kwh_pc > 0
            assert country.users_per_host > 0

    def test_allocation_chronology(self):
        for country in COUNTRIES:
            assert 1983 <= country.first_alloc_year <= 2013
            assert country.first_alloc_year <= country.mean_alloc_year <= 2013

    def test_coordinates_in_range(self):
        for country in COUNTRIES:
            assert -90 <= country.lat <= 90
            assert -180 <= country.lon <= 180

    def test_total_blocks_near_paper_geolocated_count(self):
        # The paper geolocates ~3.45M blocks over ~2.8M in the regional
        # table; our world total must be the same order of magnitude.
        assert 2_000_000 <= total_blocks() <= 4_000_000

    def test_unknown_code_raises(self):
        with pytest.raises(KeyError):
            country_by_code("XX")

    def test_gdp_diurnal_negative_relation(self):
        """The Figure 16 premise must hold in the table itself."""
        from repro.stats import pearson
        import numpy as np

        gdp = np.array([c.gdp_pc for c in COUNTRIES])
        frac = np.array([c.diurnal_frac for c in COUNTRIES])
        assert pearson(gdp, frac) < -0.4

    def test_region_table4_ordering_roughly_preserved(self):
        """Regions at the extremes of Table 4 must stay at the extremes."""
        import numpy as np

        def region_frac(region):
            members = [c for c in COUNTRIES if c.region == region]
            blocks = np.array([c.blocks for c in members], dtype=float)
            frac = np.array([c.diurnal_frac for c in members])
            return float((frac * blocks).sum() / blocks.sum())

        assert region_frac("Northern America") < 0.01
        assert region_frac("Western Europe") < 0.02
        assert region_frac("Central Asia") > 0.35
        assert region_frac("Eastern Asia") == pytest.approx(0.279, abs=0.05)
        assert region_frac("South America") == pytest.approx(0.208, abs=0.05)

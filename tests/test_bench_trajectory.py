"""Tests for the perf-trajectory recorder and CI regression gate
(benchmarks.trajectory)."""

import json

import pytest

from benchmarks.trajectory import (
    TrajectoryRecorder,
    check_against_baseline,
    latest_by_metric,
    load_records,
    main,
)


def write_baseline(path, metrics):
    path.write_text(json.dumps({"metrics": metrics}))
    return path


def write_trajectory(tmp_path, *entries):
    """A trajectory file with one record per (bench, metric, value, kind)."""
    path = tmp_path / "trajectory.json"
    recorder = TrajectoryRecorder(path)
    for bench, metric, value, kind in entries:
        recorder.record(bench, metric, value, kind=kind)
    recorder.flush()
    return path


class TestRecorder:
    def test_record_flush_roundtrip(self, tmp_path):
        path = tmp_path / "out" / "trajectory.json"  # parent is created
        recorder = TrajectoryRecorder(path)
        entry = recorder.record(
            "abl_x", "obs_per_s", 1234.5, unit="obs/s", kind="throughput"
        )
        assert entry["bench"] == "abl_x" and entry["value"] == 1234.5
        assert recorder.flush() == path
        [record] = load_records(path)
        assert set(record) == {
            "bench", "metric", "value", "unit", "kind",
            "git_rev", "recorded_at",
        }
        assert record["kind"] == "throughput" and record["unit"] == "obs/s"

    def test_file_is_cumulative_across_flushes(self, tmp_path):
        path = tmp_path / "trajectory.json"
        for value in (1.0, 2.0):
            recorder = TrajectoryRecorder(path)
            recorder.record("b", "m", value)
            recorder.flush()
        values = [r["value"] for r in load_records(path)]
        assert values == [1.0, 2.0]

    def test_empty_flush_writes_nothing(self, tmp_path):
        path = tmp_path / "trajectory.json"
        assert TrajectoryRecorder(path).flush() is None
        assert not path.exists()

    def test_unknown_kind_rejected(self, tmp_path):
        recorder = TrajectoryRecorder(tmp_path / "t.json")
        with pytest.raises(ValueError, match="kind"):
            recorder.record("b", "m", 1.0, kind="goodput")

    def test_load_records_tolerates_garbage(self, tmp_path):
        assert load_records(tmp_path / "absent.json") == []
        path = tmp_path / "t.json"
        path.write_text("not json{")
        assert load_records(path) == []

    def test_latest_by_metric_last_wins(self):
        records = [
            {"bench": "b", "metric": "m", "value": 1.0},
            {"bench": "b", "metric": "other", "value": 5.0},
            {"bench": "b", "metric": "m", "value": 9.0},
        ]
        latest = latest_by_metric(records)
        assert latest["b/m"]["value"] == 9.0
        assert latest["b/other"]["value"] == 5.0


class TestBaselineGate:
    def test_within_budget_passes(self, tmp_path):
        trajectory = write_trajectory(
            tmp_path,
            ("b", "rate", 90.0, "throughput"),
            ("b", "p99", 1.1, "latency"),
        )
        baseline = write_baseline(tmp_path / "base.json", {
            "b/rate": {"value": 100.0, "kind": "throughput"},
            "b/p99": {"value": 1.0, "kind": "latency"},
        })
        failures, warnings = check_against_baseline(trajectory, baseline)
        assert failures == [] and warnings == []

    def test_throughput_regression_fails(self, tmp_path):
        trajectory = write_trajectory(
            tmp_path, ("b", "rate", 70.0, "throughput")
        )
        baseline = write_baseline(tmp_path / "base.json", {
            "b/rate": {"value": 100.0, "kind": "throughput"},
        })
        failures, _ = check_against_baseline(trajectory, baseline)
        assert len(failures) == 1 and "b/rate" in failures[0]

    def test_latency_regression_fails(self, tmp_path):
        trajectory = write_trajectory(tmp_path, ("b", "p99", 2.0, "latency"))
        baseline = write_baseline(tmp_path / "base.json", {
            "b/p99": {"value": 1.0, "kind": "latency"},
        })
        failures, _ = check_against_baseline(trajectory, baseline)
        assert len(failures) == 1 and "latency" in failures[0]

    def test_latest_record_is_what_counts(self, tmp_path):
        # An old regression followed by a recovery must pass.
        trajectory = write_trajectory(
            tmp_path,
            ("b", "rate", 10.0, "throughput"),
            ("b", "rate", 120.0, "throughput"),
        )
        baseline = write_baseline(tmp_path / "base.json", {
            "b/rate": {"value": 100.0, "kind": "throughput"},
        })
        failures, _ = check_against_baseline(trajectory, baseline)
        assert failures == []

    def test_missing_record_warns_not_fails(self, tmp_path):
        trajectory = write_trajectory(
            tmp_path, ("b", "rate", 100.0, "throughput")
        )
        baseline = write_baseline(tmp_path / "base.json", {
            "b/rate": {"value": 100.0, "kind": "throughput"},
            "b/not_run": {"value": 1.0, "kind": "latency"},
        })
        failures, warnings = check_against_baseline(trajectory, baseline)
        assert failures == []
        assert len(warnings) == 1 and "b/not_run" in warnings[0]

    def test_ratio_kind_is_informational(self, tmp_path):
        trajectory = write_trajectory(tmp_path, ("b", "speedup", 0.1, "ratio"))
        baseline = write_baseline(tmp_path / "base.json", {
            "b/speedup": {"value": 10.0, "kind": "ratio"},
        })
        failures, warnings = check_against_baseline(trajectory, baseline)
        assert failures == [] and warnings  # never gates, always noted

    def test_missing_baseline_file_fails(self, tmp_path):
        trajectory = write_trajectory(
            tmp_path, ("b", "rate", 100.0, "throughput")
        )
        failures, _ = check_against_baseline(
            trajectory, tmp_path / "absent.json"
        )
        assert failures and "baseline" in failures[0]


class TestCli:
    def test_check_exit_codes(self, tmp_path, capsys):
        trajectory = write_trajectory(
            tmp_path, ("b", "rate", 70.0, "throughput")
        )
        baseline = write_baseline(tmp_path / "base.json", {
            "b/rate": {"value": 100.0, "kind": "throughput"},
        })
        argv = [
            "--check",
            "--trajectory", str(trajectory),
            "--baseline", str(baseline),
        ]
        assert main(argv) == 1
        assert "FAIL" in capsys.readouterr().err

        write_baseline(tmp_path / "base.json", {
            "b/rate": {"value": 70.0, "kind": "throughput"},
        })
        assert main(argv) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_listing_without_check_never_fails(self, tmp_path, capsys):
        trajectory = write_trajectory(tmp_path, ("b", "p99", 99.0, "latency"))
        assert main(["--trajectory", str(trajectory)]) == 0
        out = capsys.readouterr().out
        assert "b/p99" in out and "1 records" in out

    def test_committed_baseline_matches_schema(self):
        from benchmarks.trajectory import BASELINE_PATH

        baseline = json.loads(BASELINE_PATH.read_text())
        for key, expect in baseline["metrics"].items():
            assert "/" in key  # bench/metric addressing
            assert expect["kind"] in ("throughput", "latency", "ratio")
            assert float(expect["value"]) > 0

"""Tests for dataset persistence and the registry."""

import numpy as np
import pytest

from repro.datasets import (
    dataset,
    ensure_measurement,
    list_datasets,
    load_measurement,
    load_world_arrays,
    save_measurement,
    save_world_arrays,
    write_csv,
)
from repro.probing import RoundSchedule
from repro.simulation import WorldConfig, generate_world, measure_world


class TestRegistry:
    def test_paper_datasets_present(self):
        assert set(list_datasets()) == {"S51W", "A12W", "A12J", "A12C", "A16ALL"}

    def test_a16all_weekly_restarts(self):
        schedule = dataset("A16ALL").schedule()
        assert schedule.restart_interval_s == 7 * 86400.0
        assert len(schedule.restart_rounds()) == 4  # 35 days / 1 week

    def test_a12w_schedule(self):
        spec = dataset("A12W")
        schedule = spec.schedule()
        assert schedule.n_days == pytest.approx(35, abs=0.01)
        assert spec.kind == "adaptive"

    def test_vantages_share_world_seed(self):
        assert dataset("A12W").seed == dataset("A12J").seed

    def test_survey_has_no_world_config(self):
        with pytest.raises(ValueError):
            dataset("S51W").world_config()

    def test_adaptive_world_config(self):
        cfg = dataset("A12W").world_config(n_blocks=100)
        assert cfg.n_blocks == 100

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            dataset("B99Q")


class TestMeasurementRoundTrip:
    def test_save_load(self, tmp_path):
        world = generate_world(WorldConfig(n_blocks=300, seed=5))
        schedule = RoundSchedule.for_days(3, restart_interval_s=5.5 * 3600)
        m = measure_world(world, schedule)
        path = save_measurement(tmp_path / "m.npz", m)
        loaded = load_measurement(path)
        assert np.array_equal(loaded.labels, m.labels)
        assert np.allclose(loaded.phases, m.phases)
        assert loaded.schedule.n_rounds == schedule.n_rounds
        assert loaded.schedule.restart_interval_s == schedule.restart_interval_s
        assert loaded.fraction_strict() == m.fraction_strict()


class TestWorldRoundTrip:
    def test_save_load_arrays(self, tmp_path):
        world = generate_world(WorldConfig(n_blocks=200, seed=6))
        path = save_world_arrays(tmp_path / "w.npz", world)
        data = load_world_arrays(path)
        assert np.array_equal(data["is_diurnal"], world.is_diurnal)
        assert np.allclose(data["lon"], world.lon)
        assert data["config"].tolist() == [200, 6]

    def test_regenerate_from_config(self, tmp_path):
        """The saved config is enough to rebuild the identical world."""
        world = generate_world(WorldConfig(n_blocks=200, seed=6))
        path = save_world_arrays(tmp_path / "w.npz", world)
        data = load_world_arrays(path)
        n_blocks, seed = data["config"].tolist()
        rebuilt = generate_world(WorldConfig(n_blocks=n_blocks, seed=seed))
        assert np.array_equal(rebuilt.is_diurnal, data["is_diurnal"])


class TestEnsureMeasurement:
    def test_computes_then_caches(self, tmp_path):
        first = ensure_measurement("A16ALL", tmp_path, n_blocks=150)
        cached_files = list(tmp_path.glob("A16ALL-150.npz"))
        assert len(cached_files) == 1
        mtime = cached_files[0].stat().st_mtime_ns
        second = ensure_measurement("A16ALL", tmp_path, n_blocks=150)
        assert cached_files[0].stat().st_mtime_ns == mtime  # not recomputed
        assert np.array_equal(first.labels, second.labels)

    def test_survey_dataset_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ensure_measurement("S51W", tmp_path, n_blocks=10)


class TestCsv:
    def test_write_csv(self, tmp_path):
        path = write_csv(
            tmp_path / "t.csv", ["code", "frac"], [["US", 0.002], ["CN", 0.498]]
        )
        text = path.read_text().strip().splitlines()
        assert text[0] == "code,frac"
        assert text[1] == "US,0.002"
        assert len(text) == 3


class TestObservationStreamReplay:
    """iter_observation_stream replays a checkpoint round by round."""

    @pytest.fixture(scope="class")
    def checkpoint(self, tmp_path_factory):
        from repro.core import BatchConfig, BatchRunner
        from repro.simulation.scenarios import survey_population

        path = tmp_path_factory.mktemp("ckpt") / "batch.npz"
        schedule = RoundSchedule.for_days(3)
        runner = BatchRunner(
            BatchConfig(checkpoint_path=path, checkpoint_every=1)
        )
        batch = runner.run(survey_population(5, seed=0), schedule, seed=0)
        return path, schedule, batch

    def test_yields_every_measured_round(self, checkpoint):
        from repro.datasets import iter_observation_stream

        path, schedule, batch = checkpoint
        measured = [m for m in batch.measurements if not m.skipped]
        rows = list(iter_observation_stream(path))
        assert len(rows) == len(measured) * schedule.n_rounds
        block_ids = {block_id for block_id, _, _ in rows}
        assert block_ids == {m.block_id for m in measured}

    def test_values_match_measurement(self, checkpoint):
        from repro.datasets import iter_observation_stream

        path, schedule, batch = checkpoint
        measured = [m for m in batch.measurements if not m.skipped]
        first = measured[0]
        rows = [
            (t, v)
            for block_id, t, v in iter_observation_stream(path)
            if block_id == first.block_id
        ]
        times, values = zip(*rows)
        np.testing.assert_array_equal(times, schedule.times())
        np.testing.assert_array_equal(values, first.a_short)

    def test_interleave_orders_by_round(self, checkpoint):
        from repro.datasets import iter_observation_stream

        path, schedule, batch = checkpoint
        rows = list(iter_observation_stream(path, interleave=True))
        times = [t for _, t, _ in rows]
        # Non-decreasing times: every block's round r before any r+1.
        assert all(a <= b for a, b in zip(times, times[1:]))
        n_blocks = len({b for b, _, _ in rows})
        assert times[:n_blocks].count(times[0]) == n_blocks

    def test_include_skipped(self, checkpoint):
        from repro.datasets import iter_observation_stream

        path, schedule, batch = checkpoint
        n_all = sum(1 for _ in iter_observation_stream(path, include_skipped=True))
        n_measured = sum(1 for _ in iter_observation_stream(path))
        n_skipped = sum(1 for m in batch.measurements if m.skipped)
        assert n_all - n_measured == n_skipped * schedule.n_rounds

    def test_series_selection(self, checkpoint):
        from repro.datasets import iter_observation_stream

        path, schedule, batch = checkpoint
        measured = [m for m in batch.measurements if not m.skipped]
        first = measured[0]
        values = [
            v
            for block_id, _, v in iter_observation_stream(
                path, series="true_availability"
            )
            if block_id == first.block_id
        ]
        np.testing.assert_array_equal(values, first.true_availability)

    def test_feeds_streaming_engine(self, checkpoint):
        from repro.core.classify import reports_equal
        from repro.datasets import iter_observation_stream
        from repro.stream import (
            ListSink,
            StreamConfig,
            StreamEngine,
            WindowClosed,
            batch_window_report,
        )

        path, schedule, batch = checkpoint
        config = StreamConfig.for_days(
            1.0, start_s=schedule.start_s, label_dwell=1
        )
        sink = ListSink()
        engine = StreamEngine(config, sinks=[sink])
        n = engine.replay(iter_observation_stream(path, interleave=True))
        engine.flush()
        assert n > 0
        measured = {
            m.block_id: m for m in batch.measurements if not m.skipped
        }
        closes = sink.of_type(WindowClosed)
        assert closes
        for event in closes:
            times, values = measured[event.block_id].observation_stream()
            want, want_q = batch_window_report(
                times, values, event.window_start_round, event.n_rounds, config
            )
            assert reports_equal(event.report, want)
            assert event.quality == want_q

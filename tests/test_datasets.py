"""Tests for dataset persistence and the registry."""

import numpy as np
import pytest

from repro.datasets import (
    dataset,
    ensure_measurement,
    list_datasets,
    load_measurement,
    load_world_arrays,
    save_measurement,
    save_world_arrays,
    write_csv,
)
from repro.probing import RoundSchedule
from repro.simulation import WorldConfig, generate_world, measure_world


class TestRegistry:
    def test_paper_datasets_present(self):
        assert set(list_datasets()) == {"S51W", "A12W", "A12J", "A12C", "A16ALL"}

    def test_a16all_weekly_restarts(self):
        schedule = dataset("A16ALL").schedule()
        assert schedule.restart_interval_s == 7 * 86400.0
        assert len(schedule.restart_rounds()) == 4  # 35 days / 1 week

    def test_a12w_schedule(self):
        spec = dataset("A12W")
        schedule = spec.schedule()
        assert schedule.n_days == pytest.approx(35, abs=0.01)
        assert spec.kind == "adaptive"

    def test_vantages_share_world_seed(self):
        assert dataset("A12W").seed == dataset("A12J").seed

    def test_survey_has_no_world_config(self):
        with pytest.raises(ValueError):
            dataset("S51W").world_config()

    def test_adaptive_world_config(self):
        cfg = dataset("A12W").world_config(n_blocks=100)
        assert cfg.n_blocks == 100

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            dataset("B99Q")


class TestMeasurementRoundTrip:
    def test_save_load(self, tmp_path):
        world = generate_world(WorldConfig(n_blocks=300, seed=5))
        schedule = RoundSchedule.for_days(3, restart_interval_s=5.5 * 3600)
        m = measure_world(world, schedule)
        path = save_measurement(tmp_path / "m.npz", m)
        loaded = load_measurement(path)
        assert np.array_equal(loaded.labels, m.labels)
        assert np.allclose(loaded.phases, m.phases)
        assert loaded.schedule.n_rounds == schedule.n_rounds
        assert loaded.schedule.restart_interval_s == schedule.restart_interval_s
        assert loaded.fraction_strict() == m.fraction_strict()


class TestWorldRoundTrip:
    def test_save_load_arrays(self, tmp_path):
        world = generate_world(WorldConfig(n_blocks=200, seed=6))
        path = save_world_arrays(tmp_path / "w.npz", world)
        data = load_world_arrays(path)
        assert np.array_equal(data["is_diurnal"], world.is_diurnal)
        assert np.allclose(data["lon"], world.lon)
        assert data["config"].tolist() == [200, 6]

    def test_regenerate_from_config(self, tmp_path):
        """The saved config is enough to rebuild the identical world."""
        world = generate_world(WorldConfig(n_blocks=200, seed=6))
        path = save_world_arrays(tmp_path / "w.npz", world)
        data = load_world_arrays(path)
        n_blocks, seed = data["config"].tolist()
        rebuilt = generate_world(WorldConfig(n_blocks=n_blocks, seed=seed))
        assert np.array_equal(rebuilt.is_diurnal, data["is_diurnal"])


class TestEnsureMeasurement:
    def test_computes_then_caches(self, tmp_path):
        first = ensure_measurement("A16ALL", tmp_path, n_blocks=150)
        cached_files = list(tmp_path.glob("A16ALL-150.npz"))
        assert len(cached_files) == 1
        mtime = cached_files[0].stat().st_mtime_ns
        second = ensure_measurement("A16ALL", tmp_path, n_blocks=150)
        assert cached_files[0].stat().st_mtime_ns == mtime  # not recomputed
        assert np.array_equal(first.labels, second.labels)

    def test_survey_dataset_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ensure_measurement("S51W", tmp_path, n_blocks=10)


class TestCsv:
    def test_write_csv(self, tmp_path):
        path = write_csv(
            tmp_path / "t.csv", ["code", "frac"], [["US", 0.002], ["CN", 0.498]]
        )
        text = path.read_text().strip().splitlines()
        assert text[0] == "code,frac"
        assert text[1] == "US,0.002"
        assert len(text) == 3

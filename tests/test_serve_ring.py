"""Property tests for the consistent-hash ring (repro.serve.ring).

The load-bearing properties, proven over hypothesis-generated
memberships and key sets:

* **determinism** — placement is a pure function of (seed, replicas,
  membership): insertion order never matters, and two independently
  built rings agree on every key.
* **structural minimal movement** — removing a node yields *exactly*
  the ring that never contained it (point-set equality, not just
  statistics), so the only keys that move on a membership change are
  the ones whose arcs appeared or vanished.
* **movement direction** — every key that moves when a node joins
  moves *onto* the new node; every key that moves when a node leaves
  moves *off* the leaving node.  Nothing shuffles between survivors.
* **movement volume** — the moved fraction on a join is close to the
  ideal 1/(n+1) share (the classic ≤ K/N consistent-hashing bound,
  with vnode-count slack).
* **balance** — with enough virtual points, per-node load over many
  keys stays within a constant factor of even.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.ring import HashRing

# Node identities: small ints and short strings, mixed.
_nodes = st.sets(
    st.one_of(
        st.integers(min_value=-(2**40), max_value=2**40),
        st.text(min_size=1, max_size=8),
    ),
    min_size=1,
    max_size=12,
)
_keys = st.lists(
    st.integers(min_value=0, max_value=2**62), min_size=1, max_size=64
)
_seeds = st.integers(min_value=-(2**31), max_value=2**31 - 1)


def ring_points(ring: HashRing) -> list[tuple[int, object]]:
    return list(zip(ring._points, ring._owners))


@settings(max_examples=50, deadline=None)
@given(nodes=_nodes, keys=_keys, seed=_seeds)
def test_lookup_is_deterministic_and_order_free(nodes, keys, seed):
    ordered = sorted(nodes, key=repr)
    a = HashRing(ordered, replicas=16, seed=seed)
    b = HashRing(reversed(ordered), replicas=16, seed=seed)
    for key in keys:
        assert a.lookup(key) == b.lookup(key)
        assert a.lookup(key) in nodes
    assert ring_points(a) == ring_points(b)


@settings(max_examples=50, deadline=None)
@given(nodes=_nodes, seed=_seeds)
def test_remove_equals_ring_that_never_had_the_node(nodes, seed):
    """The structural form of minimal movement.

    A node's points depend only on (seed, node), so removing it must
    reproduce, point for point, the ring built without it — there is
    no state left behind that could move a surviving key.
    """
    victim = sorted(nodes, key=repr)[0]
    with_victim = HashRing(nodes, replicas=16, seed=seed)
    with_victim.remove(victim)
    without_victim = HashRing(nodes - {victim}, replicas=16, seed=seed)
    assert ring_points(with_victim) == ring_points(without_victim)
    assert with_victim.nodes == without_victim.nodes


@settings(max_examples=50, deadline=None)
@given(nodes=_nodes, keys=_keys, seed=_seeds)
def test_join_moves_keys_only_onto_the_new_node(nodes, keys, seed):
    newcomer = "newcomer-node"
    nodes = nodes - {newcomer}
    before = HashRing(nodes, replicas=16, seed=seed)
    old = before.assignments(keys)
    before.add(newcomer)
    new = before.assignments(keys)
    for key in keys:
        if old[key] != new[key]:
            assert new[key] == newcomer


@settings(max_examples=50, deadline=None)
@given(nodes=_nodes, keys=_keys, seed=_seeds)
def test_leave_moves_keys_only_off_the_leaving_node(nodes, keys, seed):
    if len(nodes) < 2:
        return
    victim = sorted(nodes, key=repr)[0]
    ring = HashRing(nodes, replicas=16, seed=seed)
    old = ring.assignments(keys)
    ring.remove(victim)
    new = ring.assignments(keys)
    for key in keys:
        if old[key] == victim:
            assert new[key] != victim
        else:
            assert new[key] == old[key]


def test_join_movement_volume_is_near_the_ideal_share():
    """≤ K/N with slack: a joiner takes about 1/(n+1) of the keys."""
    keys = range(20_000)
    for n in (2, 4, 8):
        ring = HashRing(range(n), replicas=128, seed=7)
        old = ring.assignments(keys)
        ring.add(n)  # the joiner
        moved = sum(1 for k in keys if ring.lookup(k) != old[k])
        ideal = len(old) / (n + 1)
        # Every move lands on the joiner (proven above); the volume
        # should be the joiner's fair share, within vnode noise.
        assert moved <= 2.0 * ideal, (n, moved, ideal)
        assert moved >= 0.4 * ideal, (n, moved, ideal)


def test_balance_within_constant_factor_of_even():
    ring = HashRing(range(8), replicas=256, seed=3)
    load = ring.load(range(50_000))
    ideal = 50_000 / 8
    assert min(load.values()) > 0.5 * ideal, load
    assert max(load.values()) < 1.6 * ideal, load


def test_seed_changes_placement():
    keys = range(1_000)
    a = HashRing(range(4), replicas=64, seed=0).assignments(keys)
    b = HashRing(range(4), replicas=64, seed=1).assignments(keys)
    assert any(a[k] != b[k] for k in keys)


def test_lookup_chain_prefers_the_owner_and_stays_distinct():
    ring = HashRing(range(5), replicas=32, seed=0)
    for key in range(200):
        chain = ring.lookup_chain(key, 3)
        assert chain[0] == ring.lookup(key)
        assert len(chain) == len(set(chain)) == 3
    assert len(ring.lookup_chain(0, 99)) == 5  # capped at membership


def test_membership_and_validation_errors():
    ring = HashRing(["a"], replicas=4)
    assert "a" in ring and len(ring) == 1
    with pytest.raises(ValueError):
        ring.add("a")
    with pytest.raises(KeyError):
        ring.remove("b")
    with pytest.raises(TypeError):
        ring.add(True)  # bools are not identities
    with pytest.raises(TypeError):
        ring.lookup(3.14)
    with pytest.raises(ValueError):
        HashRing(replicas=0)
    empty = HashRing()
    with pytest.raises(LookupError):
        empty.lookup(1)
    with pytest.raises(LookupError):
        empty.lookup_chain(1, 1)
    with pytest.raises(ValueError):
        ring.lookup_chain(1, 0)


def test_int_and_str_spaces_are_disjoint():
    ring = HashRing([1, "1"], replicas=32, seed=0)
    assert len(ring) == 2
    load = ring.load(range(2_000))
    assert load[1] > 0 and load["1"] > 0


# -- replica chains (lookup_chain) --------------------------------------------
#
# The replicated service stands on three chain properties: R *distinct*
# physical shards per key (virtual points of one shard never double-
# count), placement determinism under the seed, and prefix stability
# across membership changes (a join/leave never reshuffles the
# survivors' relative order within a chain).


@settings(max_examples=50, deadline=None)
@given(nodes=_nodes, keys=_keys, seed=_seeds, n=st.integers(1, 6))
def test_chain_nodes_are_distinct_physical_members(nodes, keys, seed, n):
    ring = HashRing(nodes, replicas=16, seed=seed)
    for key in keys:
        chain = ring.lookup_chain(key, n)
        assert len(chain) == len(set(chain)), chain
        assert len(chain) == min(n, len(nodes))
        assert all(node in nodes for node in chain)
        assert chain[0] == ring.lookup(key)


@settings(max_examples=50, deadline=None)
@given(nodes=_nodes, keys=_keys, seed=_seeds, n=st.integers(1, 6))
def test_chain_is_deterministic_under_seed(nodes, keys, seed, n):
    ordered = sorted(nodes, key=repr)
    a = HashRing(ordered, replicas=16, seed=seed)
    b = HashRing(reversed(ordered), replicas=16, seed=seed)
    for key in keys:
        assert a.lookup_chain(key, n) == b.lookup_chain(key, n)


@settings(max_examples=50, deadline=None)
@given(nodes=_nodes, keys=_keys, seed=_seeds, n=st.integers(1, 6))
def test_chain_prefix_is_stable_across_leaves(nodes, keys, seed, n):
    """Removing a member deletes its chain entry and appends successors;
    the surviving prefix (and the survivors' relative order) is stable —
    the chain filtered to survivors is a prefix of the new chain."""
    if len(nodes) < 2:
        return
    victim = sorted(nodes, key=repr)[0]
    ring = HashRing(nodes, replicas=16, seed=seed)
    before = {key: ring.lookup_chain(key, n) for key in keys}
    ring.remove(victim)
    for key in keys:
        after = ring.lookup_chain(key, n)
        survivors = [node for node in before[key] if node != victim]
        assert after[: len(survivors)] == survivors, (
            before[key], after, victim
        )


@settings(max_examples=50, deadline=None)
@given(nodes=_nodes, keys=_keys, seed=_seeds, n=st.integers(1, 6))
def test_chain_join_only_inserts_the_newcomer(nodes, keys, seed, n):
    """A join may insert the newcomer into a chain (displacing the
    tail) but never reorders the incumbents around it."""
    newcomer = "newcomer-node"
    nodes = nodes - {newcomer}
    ring = HashRing(nodes, replicas=16, seed=seed)
    before = {key: ring.lookup_chain(key, n) for key in keys}
    ring.add(newcomer)
    for key in keys:
        after = ring.lookup_chain(key, n)
        without_newcomer = [node for node in after if node != newcomer]
        assert without_newcomer == before[key][: len(without_newcomer)], (
            before[key], after
        )

"""Tests for descriptive statistics helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.descriptive import (
    binned_quartiles,
    density_grid,
    pearson,
    unroll_phase,
)


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(50.0)
        assert pearson(x, 2 * x + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(50.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        assert abs(pearson(rng.random(5000), rng.random(5000))) < 0.05

    def test_nan_pairs_dropped(self):
        x = np.array([1.0, 2.0, np.nan, 4.0])
        y = np.array([2.0, 4.0, 100.0, 8.0])
        assert pearson(x, y) == pytest.approx(1.0)

    def test_degenerate_returns_zero(self):
        assert pearson(np.ones(10), np.arange(10.0)) == 0.0
        assert pearson(np.array([1.0]), np.array([2.0])) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pearson(np.zeros(3), np.zeros(4))

    def test_matches_numpy_corrcoef(self):
        rng = np.random.default_rng(1)
        x, y = rng.random(100), rng.random(100)
        assert pearson(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])


class TestBinnedQuartiles:
    def test_medians_track_identity(self):
        rng = np.random.default_rng(2)
        x = rng.random(20000)
        y = x + rng.normal(0, 0.01, 20000)
        bq = binned_quartiles(x, y, bin_width=0.1)
        assert len(bq.median) == 10
        valid = ~np.isnan(bq.median)
        assert np.allclose(bq.median[valid], bq.bin_centers[valid], atol=0.02)

    def test_empty_bins_are_nan(self):
        x = np.full(100, 0.05)
        y = np.linspace(0, 1, 100)
        bq = binned_quartiles(x, y, bin_width=0.1)
        assert bq.counts[0] == 100
        assert np.isnan(bq.median[5])

    def test_quartile_ordering(self):
        rng = np.random.default_rng(3)
        bq = binned_quartiles(rng.random(1000), rng.random(1000))
        valid = bq.counts > 0
        assert (bq.q1[valid] <= bq.median[valid]).all()
        assert (bq.median[valid] <= bq.q3[valid]).all()

    def test_values_at_hi_edge_kept(self):
        bq = binned_quartiles(np.array([1.0, 1.0, 1.0]), np.array([1.0, 2.0, 3.0]))
        assert bq.counts[-1] == 3
        assert bq.median[-1] == 2.0


class TestDensityGrid:
    def test_normalized_sums_to_one(self):
        rng = np.random.default_rng(4)
        grid = density_grid(rng.random(1000), rng.random(1000))
        assert grid.sum() == pytest.approx(1.0)

    def test_unnormalized_counts(self):
        grid = density_grid(
            np.array([0.5]), np.array([0.5]), n_bins=10, normalize=False
        )
        assert grid.sum() == 1.0

    def test_diagonal_concentration(self):
        x = np.linspace(0.01, 0.99, 500)
        grid = density_grid(x, x, n_bins=10)
        assert np.trace(grid) == pytest.approx(1.0)


class TestUnrollPhase:
    def test_identity_when_close(self):
        phase = np.array([0.1, -0.2])
        ref = np.array([0.0, 0.0])
        assert np.allclose(unroll_phase(phase, ref), phase)

    def test_wraps_into_reference_window(self):
        # Phase -3.0 near reference +3.0 should unroll to ~3.28, not -3.0.
        out = unroll_phase(np.array([-3.0]), np.array([3.0]))
        assert out[0] == pytest.approx(2 * np.pi - 3.0)

    def test_result_within_pi_of_reference(self):
        rng = np.random.default_rng(5)
        phase = rng.uniform(-np.pi, np.pi, 1000)
        ref = rng.uniform(-np.pi, np.pi, 1000)
        out = unroll_phase(phase, ref)
        assert (np.abs(out - ref) <= np.pi + 1e-9).all()


@settings(max_examples=50, deadline=None)
@given(
    phase=st.floats(min_value=-np.pi, max_value=np.pi),
    ref=st.floats(min_value=-np.pi, max_value=np.pi),
)
def test_unroll_preserves_angle_mod_2pi(phase, ref):
    out = float(unroll_phase(np.array([phase]), np.array([ref]))[0])
    assert abs(np.angle(np.exp(1j * (out - phase)))) < 1e-9

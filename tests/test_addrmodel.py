"""Unit and property tests for address behaviour models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.addrmodel import (
    DAY_SECONDS,
    AddressKind,
    make_always_on,
    make_dead,
    make_diurnal,
    make_dynamic_pool,
    merge_behaviors,
)


def times_for_days(days, round_s=660.0):
    n = int(days * DAY_SECONDS / round_s)
    return np.arange(n) * round_s


class TestMakeHelpers:
    def test_dead_never_responds(self):
        b = make_dead(256)
        resp = b.response_matrix(times_for_days(1), np.random.default_rng(0))
        assert not resp.any()

    def test_dead_not_ever_active(self):
        assert len(make_dead(10).ever_active()) == 0

    def test_always_on_ever_active(self):
        assert len(make_always_on(42).ever_active()) == 42

    def test_always_on_response_rate_matches_p(self):
        b = make_always_on(100, p_response=0.7)
        resp = b.response_matrix(times_for_days(2), np.random.default_rng(0))
        assert resp.mean() == pytest.approx(0.7, abs=0.02)

    def test_perfect_responder_always_answers(self):
        b = make_always_on(10, p_response=1.0)
        resp = b.response_matrix(times_for_days(1), np.random.default_rng(0))
        assert resp.all()

    def test_merge_respects_block_size(self):
        with pytest.raises(ValueError):
            merge_behaviors(make_always_on(200), make_always_on(200))

    def test_merge_concatenates_kinds(self):
        merged = merge_behaviors(make_always_on(50), make_diurnal(100, 0.0), make_dead(106))
        assert merged.n_addresses == 256
        assert (merged.kinds == AddressKind.ALWAYS_ON).sum() == 50
        assert (merged.kinds == AddressKind.DIURNAL).sum() == 100
        assert (merged.kinds == AddressKind.DEAD).sum() == 106

    def test_mismatched_array_length_rejected(self):
        b = make_always_on(10)
        b_bad = dict(
            kinds=b.kinds,
            p_response=b.p_response[:5],
            phase_s=b.phase_s,
            uptime_s=b.uptime_s,
            sigma_start_s=b.sigma_start_s,
            sigma_duration_s=b.sigma_duration_s,
            mean_up_s=b.mean_up_s,
            mean_down_s=b.mean_down_s,
        )
        from repro.net.addrmodel import BlockBehavior

        with pytest.raises(ValueError):
            BlockBehavior(**b_bad)


class TestDiurnal:
    def test_up_during_window_only(self):
        b = make_diurnal(1, phase_s=6 * 3600, uptime_s=8 * 3600, p_response=1.0)
        times = times_for_days(1)
        up = b.up_matrix(times, np.random.default_rng(0))[0]
        tod = times % DAY_SECONDS
        expected = (tod >= 6 * 3600) & (tod < 14 * 3600)
        assert (up == expected).all()

    def test_uptime_fraction_eight_hours(self):
        b = make_diurnal(20, phase_s=0.0, uptime_s=8 * 3600, p_response=1.0)
        up = b.up_matrix(times_for_days(7), np.random.default_rng(0))
        assert up.mean() == pytest.approx(8 / 24, abs=0.01)

    def test_window_wraps_midnight(self):
        b = make_diurnal(1, phase_s=22 * 3600, uptime_s=4 * 3600, p_response=1.0)
        times = times_for_days(1)
        up = b.up_matrix(times, np.random.default_rng(0))[0]
        tod = times % DAY_SECONDS
        expected = (tod >= 22 * 3600) | (tod < 2 * 3600)
        assert (up == expected).all()

    def test_duration_noise_changes_daily_uptime(self):
        b = make_diurnal(1, phase_s=0.0, uptime_s=8 * 3600, sigma_duration_s=2 * 3600)
        times = times_for_days(10)
        up = b.up_matrix(times, np.random.default_rng(1))[0]
        day = (times // DAY_SECONDS).astype(int)
        daily = np.array([up[day == d].mean() for d in range(10)])
        assert daily.std() > 0.01

    def test_zero_uptime_never_up(self):
        b = make_diurnal(5, phase_s=0.0, uptime_s=0.0)
        up = b.up_matrix(times_for_days(2), np.random.default_rng(0))
        assert not up.any()

    def test_per_address_phase_array(self):
        phases = np.array([0.0, 12 * 3600.0])
        b = make_diurnal(2, phase_s=phases, uptime_s=6 * 3600, p_response=1.0)
        times = times_for_days(1)
        up = b.up_matrix(times, np.random.default_rng(0))
        tod = times % DAY_SECONDS
        assert (up[0] == (tod < 6 * 3600)).all()
        assert (up[1] == ((tod >= 12 * 3600) & (tod < 18 * 3600))).all()


class TestDynamicPool:
    def test_long_run_occupancy_matches_stationary(self):
        b = make_dynamic_pool(60, mean_up_s=4 * 3600, mean_down_s=12 * 3600, p_response=1.0)
        up = b.up_matrix(times_for_days(28), np.random.default_rng(3))
        assert up.mean() == pytest.approx(0.25, abs=0.04)

    def test_alternates_states(self):
        b = make_dynamic_pool(1, mean_up_s=3600, mean_down_s=3600, p_response=1.0)
        up = b.up_matrix(times_for_days(14), np.random.default_rng(4))[0]
        transitions = np.abs(np.diff(up.astype(int))).sum()
        assert transitions > 10


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=64),
    p=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_response_rate_never_exceeds_up_rate(n, p, seed):
    """Responses require the address to be up: response => up, always."""
    b = make_diurnal(n, phase_s=3 * 3600, uptime_s=9 * 3600, p_response=p,
                     sigma_start_s=1800.0)
    times = times_for_days(2)
    rng = np.random.default_rng(seed)
    up = b.up_matrix(times, np.random.default_rng(seed))
    resp = b.response_matrix(times, np.random.default_rng(seed))
    # Same seed gives the same up matrix; responses must be a subset.
    assert not (resp & ~up).any()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_response_matrix_deterministic_given_rng(seed):
    b = merge_behaviors(make_always_on(30, 0.8), make_diurnal(30, 7 * 3600))
    times = times_for_days(1)
    first = b.response_matrix(times, np.random.default_rng(seed))
    second = b.response_matrix(times, np.random.default_rng(seed))
    assert (first == second).all()

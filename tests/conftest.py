"""Shared fixtures: per-test watchdog and chaos artifact capture.

The chaos/durability suites deliberately hang workers and kill
processes; a supervision bug there shows up as a test that never
returns, which would wedge CI.  The ``watchdog`` marker arms a
``SIGALRM``-based timeout around any test that opts in — stdlib only,
no pytest-timeout dependency::

    @pytest.mark.watchdog(60)
    def test_that_might_hang(): ...

When ``REPRO_CHAOS_ARTIFACT_DIR`` is set (the CI chaos job sets it),
every failed test's temp directory is copied there, so quarantined
files and manifests from the failing run are uploaded as artifacts.
"""

from __future__ import annotations

import os
import shutil
import signal
from pathlib import Path

import pytest


class WatchdogTimeout(Exception):
    """The watchdog fired: the test exceeded its wall-clock budget."""


@pytest.fixture(autouse=True)
def _watchdog(request):
    marker = request.node.get_closest_marker("watchdog")
    if marker is None or not hasattr(signal, "SIGALRM"):
        yield
        return
    seconds = int(marker.args[0]) if marker.args else 60

    def _fire(signum, frame):
        raise WatchdogTimeout(
            f"{request.node.nodeid} exceeded its {seconds}s watchdog"
        )

    previous = signal.signal(signal.SIGALRM, _fire)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    artifact_root = os.environ.get("REPRO_CHAOS_ARTIFACT_DIR")
    if not artifact_root or report.when != "call" or not report.failed:
        return
    # Salvage the failing test's tmp_path (quarantine files, checkpoints,
    # journals, manifests) for CI artifact upload.
    tmp_path = getattr(item, "funcargs", {}).get("tmp_path")
    if tmp_path is None or not Path(tmp_path).is_dir():
        return
    safe_name = item.nodeid.replace("/", "_").replace("::", "-")
    target = Path(artifact_root) / safe_name
    try:
        shutil.copytree(tmp_path, target, dirs_exist_ok=True)
    except OSError:
        pass

"""Overload chaos harness: burst storms and sustained-overload soaks.

The resilience contract under load:

* the ingest queue (and therefore memory) stays bounded no matter how
  fast producers offer observations;
* shed decisions are bit-identical across runs with the same seed and
  arrival/pump sequence;
* the engine never crashes, and every window it closes — shed or not —
  matches the batch oracle over the observations that actually survived
  admission, with heavily shed windows closing *explicitly* degraded;
* once load subsides, closes return to exact clean-stream parity.

Each scenario writes a ``summary.json`` into ``tmp_path`` so a failing
run's artifact upload carries the shed/queue/backpressure numbers.
"""

import json
import tracemalloc

import numpy as np
import pytest

from repro.core.classify import reports_equal
from repro.stream import (
    AdmissionController,
    ListSink,
    OverloadConfig,
    ShedDegraded,
    StreamConfig,
    StreamEngine,
    WindowClosed,
    batch_window_report,
)

ROUND = 660.0
DAY = 86400.0


def make_world(n_blocks, n_rounds, seed=3):
    """Per-block diurnal series with distinct phases, round-major order."""
    rng = np.random.default_rng(seed)
    phases = rng.uniform(0.0, 2.0 * np.pi, n_blocks)
    times = np.arange(n_rounds) * ROUND
    series = {
        b: np.clip(
            0.5
            + 0.35 * np.sin(2.0 * np.pi * times / DAY + phases[b])
            + 0.02 * rng.standard_normal(n_rounds),
            0.0,
            1.0,
        )
        for b in range(n_blocks)
    }
    return times, series


def kept_arrays(submitted, shed_seqs):
    """Post-shed (times, values) per block, submission order preserved."""
    out = {}
    for block_id, entries in submitted.items():
        rows = [(t, v) for seq, t, v in entries if seq not in shed_seqs]
        out[block_id] = (
            np.array([t for t, _ in rows]),
            np.array([v for _, v in rows]),
        )
    return out


def assert_post_shed_parity(closes, kept, config):
    """Every close matches the batch oracle over surviving observations."""
    assert closes
    for event in closes:
        times, values = kept[event.block_id]
        want_report, want_quality = batch_window_report(
            times, values, event.window_start_round, event.n_rounds, config
        )
        assert reports_equal(event.report, want_report), (
            event.block_id,
            event.window_start_round,
        )
        assert event.quality == want_quality


class BurstHarness:
    """Round-major producer with a consumer stall in the middle."""

    N_BLOCKS = 6
    CAPACITY = 128
    STORM_LEN = 80

    def __init__(self, seed):
        self.config = StreamConfig.for_days(1.0, label_dwell=1)
        self.sink = ListSink()
        self.engine = StreamEngine(self.config, sinks=[self.sink])
        self.controller = AdmissionController(
            self.engine,
            OverloadConfig(capacity=self.CAPACITY, seed=seed),
        )
        window = self.config.window_rounds
        self.window = window
        self.n_rounds = 6 * window
        self.storm = range(2 * window, 2 * window + self.STORM_LEN)
        self.times, self.series = make_world(self.N_BLOCKS, self.n_rounds)
        self.submitted = {b: [] for b in range(self.N_BLOCKS)}
        self.max_depth_seen = 0

    def run(self):
        controller = self.controller
        seq = 0
        for r in range(self.n_rounds):
            for b in range(self.N_BLOCKS):
                seq += 1
                t, v = self.times[r], self.series[b][r]
                controller.submit(b, t, v)
                self.submitted[b].append((seq, t, v))
            if r not in self.storm:
                # Healthy consumer: generous catch-up budget per round.
                controller.pump(4 * self.N_BLOCKS)
            depth = controller.depth
            self.max_depth_seen = max(self.max_depth_seen, depth)
            assert depth <= self.CAPACITY
        controller.flush()
        return self


class TestBurstStorm:
    @pytest.mark.watchdog(120)
    def test_storm_sheds_bounded_and_recovers(self, tmp_path):
        h = BurstHarness(seed=17).run()
        controller, config = h.controller, h.config

        assert controller.n_shed > 0
        assert controller.n_engagements > 0
        assert h.max_depth_seen <= h.CAPACITY

        shed_seqs = {r.seq for r in controller.shed_log()}
        assert len(shed_seqs) == controller.n_shed
        kept = kept_arrays(h.submitted, shed_seqs)
        closes = h.sink.of_type(WindowClosed)
        assert_post_shed_parity(closes, kept, config)

        # Sheds are confined to the storm window; windows that lost
        # observations are flagged, and every close outside the storm's
        # reach is bit-identical to the oracle over the *raw* stream.
        shed_rounds = {r.round_index for r in controller.shed_log()}
        degraded_starts = {
            (e.block_id, e.window_start_round)
            for e in h.sink.of_type(ShedDegraded)
        }
        n_clean = 0
        for event in closes:
            span = range(
                event.window_start_round,
                event.window_start_round + event.n_rounds,
            )
            overlaps = bool(shed_rounds.intersection(span))
            flagged = (
                event.block_id,
                event.window_start_round,
            ) in degraded_starts
            assert overlaps == flagged
            if not overlaps:
                n_clean += 1
                want_report, want_quality = batch_window_report(
                    h.times,
                    h.series[event.block_id],
                    event.window_start_round,
                    event.n_rounds,
                    config,
                )
                assert reports_equal(event.report, want_report)
                assert event.quality == want_quality
        assert n_clean > 0

        # Recovery: every block's post-storm windows are classified.
        post = [
            e
            for e in closes
            if e.window_start_round >= 3 * h.window and not e.partial
        ]
        assert {e.block_id for e in post} == set(range(h.N_BLOCKS))
        assert all(e.report.is_classified for e in post)

        (tmp_path / "summary.json").write_text(
            json.dumps(h.controller.stats(), indent=2)
        )

    @pytest.mark.watchdog(120)
    def test_storm_shed_set_is_replayable(self):
        a = BurstHarness(seed=17).run()
        b = BurstHarness(seed=17).run()
        assert a.controller.shed_log() == b.controller.shed_log()
        assert a.controller.stats() == b.controller.stats()
        c = BurstHarness(seed=18).run()
        assert a.controller.shed_log() != c.controller.shed_log()


class SoakHarness:
    """Sustained 10x offered load, then subsiding to 1x."""

    N_BLOCKS = 4
    CAPACITY = 256
    OVERLOAD_WINDOWS = 8
    RECOVERY_WINDOWS = 3

    def __init__(self, seed):
        self.config = StreamConfig.for_days(1.0, label_dwell=1)
        self.sink = ListSink()
        self.engine = StreamEngine(self.config, sinks=[self.sink])
        self.controller = AdmissionController(
            self.engine,
            OverloadConfig(
                capacity=self.CAPACITY, seed=seed, shed_log_capacity=200_000
            ),
        )
        window = self.config.window_rounds
        self.window = window
        self.overload_rounds = self.OVERLOAD_WINDOWS * window
        self.n_rounds = (
            self.OVERLOAD_WINDOWS + self.RECOVERY_WINDOWS
        ) * window
        self.times, self.series = make_world(
            self.N_BLOCKS, self.n_rounds, seed=5
        )
        self.submitted = {b: [] for b in range(self.N_BLOCKS)}
        self.overload_shed = 0
        self.overload_offered = 0

    def run(self):
        controller = self.controller
        seq = 0
        since_pump = 0
        # Phase 1 — sustained overload: the producer offers ten
        # observations for every one the consumer can service.
        for r in range(self.overload_rounds):
            for b in range(self.N_BLOCKS):
                seq += 1
                t, v = self.times[r], self.series[b][r]
                controller.submit(b, t, v)
                self.submitted[b].append((seq, t, v))
                since_pump += 1
                if since_pump == 10:
                    controller.pump(1)
                    since_pump = 0
            assert controller.depth <= self.CAPACITY
        self.overload_offered = controller.n_submitted
        # Load subsides: drain the backlog, then run at 1x.
        while controller.depth:
            controller.pump(64)
        self.overload_shed = controller.n_shed
        for r in range(self.overload_rounds, self.n_rounds):
            for b in range(self.N_BLOCKS):
                seq += 1
                t, v = self.times[r], self.series[b][r]
                controller.submit(b, t, v)
                self.submitted[b].append((seq, t, v))
            controller.pump()
        controller.flush()
        return self


class TestSustainedOverloadSoak:
    @pytest.mark.watchdog(300)
    def test_soak_bounded_deterministic_and_recovers(self, tmp_path):
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        h = SoakHarness(seed=23).run()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        controller, config = h.controller, h.config

        # Bounded: the queue held its cap and the soak's working set
        # stayed small (the world arrays dominate the traced peak).
        assert controller.max_depth <= h.CAPACITY + 1
        assert peak - before < 64 * 1024 * 1024

        # Sustained 10x really shed the bulk of the offered load, and
        # the backpressure signal spent the storm asserted.
        overload_ratio = h.overload_shed / h.overload_offered
        assert overload_ratio > 0.5
        assert controller.n_engagements >= 1
        assert controller.n_shed == h.overload_shed  # 1x phase shed nothing

        # No shed decision was lost to the bounded log (capacity was
        # sized for the soak), so post-shed parity is checkable.
        assert len(controller.shed_log()) == controller.n_shed
        shed_seqs = {r.seq for r in controller.shed_log()}
        kept = kept_arrays(h.submitted, shed_seqs)
        closes = h.sink.of_type(WindowClosed)
        assert_post_shed_parity(closes, kept, config)

        # Degraded honestly while overloaded...
        degraded = [e for e in closes if not e.report.is_classified]
        assert degraded
        assert h.sink.of_type(ShedDegraded)
        # ...and back to clean full-stream parity after load subsided.
        recovery_start = h.overload_rounds
        recovered = [
            e
            for e in closes
            if e.window_start_round >= recovery_start and not e.partial
        ]
        assert {e.block_id for e in recovered} == set(range(h.N_BLOCKS))
        for event in recovered:
            assert event.report.is_classified
            want_report, want_quality = batch_window_report(
                h.times,
                h.series[event.block_id],
                event.window_start_round,
                event.n_rounds,
                config,
            )
            assert reports_equal(event.report, want_report)
            assert event.quality == want_quality

        (tmp_path / "summary.json").write_text(
            json.dumps(
                {
                    **controller.stats(),
                    "overload_shed_ratio": overload_ratio,
                    "traced_peak_bytes": peak - before,
                    "n_closes": len(closes),
                    "n_degraded": len(degraded),
                    "n_recovered": len(recovered),
                },
                indent=2,
            )
        )

    @pytest.mark.watchdog(300)
    def test_soak_shed_set_is_replayable(self):
        a = SoakHarness(seed=23).run()
        b = SoakHarness(seed=23).run()
        assert a.controller.shed_log() == b.controller.shed_log()
        assert a.controller.stats() == b.controller.stats()

"""Replication tests: quorum reads, hinted handoff, failover parity.

The acceptance property for ``replication=2``: one shard hard-killed
during sustained ingest costs *zero* errors — every write of the dead
shard's keys is accepted (flagged ``degraded``, copies parked as
hinted handoff), every read answers from the surviving replica
(flagged ``partial``), and once the shard respawns, replays its
journal, and anti-entropy syncs the hints, both replicas' journals are
bit-identical and every served verdict matches the offline batch
oracle (:func:`repro.stream.engine.batch_window_report`).

Write accounting stays three-way and explicit: backpressure rejects
the whole observation (429 at the API), a fully dead chain rejects it
(503), and a partially dead chain accepts it as degraded — all three
visible in /metrics.
"""

import pytest

from repro.core.retry import RetryPolicy
from repro.obs import MetricsRegistry
from repro.serve import ServiceRunner, ShardDownError
from repro.stream.journal import read_journal
from repro.stream.overload import OverloadConfig

from tests.test_serve_api import make_harness
from tests.test_serve_service import (
    N_BLOCKS,
    WINDOW,
    ROUND,
    interleaved,
    oracle_report,
    service_config,
)

PARKED = RetryPolicy(base_delay_s=120.0)  # respawn far off: death observable


def replicated_config(tmp_path, **overrides):
    defaults = dict(n_shards=2, replication=2)
    defaults.update(overrides)
    return service_config(tmp_path, **defaults)


@pytest.fixture
def runner(tmp_path):
    instance = ServiceRunner(
        replicated_config(tmp_path), metrics=MetricsRegistry()
    )
    yield instance
    instance.stop(drain=False)


@pytest.mark.watchdog(120)
def test_replicated_ingest_reads_full_quorum_and_matches_oracle(runner):
    runner.start()
    report = runner.ingest(interleaved(2 * WINDOW))
    assert report["accepted"] == N_BLOCKS * 2 * WINDOW
    assert report["rejected"] == 0
    assert not report["degraded"] and report["hinted"] == 0
    runner.flush()
    for block_id in range(N_BLOCKS):
        result = runner.query_block_ex(block_id)
        assert result["replication"] == 2
        assert result["replicas_answered"] == 2
        assert not result["partial"] and not result["stale"]
        expected = oracle_report(block_id, 2 * WINDOW, WINDOW)
        assert result["snapshot"]["last_report"] == expected, block_id
    fleet = runner.fleet_snapshot()
    assert fleet["replication"] == 2
    assert fleet["hint_backlog"] == 0


@pytest.mark.watchdog(120)
def test_degraded_writes_and_partial_reads_while_one_replica_dead(tmp_path):
    runner = ServiceRunner(
        replicated_config(tmp_path, respawn_backoff=PARKED),
        metrics=MetricsRegistry(),
    )
    try:
        runner.start()
        assert runner.ingest(interleaved(WINDOW))["rejected"] == 0
        victim = runner.owner(0)
        runner.kill_shard(victim)

        # Writes: accepted + degraded, the dead replica's copies hinted.
        more = interleaved(WINDOW, start_round=WINDOW)
        report = runner.ingest(more)
        assert report["accepted"] == len(more)
        assert report["rejected"] == 0 and not report["down"]
        assert report["degraded"]
        assert report["hinted"] >= len(more)  # retro-hints may add more
        assert runner.fleet_snapshot()["hint_backlog"] == report["hinted"]

        # Reads: the survivor answers, flagged partial, never stale.
        runner.flush()
        for block_id in range(N_BLOCKS):
            result = runner.query_block_ex(block_id)
            assert result["replicas_answered"] == 1
            assert result["partial"] and not result["stale"]
            expected = oracle_report(block_id, 2 * WINDOW, WINDOW)
            assert result["snapshot"]["last_report"] == expected, block_id
        phase_map = runner.phase_map()
        assert not phase_map["partial"]  # one dead shard < R: full map
        assert victim in phase_map["missing_shards"]

        # All three write outcomes + read degradation are in /metrics.
        text = runner.metrics_text()
        assert "service_ingest_degraded_total" in text
        assert 'service_hints_total{outcome="stored"}' in text
        assert "service_hint_backlog" in text
        assert 'service_reads_degraded_total{mode="partial"}' in text

        # Total chain loss is the only 503: kill the survivor too.
        survivor = next(s for s in runner.owners(0) if s != victim)
        runner.kill_shard(survivor)
        down = runner.ingest([(0, 100 * ROUND, 0.5)])
        assert down["rejected"] == 1 and down["down"]
        with pytest.raises(ShardDownError):
            runner.query_block(0)
    finally:
        runner.stop(drain=False)


@pytest.mark.watchdog(120)
def test_backpressure_rejects_whole_observation_under_replication(tmp_path):
    """A paused live replica rejects the *observation*, not one copy —
    replicas must never diverge through the admission controller."""
    config = replicated_config(
        tmp_path,
        overload=OverloadConfig(
            capacity=64, high_watermark=0.5, low_watermark=0.25
        ),
        pump_budget=1,
    )
    runner = ServiceRunner(config, metrics=MetricsRegistry())
    try:
        runner.start()
        burst = [(7, r * ROUND, 0.5) for r in range(60)]
        first = runner.ingest(burst)
        assert first["accepted"] == 60
        second = runner.ingest([(7, 61 * ROUND, 0.5)])
        assert second["accepted"] == 0 and second["rejected"] == 1
        assert second["backpressure"] and not second["degraded"]
        assert second["hinted"] == 0
        runner.flush()
        third = runner.ingest([(7, 61 * ROUND, 0.5)])
        assert third["accepted"] == 1 and not third["backpressure"]
    finally:
        runner.stop(drain=False)


@pytest.mark.watchdog(180)
def test_kill_during_ingest_zero_errors_and_bit_identical_rejoin(tmp_path):
    """The availability acceptance criterion (R=2, one SIGKILL).

    A shard killed mid-stream must cost zero failed writes and zero
    failed reads of its keys; after respawn + journal replay + hint
    sync, both replicas' journals are bit-identical and every verdict
    matches the batch oracle over the full series.
    """
    config = replicated_config(tmp_path)
    runner = ServiceRunner(config, metrics=MetricsRegistry())
    try:
        runner.start()
        assert runner.ingest(interleaved(36))["rejected"] == 0
        victim = runner.owner(0)
        runner.kill_shard(victim)

        # Writes land while the shard is dead: accepted, never rejected.
        during = runner.ingest(interleaved(6, start_round=36))
        assert during["rejected"] == 0 and not during["down"]
        assert during["accepted"] == N_BLOCKS * 6
        # Reads of the dead shard's keys answer from the survivor.
        assert runner.query_block(0) is not None

        assert runner.wait_healthy(timeout_s=60.0), "shard never rejoined"
        after = runner.ingest(interleaved(6, start_round=42))
        assert after["rejected"] == 0

        runner.flush()
        for block_id in range(N_BLOCKS):
            result = runner.query_block_ex(block_id)
            assert result["replicas_answered"] == 2
            assert not result["partial"] and not result["stale"]
            expected = oracle_report(block_id, 48, WINDOW)
            assert result["snapshot"]["last_report"] == expected, block_id
        fleet = runner.fleet_snapshot()
        assert fleet["hint_backlog"] == 0
        assert all(
            entry["healthy"] and not entry["stale"]
            for entry in fleet["shards"].values()
        )
    finally:
        report = runner.stop(drain=True)
    # Bit-identical replicas: after drain, both journals hold the same
    # record stream (every observation, in destination-seq order).
    assert report is not None
    journals = [
        read_journal(config.journal_path(shard_id))
        for shard_id in range(config.n_shards)
    ]
    for records, recovery in journals:
        assert recovery.truncated_bytes == 0 and recovery.reason == ""
        assert len(records) == N_BLOCKS * 48
    assert journals[0][0] == journals[1][0]


@pytest.mark.watchdog(120)
def test_drain_flushes_hints_into_dead_replica_journal(tmp_path):
    """Graceful drain must not strand hinted handoff: copies owed to a
    still-dead replica are appended straight to its journal, so a full
    service restart recovers both replicas complete."""
    config = replicated_config(tmp_path, respawn_backoff=PARKED)
    first = ServiceRunner(config, metrics=MetricsRegistry())
    first.start()
    first.ingest(interleaved(WINDOW))
    victim = first.owner(0)
    first.kill_shard(victim)
    hinted = first.ingest(interleaved(WINDOW, start_round=WINDOW))["hinted"]
    assert hinted >= N_BLOCKS * WINDOW
    report = first.stop(drain=True)
    assert report["hints_flushed"].get(victim, 0) >= N_BLOCKS * WINDOW

    # The dead replica's journal now holds the full stream, clean tail.
    records, recovery = read_journal(config.journal_path(victim))
    assert recovery.truncated_bytes == 0 and recovery.reason == ""
    assert len(records) == N_BLOCKS * 2 * WINDOW

    second = ServiceRunner(replicated_config(tmp_path))
    try:
        ready = second.start()
        assert sum(info["n_replayed"] for info in ready.values()) == (
            2 * N_BLOCKS * 2 * WINDOW  # every observation, on both replicas
        )
        second.flush()
        for block_id in range(N_BLOCKS):
            result = second.query_block_ex(block_id)
            assert result["replicas_answered"] == 2
            expected = oracle_report(block_id, 2 * WINDOW, WINDOW)
            assert result["snapshot"]["last_report"] == expected, block_id
    finally:
        second.stop(drain=False)


@pytest.mark.watchdog(120)
def test_api_exposes_freshness_and_degradation_headers(tmp_path):
    harness = make_harness(
        tmp_path,
        replication=2,
        shard_deadline_s=10.0,
        respawn_backoff=PARKED,
    )
    try:
        observations = [list(t) for t in interleaved(WINDOW)]
        status, report, headers = harness.request(
            "POST", "/observations", {"observations": observations}
        )
        assert status == 200 and "X-Write-Degraded" not in headers
        harness.runner.flush()
        status, _state, headers = harness.request("GET", "/blocks/0/state")
        assert status == 200
        assert headers["X-Replication"] == "2"
        assert headers["X-Replicas-Answered"] == "2"
        assert headers["X-Read-Partial"] == "0"
        assert headers["X-Read-Stale"] == "0"

        harness.runner.kill_shard(harness.runner.owner(0))
        status, report, headers = harness.request(
            "POST", "/observations",
            {"observations": [[0, (WINDOW + 1) * ROUND, 0.5]]},
        )
        assert status == 200 and report["degraded"]
        assert headers["X-Write-Degraded"] == "1"
        status, _state, headers = harness.request("GET", "/blocks/0/state")
        assert status == 200
        assert headers["X-Replicas-Answered"] == "1"
        assert headers["X-Read-Partial"] == "1"
    finally:
        harness.close()

"""Integration tests for the global (section 4/5) analyses.

One shared small study keeps runtime reasonable; benchmarks run the
full-size versions.
"""

import numpy as np
import pytest

from repro.analysis import (
    GlobalStudy,
    run_allocation_trend,
    run_country_table,
    run_cross_site,
    run_economics_anova,
    run_frequency_cdf,
    run_gdp_scatter,
    run_linktype_study,
    run_phase_longitude,
    run_region_table,
    run_world_maps,
)


@pytest.fixture(scope="module")
def study():
    return GlobalStudy.run(n_blocks=4000, seed=11, days=14.0)


@pytest.fixture(scope="module")
def country_table(study):
    # The paper cuts at >=1000 blocks of 2.8M geolocated; at this test's
    # 4000-block world a proportionally stricter floor controls sampling
    # noise in per-country fractions.
    return run_country_table(study=study, min_blocks=60)


class TestStudy:
    def test_measurement_covers_world(self, study):
        assert study.measurement.n_blocks == study.world.n_blocks

    def test_strict_fraction_near_paper(self, study):
        """Paper: 11% strict, 25% either."""
        assert 0.08 < study.measurement.fraction_strict() < 0.20
        assert 0.17 < study.measurement.fraction_diurnal() < 0.38

    def test_geolocation_coverage(self, study):
        assert study.geolocation_coverage() == pytest.approx(0.93, abs=0.02)


class TestMaps:
    def test_fig12_13(self, study):
        maps = run_world_maps(study=study)
        assert maps.counts.values.sum() > 0.9 * study.world.n_blocks * 0.9
        # US cells must be low-diurnal, Chinese cells high.
        us = maps.diurnal_fraction.value_at(40.0, -98.0)
        cn = maps.diurnal_fraction.value_at(36.0, 104.0)
        if not np.isnan(us) and not np.isnan(cn):
            assert cn > us


class TestCountryRegion:
    def test_table3_us_lowest_cn_high(self, country_table):
        us = country_table.row_of("US")
        cn = country_table.row_of("CN")
        assert us.fraction_diurnal < 0.03
        assert cn.fraction_diurnal > 0.35

    def test_table3_top_diurnal_low_gdp(self, country_table):
        """Paper: the most-diurnal countries all sit below ~$20k GDP.

        At this scale only a dozen countries clear the block floor, so we
        check the top five; the full-size benchmark checks the top 20.
        """
        high = [r for r in country_table.rows if r.fraction_diurnal > 0.18]
        assert len(high) >= 1
        assert all(row.gdp_pc < 20000 for row in high)

    def test_measured_tracks_design(self, country_table):
        big = [r for r in country_table.rows if r.blocks >= 150]
        err = [abs(r.fraction_diurnal - r.paper_fraction) for r in big]
        assert np.median(err) < 0.08

    def test_table4_region_ordering(self, study):
        table = run_region_table(study=study)
        na = table.row_of("Northern America").fraction_diurnal
        ea = table.row_of("Eastern Asia").fraction_diurnal
        we = table.row_of("Western Europe").fraction_diurnal
        assert na < 0.03 and we < 0.06
        assert ea > 0.2

    def test_format_tables(self, study, country_table):
        assert "US" in country_table.format_table()
        assert "Eastern Asia" in run_region_table(study=study).format_table()


class TestPhase:
    def test_fig14_correlation(self, study):
        strict = run_phase_longitude(study=study, population="strict")
        assert strict.n_blocks > 100
        assert strict.correlation() > 0.6  # paper: 0.835

    def test_relaxed_weaker_or_similar(self, study):
        strict = run_phase_longitude(study=study, population="strict")
        relaxed = run_phase_longitude(study=study, population="relaxed")
        assert relaxed.n_blocks >= strict.n_blocks
        assert relaxed.correlation() > 0.5  # paper: 0.763

    def test_predictor_precision(self, study):
        strict = run_phase_longitude(study=study, population="strict")
        assert strict.predictor_precision() < 40.0  # paper: ±20° typical

    def test_bad_population_rejected(self, study):
        with pytest.raises(ValueError):
            run_phase_longitude(study=study, population="everything")


class TestAllocation:
    def test_fig15_positive_slope(self, study):
        trend = run_allocation_trend(study=study)
        assert trend.slope_percent_per_month() > 0.02  # paper: +0.08%/mo
        assert trend.fit().r > 0.3  # paper: 0.609

    def test_alloc_gdp_independent(self, study):
        trend = run_allocation_trend(study=study)
        assert trend.allocation_independent_of_gdp()


class TestEconomics:
    def test_fig16_negative_correlation(self, country_table):
        scatter = run_gdp_scatter(table=country_table)
        assert scatter.correlation() < -0.35  # paper: -0.526
        assert scatter.high_diurnal_low_gdp()

    def test_table5_gdp_strongly_significant(self, country_table):
        """GDP must be strongly significant even at this small scale;
        strict dominance over the other four factors is asserted by the
        full-size benchmark (paper: 6.61e-8)."""
        anova = run_economics_anova(table=country_table)
        assert anova.p_of("gdp") < 0.01
        singles = sorted(
            ("gdp", "users_per_host", "electricity",
             "first_alloc_age", "mean_alloc_age"),
            key=lambda f: anova.p_of(f),
        )
        assert "gdp" in singles[:2]

    def test_table5_mean_alloc_relation_present(self, country_table):
        """At this test's small scale only the direction is checked; the
        full-size benchmark asserts significance (paper: p = 0.031)."""
        anova = run_economics_anova(table=country_table)
        assert anova.p_of("mean_alloc_age") < 0.5

    def test_table5_symmetric_lookup(self, country_table):
        anova = run_economics_anova(table=country_table)
        assert anova.p_of("gdp", "electricity") == anova.p_of(
            "electricity", "gdp"
        )


class TestFrequency:
    def test_fig10_daily_mass(self, study):
        cdf = run_frequency_cdf(study=study)
        assert 0.15 < cdf.fraction_daily() < 0.45  # paper: ~25%

    def test_fig10_artifact_present_but_small(self, study):
        cdf = run_frequency_cdf(study=study)
        assert 0.0 < cdf.fraction_artifact() < 0.10  # paper: ~3%

    def test_cdf_monotone(self, study):
        cdf = run_frequency_cdf(study=study)
        grid, cum = cdf.cdf()
        assert (np.diff(cum) >= 0).all()
        assert cum[-1] == pytest.approx(1.0, abs=0.02)


class TestLinkTypes:
    def test_fig17_ordering(self, study):
        result = run_linktype_study(study=study, max_classified=2500)
        dyn = result.fraction_of("dyn")
        dial = result.fraction_of("dial")
        assert dyn > 0.1  # paper: ~0.19
        assert dial < 0.08  # paper: <0.03
        assert dyn > dial

    def test_feature_fractions(self, study):
        result = run_linktype_study(study=study, max_classified=2500)
        assert 0.3 < result.feature_fraction < 0.6  # paper: 46.3%
        assert result.multi_feature_fraction < result.feature_fraction


class TestCrossSite:
    def test_table2_agreement(self, study):
        comparison = run_cross_site(study=study)
        assert comparison.strict_overlap_fraction() > 0.7  # paper: 85%
        assert comparison.either_overlap_fraction() > 0.9  # paper: 98.8%
        assert comparison.strong_disagreement_fraction() < 0.05  # paper 1.2%

    def test_matrix_sums(self, study):
        comparison = run_cross_site(study=study)
        assert sum(comparison.matrix.values()) == comparison.n_blocks

"""Instrumentation parity: metrics and tracing must never change results.

The acceptance bar for the observability layer: a fully instrumented run
(registry + tracer + module-level instruments installed) over a faulted
stream produces window reports, labels, and measurements bit-identical
to an uninstrumented run on the same inputs.  Instrumentation observes;
it never draws randomness or touches a value.
"""

import numpy as np

from repro.core import BatchConfig, BatchRunner
from repro.core.classify import reports_equal
from repro.faults import FaultConfig
from repro.faults.plan import FaultPlan
from repro.net import (
    Block24,
    make_always_on,
    make_dead,
    make_diurnal,
    merge_behaviors,
)
from repro.obs import (
    MetricsRegistry,
    Tracer,
    install_metrics,
    uninstall_metrics,
)
from repro.probing import RoundSchedule
from repro.stream import ListSink, StreamConfig, StreamEngine, WindowClosed

ROUND = 660.0
DAY = 86400.0

FAULTS = FaultConfig(
    round_drop_rate=0.05,
    round_duplicate_rate=0.05,
    gaps_per_day=1.0,
    clock_jitter_s=30.0,
    seed=21,
)


def faulted_stream(n_days, seed=0):
    """A diurnal observation stream degraded by a deterministic plan."""
    rng = np.random.default_rng(seed)
    n = int(n_days * DAY / ROUND)
    times = np.arange(n) * ROUND
    values = (
        0.5
        + 0.4 * np.sin(2 * np.pi * times / DAY)
        + 0.02 * rng.standard_normal(n)
    )
    return FaultPlan(FAULTS).degrade_stream(times, values, ROUND)


def run_stream(times, values, config, metrics=None, tracer=None):
    sink = ListSink()
    engine = StreamEngine(config, sinks=[sink], metrics=metrics, tracer=tracer)
    engine.ingest_many(0, times, values)
    engine.flush(close_partial=True)
    return engine, sink


def assert_same_closes(sink_a, sink_b):
    closes_a = sink_a.of_type(WindowClosed)
    closes_b = sink_b.of_type(WindowClosed)
    assert len(closes_a) == len(closes_b)
    assert closes_a, "no windows closed; the scenario is vacuous"
    for a, b in zip(closes_a, closes_b):
        assert a.window_start_round == b.window_start_round
        assert a.n_rounds == b.n_rounds
        assert a.partial == b.partial
        assert reports_equal(a.report, b.report), a.window_start_round
        assert a.quality == b.quality


class TestStreamingParity:
    def test_instrumented_run_bit_identical(self):
        times, values = faulted_stream(7, seed=30)
        config = StreamConfig.for_days(
            2.0, hop_days=1.0, lateness_rounds=3, label_dwell=1
        )

        # Reference: fully uninstrumented.
        engine_null, sink_null = run_stream(times, values, config)

        # Full instrumentation: constructor registry + tracer, plus the
        # module-level instruments in classify/timeseries/io.
        registry = MetricsRegistry()
        install_metrics(registry)
        try:
            engine_inst, sink_inst = run_stream(
                times, values, config, metrics=registry, tracer=Tracer()
            )
        finally:
            uninstall_metrics()

        assert_same_closes(sink_null, sink_inst)
        assert engine_null.stable_label(0) == engine_inst.stable_label(0)
        assert engine_null.n_late(0) == engine_inst.n_late(0)
        prov_null = engine_null.provisional(0)
        prov_inst = engine_inst.provisional(0)
        assert prov_null == prov_inst
        # The instrumented run did actually record something.
        snap = registry.snapshot()["counters"]
        assert snap["stream_observations_total"] == len(times) - (
            engine_inst.n_late(0)
        )

    def test_event_streams_identical(self):
        """Every event — not just closes — matches across the two runs."""
        times, values = faulted_stream(5, seed=31)
        config = StreamConfig.for_days(1.0, lateness_rounds=2)
        _, sink_null = run_stream(times, values, config)
        registry = MetricsRegistry()
        install_metrics(registry)
        try:
            _, sink_inst = run_stream(
                times, values, config, metrics=registry, tracer=Tracer()
            )
        finally:
            uninstall_metrics()
        assert len(sink_null.events) == len(sink_inst.events)
        for a, b in zip(sink_null.events, sink_inst.events):
            assert type(a) is type(b)
            assert a.kind == b.kind
            assert a.block_id == b.block_id
            assert a.round_index == b.round_index


def diurnal_block(block_id):
    behavior = merge_behaviors(
        make_always_on(40),
        make_diurnal(80, phase_s=6 * 3600),
        make_dead(136),
    )
    return Block24(block_id, behavior)


def assert_measurements_identical(a, b):
    for name in (
        "positives",
        "totals",
        "states",
        "a_short",
        "a_long",
        "a_operational",
        "true_availability",
    ):
        assert np.array_equal(
            getattr(a, name), getattr(b, name), equal_nan=True
        ), name
    assert a.block_id == b.block_id
    assert a.trim == b.trim
    assert a.skipped == b.skipped
    for report_name in ("report", "true_report"):
        ra, rb = getattr(a, report_name), getattr(b, report_name)
        assert (ra is None) == (rb is None)
        if ra is not None:
            assert reports_equal(ra, rb)
    assert a.quality == b.quality


class TestBatchParity:
    def test_faulted_batch_bit_identical(self):
        schedule = RoundSchedule.for_days(3)
        blocks = [diurnal_block(i) for i in range(3)]
        config = BatchConfig(faults=FAULTS)

        reference = BatchRunner(config).run(blocks, schedule, seed=9)

        registry = MetricsRegistry()
        install_metrics(registry)
        try:
            instrumented = BatchRunner(
                config, metrics=registry, tracer=Tracer()
            ).run(blocks, schedule, seed=9)
        finally:
            uninstall_metrics()

        assert reference.n_blocks == instrumented.n_blocks
        for a, b in zip(reference.results, instrumented.results):
            assert_measurements_identical(a, b)
        # And the instrumented run measured what it claims.
        snap = registry.snapshot()["counters"]
        assert snap['batch_blocks_total{outcome="measured"}'] == 3

    def test_checkpointed_batch_parity(self, tmp_path):
        """Instrumentation on the checkpoint path changes nothing."""
        schedule = RoundSchedule.for_days(3)
        blocks = [diurnal_block(i) for i in range(2)]

        plain = BatchRunner(BatchConfig()).run(blocks, schedule, seed=4)

        registry = MetricsRegistry()
        install_metrics(registry)
        try:
            ckpt = BatchRunner(
                BatchConfig(
                    checkpoint_path=tmp_path / "ckpt.npz",
                    checkpoint_every=1,
                ),
                metrics=registry,
                tracer=Tracer(),
            ).run(blocks, schedule, seed=4)
        finally:
            uninstall_metrics()

        for a, b in zip(plain.results, ckpt.results):
            assert_measurements_identical(a, b)

"""Tests for timeseries cleaning (paper section 2.2, data cleaning)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.timeseries import (
    fill_missing,
    is_stationary,
    linear_slope,
    observations_to_grid,
    trim_to_midnight,
)

ROUND = 660.0
DAY = 86400.0


class TestGrid:
    def test_aligned_observations_pass_through(self):
        times = np.arange(10) * ROUND
        values = np.arange(10.0)
        grid, stats = observations_to_grid(times, values, ROUND, 0.0, 10)
        assert np.array_equal(grid, values)
        assert stats.n_missing == 0
        assert stats.n_duplicates == 0

    def test_jittered_observations_snap_to_nearest_round(self):
        times = np.arange(10) * ROUND + np.linspace(-100, 100, 10)
        values = np.arange(10.0)
        grid, stats = observations_to_grid(times, values, ROUND, 0.0, 10)
        assert np.array_equal(grid, values)

    def test_missing_round_becomes_nan(self):
        times = np.array([0.0, ROUND, 3 * ROUND])
        grid, stats = observations_to_grid(times, np.ones(3), ROUND, 0.0, 4)
        assert np.isnan(grid[2])
        assert stats.n_missing == 1

    def test_duplicate_keeps_most_recent(self):
        times = np.array([0.0, ROUND, ROUND + 10.0])
        values = np.array([1.0, 2.0, 3.0])
        grid, stats = observations_to_grid(times, values, ROUND, 0.0, 2)
        assert grid[1] == 3.0
        assert stats.n_duplicates == 1

    def test_duplicate_order_independent_of_input_order(self):
        times = np.array([ROUND + 10.0, ROUND, 0.0])
        values = np.array([3.0, 2.0, 1.0])
        grid, _ = observations_to_grid(times, values, ROUND, 0.0, 2)
        assert grid[1] == 3.0  # later *time* wins, not later input position

    def test_out_of_range_observations_dropped(self):
        times = np.array([-5000.0, 0.0, 50000.0])
        grid, _ = observations_to_grid(times, np.ones(3), ROUND, 0.0, 3)
        assert grid[0] == 1.0
        assert np.isnan(grid[1]) and np.isnan(grid[2])

    def test_missing_fraction(self):
        grid, stats = observations_to_grid(
            np.array([0.0]), np.array([1.0]), ROUND, 0.0, 20
        )
        assert stats.missing_fraction == pytest.approx(19 / 20)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            observations_to_grid(np.zeros(3), np.zeros(4), ROUND, 0.0, 5)


class TestFillMissing:
    def test_single_gap_filled_from_previous(self):
        values = np.array([1.0, np.nan, 3.0])
        filled, n = fill_missing(values)
        assert filled.tolist() == [1.0, 1.0, 3.0]
        assert n == 1

    def test_long_gap_left_alone_with_max_gap_1(self):
        values = np.array([1.0, np.nan, np.nan, 4.0])
        filled, n = fill_missing(values, max_gap=1)
        assert filled[1] == 1.0
        assert np.isnan(filled[2])
        assert n == 1

    def test_fill_everything_for_fft(self):
        values = np.array([1.0, np.nan, np.nan, np.nan, 5.0])
        filled, n = fill_missing(values, max_gap=10**9)
        assert not np.isnan(filled).any()
        assert n == 3

    def test_leading_nan_backfilled(self):
        values = np.array([np.nan, 2.0, 3.0])
        filled, n = fill_missing(values)
        assert filled[0] == 2.0

    def test_no_gaps_no_change(self):
        values = np.arange(5.0)
        filled, n = fill_missing(values)
        assert n == 0
        assert np.array_equal(filled, values)

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError):
            fill_missing(np.full(5, np.nan))

    def test_input_not_modified(self):
        values = np.array([1.0, np.nan])
        fill_missing(values)
        assert np.isnan(values[1])


class TestTrimToMidnight:
    def test_midnight_aligned_series_untouched(self):
        n = int(3 * DAY / ROUND)
        times = np.arange(n) * ROUND
        sl = trim_to_midnight(times, ROUND)
        assert sl.start == 0
        # End near the last midnight (round 262 ≈ day 2).
        assert abs(times[sl.stop - 1] - 2 * DAY) <= ROUND / 2 + 1e-9

    def test_offset_start_trimmed_forward(self):
        start = 5 * 3600.0  # measurement begins at 05:00 UTC
        n = int(3 * DAY / ROUND)
        times = start + np.arange(n) * ROUND
        sl = trim_to_midnight(times, ROUND)
        assert abs(times[sl.start] - DAY) <= ROUND / 2 + 1e-9

    def test_retained_span_is_whole_days(self):
        start = 17.3 * 3600.0
        n = int(10 * DAY / ROUND)
        times = start + np.arange(n) * ROUND
        sl = trim_to_midnight(times, ROUND)
        span = times[sl.stop - 1] - times[sl.start]
        days = span / DAY
        assert abs(days - round(days)) < ROUND / DAY

    def test_short_series_returned_whole(self):
        times = np.arange(10) * ROUND
        sl = trim_to_midnight(times, ROUND)
        assert (sl.start, sl.stop) == (0, 10)


class TestStationarity:
    def test_flat_series_is_stationary(self):
        times = np.arange(1000) * ROUND
        values = np.full(1000, 0.5)
        assert is_stationary(times, values, n_ever_active=100)

    def test_strong_trend_is_not_stationary(self):
        times = np.arange(1000) * ROUND
        # 5% of a 100-address block per day = 5 addresses/day.
        values = 0.2 + 0.05 * times / DAY
        assert not is_stationary(times, values, n_ever_active=100)

    def test_sub_address_trend_is_stationary(self):
        times = np.arange(1000) * ROUND
        values = 0.5 + 0.005 * times / DAY  # 0.5 addresses/day on 100
        assert is_stationary(times, values, n_ever_active=100)

    def test_diurnal_oscillation_is_stationary(self):
        times = np.arange(int(14 * DAY / ROUND)) * ROUND
        values = 0.5 + 0.3 * np.sin(2 * np.pi * times / DAY)
        assert is_stationary(times, values, n_ever_active=200)

    def test_empty_ever_active_trivially_stationary(self):
        assert is_stationary(np.arange(10.0), np.ones(10), n_ever_active=0)

    def test_linear_slope_exact(self):
        times = np.arange(100.0)
        values = 3.0 + 0.25 * times
        assert linear_slope(times, values) == pytest.approx(0.25)

    def test_linear_slope_ignores_nan(self):
        times = np.arange(100.0)
        values = 2.0 * times
        values[10:20] = np.nan
        assert linear_slope(times, values) == pytest.approx(2.0)

    def test_linear_slope_degenerate(self):
        assert linear_slope(np.array([1.0]), np.array([2.0])) == 0.0
        assert linear_slope(np.ones(5), np.arange(5.0)) == 0.0


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=400),
    gap_at=st.integers(min_value=1, max_value=398),
)
def test_fill_missing_preserves_observed_values(n, gap_at):
    values = np.linspace(0, 1, n)
    holes = values.copy()
    idx = gap_at % n
    if idx == 0:
        idx = 1
    holes[idx] = np.nan
    filled, _ = fill_missing(holes, max_gap=n)
    observed = ~np.isnan(holes)
    assert np.array_equal(filled[observed], values[observed])


class TestGridValidation:
    def test_empty_observations_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            observations_to_grid(np.array([]), np.array([]), ROUND, 0.0, 10)

    def test_non_finite_timestamps_rejected(self):
        times = np.array([0.0, np.nan, 2 * ROUND])
        with pytest.raises(ValueError, match="NaN"):
            observations_to_grid(times, np.ones(3), ROUND, 0.0, 10)

    def test_bad_round_length_rejected(self):
        with pytest.raises(ValueError):
            observations_to_grid(np.zeros(3), np.ones(3), 0.0, 0.0, 10)

    def test_bad_n_rounds_rejected(self):
        with pytest.raises(ValueError):
            observations_to_grid(np.zeros(3), np.ones(3), ROUND, 0.0, 0)

    def test_non_monotonic_timestamps_are_legal(self):
        """Out-of-order delivery is resolved by the stable time sort, not
        rejected: injected clock jitter produces exactly this shape."""
        times = np.array([2 * ROUND, 0.0, ROUND])
        values = np.array([0.3, 0.1, 0.2])
        grid, _ = observations_to_grid(times, values, ROUND, 0.0, 3)
        assert np.allclose(grid, [0.1, 0.2, 0.3])

    def test_2d_input_rejected(self):
        with pytest.raises(ValueError):
            observations_to_grid(
                np.zeros((2, 2)), np.ones((2, 2)), ROUND, 0.0, 4
            )


class TestFillMissingValidation:
    def test_empty_series_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            fill_missing(np.array([]))

    def test_negative_max_gap_rejected(self):
        with pytest.raises(ValueError):
            fill_missing(np.ones(4), max_gap=-1)

    def test_2d_series_rejected(self):
        with pytest.raises(ValueError):
            fill_missing(np.ones((2, 3)))


class TestFillGaps:
    def test_hold_policy_matches_fill_missing(self):
        from repro.core.timeseries import fill_gaps

        values = np.array([0.2, np.nan, np.nan, 0.8, np.nan, 0.4])
        held, n_held = fill_gaps(values, policy="hold", max_gap=1)
        filled, n_filled = fill_missing(values, max_gap=1)
        assert np.array_equal(held, filled, equal_nan=True)
        assert n_held == n_filled

    def test_interp_policy_bridges_gap_linearly(self):
        from repro.core.timeseries import fill_gaps

        values = np.array([0.0, np.nan, np.nan, np.nan, 1.0])
        out, n_filled = fill_gaps(values, policy="interp")
        assert np.allclose(out, [0.0, 0.25, 0.5, 0.75, 1.0])
        assert n_filled == 3

    def test_interp_respects_max_gap(self):
        from repro.core.timeseries import fill_gaps

        values = np.array([0.0, np.nan, 1.0, np.nan, np.nan, np.nan, 0.0])
        out, _ = fill_gaps(values, policy="interp", max_gap=2)
        assert np.isclose(out[1], 0.5)
        assert np.isnan(out[3:6]).all()

    def test_nan_policy_leaves_gaps(self):
        from repro.core.timeseries import fill_gaps

        values = np.array([0.2, np.nan, 0.8])
        out, n_filled = fill_gaps(values, policy="nan")
        assert np.isnan(out[1])
        assert n_filled == 0
        out[0] = 99.0
        assert values[0] == 0.2  # copy, not a view

    def test_unknown_policy_rejected(self):
        from repro.core.timeseries import fill_gaps

        with pytest.raises(ValueError, match="policy"):
            fill_gaps(np.ones(3), policy="magic")


class TestQualityReport:
    def test_complete_series_is_usable(self):
        from repro.core.timeseries import QualityReport

        q = QualityReport(
            n_rounds=100, n_observed=100, n_duplicates=0, n_filled=0, longest_gap=0
        )
        assert q.gap_fraction == 0.0
        assert q.usable()

    def test_gap_fraction_threshold(self):
        from repro.core.timeseries import QualityReport

        q = QualityReport(
            n_rounds=100, n_observed=50, n_duplicates=0, n_filled=50, longest_gap=10
        )
        assert q.gap_fraction == 0.5
        assert not q.usable(max_gap_fraction=0.35)
        assert q.usable(max_gap_fraction=0.6)

    def test_longest_gap_threshold(self):
        from repro.core.timeseries import QualityReport

        q = QualityReport(
            n_rounds=100, n_observed=95, n_duplicates=0, n_filled=5, longest_gap=5
        )
        assert q.usable(max_longest_gap=10)
        assert not q.usable(max_longest_gap=4)

    def test_empty_series_never_usable(self):
        from repro.core.timeseries import QualityReport

        q = QualityReport(
            n_rounds=0, n_observed=0, n_duplicates=0, n_filled=0, longest_gap=0
        )
        assert q.gap_fraction == 1.0
        assert not q.usable()


class TestCleanObservations:
    def test_clean_stream_round_trips(self):
        from repro.core.timeseries import clean_observations

        n = 20
        times = np.arange(n) * ROUND
        values = np.linspace(0, 1, n)
        out, quality = clean_observations(times, values, ROUND, 0.0, n)
        assert np.allclose(out, values)
        assert quality.n_observed == n
        assert quality.n_filled == 0
        assert quality.usable()

    def test_gappy_stream_counts_fills(self):
        from repro.core.timeseries import clean_observations

        times = np.array([0.0, ROUND, 4 * ROUND]) 
        values = np.array([0.1, 0.2, 0.5])
        out, quality = clean_observations(times, values, ROUND, 0.0, 5)
        assert quality.n_observed == 3
        assert quality.n_filled == 2
        assert quality.longest_gap == 2
        assert not np.isnan(out).any()

    def test_all_missing_stream_returns_nan_grid(self):
        """An entirely lost stream degrades to an unusable (not raising)
        result so the batch runner can record it as insufficient data."""
        from repro.core.timeseries import clean_observations

        out, quality = clean_observations(
            np.array([]), np.array([]), ROUND, 0.0, 8
        )
        assert np.isnan(out).all()
        assert quality.n_observed == 0
        assert not quality.usable()


class TestLongestNanRun:
    def test_no_nans(self):
        from repro.core.timeseries import longest_nan_run

        assert longest_nan_run(np.ones(5)) == 0

    def test_interior_run(self):
        from repro.core.timeseries import longest_nan_run

        values = np.array([1.0, np.nan, np.nan, np.nan, 1.0, np.nan])
        assert longest_nan_run(values) == 3

    def test_all_nan(self):
        from repro.core.timeseries import longest_nan_run

        assert longest_nan_run(np.full(4, np.nan)) == 4


class TestTrimToMidnightEdges:
    """Satellite coverage: degenerate inputs for the midnight trimmer."""

    def test_empty_series(self):
        sl = trim_to_midnight(np.array([]), ROUND)
        assert (sl.start, sl.stop) == (0, 0)

    def test_single_sample(self):
        sl = trim_to_midnight(np.array([3 * 3600.0]), ROUND)
        assert (sl.start, sl.stop) == (0, 1)

    def test_window_under_one_day_returned_whole(self):
        # Half a day contains at most one midnight: nothing to trim to.
        n = int(0.5 * DAY / ROUND)
        times = 6 * 3600.0 + np.arange(n) * ROUND
        sl = trim_to_midnight(times, ROUND)
        assert (sl.start, sl.stop) == (0, n)

    def test_trailing_partial_day_dropped(self):
        # 2 whole days plus a 7-hour tail: the tail must be cut, keeping
        # the span a whole number of days.
        n_full = int(2 * DAY / ROUND)
        n_tail = int(7 * 3600 / ROUND)
        times = np.arange(n_full + n_tail) * ROUND
        sl = trim_to_midnight(times, ROUND)
        assert sl.start == 0
        assert abs(times[sl.stop - 1] - 2 * DAY) <= ROUND / 2 + 1e-9
        span_days = (times[sl.stop - 1] - times[sl.start]) / DAY
        assert abs(span_days - round(span_days)) < ROUND / DAY

    def test_exactly_one_day(self):
        # Rounds 0..131: round 131 (at 86460 s) is the closest to the
        # second midnight, within half a round.
        n = int(DAY / ROUND) + 2
        times = np.arange(n) * ROUND
        sl = trim_to_midnight(times, ROUND)
        assert sl.start == 0
        assert abs(times[sl.stop - 1] - DAY) <= ROUND / 2 + 1e-9


class TestLongestNanRunEdges:
    """Satellite coverage: degenerate inputs for the gap scanner."""

    def test_empty_array(self):
        from repro.core.timeseries import longest_nan_run

        assert longest_nan_run(np.array([])) == 0

    def test_single_nan(self):
        from repro.core.timeseries import longest_nan_run

        assert longest_nan_run(np.array([np.nan])) == 1

    def test_leading_and_trailing_runs(self):
        from repro.core.timeseries import longest_nan_run

        values = np.array([np.nan, np.nan, 1.0, np.nan, np.nan, np.nan])
        assert longest_nan_run(values) == 3

    def test_alternating(self):
        from repro.core.timeseries import longest_nan_run

        values = np.array([np.nan, 1.0, np.nan, 1.0, np.nan])
        assert longest_nan_run(values) == 1


class TestRoundIndex:
    """The shared grid-snapping rule (batch gridder and streaming engine)."""

    def test_exact_times(self):
        from repro.core.timeseries import round_index

        times = np.arange(5) * ROUND
        np.testing.assert_array_equal(round_index(times, ROUND), np.arange(5))

    def test_nearest_round_snapping(self):
        from repro.core.timeseries import round_index

        times = np.array([ROUND * 0.49, ROUND * 0.51, ROUND * 1.49])
        np.testing.assert_array_equal(round_index(times, ROUND), [0, 1, 1])

    def test_start_offset(self):
        from repro.core.timeseries import round_index

        start = 12345.0
        times = start + np.arange(3) * ROUND
        np.testing.assert_array_equal(
            round_index(times, ROUND, start_s=start), [0, 1, 2]
        )

    def test_negative_rounds_before_origin(self):
        from repro.core.timeseries import round_index

        assert round_index(np.array([-ROUND]), ROUND)[0] == -1

    def test_bad_round_s_rejected(self):
        from repro.core.timeseries import round_index

        with pytest.raises(ValueError):
            round_index(np.array([0.0]), 0.0)

    def test_matches_grid_placement(self):
        from repro.core.timeseries import round_index

        rng = np.random.default_rng(0)
        times = np.sort(rng.uniform(0, 50 * ROUND, 30))
        idx = round_index(times, ROUND)
        grid, _ = observations_to_grid(times, np.ones(30), ROUND, 0.0, 51)
        observed = np.flatnonzero(~np.isnan(grid))
        np.testing.assert_array_equal(observed, np.unique(idx))

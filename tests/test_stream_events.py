"""Tests for stream events, the bus, and sinks."""

import csv

import pytest

from repro.core.classify import DiurnalClass, insufficient_report
from repro.core.timeseries import QualityReport
from repro.stream.events import (
    ClassificationTransition,
    EventBus,
    LateObservation,
    PhaseEdge,
    StreamEvent,
    WindowClosed,
)
from repro.stream.sinks import (
    CallbackSink,
    CountingSink,
    CsvSink,
    EventSink,
    FilterSink,
    ListSink,
)


def make_edge(block_id=1, r=10, edge="wake"):
    return PhaseEdge(
        block_id=block_id,
        round_index=r,
        time_s=r * 660.0,
        edge=edge,
        value=0.8,
        window_mean=0.5,
    )


def make_late(block_id=1, r=3):
    return LateObservation(
        block_id=block_id, round_index=r, time_s=r * 660.0,
        value=0.4, lag_rounds=5,
    )


class TestEvents:
    def test_kind_is_class_name(self):
        assert make_edge().kind == "PhaseEdge"
        assert make_late().kind == "LateObservation"

    def test_payload_excludes_base_fields(self):
        payload = make_edge().payload()
        assert payload == {"edge": "wake", "value": 0.8, "window_mean": 0.5}

    def test_events_are_frozen(self):
        event = make_edge()
        with pytest.raises(AttributeError):
            event.value = 0.0

    def test_transition_carries_labels(self):
        event = ClassificationTransition(
            block_id=2,
            round_index=100,
            time_s=66000.0,
            old_label=None,
            new_label=DiurnalClass.STRICT,
            report=insufficient_report(),
            dwell=1,
        )
        assert event.old_label is None
        assert event.new_label is DiurnalClass.STRICT


class TestEventBus:
    def test_fans_out_to_all_sinks(self):
        a, b = ListSink(), ListSink()
        bus = EventBus([a])
        bus.subscribe(b)
        bus.publish(make_edge())
        assert len(a.events) == 1
        assert len(b.events) == 1

    def test_counts_by_kind(self):
        bus = EventBus()
        bus.publish(make_edge())
        bus.publish(make_edge())
        bus.publish(make_late())
        assert bus.counts == {"PhaseEdge": 2, "LateObservation": 1}
        assert bus.n_published == 3

    def test_close_propagates(self):
        closed = []

        class Recording(EventSink):
            def close(self):
                closed.append(True)

        bus = EventBus([Recording(), Recording()])
        bus.close()
        assert closed == [True, True]


class TestListSink:
    def test_bounded_drops_oldest(self):
        sink = ListSink(maxlen=2)
        events = [make_edge(r=i) for i in range(4)]
        for e in events:
            sink.emit(e)
        assert sink.events == events[2:]
        assert sink.n_dropped == 2

    def test_of_type(self):
        sink = ListSink()
        sink.emit(make_edge())
        sink.emit(make_late())
        assert len(sink.of_type(PhaseEdge)) == 1
        assert len(sink.of_type(StreamEvent)) == 2

    def test_bad_maxlen(self):
        with pytest.raises(ValueError):
            ListSink(maxlen=0)


class TestCountingSink:
    def test_counts(self):
        sink = CountingSink()
        for _ in range(3):
            sink.emit(make_edge())
        sink.emit(make_late())
        assert sink.counts == {"PhaseEdge": 3, "LateObservation": 1}
        assert sink.total == 4


class TestCallbackSink:
    def test_invokes(self):
        seen = []
        sink = CallbackSink(seen.append)
        sink.emit(make_edge())
        assert len(seen) == 1


class TestFilterSink:
    def test_type_filter(self):
        inner = ListSink()
        sink = FilterSink(inner, event_types=[PhaseEdge])
        sink.emit(make_edge())
        sink.emit(make_late())
        assert len(inner.events) == 1
        assert isinstance(inner.events[0], PhaseEdge)

    def test_predicate(self):
        inner = ListSink()
        sink = FilterSink(inner, predicate=lambda e: e.block_id == 7)
        sink.emit(make_edge(block_id=7))
        sink.emit(make_edge(block_id=8))
        assert [e.block_id for e in inner.events] == [7]


class TestCsvSink:
    def test_writes_rows(self, tmp_path):
        path = tmp_path / "events.csv"
        sink = CsvSink(path)
        sink.emit(make_edge(r=5))
        sink.emit(make_late(r=2))
        sink.close()
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == list(CsvSink.HEADER)
        assert rows[1][0] == "PhaseEdge"
        assert rows[1][2] == "5"
        assert "edge=wake" in rows[1][4]
        assert rows[2][0] == "LateObservation"
        assert sink.n_written == 2

    def test_lazy_open(self, tmp_path):
        path = tmp_path / "sub" / "events.csv"
        sink = CsvSink(path)
        assert not path.exists()
        sink.emit(make_edge())
        sink.close()
        assert path.exists()

    def test_context_manager_closes_file(self, tmp_path):
        path = tmp_path / "events.csv"
        with CsvSink(path) as sink:
            sink.emit(make_edge(r=5))
            assert sink._handle is not None
        assert sink._handle is None
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 2  # header + one event

    def test_context_manager_flushes_on_error(self, tmp_path):
        path = tmp_path / "events.csv"
        with pytest.raises(RuntimeError):
            with CsvSink(path) as sink:
                sink.emit(make_edge(r=5))
                raise RuntimeError("engine died")
        # The row written before the crash reached disk.
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 2

    def test_flush_without_close(self, tmp_path):
        path = tmp_path / "events.csv"
        sink = CsvSink(path)
        sink.emit(make_edge(r=5))
        sink.flush()
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 2
        # Still open: more events append to the same file.
        sink.emit(make_late(r=2))
        sink.close()
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 3

    def test_flush_and_close_before_open_are_noops(self, tmp_path):
        sink = CsvSink(tmp_path / "events.csv")
        sink.flush()
        sink.close()
        assert sink.n_written == 0

    def test_complex_payload_round_trips(self, tmp_path):
        path = tmp_path / "events.csv"
        sink = CsvSink(path)
        sink.emit(
            WindowClosed(
                block_id=1,
                round_index=99,
                time_s=0.0,
                window_start_round=0,
                n_rounds=100,
                report=insufficient_report(),
                quality=QualityReport(100, 0, 0, 0, 100),
            )
        )
        sink.close()
        text = path.read_text()
        assert "WindowClosed" in text
        assert "n_rounds=100" in text

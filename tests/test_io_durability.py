"""Durable persistence: atomicity, digests, quarantine, typed errors.

Every loader is driven through the shared corruption matrix
(:data:`repro.faults.corruption.CORRUPTION_MATRIX`) — the same damage
shapes the chaos harness injects — and must quarantine the file and
raise :class:`CorruptCheckpointError`, never return garbage.
"""

import numpy as np
import pytest

from repro.core import BatchConfig, BatchRunner, reports_equal
from repro.datasets import io as dio
from repro.datasets.io import (
    CheckpointVersionError,
    CorruptCheckpointError,
    iter_observation_stream,
    load_batch_checkpoint,
    load_measurement,
    load_world_arrays,
    save_batch_checkpoint,
    save_measurement,
    save_world_arrays,
    write_csv,
)
from repro.faults import CORRUPTION_MATRIX, InjectedCrash, armed, corrupt_file
from repro.net import Block24, make_always_on, make_dead, make_diurnal, merge_behaviors
from repro.probing import RoundSchedule
from repro.simulation.fastsim import measure_world
from repro.simulation.internet import WorldConfig, generate_world

SCHEDULE = RoundSchedule.for_days(2)


def diurnal_block(block_id):
    behavior = merge_behaviors(
        make_always_on(40),
        make_diurnal(80, phase_s=6 * 3600),
        make_dead(136),
    )
    return Block24(block_id, behavior)


@pytest.fixture(scope="module")
def world():
    return generate_world(WorldConfig(n_blocks=40, seed=5))


@pytest.fixture(scope="module")
def measurement(world):
    return measure_world(world, SCHEDULE)


@pytest.fixture()
def measurement_file(tmp_path, measurement):
    return save_measurement(tmp_path / "m.npz", measurement)


@pytest.fixture(scope="module")
def batch_result():
    blocks = [diurnal_block(i) for i in range(4)]
    runner = BatchRunner(BatchConfig())
    return runner.run(blocks, SCHEDULE, seed=3)


@pytest.fixture()
def checkpoint_file(tmp_path, batch_result):
    entries = dict(enumerate(batch_result.results))
    return save_batch_checkpoint(
        tmp_path / "ck.npz",
        entries,
        SCHEDULE,
        meta={"seed": 3, "n_blocks": len(entries)},
    )


class TestRoundTrip:
    def test_measurement_round_trip(self, measurement_file, measurement):
        loaded = load_measurement(measurement_file)
        np.testing.assert_array_equal(loaded.labels, measurement.labels)
        np.testing.assert_array_equal(loaded.phases, measurement.phases)
        assert loaded.schedule == measurement.schedule

    def test_world_round_trip(self, tmp_path, world):
        path = save_world_arrays(tmp_path / "w.npz", world)
        data = load_world_arrays(path)
        np.testing.assert_array_equal(data["lat"], world.lat)
        assert int(data["config"][0]) == world.config.n_blocks
        # Reserved digest/version keys never leak into the result.
        assert all(not key.startswith("__") for key in data)

    def test_checkpoint_round_trip(self, checkpoint_file, batch_result):
        entries, schedule, meta = load_batch_checkpoint(checkpoint_file)
        assert schedule == SCHEDULE
        assert meta == {"seed": 3, "n_blocks": 4}
        for index, original in enumerate(batch_result.results):
            restored = entries[index]
            np.testing.assert_array_equal(restored.a_short, original.a_short)
            assert reports_equal(restored.report, original.report)

    def test_no_temp_file_left_behind(self, measurement_file):
        leftovers = list(measurement_file.parent.glob("*.tmp"))
        assert leftovers == []


@pytest.mark.parametrize("kind", sorted(CORRUPTION_MATRIX))
class TestCorruptionMatrix:
    def test_measurement_loader_rejects_and_quarantines(
        self, measurement_file, kind
    ):
        corrupt_file(measurement_file, kind)
        with pytest.raises(CorruptCheckpointError, match="corrupt or unreadable"):
            load_measurement(measurement_file)
        assert not measurement_file.exists()
        quarantined = list(
            measurement_file.parent.glob("m.npz.quarantine.*")
        )
        assert len(quarantined) == 1

    def test_checkpoint_loader_rejects_and_quarantines(
        self, checkpoint_file, kind
    ):
        corrupt_file(checkpoint_file, kind)
        with pytest.raises(CorruptCheckpointError, match="corrupt or unreadable"):
            load_batch_checkpoint(checkpoint_file)
        assert not checkpoint_file.exists()
        assert list(checkpoint_file.parent.glob("ck.npz.quarantine.*"))

    def test_observation_stream_rejects(self, checkpoint_file, kind):
        corrupt_file(checkpoint_file, kind)
        with pytest.raises(CorruptCheckpointError):
            list(iter_observation_stream(checkpoint_file))

    def test_world_loader_rejects(self, tmp_path, world, kind):
        path = save_world_arrays(tmp_path / "w.npz", world)
        corrupt_file(path, kind)
        with pytest.raises(CorruptCheckpointError):
            load_world_arrays(path)


class TestQuarantinePolicy:
    def test_error_names_file_and_quarantine_target(self, measurement_file):
        corrupt_file(measurement_file, "truncated-half")
        with pytest.raises(CorruptCheckpointError) as excinfo:
            load_measurement(measurement_file)
        assert str(measurement_file) in str(excinfo.value)
        assert excinfo.value.quarantined_to is not None
        assert excinfo.value.quarantined_to.exists()

    def test_quarantine_can_be_disabled(self, measurement_file):
        corrupt_file(measurement_file, "zero-length")
        with pytest.raises(CorruptCheckpointError) as excinfo:
            load_measurement(measurement_file, quarantine=False)
        assert measurement_file.exists()
        assert excinfo.value.quarantined_to is None

    def test_repeated_damage_gets_distinct_quarantine_names(
        self, tmp_path, measurement
    ):
        path = tmp_path / "m.npz"
        for _ in range(2):
            save_measurement(path, measurement)
            corrupt_file(path, "garbage-header")
            with pytest.raises(CorruptCheckpointError):
                load_measurement(path)
        names = sorted(p.name for p in tmp_path.glob("m.npz.quarantine.*"))
        assert names == ["m.npz.quarantine.0", "m.npz.quarantine.1"]

    def test_missing_file_is_not_a_corruption(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_measurement(tmp_path / "absent.npz")


class TestSchemaVersioning:
    def test_stale_version_is_typed_and_not_quarantined(
        self, tmp_path, measurement
    ):
        path = save_measurement(tmp_path / "m.npz", measurement)
        raw = dict(np.load(path))
        raw.pop("__digest__")
        raw.pop("__version__")
        dio._save_npz(path, "measurement", 1, raw)
        with pytest.raises(CheckpointVersionError, match="version 1, expected 2"):
            load_measurement(path)
        assert path.exists()  # intact file, wrong schema: keep it

    def test_pre_durability_archive_is_rejected(self, tmp_path):
        path = tmp_path / "legacy.npz"
        np.savez_compressed(path, labels=np.zeros(3))
        with pytest.raises(CheckpointVersionError, match="pre-durability"):
            load_measurement(path)
        assert path.exists()

    def test_version_error_is_catchable_as_corrupt(self, tmp_path):
        path = tmp_path / "legacy.npz"
        np.savez_compressed(path, labels=np.zeros(3))
        with pytest.raises(CorruptCheckpointError):
            load_measurement(path)


class TestShapeValidation:
    def test_measurement_with_wrong_schedule_shape(self, tmp_path):
        arrays = {name: np.zeros(4) for name in dio._MEASUREMENT_SERIES}
        arrays["schedule"] = np.zeros(3)  # should be (4,)
        path = tmp_path / "bad.npz"
        dio._save_npz(path, "measurement", dio._MEASUREMENT_VERSION, arrays)
        with pytest.raises(CorruptCheckpointError, match="schedule has shape"):
            load_measurement(path)

    def test_measurement_with_mismatched_series_lengths(self, tmp_path):
        arrays = {name: np.zeros(4) for name in dio._MEASUREMENT_SERIES}
        arrays["phases"] = np.zeros(7)
        arrays["schedule"] = dio._schedule_to_array(SCHEDULE)
        path = tmp_path / "bad.npz"
        dio._save_npz(path, "measurement", dio._MEASUREMENT_VERSION, arrays)
        with pytest.raises(CorruptCheckpointError, match="phases has shape"):
            load_measurement(path)

    def test_checkpoint_missing_entry_arrays(self, tmp_path):
        arrays = {
            "meta": np.array([0, 1]),
            "schedule": dio._schedule_to_array(SCHEDULE),
            "indices": np.array([0], dtype=np.int64),
        }
        path = tmp_path / "bad.npz"
        dio._save_npz(path, "checkpoint", dio._CHECKPOINT_VERSION, arrays)
        with pytest.raises(CorruptCheckpointError, match="index 0"):
            load_batch_checkpoint(path)


class TestAtomicity:
    def test_crash_before_replace_preserves_old_file(
        self, tmp_path, measurement
    ):
        path = save_measurement(tmp_path / "m.npz", measurement)
        before = path.read_bytes()
        with armed("io.measurement.tmp_written"):
            with pytest.raises(InjectedCrash):
                save_measurement(path, measurement)
        assert path.read_bytes() == before
        # And the interrupted write is recoverable: plain retry wins.
        save_measurement(path, measurement)
        load_measurement(path)

    def test_crash_before_tmp_write_preserves_old_file(
        self, tmp_path, measurement
    ):
        path = save_measurement(tmp_path / "m.npz", measurement)
        with armed("io.measurement.begin"):
            with pytest.raises(InjectedCrash):
                save_measurement(path, measurement)
        load_measurement(path)

    def test_write_csv_is_atomic(self, tmp_path):
        path = tmp_path / "table.csv"
        write_csv(path, ["a", "b"], [[1, 2], [3, 4]])
        before = path.read_text()
        with armed("io.table.tmp_written"):
            with pytest.raises(InjectedCrash):
                write_csv(path, ["a", "b"], [[9, 9]])
        assert path.read_text() == before

    def test_write_csv_content(self, tmp_path):
        path = tmp_path / "table.csv"
        write_csv(path, ["x", "y"], [[1, "a"], [2, "b"]])
        lines = path.read_text().splitlines()
        assert lines == ["x,y", "1,a", "2,b"]


class TestEnsureMeasurementSelfHeal:
    def test_corrupt_cache_is_quarantined_and_recomputed(self, tmp_path):
        from repro.datasets import ensure_measurement

        first = ensure_measurement("A16ALL", tmp_path, n_blocks=60)
        cache = tmp_path / "A16ALL-60.npz"
        assert cache.exists()
        corrupt_file(cache, "truncated-half")
        healed = ensure_measurement("A16ALL", tmp_path, n_blocks=60)
        np.testing.assert_array_equal(healed.labels, first.labels)
        assert cache.exists()  # rewritten
        assert list(tmp_path.glob("A16ALL-60.npz.quarantine.*"))


class TestRunnerIntegration:
    def test_corrupt_checkpoint_surfaces_typed_error(self, checkpoint_file):
        corrupt_file(checkpoint_file, "bitflip-middle")
        runner = BatchRunner(BatchConfig(checkpoint_path=checkpoint_file))
        with pytest.raises(CorruptCheckpointError, match="corrupt or unreadable"):
            runner.run([diurnal_block(0)] * 4, SCHEDULE, seed=3)

    def test_quarantined_checkpoint_allows_fresh_run(self, checkpoint_file):
        corrupt_file(checkpoint_file, "truncated-tail")
        config = BatchConfig(checkpoint_path=checkpoint_file)
        blocks = [diurnal_block(i) for i in range(4)]
        with pytest.raises(CorruptCheckpointError):
            BatchRunner(config).run(blocks, SCHEDULE, seed=3)
        # The damaged file was moved aside, so the rerun starts clean.
        result = BatchRunner(config).run(blocks, SCHEDULE, seed=3)
        assert result.n_resumed == 0
        assert len(result.measurements) == 4

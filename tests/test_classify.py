"""Tests for strict/relaxed diurnal classification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classify import (
    ClassifierConfig,
    DiurnalClass,
    classify_many,
    classify_series,
)

ROUND = 660.0
DAY = 86400.0


def series(n_days, components, mean=0.5, noise=0.0, seed=0):
    """Sum of cosine components [(cycles_per_day, amplitude, phase), ...]."""
    n = int(n_days * DAY / ROUND)
    t = np.arange(n) * ROUND
    values = np.full(n, mean)
    for cpd, amp, phase in components:
        values = values + amp * np.cos(2 * np.pi * cpd * t / DAY + phase)
    if noise:
        values = values + np.random.default_rng(seed).normal(0, noise, n)
    return values


class TestLabels:
    def test_clean_daily_tone_is_strict(self):
        report = classify_series(series(14, [(1, 0.3, 0.0)], noise=0.01), ROUND)
        assert report.label is DiurnalClass.STRICT
        assert report.is_strict and report.is_diurnal

    def test_flat_block_is_non_diurnal(self):
        report = classify_series(series(14, [], noise=0.01), ROUND)
        assert report.label is DiurnalClass.NON_DIURNAL
        assert not report.is_diurnal

    def test_weekly_tone_is_non_diurnal(self):
        report = classify_series(series(14, [(1 / 7, 0.3, 0.0)], noise=0.01), ROUND)
        assert report.label is DiurnalClass.NON_DIURNAL

    def test_first_harmonic_dominant_is_relaxed(self):
        """Strong 2 cycles/day with weak fundamental: relaxed but not strict."""
        report = classify_series(
            series(14, [(2, 0.3, 0.0), (1, 0.02, 0.0)], noise=0.01), ROUND
        )
        assert report.label is DiurnalClass.RELAXED

    def test_strong_competitor_downgrades_strict(self):
        """Diurnal strongest but a non-harmonic competitor above half its
        amplitude fails the paper's 2x requirement."""
        report = classify_series(
            series(14, [(1, 0.3, 0.0), (3.5, 0.2, 1.0)], noise=0.005), ROUND
        )
        assert report.dominant_cycles_per_day == pytest.approx(1.0, abs=0.1)
        assert report.label is DiurnalClass.RELAXED

    def test_square_wave_diurnal_is_detected(self):
        """Hard 8h-on/16h-off usage (strong harmonics) must still classify
        as diurnal — the fundamental of a square wave dominates."""
        n = int(14 * DAY / ROUND)
        t = np.arange(n) * ROUND
        values = 0.3 + 0.5 * ((t % DAY) < 8 * 3600)
        report = classify_series(values, ROUND)
        assert report.is_diurnal

    def test_artifact_frequency_is_non_diurnal(self):
        """The 4.36 cycles/day prober-restart artifact must never be
        classified diurnal (paper Figure 10 discussion)."""
        report = classify_series(
            series(35, [(4.36, 0.3, 0.0)], noise=0.01), ROUND
        )
        assert report.label is DiurnalClass.NON_DIURNAL

    def test_phase_reported_for_diurnal(self):
        for phase in (-2.5, 0.0, 1.5):
            report = classify_series(
                series(14, [(1, 0.3, phase)], noise=0.005), ROUND
            )
            delta = np.angle(np.exp(1j * (report.phase - phase)))
            assert abs(delta) < 0.1
            assert report.phase_valid

    def test_too_short_series_rejected(self):
        with pytest.raises(ValueError):
            classify_series(np.ones(3), ROUND)

    def test_sub_day_series_rejected(self):
        with pytest.raises(ValueError):
            classify_series(np.ones(50), ROUND)  # ~9 hours

    def test_strict_ratio_config(self):
        values = series(14, [(1, 0.3, 0.0), (3.5, 0.2, 0.0)], noise=0.005)
        lenient = classify_series(values, ROUND, ClassifierConfig(strict_ratio=1.0))
        strict = classify_series(values, ROUND, ClassifierConfig(strict_ratio=2.0))
        assert lenient.label is DiurnalClass.STRICT
        assert strict.label is DiurnalClass.RELAXED

    def test_bad_ratio_rejected(self):
        with pytest.raises(ValueError):
            ClassifierConfig(strict_ratio=0.5)


class TestBatch:
    def test_matches_scalar_classification(self):
        rows = [
            series(14, [(1, 0.3, 0.0)], noise=0.01, seed=1),
            series(14, [], noise=0.02, seed=2),
            series(14, [(2, 0.3, 0.0)], noise=0.01, seed=3),
            series(14, [(1, 0.3, 1.0), (3.5, 0.25, 0.0)], noise=0.01, seed=4),
        ]
        matrix = np.vstack(rows)
        batch = classify_many(matrix, ROUND)
        for i, row in enumerate(rows):
            single = classify_series(row, ROUND)
            assert batch.label_of(i) is single.label
            assert batch.phases[i] == pytest.approx(single.phase, abs=1e-9)
            assert batch.dominant_k[i] == single.dominant_k
            assert batch.diurnal_k[i] == single.diurnal_k

    def test_masks_and_fractions(self):
        matrix = np.vstack(
            [
                series(14, [(1, 0.3, 0.0)], noise=0.01, seed=1),
                series(14, [], noise=0.02, seed=2),
            ]
        )
        batch = classify_many(matrix, ROUND)
        assert batch.n_blocks == 2
        assert batch.strict_mask.tolist() == [True, False]
        assert batch.fraction_strict() == 0.5
        assert batch.fraction_diurnal() == 0.5


@settings(max_examples=20, deadline=None)
@given(
    phase=st.floats(min_value=-3.1, max_value=3.1),
    amp=st.floats(min_value=0.1, max_value=0.4),
    seed=st.integers(0, 1000),
)
def test_clean_diurnal_always_detected(phase, amp, seed):
    values = series(14, [(1, amp, phase)], noise=amp / 20, seed=seed)
    report = classify_series(values, ROUND)
    assert report.is_diurnal


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000))
def test_white_noise_rarely_strict(seed):
    """Pure noise has no preferred frequency; strict label should be rare.

    We assert the much weaker per-case property that *this* draw is not
    strict with the 2x dominance rule — across 20 random draws a flake
    would require a 2x-dominant peak landing exactly in the diurnal bin.
    """
    values = series(14, [], noise=0.05, seed=seed)
    report = classify_series(values, ROUND)
    assert report.label is not DiurnalClass.STRICT


class TestInsufficientData:
    def test_nan_series_is_insufficient(self):
        values = series(14, [(1, 0.3, 0.0)], noise=0.01, seed=1)
        values[100:200] = np.nan
        report = classify_series(values, ROUND)
        assert report.label is DiurnalClass.INSUFFICIENT
        assert not report.is_diurnal
        assert not report.is_classified
        assert np.isnan(report.phase)

    def test_failed_quality_gate_is_insufficient(self):
        from repro.core.timeseries import QualityReport

        values = series(14, [(1, 0.3, 0.0)], noise=0.01, seed=1)
        bad = QualityReport(
            n_rounds=len(values),
            n_observed=len(values) // 2,
            n_duplicates=0,
            n_filled=len(values) // 2,
            longest_gap=50,
        )
        report = classify_series(values, ROUND, quality=bad)
        assert report.label is DiurnalClass.INSUFFICIENT

    def test_passing_quality_gate_classifies_normally(self):
        from repro.core.timeseries import QualityReport

        values = series(14, [(1, 0.3, 0.0)], noise=0.01, seed=1)
        good = QualityReport(
            n_rounds=len(values),
            n_observed=len(values) - 10,
            n_duplicates=2,
            n_filled=10,
            longest_gap=3,
        )
        report = classify_series(values, ROUND, quality=good)
        assert report.label is DiurnalClass.STRICT

    def test_longest_gap_gate(self):
        from repro.core.timeseries import QualityReport

        values = series(14, [(1, 0.3, 0.0)], noise=0.01, seed=1)
        gappy = QualityReport(
            n_rounds=len(values),
            n_observed=len(values) - 60,
            n_duplicates=0,
            n_filled=60,
            longest_gap=60,
        )
        config = ClassifierConfig(max_longest_gap=40)
        report = classify_series(values, ROUND, config, quality=gappy)
        assert report.label is DiurnalClass.INSUFFICIENT
        relaxed_gate = ClassifierConfig(max_longest_gap=80)
        report = classify_series(values, ROUND, relaxed_gate, quality=gappy)
        assert report.label is DiurnalClass.STRICT

    def test_batch_flags_nan_rows(self):
        clean = series(14, [(1, 0.3, 0.0)], noise=0.01, seed=1)
        broken = clean.copy()
        broken[5] = np.nan
        batch = classify_many(np.vstack([clean, broken, clean]), ROUND)
        assert batch.insufficient_mask.tolist() == [False, True, False]
        assert batch.label_of(0) is DiurnalClass.STRICT
        assert batch.label_of(1) is DiurnalClass.INSUFFICIENT
        assert np.isnan(batch.phases[1])
        # NaN rows don't perturb their neighbours' batched FFT.
        solo = classify_series(clean, ROUND)
        assert batch.phases[0] == pytest.approx(solo.phase, abs=1e-9)

    def test_insufficient_not_counted_as_diurnal_fraction(self):
        clean = series(14, [(1, 0.3, 0.0)], noise=0.01, seed=1)
        broken = np.full_like(clean, np.nan)
        batch = classify_many(np.vstack([clean, broken]), ROUND)
        assert batch.fraction_strict() == 0.5
        assert batch.fraction_diurnal() == 0.5

"""Tests for organization-level diurnal analysis."""

import numpy as np
import pytest

from repro.analysis import GlobalStudy, run_org_table


@pytest.fixture(scope="module")
def study():
    return GlobalStudy.run(n_blocks=3000, seed=21, days=14.0)


@pytest.fixture(scope="module")
def table(study):
    return run_org_table(study=study, min_blocks=40)


class TestOrgTable:
    def test_rows_exist(self, table):
        assert len(table.rows) >= 5

    def test_fractions_are_probabilities(self, table):
        for row in table.rows:
            assert 0.0 <= row.fraction_diurnal <= 1.0

    def test_org_blocks_meet_floor(self, table):
        assert all(row.blocks >= table.min_blocks for row in table.rows)

    def test_orgs_track_their_country(self, table):
        """An ISP's diurnal fraction should sit near its national
        baseline: policy differences exist but do not flip the country."""
        errs = [abs(row.deviates_from_country) for row in table.rows]
        assert np.median(errs) < 0.1

    def test_chinese_orgs_more_diurnal_than_us(self, table):
        cn = [r.fraction_diurnal for r in table.rows if r.country == "CN"]
        us = [r.fraction_diurnal for r in table.rows if r.country == "US"]
        if cn and us:
            assert np.mean(cn) > np.mean(us)

    def test_multi_as_orgs_report_spread(self, table):
        multi = [r for r in table.rows if len(r.per_asn_fractions) >= 2]
        for row in multi:
            assert row.within_org_spread >= 0.0
            assert row.within_org_spread <= 1.0

    def test_row_lookup_by_keyword(self, table):
        name = table.rows[0].name.split()[0]
        assert table.row_of(name).name == table.rows[0].name

    def test_unknown_org_raises(self, table):
        with pytest.raises(KeyError):
            table.row_of("definitely-not-an-isp")

    def test_format_table(self, table):
        text = table.format_table(5)
        assert "organization" in text
        assert len(text.splitlines()) <= 6

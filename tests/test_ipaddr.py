"""Unit tests for IPv4 address/prefix arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.ipaddr import (
    block_of,
    format_block,
    format_ip,
    host_of,
    ip_in_block,
    ip_to_int,
    parse_block,
)


class TestIpToInt:
    def test_zero(self):
        assert ip_to_int("0.0.0.0") == 0

    def test_max(self):
        assert ip_to_int("255.255.255.255") == 0xFFFFFFFF

    def test_known_value(self):
        assert ip_to_int("1.9.21.5") == (1 << 24) | (9 << 16) | (21 << 8) | 5

    def test_rejects_too_few_octets(self):
        with pytest.raises(ValueError):
            ip_to_int("1.2.3")

    def test_rejects_octet_out_of_range(self):
        with pytest.raises(ValueError):
            ip_to_int("1.2.3.256")

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            ip_to_int("not.an.ip.addr")


class TestFormatIp:
    def test_roundtrip_examples(self):
        for text in ("0.0.0.0", "10.0.0.1", "192.168.1.255", "255.255.255.255"):
            assert format_ip(ip_to_int(text)) == text

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            format_ip(-1)

    def test_rejects_too_large(self):
        with pytest.raises(ValueError):
            format_ip(2**32)


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_ip_roundtrip_property(value):
    assert ip_to_int(format_ip(value)) == value


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_block_host_decomposition(ip):
    assert ip_in_block(block_of(ip), host_of(ip)) == ip


class TestBlocks:
    def test_block_of_strips_host(self):
        assert block_of(ip_to_int("27.186.9.200")) == parse_block("27.186.9/24")

    def test_parse_block_paper_notation(self):
        assert format_block(parse_block("27.186.9/24")) == "27.186.9/24"

    def test_parse_block_bare_prefix(self):
        assert parse_block("27.186.9") == parse_block("27.186.9/24")

    def test_parse_block_full_quad(self):
        assert parse_block("27.186.9.0/24") == parse_block("27.186.9/24")

    def test_parse_block_rejects_nonzero_host(self):
        with pytest.raises(ValueError):
            parse_block("27.186.9.5/24")

    def test_parse_block_rejects_two_octets(self):
        with pytest.raises(ValueError):
            parse_block("27.186/24")

    def test_format_block_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            format_block(1 << 24)


@given(st.integers(min_value=0, max_value=2**24 - 1))
def test_block_roundtrip_property(block_id):
    assert parse_block(format_block(block_id)) == block_id

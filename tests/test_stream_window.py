"""Tests for the streaming ring-buffer grid (repro.stream.window)."""

import numpy as np
import pytest

from repro.core.timeseries import clean_observations
from repro.stream.window import RoundWindow

ROUND = 660.0


class TestObserve:
    def test_single_observation(self):
        ring = RoundWindow(capacity=8)
        ring.observe(3, 3 * ROUND, 0.7)
        assert ring.value_at(3) == 0.7
        assert np.isnan(ring.value_at(2))
        assert ring.max_round == 3

    def test_below_base_rejected(self):
        ring = RoundWindow(capacity=8, base=5)
        with pytest.raises(ValueError, match="below the ring base"):
            ring.observe(4, 0.0, 1.0)

    def test_beyond_capacity_rejected(self):
        ring = RoundWindow(capacity=8)
        with pytest.raises(ValueError, match="beyond ring capacity"):
            ring.observe(8, 0.0, 1.0)

    def test_duplicate_most_recent_wins(self):
        ring = RoundWindow(capacity=4)
        ring.observe(1, 100.0, 0.2)
        ring.observe(1, 50.0, 0.9)   # older timestamp: loses
        assert ring.value_at(1) == 0.2
        ring.observe(1, 150.0, 0.5)  # newer: wins
        assert ring.value_at(1) == 0.5

    def test_duplicate_same_timestamp_later_arrival_wins(self):
        # Matches the batch path's stable sort by time: a tie is broken
        # by arrival order, later arrival winning.
        ring = RoundWindow(capacity=4)
        ring.observe(1, 100.0, 0.2)
        ring.observe(1, 100.0, 0.8)
        assert ring.value_at(1) == 0.8

    def test_duplicates_counted(self):
        ring = RoundWindow(capacity=4)
        ring.observe(2, 0.0, 0.1)
        ring.observe(2, 1.0, 0.2)
        ring.observe(2, 2.0, 0.3)
        _, quality = ring.materialize(2, 1)
        assert quality.n_duplicates == 2


class TestAdvanceBase:
    def test_evicts_old_rounds(self):
        ring = RoundWindow(capacity=4)
        for r in range(4):
            ring.observe(r, r * ROUND, float(r))
        ring.advance_base(2)
        assert np.isnan(ring.value_at(0))
        assert np.isnan(ring.value_at(1))
        assert ring.value_at(2) == 2.0
        # Slots freed by eviction accept new rounds.
        ring.observe(4, 4 * ROUND, 4.0)
        ring.observe(5, 5 * ROUND, 5.0)
        assert ring.value_at(4) == 4.0
        assert ring.value_at(5) == 5.0

    def test_noop_backwards(self):
        ring = RoundWindow(capacity=4, base=3)
        ring.observe(3, 0.0, 1.0)
        ring.advance_base(1)
        assert ring.base == 3
        assert ring.value_at(3) == 1.0

    def test_far_jump_clears_everything(self):
        ring = RoundWindow(capacity=4)
        for r in range(4):
            ring.observe(r, r * ROUND, 1.0)
        ring.advance_base(100)
        assert ring.base == 100
        for r in range(100, 104):
            assert np.isnan(ring.value_at(r))


class TestMaterialize:
    def test_matches_clean_observations(self):
        """The ring's grid-and-fill must be bit-identical to the batch path."""
        rng = np.random.default_rng(7)
        n_rounds = 40
        times = np.arange(n_rounds) * ROUND
        values = rng.random(n_rounds)
        keep = rng.random(n_rounds) > 0.3
        obs_t, obs_v = times[keep], values[keep]
        # Add duplicates with differing timestamps inside the rounds.
        dup_t = obs_t[:5] + 10.0
        dup_v = obs_v[:5] + 0.01
        all_t = np.concatenate([obs_t, dup_t])
        all_v = np.concatenate([obs_v, dup_v])

        ring = RoundWindow(capacity=n_rounds)
        for t, v in zip(all_t, all_v):
            ring.observe(int(round(t / ROUND)), t, v)

        for policy in ("hold", "interp", "nan"):
            got, got_q = ring.materialize(0, n_rounds, policy=policy)
            want, want_q = clean_observations(
                all_t, all_v, ROUND, 0.0, n_rounds, policy=policy
            )
            np.testing.assert_array_equal(got, want)
            assert got_q == want_q

    def test_all_missing_window(self):
        ring = RoundWindow(capacity=10)
        filled, quality = ring.materialize(0, 10)
        assert np.isnan(filled).all()
        assert quality.n_observed == 0
        assert quality.n_filled == 0
        assert quality.longest_gap == 10

    def test_window_outside_retained_rejected(self):
        ring = RoundWindow(capacity=8, base=4)
        with pytest.raises(ValueError, match="outside retained"):
            ring.materialize(0, 4)
        with pytest.raises(ValueError, match="outside retained"):
            ring.materialize(8, 8)

    def test_max_gap_respected(self):
        ring = RoundWindow(capacity=10)
        ring.observe(0, 0.0, 1.0)
        ring.observe(9, 9 * ROUND, 1.0)
        filled, quality = ring.materialize(0, 10, policy="hold", max_gap=3)
        # hold fills at most max_gap rounds of a longer gap (same as
        # fill_gaps on the batch path): 3 filled, the rest stay NaN.
        np.testing.assert_array_equal(filled[1:4], [1.0, 1.0, 1.0])
        assert np.isnan(filled[4:9]).all()
        assert quality.n_filled == 3

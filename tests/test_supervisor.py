"""Supervised PoolRunner: parity, deadlines, respawn, quarantine, breaker."""

import os
import time

import pytest

from repro.core import (
    BatchConfig,
    BatchRunner,
    BlockFailure,
    CircuitOpenError,
    PoolConfig,
    PoolRunner,
    RetryPolicy,
)
from repro.obs import EventLogger, MetricsRegistry, read_event_log
from repro.datasets.io import load_batch_checkpoint
from repro.probing import RoundSchedule
from tests.test_batch_runner import (
    AlwaysBroken,
    assert_measurements_identical,
    diurnal_block,
    make_blocks,
)

SCHEDULE = RoundSchedule.for_days(2)


class SleepsForever:
    """A 'block' that wedges its worker (C-loop style: never returns)."""

    def __init__(self, block_id=777):
        self.block_id = block_id

    def realize(self, times, rng):
        time.sleep(3600)


class DiesInWorker:
    """A 'block' whose realization kills the whole worker process."""

    block_id = 888

    def realize(self, times, rng):
        os._exit(99)


class DiesOnceInWorker:
    """Kills the worker on the first attempt ever (marker-guarded)."""

    def __init__(self, block_id, marker):
        self.block_id = block_id
        self.marker = str(marker)

    def realize(self, times, rng):
        try:
            fd = os.open(self.marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            # Second dispatch: behave like a normal block.
            return diurnal_block(self.block_id).realize(times, rng)
        os.close(fd)
        os._exit(99)


def assert_results_identical(a, b):
    assert len(a.results) == len(b.results)
    for left, right in zip(a.results, b.results):
        assert type(left) is type(right)
        if isinstance(left, BlockFailure):
            assert left.error_type == right.error_type
        else:
            assert_measurements_identical(left, right)


class TestParity:
    def test_bit_identical_to_serial(self):
        blocks = make_blocks(6)
        serial = BatchRunner(BatchConfig()).run(blocks, SCHEDULE, seed=7)
        pooled = PoolRunner(PoolConfig(n_workers=3)).run(
            blocks, SCHEDULE, seed=7
        )
        assert_results_identical(serial, pooled)

    def test_single_worker_matches_serial(self):
        blocks = make_blocks(4)
        serial = BatchRunner(BatchConfig()).run(blocks, SCHEDULE, seed=1)
        pooled = PoolRunner(PoolConfig(n_workers=1)).run(
            blocks, SCHEDULE, seed=1
        )
        assert_results_identical(serial, pooled)

    def test_manifest_records_pool_policy(self):
        pooled = PoolRunner(PoolConfig(n_workers=2)).run(
            make_blocks(2), SCHEDULE, seed=0
        )
        manifest = pooled.manifest
        assert manifest.kind == "pool"
        assert manifest.extra["n_workers"] == 2
        assert "max_block_failures" in manifest.extra


class TestCheckpointInterop:
    def test_pool_checkpoint_resumes_in_serial(self, tmp_path):
        blocks = make_blocks(5)
        path = tmp_path / "ck.npz"
        pooled = PoolRunner(
            PoolConfig(batch=BatchConfig(checkpoint_path=path), n_workers=2)
        ).run(blocks, SCHEDULE, seed=4)
        assert path.exists()
        serial = BatchRunner(BatchConfig(checkpoint_path=path)).run(
            blocks, SCHEDULE, seed=4
        )
        assert serial.n_resumed == 5
        assert_results_identical(pooled, serial)

    def test_serial_checkpoint_resumes_in_pool(self, tmp_path):
        blocks = make_blocks(5)
        path = tmp_path / "ck.npz"
        BatchRunner(BatchConfig(checkpoint_path=path)).run(
            blocks[:3], SCHEDULE, seed=4
        )
        # A 3-block checkpoint belongs to a 3-block run; the 5-block
        # pool run must refuse it rather than mis-resume.
        with pytest.raises(ValueError, match="3 blocks"):
            PoolRunner(
                PoolConfig(batch=BatchConfig(checkpoint_path=path))
            ).run(blocks, SCHEDULE, seed=4)

    def test_pool_resumes_partial_checkpoint(self, tmp_path):
        from repro.datasets.io import save_batch_checkpoint

        blocks = make_blocks(5)
        path = tmp_path / "ck.npz"
        full_serial = BatchRunner(BatchConfig()).run(blocks, SCHEDULE, seed=4)
        save_batch_checkpoint(
            path,
            {i: full_serial.results[i] for i in range(2)},
            SCHEDULE,
            meta={"seed": 4, "n_blocks": 5},
        )
        pooled = PoolRunner(
            PoolConfig(batch=BatchConfig(checkpoint_path=path), n_workers=2)
        ).run(blocks, SCHEDULE, seed=4)
        assert pooled.n_resumed == 2
        assert_results_identical(full_serial, pooled)


class TestSupervision:
    @pytest.mark.watchdog(120)
    def test_hung_worker_is_killed_and_block_quarantined(self):
        blocks = make_blocks(3) + [SleepsForever()]
        config = PoolConfig(
            n_workers=2,
            block_deadline_s=1.0,
            max_block_failures=1,
        )
        result = PoolRunner(config).run(blocks, SCHEDULE, seed=2)
        assert len(result.measurements) == 3
        [failure] = result.failures
        assert failure.error_type == "WorkerLost"
        assert "hung" in failure.message
        assert failure.block_id == 777

    @pytest.mark.watchdog(120)
    def test_dead_worker_is_respawned_and_block_quarantined(self):
        blocks = make_blocks(3) + [DiesInWorker()]
        config = PoolConfig(n_workers=2, max_block_failures=2)
        result = PoolRunner(config).run(blocks, SCHEDULE, seed=2)
        assert len(result.measurements) == 3
        [failure] = result.failures
        assert failure.error_type == "WorkerLost"
        assert failure.attempts == 2  # re-dispatched once before quarantine

    @pytest.mark.watchdog(120)
    def test_one_worker_death_does_not_change_results(self, tmp_path):
        marker = tmp_path / "died-once"
        blocks = make_blocks(4)
        serial = BatchRunner(BatchConfig()).run(blocks, SCHEDULE, seed=9)
        chaos_blocks = make_blocks(4)
        chaos_blocks[2] = DiesOnceInWorker(2, marker)
        pooled = PoolRunner(
            PoolConfig(n_workers=2, max_block_failures=3)
        ).run(chaos_blocks, SCHEDULE, seed=9)
        assert marker.exists()  # the injected death really happened
        assert not pooled.failures
        assert_results_identical(serial, pooled)

    @pytest.mark.watchdog(120)
    def test_in_worker_exceptions_stay_block_failures(self):
        # Plain exceptions are the per-block pipeline's job (retry then
        # record), not an environment failure: no worker dies for them.
        blocks = make_blocks(2) + [AlwaysBroken()]
        config = PoolConfig(n_workers=2, breaker_threshold=None)
        result = PoolRunner(config).run(blocks, SCHEDULE, seed=2)
        [failure] = result.failures
        assert failure.error_type == "RuntimeError"
        assert failure.attempts == 2  # BatchConfig.max_retries default


class TestCircuitBreaker:
    @pytest.mark.watchdog(120)
    def test_breaker_trips_on_consecutive_failures(self, tmp_path):
        path = tmp_path / "ck.npz"
        blocks = make_blocks(2) + [AlwaysBroken() for _ in range(4)]
        config = PoolConfig(
            batch=BatchConfig(checkpoint_path=path),
            n_workers=1,  # deterministic completion order
            breaker_threshold=3,
        )
        with pytest.raises(CircuitOpenError, match="3 consecutive"):
            PoolRunner(config).run(blocks, SCHEDULE, seed=2)
        # Completed work was checkpointed before the abort.
        entries, _, meta = load_batch_checkpoint(path)
        assert meta["n_blocks"] == 6
        assert len(entries) >= 3

    @pytest.mark.watchdog(120)
    def test_breaker_disabled_runs_to_completion(self):
        blocks = [AlwaysBroken() for _ in range(4)]
        config = PoolConfig(n_workers=2, breaker_threshold=None)
        result = PoolRunner(config).run(blocks, SCHEDULE, seed=2)
        assert len(result.failures) == 4


class Gate:
    """Backpressure signal that asserts for its first ``n`` polls."""

    def __init__(self, n):
        self.n = n

    def __call__(self):
        if self.n > 0:
            self.n -= 1
            return True
        return False


class TestBackpressure:
    @pytest.mark.watchdog(120)
    def test_paused_dispatch_resumes_with_identical_results(self, tmp_path):
        blocks = make_blocks(4)
        serial = BatchRunner(BatchConfig()).run(blocks, SCHEDULE, seed=11)
        registry = MetricsRegistry()
        events = EventLogger(tmp_path / "events.jsonl", level="debug")
        pooled = PoolRunner(
            PoolConfig(n_workers=2),
            metrics=registry,
            events=events,
            backpressure=Gate(3),
        ).run(blocks, SCHEDULE, seed=11)
        events.close()
        # The pause delayed dispatch but changed nothing about the work.
        assert_results_identical(serial, pooled)
        stats = pooled.manifest.extra["pool_stats"]
        assert stats["dispatch_pauses"] == 1
        assert registry.counter("pool_dispatch_pauses_total").value == 1
        names = [e["event"] for e in read_event_log(tmp_path / "events.jsonl")]
        paused = names.index("pool.dispatch_paused")
        resumed = names.index("pool.dispatch_resumed")
        assert paused < resumed < names.index("run.end")

    @pytest.mark.watchdog(120)
    def test_signal_never_polled_when_queue_is_empty(self):
        # An idle pool must not count pauses: the signal matters only
        # while there are blocks waiting to dispatch.
        calls = []

        def noisy_gate():
            calls.append(1)
            return True

        result = PoolRunner(
            PoolConfig(n_workers=2), backpressure=noisy_gate
        ).run([], SCHEDULE, seed=0)
        assert not result.results
        assert not calls


class TestRespawnBackoff:
    @pytest.mark.watchdog(120)
    def test_crash_loop_respawns_are_paced(self, tmp_path):
        events = EventLogger(tmp_path / "events.jsonl", level="debug")
        blocks = make_blocks(2) + [DiesInWorker()]
        config = PoolConfig(
            n_workers=1,
            max_block_failures=2,
            respawn_backoff=RetryPolicy(max_retries=4, base_delay_s=0.05),
        )
        result = PoolRunner(config, events=events).run(
            blocks, SCHEDULE, seed=2
        )
        events.close()
        assert len(result.measurements) == 2
        [failure] = result.failures
        assert failure.error_type == "WorkerLost"
        backoffs = [
            e
            for e in read_event_log(tmp_path / "events.jsonl")
            if e["event"] == "worker.respawn_backoff"
        ]
        # The poison block killed its worker twice; the second respawn
        # of the same slot waited longer than the first.
        assert [b["streak"] for b in backoffs] == [1, 2]
        assert backoffs[0]["delay_s"] == pytest.approx(0.05)
        assert backoffs[1]["delay_s"] == pytest.approx(0.10)

    @pytest.mark.watchdog(120)
    def test_default_policy_respawns_instantly(self, tmp_path):
        events = EventLogger(tmp_path / "events.jsonl", level="debug")
        blocks = make_blocks(2) + [DiesInWorker()]
        PoolRunner(
            PoolConfig(n_workers=1, max_block_failures=2), events=events
        ).run(blocks, SCHEDULE, seed=2)
        events.close()
        records = read_event_log(tmp_path / "events.jsonl")
        assert not [e for e in records if e["event"] == "worker.respawn_backoff"]


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_workers": 0},
            {"block_deadline_s": 0},
            {"max_block_failures": 0},
            {"breaker_threshold": 0},
            {"heartbeat_interval_s": 0},
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            PoolConfig(**kwargs)

"""Tests for repro.obs.profiler: sampling, collapsed output, lifecycle."""

import threading
import time

import pytest

from repro.obs.profiler import SamplingProfiler, profile_for


def spin_for(seconds: float) -> None:
    """Busy-work with a recognizable frame for the sampler to catch."""
    deadline = time.perf_counter() + seconds
    x = 0
    while time.perf_counter() < deadline:
        x += 1


class TestLifecycle:
    def test_start_stop_idempotent(self):
        profiler = SamplingProfiler(interval_s=0.001)
        assert not profiler.running
        profiler.start()
        assert profiler.running
        assert profiler.start() is profiler  # no second thread
        profiler.stop()
        assert not profiler.running
        profiler.stop()  # stopping a stopped profiler is a no-op
        assert profiler.duration_s > 0.0

    def test_context_manager(self):
        with SamplingProfiler(interval_s=0.001) as profiler:
            assert profiler.running
            spin_for(0.05)
        assert not profiler.running
        assert profiler.n_samples > 0

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError, match="interval_s"):
            SamplingProfiler(interval_s=0.0)
        with pytest.raises(ValueError, match="max_depth"):
            SamplingProfiler(max_depth=0)
        with pytest.raises(ValueError, match="seconds"):
            profile_for(0.0)


class TestSampling:
    def test_captures_busy_frames(self):
        with SamplingProfiler(interval_s=0.001) as profiler:
            spin_for(0.1)
        collapsed = profiler.collapsed()
        assert "test_obs_profiler.py:spin_for" in collapsed

    def test_stacks_are_root_first_and_thread_prefixed(self):
        with SamplingProfiler(interval_s=0.001) as profiler:
            spin_for(0.1)
        busy = [
            stack for stack in profiler.counts()
            if "spin_for" in stack and stack.startswith("MainThread;")
        ]
        assert busy
        frames = busy[0].split(";")
        # Root first: the thread name leads and the busy function is
        # the leaf, with its callers (the pytest machinery) in between.
        assert frames[0] == "MainThread"
        assert frames[-1] == "test_obs_profiler.py:spin_for"
        assert len(frames) > 2

    def test_other_threads_sampled_under_their_name(self):
        stop = threading.Event()
        worker = threading.Thread(
            target=stop.wait, name="obs-test-worker", daemon=True
        )
        worker.start()
        try:
            with SamplingProfiler(interval_s=0.001) as profiler:
                spin_for(0.1)
        finally:
            stop.set()
            worker.join()
        assert any(
            stack.startswith("obs-test-worker;")
            for stack in profiler.counts()
        )

    def test_sampler_excludes_itself(self):
        with SamplingProfiler(interval_s=0.001) as profiler:
            spin_for(0.05)
        assert not any(
            stack.startswith("obs-profiler;")
            for stack in profiler.counts()
        )

    def test_max_depth_truncates(self):
        def recurse(n):
            if n == 0:
                spin_for(0.08)
            else:
                recurse(n - 1)

        with SamplingProfiler(interval_s=0.001, max_depth=5) as profiler:
            recurse(50)
        for stack in profiler.counts():
            # thread name + at most max_depth frames
            assert len(stack.split(";")) <= 6


class TestOutput:
    def test_collapsed_sorted_hottest_first(self):
        profiler = SamplingProfiler()
        profiler._counts = {"t;x:f": 3, "t;y:g": 10, "t;z:h": 3}
        lines = profiler.collapsed().splitlines()
        assert lines[0] == "t;y:g 10"
        assert [ln.rsplit(" ", 1)[1] for ln in lines] == ["10", "3", "3"]

    def test_snapshot_shape(self):
        with SamplingProfiler(interval_s=0.001) as profiler:
            spin_for(0.05)
        snap = profiler.snapshot()
        assert snap["n_samples"] == profiler.n_samples
        assert snap["duration_s"] > 0.0
        assert snap["stacks"] == profiler.counts()

    def test_profile_for_returns_collapsed_text(self):
        collapsed = profile_for(0.05, interval_s=0.001)
        assert collapsed  # this process is never fully idle
        for line in collapsed.splitlines():
            stack, count = line.rsplit(" ", 1)
            assert ";" in stack
            assert int(count) >= 1

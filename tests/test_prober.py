"""Tests for the adaptive prober."""

import numpy as np
import pytest

from repro.net import Block24, Outage, make_always_on, make_dead, merge_behaviors
from repro.probing import AdaptiveProber, ProberConfig, RoundSchedule
from repro.probing.prober import FixedAvailability


def make_oracle(p_response=0.9, n_active=50, n_rounds=200, outages=(), seed=0):
    behavior = merge_behaviors(
        make_always_on(n_active, p_response=p_response), make_dead(256 - n_active)
    )
    block = Block24(1, behavior, list(outages))
    times = np.arange(n_rounds) * 660.0
    return block.realize(times, np.random.default_rng(seed))


class TestProbeRound:
    def test_stops_on_first_positive(self):
        oracle = make_oracle(p_response=1.0)
        prober = AdaptiveProber(oracle.ever_active)
        p, t = prober.probe_round(oracle, 0, availability=0.9)
        assert (p, t) == (1, 1)

    def test_respects_max_probes(self):
        oracle = make_oracle(p_response=0.0)
        prober = AdaptiveProber(oracle.ever_active, ProberConfig(max_probes_per_round=7))
        p, t = prober.probe_round(oracle, 0, availability=0.2)
        assert p == 0
        assert t <= 7

    def test_empty_target_list_sends_nothing(self):
        oracle = make_oracle()
        prober = AdaptiveProber(np.array([], dtype=np.intp))
        assert prober.probe_round(oracle, 0, 0.5) == (0, 0)

    def test_low_availability_needs_more_probes(self):
        """Paper Figure 2: A≈0.19 block averages ~5 probes/round."""
        oracle = make_oracle(p_response=0.19, n_active=245, n_rounds=500, seed=3)
        prober = AdaptiveProber(oracle.ever_active)
        log = prober.run(oracle, RoundSchedule(500), FixedAvailability(0.19))
        assert 3.5 < log.mean_probes_per_round() < 7.0

    def test_high_availability_is_cheap(self):
        oracle = make_oracle(p_response=0.9, n_rounds=500)
        prober = AdaptiveProber(oracle.ever_active)
        log = prober.run(oracle, RoundSchedule(500), FixedAvailability(0.9))
        assert log.mean_probes_per_round() < 1.5


class TestWalk:
    def test_walk_covers_all_targets(self):
        """The pseudorandom walk eventually samples every ever-active address."""
        oracle = make_oracle(p_response=0.0, n_active=30, n_rounds=100)
        prober = AdaptiveProber(oracle.ever_active, ProberConfig(max_probes_per_round=1))
        seen = set()
        for r in range(100):
            before = prober._cursor
            prober.probe_round(oracle, r, availability=0.5)
            seen.add(int(prober._walk[before]))
        assert seen == set(oracle.ever_active.tolist())

    def test_walk_is_seeded(self):
        oracle = make_oracle()
        a = AdaptiveProber(oracle.ever_active, ProberConfig(walk_seed=7))
        b = AdaptiveProber(oracle.ever_active, ProberConfig(walk_seed=7))
        assert (a._walk == b._walk).all()

    def test_restart_resets_cursor_and_belief(self):
        oracle = make_oracle(p_response=0.0)
        prober = AdaptiveProber(oracle.ever_active)
        for r in range(5):
            prober.probe_round(oracle, r, 0.9)
        assert prober._cursor != 0
        prober.restart()
        assert prober._cursor == 0
        assert prober.belief.belief == prober.belief.config.prior_up


class TestRun:
    def test_log_shapes(self):
        oracle = make_oracle(n_rounds=120)
        prober = AdaptiveProber(oracle.ever_active)
        log = prober.run(oracle, RoundSchedule(120))
        assert log.n_rounds == 120
        assert log.total_probes == log.totals.sum()

    def test_schedule_mismatch_rejected(self):
        oracle = make_oracle(n_rounds=10)
        prober = AdaptiveProber(oracle.ever_active)
        with pytest.raises(ValueError):
            prober.run(oracle, RoundSchedule(11))

    def test_outage_detected(self):
        outage = Outage(660.0 * 50, 660.0 * 80)
        oracle = make_oracle(p_response=0.9, n_rounds=150, outages=[outage])
        prober = AdaptiveProber(oracle.ever_active)
        log = prober.run(oracle, RoundSchedule(150), FixedAvailability(0.9))
        detected = log.detected_outages()
        assert len(detected) >= 1
        start, end = detected[0]
        assert 50 <= start <= 55  # a few rounds of detection lag
        assert 80 <= end <= 85

    def test_healthy_block_no_outages(self):
        oracle = make_oracle(p_response=0.95, n_rounds=300)
        prober = AdaptiveProber(oracle.ever_active)
        log = prober.run(oracle, RoundSchedule(300), FixedAvailability(0.9))
        assert log.detected_outages() == []

    def test_probe_budget_under_paper_bound(self):
        """Outage detection costs < 20 probes/hour/block (paper section 1)."""
        oracle = make_oracle(p_response=0.7, n_rounds=1000, seed=9)
        prober = AdaptiveProber(oracle.ever_active)
        schedule = RoundSchedule(1000)
        log = prober.run(oracle, schedule, FixedAvailability(0.7))
        assert log.probe_rate_per_hour(schedule) < 20

    def test_restart_rounds_reset_feedback(self):
        oracle = make_oracle(n_rounds=100)
        schedule = RoundSchedule(100, restart_interval_s=660.0 * 25)

        class CountingFeedback(FixedAvailability):
            def __init__(self):
                super().__init__(0.9)
                self.restarts = 0

            def restart(self):
                self.restarts += 1

        feedback = CountingFeedback()
        AdaptiveProber(oracle.ever_active).run(oracle, schedule, feedback)
        assert feedback.restarts == len(schedule.restart_rounds())


class TestProbeLogOutages:
    def test_outage_runs_at_edges(self):
        from repro.probing.prober import ProbeLog

        states = np.array([-1, -1, 1, 1, -1], dtype=np.int8)
        log = ProbeLog(
            positives=np.zeros(5, dtype=np.int16),
            totals=np.ones(5, dtype=np.int16),
            states=states,
            beliefs=np.zeros(5),
        )
        assert log.detected_outages() == [(0, 2), (4, 5)]

    def test_no_outages(self):
        from repro.probing.prober import ProbeLog

        log = ProbeLog(
            positives=np.ones(4, dtype=np.int16),
            totals=np.ones(4, dtype=np.int16),
            states=np.ones(4, dtype=np.int8),
            beliefs=np.ones(4),
        )
        assert log.detected_outages() == []

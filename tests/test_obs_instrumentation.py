"""End-to-end instrumentation: counters must equal observed pipeline facts.

Every assertion here cross-checks a metric against an independently
observable quantity (sink events, stream-length deltas, runner results),
so a drifting counter is caught as an exact mismatch, not a trend.
"""

import numpy as np
import pytest

from repro.core import BatchConfig, BatchRunner
from repro.core.classify import (
    ClassifierConfig,
    DiurnalClass,
    classify_many,
    classify_series,
)
from repro.core.timeseries import clean_observations
from repro.datasets.io import iter_observation_stream
from repro.faults import FaultConfig
from repro.faults.plan import FaultPlan
from repro.net import (
    Block24,
    make_always_on,
    make_dead,
    make_diurnal,
    merge_behaviors,
)
from repro.obs import (
    MetricsRegistry,
    Tracer,
    install_metrics,
    uninstall_metrics,
)
from repro.probing import RoundSchedule
from repro.stream import (
    ClassificationTransition,
    LateObservation,
    ListSink,
    StreamConfig,
    StreamEngine,
    WindowClosed,
)

ROUND = 660.0
DAY = 86400.0

SCHEDULE = RoundSchedule.for_days(3)


def diurnal_block(block_id):
    behavior = merge_behaviors(
        make_always_on(40),
        make_diurnal(80, phase_s=6 * 3600),
        make_dead(136),
    )
    return Block24(block_id, behavior)


def sparse_block(block_id):
    """Too few ever-active addresses: the prober refuses (skipped)."""
    behavior = merge_behaviors(make_always_on(5), make_dead(251))
    return Block24(block_id, behavior)


class AlwaysBroken:
    block_id = 666

    def realize(self, times, rng):
        raise RuntimeError("synthetic block failure")


def diurnal_stream(n_days, seed=0):
    rng = np.random.default_rng(seed)
    n = int(n_days * DAY / ROUND)
    times = np.arange(n) * ROUND
    values = (
        0.5
        + 0.4 * np.sin(2 * np.pi * times / DAY)
        + 0.02 * rng.standard_normal(n)
    )
    return times, values


@pytest.fixture
def installed_registry():
    """A registry wired into the module-level instruments, then unwired."""
    registry = MetricsRegistry()
    install_metrics(registry)
    try:
        yield registry
    finally:
        uninstall_metrics()


class TestStreamEngineMetrics:
    def test_counters_match_sink_events(self):
        times, values = diurnal_stream(6, seed=1)
        registry = MetricsRegistry()
        sink = ListSink()
        config = StreamConfig.for_days(2.0, label_dwell=1)
        engine = StreamEngine(config, sinks=[sink], metrics=registry)
        engine.ingest_many(0, times, values)
        engine.flush()

        snap = registry.snapshot()["counters"]
        closes = sink.of_type(WindowClosed)
        assert snap['stream_window_closes_total{partial="false"}'] == len(
            closes
        )
        assert snap["stream_observations_total"] == len(times)
        assert snap["stream_label_transitions_total"] == len(
            sink.of_type(ClassificationTransition)
        )
        assert registry.snapshot()["gauges"]["stream_tracked_blocks"] == 1
        assert snap["stream_rounds_frozen_total"] > 0
        assert snap["stream_dft_reseeds_total"] >= 1

    def test_late_counter_matches_events(self):
        times, values = diurnal_stream(3, seed=2)
        registry = MetricsRegistry()
        sink = ListSink()
        config = StreamConfig.for_days(1.0, lateness_rounds=2)
        engine = StreamEngine(config, sinks=[sink], metrics=registry)
        engine.ingest_many(0, times, values)
        # Replay the first observations far behind the watermark.
        engine.ingest(0, float(times[0]), float(values[0]))
        engine.ingest(0, float(times[1]), float(values[1]))
        engine.flush()  # counters sync at close/flush boundaries
        late = sink.of_type(LateObservation)
        assert len(late) == 2
        snap = registry.snapshot()["counters"]
        assert snap["stream_late_observations_total"] == len(late)
        assert snap["stream_observations_total"] == len(times)

    def test_partial_close_counter(self):
        # 3.5 days with a 2-day window: one full close, a 1.5-day tail
        # (long enough to classify, so the partial close succeeds).
        times, values = diurnal_stream(3.5, seed=3)
        registry = MetricsRegistry()
        config = StreamConfig.for_days(2.0, label_dwell=1)
        engine = StreamEngine(config, metrics=registry)
        engine.ingest_many(0, times, values)
        engine.flush(close_partial=True)
        snap = registry.snapshot()["counters"]
        assert snap['stream_window_closes_total{partial="true"}'] == 1

    def test_close_histogram_and_trace(self):
        times, values = diurnal_stream(4, seed=4)
        registry = MetricsRegistry()
        tracer = Tracer()
        config = StreamConfig.for_days(2.0)
        engine = StreamEngine(config, metrics=registry, tracer=tracer)
        engine.ingest_many(0, times, values)
        engine.flush()
        hist = registry.snapshot()["histograms"]["stream_close_seconds"]
        assert hist["count"] >= 1
        timings = tracer.stage_timings()
        assert timings["stream.close_window"]["count"] == hist["count"]

    def test_manifest(self):
        times, values = diurnal_stream(4, seed=5)
        registry = MetricsRegistry()
        config = StreamConfig.for_days(2.0)
        engine = StreamEngine(config, metrics=registry)
        engine.ingest_many(0, times, values)
        engine.flush()
        manifest = engine.manifest(dataset="synthetic")
        assert manifest.kind == "stream"
        assert manifest.n_blocks == 1
        assert manifest.extra["dataset"] == "synthetic"
        assert manifest.extra["window_rounds"] == config.window_rounds
        assert (
            manifest.metrics["counters"]["stream_observations_total"]
            == len(times)
        )


class TestBatchRunnerMetrics:
    def test_outcome_counters(self):
        blocks = [diurnal_block(0), sparse_block(1), AlwaysBroken()]
        registry = MetricsRegistry()
        runner = BatchRunner(BatchConfig(max_retries=1), metrics=registry)
        result = runner.run(blocks, SCHEDULE, seed=0)
        snap = registry.snapshot()["counters"]
        assert snap['batch_blocks_total{outcome="measured"}'] == 1
        assert snap['batch_blocks_total{outcome="skipped"}'] == 1
        assert snap['batch_blocks_total{outcome="failed"}'] == 1
        # Broken block: 1 first attempt + 1 retry; others 1 attempt each.
        assert snap["batch_attempts_total"] == 4
        assert snap["batch_retries_total"] == 1
        assert len(result.failures) == 1

    def test_checkpoint_counters_and_io_metrics(
        self, tmp_path, installed_registry
    ):
        path = tmp_path / "ckpt.npz"
        runner = BatchRunner(
            BatchConfig(checkpoint_path=path, checkpoint_every=1),
            metrics=installed_registry,
        )
        runner.run([diurnal_block(0), diurnal_block(1)], SCHEDULE, seed=3)
        snap = installed_registry.snapshot()
        assert snap["counters"]["batch_checkpoints_total"] == 2
        assert snap["counters"]["io_checkpoint_saves_total"] == 2
        # Flushes wrote 1 then 2 entries.
        assert snap["counters"]["io_checkpoint_entries_saved_total"] == 3
        assert snap["gauges"]["io_checkpoint_bytes"] == path.stat().st_size
        hist = snap["histograms"]["batch_checkpoint_seconds"]
        assert hist["count"] == 2

        # Resume: everything comes from the checkpoint.
        resumed_reg = MetricsRegistry()
        install_metrics(resumed_reg)
        try:
            runner2 = BatchRunner(
                BatchConfig(checkpoint_path=path, checkpoint_every=1),
                metrics=resumed_reg,
            )
            result = runner2.run(
                [diurnal_block(0), diurnal_block(1)], SCHEDULE, seed=3
            )
        finally:
            install_metrics(installed_registry)
        assert result.n_resumed == 2
        snap2 = resumed_reg.snapshot()["counters"]
        assert snap2["batch_blocks_resumed_total"] == 2
        assert snap2["io_checkpoint_loads_total"] == 1
        assert snap2["io_checkpoint_entries_loaded_total"] == 2
        assert snap2.get("batch_attempts_total", 0) == 0

    def test_manifest_attached(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        runner = BatchRunner(
            BatchConfig(faults=FaultConfig(round_drop_rate=0.05)),
            metrics=registry,
            tracer=tracer,
        )
        result = runner.run([diurnal_block(0)], SCHEDULE, seed=7)
        manifest = result.manifest
        assert manifest is not None
        assert manifest.kind == "batch"
        assert manifest.seed == 7
        assert manifest.n_blocks == 1
        assert "RoundDrop" in manifest.fault_plan
        assert manifest.quality_gates["max_gap_fraction"] == pytest.approx(
            ClassifierConfig().max_gap_fraction
        )
        assert manifest.stage_timings["batch.run"]["count"] == 1
        assert manifest.stage_timings["batch.measure_block"]["count"] == 1

    def test_manifest_without_instrumentation_is_still_attached(self):
        result = BatchRunner().run([diurnal_block(0)], SCHEDULE, seed=1)
        assert result.manifest is not None
        assert result.manifest.fault_plan == "clean (no faults)"
        assert result.manifest.metrics == {
            "counters": {}, "gauges": {}, "histograms": {}, "meters": {},
        }


class TestClassifyMetrics:
    def test_verdict_distribution(self, installed_registry):
        times, values = diurnal_stream(3, seed=8)
        report_diurnal = classify_series(values, ROUND)
        n = int(2 * DAY / ROUND)
        t = np.arange(n) * ROUND
        # 4 cycles/day: all the energy sits in a harmonic, not the
        # diurnal bin, so this is non-diurnal.
        fast = 0.5 + 0.4 * np.sin(2 * np.pi * t / (DAY / 4))
        report_fast = classify_series(fast, ROUND)
        assert report_diurnal.label is DiurnalClass.STRICT
        assert report_fast.label is DiurnalClass.NON_DIURNAL
        snap = installed_registry.snapshot()["counters"]
        by_label = {
            label.value: snap.get(
                f'classify_verdicts_total{{label="{label.value}"}}', 0
            )
            for label in DiurnalClass
        }
        assert sum(by_label.values()) == 2
        assert by_label[DiurnalClass.STRICT.value] == 1
        assert by_label[DiurnalClass.NON_DIURNAL.value] == 1
        hist = installed_registry.snapshot()["histograms"]
        assert hist['classify_fft_seconds{path="single"}']["count"] == 2

    def test_gate_trip_counted(self, installed_registry):
        n = int(2 * DAY / ROUND)
        # Only the first few rounds observed: the quality gate refuses.
        times = np.arange(3) * ROUND
        series, quality = clean_observations(
            times, np.full(3, 0.5), ROUND, 0.0, n
        )
        report = classify_series(series, ROUND, quality=quality)
        assert report.label is DiurnalClass.INSUFFICIENT
        snap = installed_registry.snapshot()["counters"]
        assert snap["classify_quality_gate_trips_total"] == 1
        assert (
            snap['classify_verdicts_total{label="insufficient-data"}'] == 1
        )

    def test_classify_many_counts_batch(self, installed_registry):
        n = int(2 * DAY / ROUND)
        t = np.arange(n) * ROUND
        diurnal = 0.5 + 0.4 * np.sin(2 * np.pi * t / DAY)
        flat = np.full(n, 0.5)
        batch = classify_many(np.vstack([diurnal, flat, flat]), ROUND)
        assert batch.n_blocks == 3
        snap = installed_registry.snapshot()
        total = sum(
            v
            for k, v in snap["counters"].items()
            if k.startswith("classify_verdicts_total")
        )
        assert total == 3
        assert (
            snap["histograms"]['classify_fft_seconds{path="batch"}']["count"]
            == 1
        )

    def test_timeseries_cleaning_counters(self, installed_registry):
        n = 20
        times = np.arange(n, dtype=np.float64) * ROUND
        keep = np.ones(n, dtype=bool)
        keep[5:8] = False  # a 3-round gap, filled by the hold policy
        series, quality = clean_observations(
            times[keep], np.full(keep.sum(), 0.5), ROUND, 0.0, n
        )
        snap = installed_registry.snapshot()["counters"]
        assert snap["timeseries_cleanings_total"] == 1
        assert snap["timeseries_rounds_observed_total"] == quality.n_observed
        assert snap["timeseries_rounds_filled_total"] == quality.n_filled
        assert quality.n_filled == 3

    def test_uninstall_restores_null(self):
        registry = MetricsRegistry()
        install_metrics(registry)
        uninstall_metrics()
        classify_series(np.full(int(2 * DAY / ROUND), 0.5), ROUND)
        # Binding registered the metric names, but nothing incremented
        # them after uninstall.
        counters = registry.snapshot()["counters"]
        assert all(v == 0 for v in counters.values())


class TestFaultMetrics:
    """Injected events must equal observed stream/oracle deltas exactly."""

    def test_stream_degradation_deltas(self):
        registry = MetricsRegistry()
        plan = FaultPlan(
            FaultConfig(
                round_drop_rate=0.1,
                round_duplicate_rate=0.1,
                gaps_per_day=2.0,
                seed=11,
            ),
            metrics=registry,
        )
        times, values = diurnal_stream(3, seed=12)
        out_times, _ = plan.degrade_stream(times, values, ROUND)
        snap = registry.snapshot()["counters"]
        removed = sum(
            v
            for k, v in snap.items()
            if k.startswith("faults_observations_removed_total")
        )
        added = sum(
            v
            for k, v in snap.items()
            if k.startswith("faults_observations_added_total")
        )
        assert len(times) - removed + added == len(out_times)
        assert removed > 0  # the drop/gap injectors did fire at these rates

    def test_probe_loss_counter_matches_oracle(self):
        registry = MetricsRegistry()
        plan = FaultPlan(
            FaultConfig(probe_loss_rate=0.2, seed=13), metrics=registry
        )
        schedule = RoundSchedule.for_days(1)
        oracle = diurnal_block(0).realize(
            schedule.times(), np.random.default_rng(0)
        )
        lossy = plan.wrap_oracle(oracle)
        hosts = lossy.ever_active
        for r in range(min(50, schedule.n_rounds)):
            lossy.probe_many(hosts, r)
        assert lossy.n_lost > 0
        snap = registry.snapshot()["counters"]
        key = 'faults_probe_losses_total{injector="ProbeLossInjector"}'
        assert snap[key] == lossy.n_lost

    def test_crash_counter_matches_rounds(self):
        registry = MetricsRegistry()
        plan = FaultPlan(
            FaultConfig(crashes_per_day=4.0, seed=14), metrics=registry
        )
        schedule = RoundSchedule.for_days(7)
        crashes = plan.crash_rounds(schedule)
        assert len(crashes) > 0
        snap = registry.snapshot()["counters"]
        key = 'faults_crash_restarts_total{injector="ProberCrashInjector"}'
        assert snap[key] == len(crashes)

    def test_for_block_plans_share_registry(self):
        registry = MetricsRegistry()
        plan = FaultPlan(
            FaultConfig(round_drop_rate=0.2, seed=15), metrics=registry
        )
        times, values = diurnal_stream(2, seed=16)
        for index in range(3):
            plan.for_block(index).degrade_stream(times, values, ROUND)
        snap = registry.snapshot()["counters"]
        key = 'faults_observations_removed_total{injector="RoundDropInjector"}'
        assert snap[key] > 0

    def test_counting_never_perturbs_faults(self):
        """Metrics on or off, a seeded plan degrades identically."""
        times, values = diurnal_stream(3, seed=17)
        config = FaultConfig(
            round_drop_rate=0.1, round_duplicate_rate=0.1, seed=18
        )
        t_null, v_null = FaultPlan(config).degrade_stream(
            times, values, ROUND
        )
        t_inst, v_inst = FaultPlan(
            config, metrics=MetricsRegistry()
        ).degrade_stream(times, values, ROUND)
        assert np.array_equal(t_null, t_inst)
        assert np.array_equal(v_null, v_inst)


class TestReplayMetrics:
    def test_replayed_counter(self, tmp_path, installed_registry):
        path = tmp_path / "ckpt.npz"
        runner = BatchRunner(BatchConfig(checkpoint_path=path))
        runner.run([diurnal_block(0)], SCHEDULE, seed=2)
        n = sum(1 for _ in iter_observation_stream(path))
        assert n > 0
        snap = installed_registry.snapshot()["counters"]
        assert snap["io_replayed_observations_total"] == n

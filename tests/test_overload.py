"""Tests for the overload-resilience layer (repro.stream.overload).

The load-bearing properties: the ingest queue is bounded by
``capacity`` no matter what producers do, backpressure asserts/releases
with watermark hysteresis, the shed set is a deterministic function of
the seed and the arrival/pump sequence, shed priorities protect
edge-adjacent and provisional observations over mid-plateau samples of
long-stable blocks, and every close still matches the batch oracle over
the observations that actually survived admission.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classify import reports_equal
from repro.obs import MetricsRegistry
from repro.stream import (
    AdmissionController,
    ListSink,
    ObservationShed,
    OverloadConfig,
    ShedDegraded,
    StreamConfig,
    StreamEngine,
    WindowClosed,
    batch_window_report,
    paced_replay,
)
from tests.test_stream_engine import DAY, ROUND, diurnal_stream


def make_pair(capacity=64, seed=1, window_days=2.0, **overload_kwargs):
    config = StreamConfig.for_days(window_days, label_dwell=1)
    sink = ListSink()
    engine = StreamEngine(config, sinks=[sink])
    controller = AdmissionController(
        engine, OverloadConfig(capacity=capacity, seed=seed, **overload_kwargs)
    )
    return engine, controller, sink


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(capacity=0), "capacity"),
            (dict(low_watermark=0.9, high_watermark=0.5), "watermarks"),
            (dict(low_watermark=0.0), "watermarks"),
            (dict(high_watermark=1.5), "watermarks"),
            (dict(edge_guard_rounds=-1), "edge_guard_rounds"),
            (dict(stable_closes=0), "stable_closes"),
            (dict(shed_log_capacity=0), "shed_log_capacity"),
        ],
    )
    def test_rejects_bad_values(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            OverloadConfig(**kwargs)

    def test_watermark_depths(self):
        config = OverloadConfig(
            capacity=100, high_watermark=0.75, low_watermark=0.5
        )
        assert config.high_depth == 75
        assert config.low_depth == 50


class TestDropInParity:
    def test_unloaded_controller_is_transparent(self):
        """Fast-path ingestion must be bit-identical to a bare engine."""
        times, values = diurnal_stream(6, seed=3)
        config = StreamConfig.for_days(2.0, label_dwell=1)

        bare_sink = ListSink()
        bare = StreamEngine(config, sinks=[bare_sink])
        bare.ingest_many(0, times, values)
        bare.flush()

        wrapped_sink = ListSink()
        wrapped = StreamEngine(config, sinks=[wrapped_sink])
        controller = AdmissionController(wrapped)
        controller.ingest_many(0, times, values)
        controller.flush()

        assert controller.n_shed == 0
        assert not controller.paused
        want = bare_sink.of_type(WindowClosed)
        got = wrapped_sink.of_type(WindowClosed)
        assert len(want) == len(got) > 0
        for a, b in zip(want, got):
            assert reports_equal(a.report, b.report)
            assert a.quality == b.quality

    def test_flush_drains_queue_first(self):
        engine, controller, sink = make_pair(capacity=512)
        times, values = diurnal_stream(3, seed=4)
        for t, v in zip(times, values):
            controller.submit(0, t, v)
        assert controller.depth == len(times)
        controller.flush()
        assert controller.depth == 0
        assert controller.n_shed == 0
        assert sink.of_type(WindowClosed)


class TestBackpressureHysteresis:
    def test_engages_at_high_releases_at_low(self):
        _, controller, _ = make_pair(
            capacity=100, high_watermark=0.8, low_watermark=0.4
        )
        for i in range(79):
            controller.submit(0, i * ROUND, 0.5)
        assert not controller.backpressure()
        controller.submit(0, 79 * ROUND, 0.5)  # depth hits 80 == high
        assert controller.backpressure()
        # Draining to just above low keeps the signal asserted.
        controller.pump(39)  # depth 41 > 40
        assert controller.backpressure()
        controller.pump(1)  # depth 40 == low -> release
        assert not controller.backpressure()

    def test_engagement_is_counted_once_per_episode(self):
        registry = MetricsRegistry()
        config = StreamConfig.for_days(2.0)
        controller = AdmissionController(
            StreamEngine(config),
            OverloadConfig(capacity=10, high_watermark=0.8, low_watermark=0.5),
            metrics=registry,
        )
        for i in range(9):
            controller.submit(0, i * ROUND, 0.5)
        assert controller.n_engagements == 1
        controller.submit(0, 9 * ROUND, 0.5)
        assert controller.n_engagements == 1  # still the same episode
        controller.pump()
        for i in range(10):
            controller.submit(0, (10 + i) * ROUND, 0.5)
        assert controller.n_engagements == 2
        value = registry.counter(
            "stream_backpressure_engagements_total"
        ).value
        assert value == 2


class TestShedding:
    def test_queue_never_exceeds_capacity(self):
        _, controller, _ = make_pair(capacity=32)
        for i in range(1000):
            controller.submit(0, i * ROUND, 0.5)
            assert controller.depth <= 32
        assert controller.n_shed > 0
        assert controller.n_shed + controller.depth == 1000

    def test_shed_drains_to_low_watermark(self):
        _, controller, _ = make_pair(
            capacity=100, high_watermark=0.8, low_watermark=0.5
        )
        for i in range(101):
            controller.submit(0, i * ROUND, 0.5)
        assert controller.depth == 50
        assert controller.n_shed == 51
        assert controller.n_episodes == 1

    def test_shed_events_and_log_agree(self):
        engine, controller, sink = make_pair(capacity=32)
        for i in range(200):
            controller.submit(0, i * ROUND, 0.5)
        shed_events = sink.of_type(ObservationShed)
        log = controller.shed_log()
        assert len(shed_events) == controller.n_shed == len(log)
        assert [e.seq for e in shed_events] == [r.seq for r in log]
        assert all(e.depth == 33 for e in shed_events)

    def test_metrics_ride_the_registry(self):
        registry = MetricsRegistry()
        config = StreamConfig.for_days(2.0)
        controller = AdmissionController(
            StreamEngine(config),
            OverloadConfig(capacity=32),
            metrics=registry,
        )
        for i in range(100):
            controller.submit(0, i * ROUND, 0.5)
        controller.pump()
        shed = sum(
            registry.counter(
                "stream_observations_shed_total", tier=str(t)
            ).value
            for t in range(3)
        )
        assert shed == controller.n_shed > 0
        assert registry.gauge("stream_ingest_queue_depth").value == 0
        ratio = registry.gauge("stream_shed_ratio").value
        assert ratio == pytest.approx(controller.shed_ratio)
        assert registry.counter("stream_shed_episodes_total").value == (
            controller.n_episodes
        )


def prime_stable_block(controller, block_id, n_days=6, seed=5):
    """Feed a clean diurnal history so the block is long-stable."""
    times, values = diurnal_stream(n_days, seed=seed)
    controller.ingest_many(block_id, times, values)
    return times, values


class TestShedPriorities:
    def test_stable_plateau_sheds_before_unknown_block(self):
        engine, controller, sink = make_pair(
            capacity=40, stable_closes=2, low_watermark=0.5
        )
        times, values = prime_stable_block(controller, 0)
        assert engine.stable_run(0) >= 2
        t0 = times[-1] + ROUND
        # Interleave: stable-block plateau samples (far from the mean,
        # far from the last edge) vs samples of a block the engine has
        # never seen.  Overflow must take the former first.
        edge = engine.last_edge_round(0)
        for i in range(41):
            t = t0 + i * ROUND
            r = int((t - engine.config.start_s) / engine.config.round_s)
            if edge is not None and abs(r - edge) <= 10:
                t += 20 * ROUND  # stay clear of the edge guard
            if i % 2 == 0:
                controller.submit(0, t, 0.9)  # plateau, tier 0
            else:
                controller.submit(999, t, 0.9)  # unknown block, tier 2
        assert controller.n_shed > 0
        shed_blocks = {r.block_id for r in controller.shed_log()}
        assert shed_blocks == {0}

    def test_edge_adjacent_samples_survive_plateau_samples(self):
        engine, controller, sink = make_pair(
            capacity=20, stable_closes=2, edge_guard_rounds=3
        )
        prime_stable_block(controller, 0)
        edge = engine.last_edge_round(0)
        assert edge is not None
        start_s = engine.config.start_s
        # 10 samples pinned on the last edge (tier 1) + 11 plateau
        # samples far from it (tier 0): the overflow should consume
        # plateau samples only.
        for i in range(10):
            controller.submit(0, start_s + edge * ROUND, 0.9)
        plateau_round = edge + 50
        for i in range(11):
            controller.submit(0, start_s + plateau_round * ROUND, 0.9)
        assert controller.n_shed == 11
        assert all(
            r.round_index == plateau_round and r.tier == 0
            for r in controller.shed_log()
        )

    def test_shed_ties_break_deterministically_by_seed(self):
        def shed_set(seed):
            _, controller, _ = make_pair(capacity=16, seed=seed)
            for i in range(64):
                controller.submit(i % 8, i * ROUND, 0.5)
            return tuple(controller.shed_log())

        assert shed_set(1) == shed_set(1)
        assert shed_set(1) != shed_set(2)


def storm_scenario(capacity=64, low_watermark=0.25, seed=9):
    """History → unserviced storm on one aligned window → clean recovery.

    Returns ``(engine, controller, sink, kept_times, kept_values,
    storm_start_round)`` where the kept arrays are exactly the
    observations that survived admission (submission order, shed
    removed) — the post-shed oracle input.
    """
    engine, controller, sink = make_pair(
        capacity=capacity, low_watermark=low_watermark, seed=seed
    )
    window = engine.config.window_rounds
    rng = np.random.default_rng(11)

    def series(rounds):
        t = rounds * ROUND
        return t, 0.5 + 0.4 * np.sin(2 * np.pi * t / DAY) + (
            0.02 * rng.standard_normal(len(rounds))
        )

    history_t, history_v = series(np.arange(3 * window))
    controller.ingest_many(0, history_t, history_v)
    storm_rounds = 3 * window + np.arange(window)
    storm_t, storm_v = series(storm_rounds)
    for t, v in zip(storm_t, storm_v):
        controller.submit(0, t, v)
    controller.pump()
    recovery_t, recovery_v = series(4 * window + np.arange(2 * window))
    controller.ingest_many(0, recovery_t, recovery_v)
    controller.flush()

    all_t = np.concatenate([history_t, storm_t, recovery_t])
    all_v = np.concatenate([history_v, storm_v, recovery_v])
    shed_seqs = {r.seq for r in controller.shed_log()}
    kept = [i for i in range(len(all_t)) if (i + 1) not in shed_seqs]
    return (
        engine,
        controller,
        sink,
        all_t[kept],
        all_v[kept],
        3 * window,
    )


class TestDegradedCloses:
    def test_heavy_shed_closes_window_as_insufficient(self):
        engine, controller, sink, kept_t, kept_v, storm_start = (
            storm_scenario()
        )
        window = engine.config.window_rounds
        assert controller.n_shed > window / 2

        closes = sink.of_type(WindowClosed)
        assert len(closes) >= 5
        # Every close (degraded or not) matches the batch oracle over
        # the post-shed observation set.
        for event in closes:
            want_report, want_quality = batch_window_report(
                kept_t,
                kept_v,
                event.window_start_round,
                event.n_rounds,
                engine.config,
            )
            assert reports_equal(event.report, want_report)
            assert event.quality == want_quality
        by_start = {e.window_start_round: e for e in closes}
        # The storm window closed explicitly degraded, not silently
        # wrong; the windows around it stayed classified.
        assert not by_start[storm_start].report.is_classified
        assert by_start[storm_start - window].report.is_classified
        assert by_start[storm_start + window].report.is_classified

    def test_recovery_windows_regain_full_parity(self):
        """After the storm, closes are exact parity vs the raw stream."""
        engine, controller, sink, kept_t, kept_v, storm_start = (
            storm_scenario()
        )
        window = engine.config.window_rounds
        recovered = [
            e
            for e in sink.of_type(WindowClosed)
            if e.window_start_round >= storm_start + window
        ]
        assert recovered
        # No shed round overlaps these windows, so the post-shed oracle
        # and the full-stream oracle agree — and both match the close.
        shed_rounds = {r.round_index for r in controller.shed_log()}
        for event in recovered:
            span = range(
                event.window_start_round,
                event.window_start_round + event.n_rounds,
            )
            assert not shed_rounds.intersection(span)
            assert event.report.is_classified

    def test_shed_degraded_event_names_the_window(self):
        engine, controller, sink, _, _, storm_start = storm_scenario()
        shed_total = controller.n_shed
        assert shed_total > 0
        degraded = sink.of_type(ShedDegraded)
        assert degraded
        close_starts = {
            e.window_start_round for e in sink.of_type(WindowClosed)
        }
        total = 0
        for event in degraded:
            assert event.window_start_round in close_starts
            assert 0 < event.n_shed <= event.n_rounds
            total += event.n_shed
        # Tumbling windows: every shed round lands in exactly one close.
        assert total == shed_total
        assert {e.window_start_round for e in degraded} == {storm_start}

    def test_shed_round_tracking_is_pruned_after_close(self):
        engine, controller, _, _, _, _ = storm_scenario()
        assert controller.shed_rounds(0) == {}


class TestPacedReplay:
    def test_honors_backpressure_and_never_sheds(self):
        engine, controller, sink = make_pair(capacity=48)
        times, values = diurnal_stream(6, seed=7)
        stream = ((0, t, v) for t, v in zip(times, values))
        n_fed, n_pauses = paced_replay(
            stream, controller, pump_every=16, pump_budget=8
        )
        assert n_fed == len(times)
        assert n_pauses > 0  # the producer really did yield
        assert controller.n_shed == 0
        assert controller.depth == 0
        # And the engine's verdicts are exact batch parity.
        closes = sink.of_type(WindowClosed)
        assert closes
        for event in closes:
            want_report, _ = batch_window_report(
                times, values, event.window_start_round, event.n_rounds,
                engine.config,
            )
            assert reports_equal(event.report, want_report)

    def test_rejects_bad_budgets(self):
        _, controller, _ = make_pair()
        with pytest.raises(ValueError, match="pump_every"):
            paced_replay(iter([]), controller, pump_every=0)
        with pytest.raises(ValueError, match="pump_budget"):
            paced_replay(iter([]), controller, pump_budget=0)


class TestDeterminism:
    """Satellite: seeded shed decisions are bit-identical across runs."""

    @staticmethod
    def run_once(seed, arrivals, pump_plan):
        config = StreamConfig.for_days(1.0, label_dwell=1)
        sink = ListSink()
        engine = StreamEngine(config, sinks=[sink])
        controller = AdmissionController(
            engine,
            OverloadConfig(capacity=16, seed=seed),
        )
        pump_iter = iter(pump_plan)
        for i, (block_id, value) in enumerate(arrivals):
            controller.submit(block_id, i * ROUND, value)
            budget = next(pump_iter, 0)
            if budget:
                controller.pump(budget)
        return controller, sink

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        arrivals=st.lists(
            st.tuples(
                st.integers(0, 3),
                st.floats(0.0, 1.0, allow_nan=False),
            ),
            min_size=1,
            max_size=120,
        ),
        pump_plan=st.lists(st.integers(0, 4), max_size=120),
    )
    def test_same_seed_same_arrivals_same_sheds(
        self, seed, arrivals, pump_plan
    ):
        a, _ = self.run_once(seed, arrivals, pump_plan)
        b, _ = self.run_once(seed, arrivals, pump_plan)
        assert a.shed_log() == b.shed_log()
        assert a.n_shed == b.n_shed
        assert a.depth == b.depth

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        arrivals=st.lists(
            st.tuples(
                st.integers(0, 3),
                st.floats(0.0, 1.0, allow_nan=False),
            ),
            min_size=1,
            max_size=120,
        ),
        pump_plan=st.lists(st.integers(0, 4), max_size=120),
    )
    def test_nothing_sheds_below_the_watermarks(
        self, seed, arrivals, pump_plan
    ):
        controller, sink = self.run_once(seed, arrivals, pump_plan)
        capacity = controller.config.capacity
        if controller.max_depth <= capacity:
            assert controller.n_shed == 0
        # Shed episodes only ever trigger with the queue past capacity —
        # in particular, never while depth sits below the low watermark.
        for event in sink.of_type(ObservationShed):
            assert event.depth == capacity + 1
            assert event.depth > controller.config.low_depth

"""Tests for the geolocation substrate."""

import numpy as np
import pytest

from repro.geo import (
    GeoDatabase,
    GeoRecord,
    REGIONS,
    grid_counts,
    grid_fraction,
    region_of,
)
from repro.geo.regions import COUNTRY_REGION


class TestRegions:
    def test_sixteen_regions(self):
        assert len(REGIONS) == 16

    def test_paper_examples(self):
        assert region_of("US") == "Northern America"
        assert region_of("CN") == "Eastern Asia"
        assert region_of("KZ") == "Central Asia"
        assert region_of("BR") == "South America"
        assert region_of("BY") == "Eastern Europe"

    def test_case_insensitive(self):
        assert region_of("us") == "Northern America"

    def test_unknown_country_raises(self):
        with pytest.raises(KeyError):
            region_of("XX")

    def test_every_mapping_targets_a_known_region(self):
        assert set(COUNTRY_REGION.values()) <= set(REGIONS)

    def test_table3_countries_covered(self):
        table3 = [
            "AM", "GE", "BY", "CN", "PE", "KZ", "RS", "AR", "TH", "SV",
            "UA", "CO", "MY", "PH", "IN", "MA", "BR", "VN", "ID", "RU", "US",
        ]
        for code in table3:
            region_of(code)


class TestGeoDatabase:
    def make_db(self):
        return GeoDatabase(
            {
                1: GeoRecord(34.05, -118.24, "US"),
                2: GeoRecord(39.90, 116.40, "CN"),
                3: GeoRecord(-14.24, -51.92, "BR", city_precision=False),
            }
        )

    def test_lookup_hit_and_miss(self):
        db = self.make_db()
        assert db.lookup(1).country == "US"
        assert db.lookup(99) is None

    def test_contains_and_len(self):
        db = self.make_db()
        assert 2 in db and 99 not in db
        assert len(db) == 3

    def test_coverage(self):
        db = self.make_db()
        assert db.coverage(np.array([1, 2, 99, 98])) == 0.5
        assert db.coverage(np.array([], dtype=np.int64)) == 0.0

    def test_centroid_fraction(self):
        assert self.make_db().centroid_fraction() == pytest.approx(1 / 3)

    def test_locate_many(self):
        db = self.make_db()
        lats, lons, located = db.locate_many(np.array([1, 99, 3]))
        assert located.tolist() == [True, False, True]
        assert lats[0] == pytest.approx(34.05)
        assert np.isnan(lats[1])

    def test_countries(self):
        db = self.make_db()
        out = db.countries(np.array([2, 99]))
        assert out.tolist() == ["CN", ""]


class TestGrid:
    def test_counts_shape_2deg(self):
        grid = grid_counts(np.array([0.0]), np.array([0.0]))
        assert grid.values.shape == (90, 180)

    def test_single_point_lands_in_one_cell(self):
        grid = grid_counts(np.array([34.0]), np.array([-118.0]))
        assert grid.values.sum() == 1.0
        assert grid.value_at(34.0, -118.0) == 1.0

    def test_nan_coordinates_ignored(self):
        grid = grid_counts(np.array([np.nan, 10.0]), np.array([0.0, 10.0]))
        assert grid.values.sum() == 1.0

    def test_poles_and_dateline_clipped(self):
        grid = grid_counts(np.array([90.0, -90.0]), np.array([180.0, -180.0]))
        assert grid.values.sum() == 2.0

    def test_fraction(self):
        lats = np.array([10.0, 10.0, 10.0, 50.0])
        lons = np.array([20.0, 20.0, 20.0, 60.0])
        mask = np.array([True, True, False, True])
        grid = grid_fraction(lats, lons, mask)
        assert grid.value_at(10.0, 20.0) == pytest.approx(2 / 3)
        assert grid.value_at(50.0, 60.0) == 1.0

    def test_fraction_min_count(self):
        lats = np.array([10.0])
        lons = np.array([20.0])
        grid = grid_fraction(lats, lons, np.array([True]), min_count=5)
        assert np.isnan(grid.value_at(10.0, 20.0))

    def test_fraction_empty_cells_nan(self):
        grid = grid_fraction(np.array([0.0]), np.array([0.0]), np.array([True]))
        assert np.isnan(grid.value_at(60.0, 60.0))

    def test_mask_shape_checked(self):
        with pytest.raises(ValueError):
            grid_fraction(np.zeros(3), np.zeros(3), np.zeros(2, dtype=bool))

    def test_cell_of_inverse(self):
        grid = grid_counts(np.array([35.5]), np.array([-117.3]))
        i, j = grid.cell_of(35.5, -117.3)
        assert grid.values[i, j] == 1.0

"""Tests for the outage-detection validation and the census application."""

import pytest

from repro.analysis import GlobalStudy, run_census, run_outage_validation


class TestOutageValidation:
    @pytest.fixture(scope="class")
    def results(self):
        kwargs = dict(n_blocks=16, days=5.0, seed=3)
        return {
            feed: run_outage_validation(feed=feed, **kwargs)
            for feed in ("operational", "short")
        }

    def test_outages_detected(self, results):
        for feed, result in results.items():
            assert result.detection_rate > 0.9, feed

    def test_detection_latency_small(self, results):
        assert results["operational"].median_latency_rounds < 10

    def test_conservative_feed_avoids_false_outages(self, results):
        """Section 2.1.1: belief fed with an estimate that can exceed A
        (Â_s) produces false outages; the conservative Â_o does not."""
        assert results["operational"].false_outage_rate <= 0.001
        assert (
            results["short"].false_outage_rate
            > results["operational"].false_outage_rate
        )

    def test_format_table(self, results):
        text = results["operational"].format_table()
        assert "false-outage" in text

    def test_unknown_feed_rejected(self):
        with pytest.raises(ValueError):
            run_outage_validation(feed="psychic", n_blocks=2, days=2.0)


class TestCensus:
    @pytest.fixture(scope="class")
    def study(self):
        return GlobalStudy.run(n_blocks=1500, seed=9, days=14.0)

    @pytest.fixture(scope="class")
    def census(self, study):
        return run_census(study=study)

    def test_snapshot_errors_vary_with_hour(self, census):
        """A single snapshot over/under-counts depending on time of day."""
        assert census.snapshot.max() > census.snapshot.min()
        assert census.worst_snapshot_error() > 0.005

    def test_correction_reduces_worst_error(self, census):
        assert census.worst_corrected_error() < census.worst_snapshot_error()

    def test_truth_positive(self, census):
        assert census.truth > 0

    def test_corrected_estimates_stable_across_hours(self, census):
        spread = census.corrected.max() - census.corrected.min()
        naive_spread = census.snapshot.max() - census.snapshot.min()
        assert spread < naive_spread

    def test_format_series(self, census):
        text = census.format_series()
        assert "worst error" in text

"""Property-based tests (hypothesis) for estimator invariants.

The invariants the paper's design depends on, exercised under random
probe-count streams and random fault schedules (zero-probe rounds from
gaps, interleaved prober restarts):

* the operational estimate never goes below the 0.1 do-no-harm floor;
* Â_o ≤ Â_l whenever Â_l is at or above the floor (the margin only ever
  subtracts);
* with the default (checkpointing) restart policy, ``restart()`` fully
  restores — i.e. never perturbs — estimator state, and with a
  full-reset policy it restores the pristine initial state.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimator import (
    AvailabilityEstimator,
    EstimatorConfig,
    RestartPolicy,
)

FLOOR = 0.1
EPS = 1e-12


@st.composite
def fault_schedules(draw):
    """A random round stream: counts, gap rounds, and restart points.

    Each element is ``(positives, totals, restart_before)``; ``totals == 0``
    models a round lost to a measurement gap (the estimator's no-op path),
    and ``restart_before`` models a prober crash.
    """
    n = draw(st.integers(min_value=1, max_value=120))
    rounds = []
    for _ in range(n):
        total = draw(st.integers(min_value=0, max_value=15))
        positives = draw(st.integers(min_value=0, max_value=total)) if total else 0
        restart = draw(st.booleans())
        rounds.append((positives, total, restart))
    return rounds


def run_stream(estimator, rounds):
    trace = []
    for positives, total, restart in rounds:
        if restart:
            estimator.restart()
        estimator.observe(positives, total)
        trace.append(
            (estimator.a_short, estimator.a_long, estimator.a_operational)
        )
    return trace


class TestOperationalFloor:
    @given(fault_schedules())
    @settings(max_examples=200, deadline=None)
    def test_a_operational_never_below_floor(self, rounds):
        estimator = AvailabilityEstimator()
        for _, _, a_oper in run_stream(estimator, rounds):
            assert a_oper >= FLOOR - EPS

    @given(fault_schedules())
    @settings(max_examples=200, deadline=None)
    def test_a_operational_below_a_long_above_floor(self, rounds):
        """Â_o ≤ Â_l whenever Â_l ≥ floor: the deviation margin only
        subtracts, and the floor cannot push Â_o past Â_l."""
        estimator = AvailabilityEstimator()
        for _, a_long, a_oper in run_stream(estimator, rounds):
            if a_long >= FLOOR:
                assert a_oper <= a_long + EPS


class TestEstimatesWellFormed:
    @given(fault_schedules())
    @settings(max_examples=200, deadline=None)
    def test_estimates_stay_in_unit_interval(self, rounds):
        estimator = AvailabilityEstimator()
        for a_short, a_long, a_oper in run_stream(estimator, rounds):
            assert -EPS <= a_short <= 1.0 + EPS
            assert -EPS <= a_long <= 1.0 + EPS
            assert FLOOR - EPS <= a_oper <= 1.0 + EPS


def _state(estimator):
    return (
        estimator.p_short,
        estimator.t_short,
        estimator.p_long,
        estimator.t_long,
        estimator.deviation,
    )


class TestRestartRestoresState:
    @given(fault_schedules())
    @settings(max_examples=200, deadline=None)
    def test_default_restart_preserves_state_exactly(self, rounds):
        """The production prober checkpoints its estimator state: restart()
        under the default policy must be an exact no-op."""
        estimator = AvailabilityEstimator()
        run_stream(estimator, rounds)
        before = _state(estimator)
        estimator.restart()
        assert _state(estimator) == before

    @given(fault_schedules())
    @settings(max_examples=200, deadline=None)
    def test_full_reset_restart_restores_initial_state(self, rounds):
        config = EstimatorConfig(
            restart=RestartPolicy(
                reset_short=True, reset_long=True, reset_deviation=True
            )
        )
        estimator = AvailabilityEstimator(config)
        pristine = _state(AvailabilityEstimator(config))
        run_stream(estimator, rounds)
        estimator.restart()
        assert _state(estimator) == pristine

    @given(fault_schedules(), fault_schedules())
    @settings(max_examples=100, deadline=None)
    def test_post_reset_evolution_matches_fresh_estimator(self, warm, cold):
        """After a full-reset restart, the estimator's future is
        indistinguishable from a brand-new estimator fed the same rounds."""
        config = EstimatorConfig(
            restart=RestartPolicy(
                reset_short=True, reset_long=True, reset_deviation=True
            )
        )
        restarted = AvailabilityEstimator(config)
        run_stream(restarted, warm)
        restarted.restart()
        fresh = AvailabilityEstimator(config)
        for positives, total, _ in cold:
            restarted.observe(positives, total)
            fresh.observe(positives, total)
            assert _state(restarted) == _state(fresh)

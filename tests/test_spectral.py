"""Tests for DFT machinery: bins, amplitudes, phases, harmonics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spectral import (
    compute_spectra,
    compute_spectrum,
    diurnal_bin,
    diurnal_candidates,
    harmonic_bins,
)

ROUND = 660.0
DAY = 86400.0


def daily_series(n_days, amplitude=0.3, phase=0.0, mean=0.5):
    n = int(n_days * DAY / ROUND)
    t = np.arange(n) * ROUND
    return mean + amplitude * np.cos(2 * np.pi * t / DAY + phase)


class TestDiurnalBin:
    def test_14_day_series(self):
        n = int(14 * DAY / ROUND)
        assert diurnal_bin(n, ROUND) == 14

    def test_35_day_series(self):
        """Paper Figure 6: the A_12w diurnal peak appears at k = 35."""
        n = int(35 * DAY / ROUND)
        assert diurnal_bin(n, ROUND) == 35

    def test_candidates_include_next_bin(self):
        n = int(14 * DAY / ROUND)
        assert diurnal_candidates(n, ROUND) == (14, 15)

    def test_sub_day_observation_rejected(self):
        with pytest.raises(ValueError):
            diurnal_bin(4, ROUND)


class TestSpectrum:
    def test_peak_at_diurnal_bin(self):
        values = daily_series(14)
        spec = compute_spectrum(values, ROUND)
        assert spec.dominant_bin() in diurnal_candidates(spec.n_samples, ROUND)

    def test_cycles_per_day_of_diurnal_bin(self):
        values = daily_series(14)
        spec = compute_spectrum(values, ROUND)
        k = diurnal_bin(spec.n_samples, ROUND)
        assert spec.cycles_per_day(k) == pytest.approx(1.0, abs=0.01)

    def test_frequency_hz(self):
        values = daily_series(7)
        spec = compute_spectrum(values, ROUND)
        k = diurnal_bin(spec.n_samples, ROUND)
        assert spec.frequency_hz(k) == pytest.approx(1 / DAY, rel=0.01)

    def test_duration_days(self):
        spec = compute_spectrum(daily_series(14), ROUND)
        assert spec.duration_days() == pytest.approx(14, abs=0.01)

    def test_flat_series_has_flat_spectrum(self):
        spec = compute_spectrum(np.full(1000, 0.7), ROUND)
        assert spec.amplitudes[1:].max() == pytest.approx(0.0, abs=1e-9)

    def test_dc_component_is_mean_times_n(self):
        values = daily_series(7, mean=0.6)
        spec = compute_spectrum(values, ROUND)
        assert spec.amplitudes[0] == pytest.approx(0.6 * spec.n_samples, rel=0.01)

    def test_phase_recovers_cosine_phase(self):
        for true_phase in (-2.0, -0.5, 0.0, 1.0, 2.5):
            values = daily_series(14, phase=true_phase)
            spec = compute_spectrum(values, ROUND)
            k = diurnal_bin(spec.n_samples, ROUND)
            measured = spec.phase(k)
            delta = np.angle(np.exp(1j * (measured - true_phase)))
            assert abs(delta) < 0.05

    def test_nan_rejected(self):
        values = daily_series(7)
        values[5] = np.nan
        with pytest.raises(ValueError):
            compute_spectrum(values, ROUND)

    def test_2d_input_rejected(self):
        with pytest.raises(ValueError):
            compute_spectrum(np.ones((2, 100)), ROUND)

    def test_too_short_for_dominant(self):
        spec = compute_spectrum(np.ones(1), ROUND)
        with pytest.raises(ValueError):
            spec.dominant_bin()


class TestBatchSpectra:
    def test_matches_per_row_fft(self):
        matrix = np.vstack([daily_series(7, amplitude=a) for a in (0.1, 0.2, 0.3)])
        batch = compute_spectra(matrix, ROUND)
        for i in range(3):
            single = compute_spectrum(matrix[i], ROUND)
            assert np.allclose(batch.coefficients[i], single.coefficients)

    def test_1d_rejected(self):
        with pytest.raises(ValueError):
            compute_spectra(np.ones(10), ROUND)

    def test_nan_rejected(self):
        matrix = np.ones((2, 50))
        matrix[1, 3] = np.nan
        with pytest.raises(ValueError):
            compute_spectra(matrix, ROUND)


class TestHarmonics:
    def test_first_harmonic_near_2k(self):
        bins = harmonic_bins(14, n_bins=500, max_harmonic=2)
        assert 28 in bins
        assert 27 in bins  # tolerance below
        assert 30 in bins  # harmonic of k+1 = 2*15
        assert 14 not in bins  # fundamental excluded

    def test_bounded_by_n_bins(self):
        bins = harmonic_bins(14, n_bins=40)
        assert (bins < 40).all()

    def test_no_dc_or_negative(self):
        bins = harmonic_bins(2, n_bins=100)
        assert (bins >= 1).all()

    def test_square_wave_energy_lands_in_harmonics(self):
        """A hard on/off diurnal block has strong harmonic content; the
        harmonic bin set must capture it so strict classification can
        require the fundamental to dominate it."""
        n = int(14 * DAY / ROUND)
        t = np.arange(n) * ROUND
        values = ((t % DAY) < 8 * 3600).astype(float)
        spec = compute_spectrum(values, ROUND)
        harm = harmonic_bins(14, spec.n_bins)
        others = np.setdiff1d(
            np.arange(3, spec.n_bins), np.concatenate([harm, [14, 15]])
        )
        assert spec.amplitudes[harm].max() > spec.amplitudes[others].max()


@settings(max_examples=20, deadline=None)
@given(
    days=st.integers(min_value=2, max_value=35),
    amplitude=st.floats(min_value=0.05, max_value=0.5),
    phase=st.floats(min_value=-3.1, max_value=3.1),
)
def test_pure_daily_tone_always_lands_in_diurnal_candidates(days, amplitude, phase):
    values = daily_series(days, amplitude=amplitude, phase=phase)
    spec = compute_spectrum(values, ROUND)
    assert spec.dominant_bin() in diurnal_candidates(spec.n_samples, ROUND)


class TestBinValidation:
    """Satellite fix: phase()/frequency_hz() must refuse out-of-range bins."""

    def test_phase_rejects_negative_bin(self):
        spec = compute_spectrum(daily_series(7), ROUND)
        with pytest.raises(ValueError, match="out of range"):
            spec.phase(-1)

    def test_phase_rejects_past_end(self):
        spec = compute_spectrum(daily_series(7), ROUND)
        with pytest.raises(ValueError, match="out of range"):
            spec.phase(spec.n_bins)

    def test_frequency_hz_rejects_negative_bin(self):
        spec = compute_spectrum(daily_series(7), ROUND)
        with pytest.raises(ValueError, match="out of range"):
            spec.frequency_hz(-2)

    def test_frequency_hz_rejects_past_end(self):
        spec = compute_spectrum(daily_series(7), ROUND)
        with pytest.raises(ValueError, match="out of range"):
            spec.frequency_hz(spec.n_bins + 5)

    def test_boundary_bins_accepted(self):
        spec = compute_spectrum(daily_series(7), ROUND)
        spec.phase(0)
        spec.phase(spec.n_bins - 1)
        spec.frequency_hz(0)
        spec.frequency_hz(spec.n_bins - 1)


class TestGoertzel:
    """Exact selected-bin DFT used to reseed the sliding engine."""

    def test_matches_rfft_at_selected_bins(self):
        from repro.core.spectral import goertzel

        rng = np.random.default_rng(0)
        values = rng.random(200)
        bins = np.array([0, 1, 7, 50, 100])
        want = np.fft.rfft(values)[bins]
        np.testing.assert_allclose(goertzel(values, bins), want, atol=1e-9)

    def test_rejects_nan(self):
        from repro.core.spectral import goertzel

        values = np.ones(16)
        values[3] = np.nan
        with pytest.raises(ValueError):
            goertzel(values, np.array([0]))

    def test_rejects_out_of_range_bins(self):
        from repro.core.spectral import goertzel

        with pytest.raises(ValueError):
            goertzel(np.ones(16), np.array([9]))
        with pytest.raises(ValueError):
            goertzel(np.ones(16), np.array([-1]))

    def test_rejects_2d(self):
        from repro.core.spectral import goertzel

        with pytest.raises(ValueError):
            goertzel(np.ones((2, 8)), np.array([0]))

"""Tests for repro.obs.tracing: span nesting and per-stage aggregates."""

import threading

import pytest

from repro.obs.tracing import NULL_TRACER, NullTracer, Span, Tracer


class TestSpanTree:
    def test_root_span_recorded(self):
        tracer = Tracer()
        with tracer.trace("load", path="x") as span:
            pass
        assert tracer.roots == [span]
        assert span.name == "load"
        assert span.attrs == {"path": "x"}
        assert span.duration_s >= 0.0
        assert span.children == []

    def test_nesting_builds_tree(self):
        tracer = Tracer()
        with tracer.trace("outer"):
            with tracer.trace("inner"):
                with tracer.trace("leaf"):
                    pass
            with tracer.trace("inner2"):
                pass
        (root,) = tracer.roots
        assert [c.name for c in root.children] == ["inner", "inner2"]
        assert [c.name for c in root.children[0].children] == ["leaf"]

    def test_children_time_bounded_by_parent(self):
        tracer = Tracer()
        with tracer.trace("outer"):
            with tracer.trace("inner"):
                pass
        (root,) = tracer.roots
        inner = root.children[0]
        assert inner.duration_s <= root.duration_s
        assert root.self_s == pytest.approx(
            root.duration_s - inner.duration_s
        )

    def test_walk_depth_first(self):
        tracer = Tracer()
        with tracer.trace("a"):
            with tracer.trace("b"):
                with tracer.trace("c"):
                    pass
            with tracer.trace("d"):
                pass
        (root,) = tracer.roots
        assert [s.name for s in root.walk()] == ["a", "b", "c", "d"]

    def test_to_dict_roundtrips_structure(self):
        tracer = Tracer()
        with tracer.trace("a", k=1):
            with tracer.trace("b"):
                pass
        d = tracer.roots[0].to_dict()
        assert d["name"] == "a"
        assert d["attrs"] == {"k": 1}
        assert d["children"][0]["name"] == "b"

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.trace("boom"):
                raise RuntimeError("x")
        assert [s.name for s in tracer.roots] == ["boom"]


class TestStageTimings:
    def test_aggregates(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.trace("stage"):
                pass
        stats = tracer.stage_timings()["stage"]
        assert stats["count"] == 3
        assert stats["total_s"] >= 0.0
        assert stats["mean_s"] == pytest.approx(stats["total_s"] / 3)
        assert stats["max_s"] <= stats["total_s"]

    def test_sorted_by_name(self):
        tracer = Tracer()
        with tracer.trace("b"):
            pass
        with tracer.trace("a"):
            pass
        assert list(tracer.stage_timings()) == ["a", "b"]

    def test_nested_spans_counted_per_stage(self):
        tracer = Tracer()
        with tracer.trace("outer"):
            with tracer.trace("inner"):
                pass
            with tracer.trace("inner"):
                pass
        timings = tracer.stage_timings()
        assert timings["outer"]["count"] == 1
        assert timings["inner"]["count"] == 2


class TestBounds:
    def test_max_roots_drops_overflow(self):
        tracer = Tracer(max_roots=2)
        for i in range(5):
            with tracer.trace(f"s{i}"):
                pass
        assert len(tracer.roots) == 2
        assert tracer.n_dropped_roots == 3
        # Aggregates still see every span.
        assert sum(s["count"] for s in tracer.stage_timings().values()) == 5

    def test_bad_max_roots_rejected(self):
        with pytest.raises(ValueError, match="max_roots"):
            Tracer(max_roots=0)


class TestThreadIsolation:
    def test_threads_build_separate_trees(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def worker(name):
            with tracer.trace(name):
                barrier.wait()  # both spans open simultaneously
                with tracer.trace(f"{name}.child"):
                    pass

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(s.name for s in tracer.roots) == ["t0", "t1"]
        for root in tracer.roots:
            assert [c.name for c in root.children] == [f"{root.name}.child"]


class TestNullTracer:
    def test_shared_noop_context(self):
        tracer = NullTracer()
        assert not tracer.enabled
        ctx_a = tracer.trace("a", k=1)
        ctx_b = tracer.trace("b")
        assert ctx_a is ctx_b
        with ctx_a as span:
            assert span is None
        assert tracer.roots == []
        assert tracer.stage_timings() == {}

    def test_module_singleton(self):
        assert isinstance(NULL_TRACER, NullTracer)


def test_span_defaults():
    span = Span(name="x", attrs={})
    assert span.duration_s == 0.0
    assert span.self_s == 0.0
    assert list(span.walk()) == [span]


class TestTraceparent:
    def test_round_trip(self):
        from repro.obs.tracing import (
            TraceContext,
            format_traceparent,
            parse_traceparent,
        )
        ctx = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        header = format_traceparent(ctx)
        assert header == f"00-{'ab' * 16}-{'cd' * 8}-01"
        parsed = parse_traceparent(header)
        assert parsed == ctx

    def test_unsampled_flag(self):
        from repro.obs.tracing import TraceContext, format_traceparent
        ctx = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        assert format_traceparent(ctx, sampled=False).endswith("-00")

    def test_minted_ids_are_wire_shaped(self):
        from repro.obs.tracing import new_span_id, new_trace_id
        trace_id, span_id = new_trace_id(), new_span_id()
        assert len(trace_id) == 32 and len(span_id) == 16
        int(trace_id, 16) and int(span_id, 16)  # hex-parseable
        assert new_trace_id() != trace_id  # random, not counters

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "not-a-traceparent",
            "00-short-span-01",
            f"00-{'g' * 32}-{'a' * 16}-01",  # non-hex trace id
            f"00-{'0' * 32}-{'a' * 16}-01",  # all-zero trace id
            f"00-{'a' * 32}-{'0' * 16}-01",  # all-zero span id
            f"ff-{'a' * 32}-{'b' * 16}-01",  # forbidden version
            f"00-{'a' * 32}-{'b' * 16}-01-extra",  # v00 with extras
            f"0-{'a' * 32}-{'b' * 16}-01",  # short version
            f"00-{'a' * 32}-{'b' * 16}-1",  # short flags
        ],
    )
    def test_malformed_headers_rejected(self, header):
        from repro.obs.tracing import parse_traceparent
        assert parse_traceparent(header) is None

    def test_future_version_with_extra_fields_accepted(self):
        from repro.obs.tracing import parse_traceparent
        header = f"01-{'a' * 32}-{'b' * 16}-01-future-stuff"
        ctx = parse_traceparent(header)
        assert ctx is not None and ctx.trace_id == "a" * 32

    def test_internal_ids_normalized_on_the_wire(self):
        # Internal span ids are pid-prefixed ("1a2b-3") and would be
        # rejected by other parsers verbatim; format_traceparent must
        # always emit a parseable header.
        from repro.obs.tracing import (
            TraceContext,
            format_traceparent,
            parse_traceparent,
        )
        ctx = TraceContext(trace_id="1a2b-3", span_id="ZZ")
        header = format_traceparent(ctx)
        assert parse_traceparent(header) is not None


class TestExplicitIds:
    def test_begin_honours_wire_ids(self):
        from repro.obs.tracing import new_span_id, new_trace_id
        tracer = Tracer()
        trace_id, span_id = new_trace_id(), new_span_id()
        span = tracer.begin("http.request", trace_id=trace_id,
                            span_id=span_id, route="/x")
        tracer.end(span)
        assert span.trace_id == trace_id
        assert span.span_id == span_id
        assert tracer.resolve(span_id) is span

    def test_begin_explicit_trace_id_overrides_parent_inheritance(self):
        from repro.obs.tracing import TraceContext
        tracer = Tracer()
        parent = TraceContext(trace_id="a" * 32, span_id="b" * 16)
        span = tracer.begin("s", parent_context=parent, trace_id="c" * 32)
        assert span.trace_id == "c" * 32
        assert span.parent_span_id == "b" * 16

    def test_trace_spans_gathers_across_roots(self):
        tracer = Tracer()
        a = tracer.begin("a", trace_id="t1" * 16)
        tracer.end(a)
        b = tracer.begin("b", trace_id="t1" * 16)
        tracer.end(b)
        other = tracer.begin("c", trace_id="t2" * 16)
        tracer.end(other)
        names = sorted(s.name for s in tracer.trace_spans("t1" * 16))
        assert names == ["a", "b"]

    def test_drain_roots_empties_and_preserves(self):
        tracer = Tracer(max_roots=2)
        for i in range(4):
            with tracer.trace(f"s{i}"):
                pass
        drained = tracer.drain_roots()
        assert [s.name for s in drained] == ["s0", "s1"]
        assert tracer.roots == []
        # The budget is free again: new roots are kept, not dropped.
        with tracer.trace("s4"):
            pass
        assert [s.name for s in tracer.roots] == ["s4"]

    def test_null_tracer_new_surface(self):
        assert NULL_TRACER.trace_spans("x") == []
        assert NULL_TRACER.drain_roots() == []
        assert NULL_TRACER.begin("s", trace_id="a", span_id="b") is None


class TestTraceparentProperties:
    """Property-based (hypothesis): the wire format is total.

    ``format_traceparent`` must never raise and must always emit a
    grammar-conformant header, whatever garbage lives in the context;
    for well-formed ids the format/parse pair is an exact identity.
    """

    def test_parse_format_identity_on_valid_ids(self):
        import re

        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.obs.tracing import (
            TraceContext,
            format_traceparent,
            parse_traceparent,
        )

        hex_id = st.from_regex(re.compile(r"[0-9a-f]+"), fullmatch=True)
        valid_trace = hex_id.map(lambda s: s[-32:].rjust(32, "0")).filter(
            lambda s: s != "0" * 32
        )
        valid_span = hex_id.map(lambda s: s[-16:].rjust(16, "0")).filter(
            lambda s: s != "0" * 16
        )

        @given(trace_id=valid_trace, span_id=valid_span,
               sampled=st.booleans())
        @settings(max_examples=200, deadline=None)
        def check(trace_id, span_id, sampled):
            ctx = TraceContext(trace_id=trace_id, span_id=span_id)
            header = format_traceparent(ctx, sampled=sampled)
            assert parse_traceparent(header) == ctx

        check()

    def test_format_is_total_and_grammar_conformant(self):
        import re

        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.obs.tracing import (
            TraceContext,
            format_traceparent,
            parse_traceparent,
        )

        wire = re.compile(r"^00-[0-9a-f]{32}-[0-9a-f]{16}-0[01]$")

        @given(trace_id=st.text(max_size=64), span_id=st.text(max_size=64))
        @settings(max_examples=300, deadline=None)
        def check(trace_id, span_id):
            ctx = TraceContext(trace_id=trace_id, span_id=span_id)
            header = format_traceparent(ctx)  # must never raise
            assert wire.match(header)
            parsed = parse_traceparent(header)
            # The only legal rejection of a normalized header is an
            # all-zero id (the spec forbids it); anything else parses.
            _, norm_trace, norm_span, _ = header.split("-")
            if norm_trace != "0" * 32 and norm_span != "0" * 16:
                assert parsed == TraceContext(
                    trace_id=norm_trace, span_id=norm_span
                )
            else:
                assert parsed is None

        check()

"""Alert-triggered incident capture (repro.obs.incidents).

The contract under test: exactly one bundle per rule per firing
episode (deduplicated while breached, re-armed on resolve), rate
limiting and the global cap count suppressions instead of writing,
and publication is atomic — a bundle either exists complete with its
manifest or not at all, never half-written.
"""

import json

import pytest

from repro.obs.alerts import AlertEvent
from repro.obs.events import FlightRecorder
from repro.obs.history import HistoryConfig, MetricsHistory
from repro.obs.incidents import IncidentConfig, IncidentRecorder
from repro.obs.registry import MetricsRegistry


def fired(rule="shed-high", value=0.5, metric="stream_shed_ratio"):
    return AlertEvent(rule=rule, metric=metric, level="critical",
                      kind="fired", value=value, threshold=0.05,
                      description="test rule")


def resolved(rule="shed-high", metric="stream_shed_ratio"):
    return AlertEvent(rule=rule, metric=metric, level="critical",
                      kind="resolved", value=0.0, threshold=0.05)


def recorder(tmp_path, **overrides):
    defaults = dict(dir=tmp_path / "incidents", min_interval_s=0.0)
    defaults.update(overrides)
    config = IncidentConfig(**defaults)
    history = MetricsHistory(HistoryConfig(sample_min_interval_s=0.0))
    reg = MetricsRegistry()
    reg.gauge("stream_shed_ratio").set(0.5)
    reg.counter("service_requests_total").inc(10)
    history.sample(reg, 100.0)
    ring = FlightRecorder()
    clock = Clock()
    rec = IncidentRecorder(config, history=history, ring=ring,
                           clock=clock)
    return rec, ring, reg, clock


class Clock:
    def __init__(self):
        self.t = 1000.0

    def __call__(self):
        return self.t


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"history_window_s": 0},
            {"min_interval_s": -1},
            {"max_incidents": 0},
            {"max_series": 0},
            {"max_trace_ids": 0},
            {"profile_s": -1.0},
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            IncidentConfig(**kwargs)


class TestDeduplication:
    def test_one_bundle_per_firing_episode(self, tmp_path):
        rec, _, reg, clock = recorder(tmp_path)
        [path] = rec.observe([fired()], registry=reg)
        assert path.is_dir()
        # Still firing on later cycles: no new bundle.
        assert rec.observe([fired()]) == []
        assert rec.observe([fired()]) == []
        assert rec.n_captured == 1

    def test_relapse_recaptures_after_resolve(self, tmp_path):
        rec, _, reg, clock = recorder(tmp_path)
        rec.observe([fired()], registry=reg)
        rec.observe([resolved()])
        clock.t += 60.0
        [path] = rec.observe([fired()], registry=reg)
        assert rec.n_captured == 2
        bundles = sorted((tmp_path / "incidents").iterdir())
        assert len(bundles) == 2

    def test_distinct_rules_capture_independently(self, tmp_path):
        rec, _, reg, _ = recorder(tmp_path)
        paths = rec.observe(
            [fired("rule-a"), fired("rule-b")], registry=reg
        )
        assert len(paths) == 2


class TestRateLimiting:
    def test_min_interval_suppresses_flapping(self, tmp_path):
        rec, _, reg, clock = recorder(tmp_path, min_interval_s=30.0)
        rec.observe([fired()], registry=reg)
        rec.observe([resolved()])
        clock.t += 5.0  # relapse inside the rate-limit window
        assert rec.observe([fired()], registry=reg) == []
        assert rec.n_suppressed == 1
        rec.observe([resolved()])
        clock.t += 60.0
        assert len(rec.observe([fired()], registry=reg)) == 1

    def test_global_cap(self, tmp_path):
        rec, _, reg, _ = recorder(tmp_path, max_incidents=2)
        rec.observe([fired("a"), fired("b"), fired("c")], registry=reg)
        assert rec.n_captured == 2
        assert rec.n_suppressed == 1


class TestBundleContents:
    def test_manifest_history_events_flights_metrics(self, tmp_path):
        rec, ring, reg, _ = recorder(tmp_path)
        ring.append({"event": "x", "trace_id": "t1"})
        ring.append({"event": "y", "trace_id": "t2"})
        ring.append({"event": "z", "trace_id": "t1"})
        flight = FlightRecorder()
        flight.append({"event": "worker"})
        [path] = rec.observe(
            [fired()], flights={0: flight}, registry=reg
        )
        manifest = json.loads((path / "manifest.json").read_text())
        assert manifest["kind"] == "incident"
        assert manifest["rule"] == "shed-high"
        assert manifest["value"] == 0.5
        assert manifest["trace_ids"] == ["t1", "t2"]
        assert manifest["n_events"] == 3
        assert set(manifest["files"]) == {
            "events.jsonl", "history.jsonl", "flight/worker-0.json",
            "metrics.json",
        }
        events = [json.loads(line) for line in
                  (path / "events.jsonl").read_text().splitlines()]
        assert [e["event"] for e in events] == ["x", "y", "z"]
        windows = [json.loads(line) for line in
                   (path / "history.jsonl").read_text().splitlines()]
        names = [w["series"] for w in windows]
        # The firing rule's own metric leads the related series.
        assert names[0] == "stream_shed_ratio"
        assert "service_requests_total" in names
        assert all(w["points"] for w in windows)
        worker = json.loads((path / "flight" / "worker-0.json").read_text())
        assert worker["events"] == [{"event": "worker"}]
        metrics = json.loads((path / "metrics.json").read_text())
        assert metrics["gauges"]["stream_shed_ratio"] == 0.5

    def test_bare_recorder_still_writes_a_manifest(self, tmp_path):
        rec = IncidentRecorder(
            IncidentConfig(dir=tmp_path / "incidents"), clock=Clock()
        )
        [path] = rec.observe([fired()])
        manifest = json.loads((path / "manifest.json").read_text())
        assert manifest["rule"] == "shed-high"
        assert manifest["trace_ids"] == []
        assert manifest["files"] == ["events.jsonl"]

    def test_capture_event_emitted(self, tmp_path):
        records = []

        class Events:
            def warning(self, event, **fields):
                records.append((event, fields))

        rec, _, reg, _ = recorder(tmp_path)
        rec.events = Events()
        [path] = rec.observe([fired()], registry=reg)
        [(event, fields)] = records
        assert event == "incident.captured"
        assert fields["rule"] == "shed-high"
        assert fields["path"] == str(path)


class TestAtomicity:
    def test_no_temp_leftovers_on_success(self, tmp_path):
        rec, _, reg, _ = recorder(tmp_path)
        rec.observe([fired()], registry=reg)
        leftovers = [p for p in (tmp_path / "incidents").iterdir()
                     if p.name.startswith(".tmp-")]
        assert leftovers == []

    def test_failed_capture_leaves_no_bundle(self, tmp_path):
        rec, _, reg, _ = recorder(tmp_path)

        class Broken:
            def snapshot(self):
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            rec.observe([fired()], flights={0: Broken()}, registry=reg)
        base = tmp_path / "incidents"
        assert [p for p in base.iterdir()] == []

    def test_name_collision_gets_suffix(self, tmp_path):
        rec, _, reg, clock = recorder(tmp_path)
        rec.observe([fired()], registry=reg)
        rec.observe([resolved()])
        # Same second -> same timestamp stamp -> suffixed directory.
        [second] = rec.observe([fired()], registry=reg)
        assert second.name.endswith("-2")

"""Integration tests for the survey-based validation analyses
(Figures 4/5, Table 1)."""

import numpy as np
import pytest

from repro.analysis import (
    run_availability_validation,
    run_diurnal_validation,
)


@pytest.fixture(scope="module")
def availability():
    return run_availability_validation(n_blocks=40, seed=7)


@pytest.fixture(scope="module")
def validation():
    return run_diurnal_validation(n_blocks=60, seed=7)


class TestAvailabilityValidation:
    def test_correlation_strong(self, availability):
        """Figure 4: corr(A, Â_s) near the paper's 0.957."""
        assert availability.correlation_short > 0.85

    def test_estimator_unbiased(self, availability):
        assert abs(availability.bias()) < 0.03

    def test_operational_underestimates(self, availability):
        """Figure 5: Â_o under true A in ~94% of comparable rounds."""
        assert availability.underestimate_fraction() > 0.85

    def test_quartiles_track_diagonal(self, availability):
        bq = availability.short_quartiles()
        valid = bq.counts > 100
        err = np.abs(bq.median[valid] - bq.bin_centers[valid])
        assert np.nanmedian(err) < 0.08

    def test_operational_quartiles_below_diagonal(self, availability):
        bq = availability.operational_quartiles()
        valid = (bq.counts > 100) & (bq.bin_centers > 0.3)
        assert (bq.median[valid] < bq.bin_centers[valid]).mean() > 0.8

    def test_density_normalized(self, availability):
        grid = availability.density()
        assert grid.sum() == pytest.approx(1.0)

    def test_format_table(self, availability):
        text = availability.format_table()
        assert "corr(A, A_s)" in text
        assert "paper" in text


class TestDiurnalValidation:
    def test_confusion_matrix_totals(self, validation):
        assert validation.total > 0
        assert (
            validation.d_dhat + validation.n_nhat
            + validation.d_nhat + validation.n_dhat
        ) == validation.total

    def test_accuracy_near_paper(self, validation):
        """Paper: 90.99% accuracy."""
        assert validation.accuracy > 0.8

    def test_precision_high(self, validation):
        """Paper: 82.48% precision — false diurnal calls are rare."""
        assert validation.precision > 0.8

    def test_false_negative_biased(self, validation):
        """The paper's deliberate bias: misses outnumber false alarms."""
        assert validation.false_negative_biased

    def test_stationary_fraction_near_paper(self, validation):
        """Paper: 80.3% of survey blocks stationary."""
        assert 0.7 < validation.stationary_fraction < 0.97

    def test_format_table(self, validation):
        text = validation.format_table()
        assert "precision" in text and "d_hat" in text

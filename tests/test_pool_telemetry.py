"""Distributed telemetry for the supervised pool (acceptance tests).

The contract under test, end to end:

* fleet metrics are **exactly-once**: a chaos run with a worker kill and
  respawn yields supervisor-side aggregate counters equal to the sum of
  serial per-block expectations — the killed attempt's telemetry died
  with its unsent result;
* every supervision decision is a **correlated record** in the
  structured event log (``run_id`` on everything, ``trace_id``/
  ``span_id`` resolvable to a supervisor span);
* failures ship their own evidence: **flight recorder dumps** appear on
  worker deaths, quarantines, and breaker trips — including the dying
  worker's own crash-point dump, written before ``os._exit``;
* declarative **alert rules** over the live fleet aggregate fire as
  typed events in the same log.
"""

import json

import pytest

from repro.core import (
    BatchConfig,
    BatchRunner,
    CircuitOpenError,
    PoolConfig,
    PoolRunner,
)
from repro.faults import crash
from repro.obs import (
    EventLogger,
    MetricsRegistry,
    Tracer,
    default_pool_rules,
    read_event_log,
)
from tests.test_batch_runner import AlwaysBroken, make_blocks
from tests.test_supervisor import (
    SCHEDULE,
    DiesInWorker,
    assert_results_identical,
)


def instrumented_pool(tmp_path, **pool_kwargs):
    registry = MetricsRegistry()
    tracer = Tracer()
    events = EventLogger(tmp_path / "events.jsonl", level="debug")
    runner = PoolRunner(
        PoolConfig(
            flight_recorder_dir=tmp_path / "flight",
            **pool_kwargs,
        ),
        metrics=registry,
        tracer=tracer,
        events=events,
        alert_rules=default_pool_rules(),
    )
    return runner, registry, tracer, events


def fleet_counters(runner):
    return runner.fleet.aggregate().snapshot()["counters"]


class TestChaosTelemetry:
    """One worker killed mid-run: the load-bearing acceptance scenario."""

    N_BLOCKS = 5

    @pytest.fixture()
    def chaos_run(self, tmp_path):
        blocks = make_blocks(self.N_BLOCKS)
        serial = BatchRunner(BatchConfig()).run(blocks, SCHEDULE, seed=11)
        runner, registry, tracer, events = instrumented_pool(
            tmp_path, n_workers=2, max_block_failures=3
        )
        # The second task a worker picks up kills it at task_start (the
        # marker makes the death one-shot across respawns).  Nothing was
        # measured yet at that point, so the retry is the block's first
        # real attempt and fleet totals stay equal to the serial run's.
        crash.arm(
            "pool.worker.task_start",
            hits=2,
            action="exit",
            marker=tmp_path / "killed-once",
        )
        try:
            pooled = runner.run(blocks, SCHEDULE, seed=11)
        finally:
            crash.disarm()
            events.close()
        assert (tmp_path / "killed-once").exists()  # the kill happened
        records = read_event_log(tmp_path / "events.jsonl")
        return serial, pooled, runner, registry, tracer, records, tmp_path

    @pytest.mark.watchdog(120)
    def test_results_metrics_events_and_dumps(self, chaos_run):
        serial, pooled, runner, registry, tracer, records, tmp_path = (
            chaos_run
        )

        # -- results: bit-identical to serial despite the death
        assert not pooled.failures
        assert_results_identical(serial, pooled)

        # -- exactly-once fleet counters: the killed dispatch shipped no
        # delta, so aggregate attempts equal the serial expectation of
        # one attempt per block, exactly.
        counters = fleet_counters(runner)
        assert counters["batch_attempts_total"] == self.N_BLOCKS
        assert counters["pool_worker_tasks_total"] == self.N_BLOCKS
        assert counters.get("batch_retries_total", 0) == 0
        assert runner.fleet.n_deltas == self.N_BLOCKS
        assert runner.fleet.n_replayed == 0

        # -- supervision surfaced in the supervisor's own registry
        # (outcome counting is supervisor-side, shared with the serial
        # runner, so it sees exactly one outcome per block)
        snap = registry.snapshot()["counters"]
        assert snap['batch_blocks_total{outcome="measured"}'] == self.N_BLOCKS
        assert snap['pool_worker_restarts_total{reason="crashed"}'] == 1
        assert snap["pool_tasks_dispatched_total"] == self.N_BLOCKS + 1
        assert snap["pool_telemetry_deltas_total"] == self.N_BLOCKS
        assert runner._last_stats["respawns_crashed"] == 1
        assert runner._last_stats["blocks_quarantined"] == 0

        # -- the event log tells the whole story, in order, correlated
        assert all(r["run_id"] == runner.run_id for r in records)
        names = [r["event"] for r in records]
        assert names[0] == "run.start" and names[-1] == "run.end"
        death = names.index("worker.crashed")
        assert "task.requeued" in names[death:]
        assert "flight.dumped" in names[death:]
        assert "worker.respawned" in names[death:]
        crashed = next(r for r in records if r["event"] == "worker.crashed")
        assert crashed["worker_id"] in (0, 1)

        # -- every span-stamped record resolves to a supervisor span
        stamped = [r for r in records if "span_id" in r]
        assert stamped, "no trace-correlated records"
        for record in stamped:
            span = tracer.resolve(record["span_id"])
            assert span is not None, record
            assert span.trace_id == record["trace_id"]
        # The requeued dispatch's span records its outcome.
        assert crashed["span_id"] is not None
        assert tracer.resolve(crashed["span_id"]).attrs["outcome"] == (
            "crashed"
        )

        # -- worker time was grafted into supervisor stage timings
        timings = tracer.stage_timings()
        assert timings["worker.measure_block"]["count"] == self.N_BLOCKS
        assert timings["pool.dispatch"]["count"] == self.N_BLOCKS + 1

        # -- flight recorders: the supervisor dumped the dead worker's
        # box, and the dying worker dumped its own on the way down.
        flight_dir = tmp_path / "flight"
        supervisor_dumps = sorted(flight_dir.glob("flight-w?-0*.json"))
        assert len(supervisor_dumps) == 1
        dump = json.loads(supervisor_dumps[0].read_text())
        assert dump["reason"] == "worker crashed"
        assert dump["run_id"] == runner.run_id
        assert any(e["event"] == "task.dispatched" for e in dump["events"])
        self_dumps = list(flight_dir.glob("flight-w*-p*-crash.json"))
        assert len(self_dumps) == 1
        self_dump = json.loads(self_dumps[0].read_text())
        assert self_dump["reason"] == "crashpoint:pool.worker.task_start"

        # -- a healthy death-and-recovery fires no alerts
        assert runner.alerts.n_fired == 0
        assert runner.alerts.firing() == []

        # -- and the manifest carries the whole telemetry summary
        extra = pooled.manifest.extra
        assert extra["run_id"] == runner.run_id
        assert extra["pool_stats"]["respawns_crashed"] == 1
        assert extra["telemetry"]["n_deltas"] == self.N_BLOCKS
        assert extra["telemetry"]["workers_heard"] == 2
        assert extra["telemetry"]["alerts_fired"] == 0
        assert extra["telemetry"]["events_logged"] > 0


class TestCleanRunTelemetry:
    @pytest.mark.watchdog(120)
    def test_fleet_counters_match_instrumented_serial(self, tmp_path):
        blocks = make_blocks(4)
        serial_registry = MetricsRegistry()
        BatchRunner(BatchConfig(), serial_registry).run(
            blocks, SCHEDULE, seed=3
        )
        runner, registry, _, events = instrumented_pool(tmp_path, n_workers=2)
        runner.run(blocks, SCHEDULE, seed=3)
        events.close()

        want = serial_registry.snapshot()["counters"]
        # Attempts live worker-side, outcome counts supervisor-side; the
        # fleet aggregate plus the supervisor's registry is the pooled
        # equivalent of the serial registry.
        got = runner.fleet.aggregate(registry).snapshot()["counters"]
        for key, value in want.items():
            if key.startswith("batch_"):
                assert got.get(key, 0) == value, key

    @pytest.mark.watchdog(120)
    def test_telemetry_does_not_change_results(self, tmp_path):
        blocks = make_blocks(4)
        dark = PoolRunner(PoolConfig(n_workers=2)).run(
            blocks, SCHEDULE, seed=5
        )
        runner, _, _, events = instrumented_pool(tmp_path, n_workers=2)
        lit = runner.run(blocks, SCHEDULE, seed=5)
        events.close()
        assert_results_identical(dark, lit)


class TestQuarantineAlerts:
    @pytest.mark.watchdog(120)
    def test_quarantine_fires_critical_alert(self, tmp_path):
        blocks = make_blocks(2) + [DiesInWorker()]
        runner, registry, _, events = instrumented_pool(
            tmp_path, n_workers=2, max_block_failures=1
        )
        result = runner.run(blocks, SCHEDULE, seed=2)
        events.close()

        [failure] = result.failures
        assert failure.error_type == "WorkerLost"
        records = read_event_log(tmp_path / "events.jsonl")
        quarantined = next(
            r for r in records if r["event"] == "block.quarantined"
        )
        assert quarantined["block_id"] == 888
        fired = next(r for r in records if r["event"] == "alert.fired")
        assert fired["rule"] == "pool-block-quarantined"
        assert fired["level"] == "error"  # critical alerts log at error
        assert "pool-block-quarantined" in runner.alerts.firing()
        assert (
            registry.counter(
                "alerts_fired_total",
                rule="pool-block-quarantined",
                level="critical",
            ).value
            == 1
        )
        assert result.manifest.extra["telemetry"]["alerts_fired"] >= 1
        # The quarantine also dumped that worker's flight recorder.
        dumps = list((tmp_path / "flight").glob("flight-w?-0*.json"))
        assert dumps


class TestBreakerTelemetry:
    @pytest.mark.watchdog(120)
    def test_breaker_trip_dumps_and_alerts(self, tmp_path):
        blocks = make_blocks(1) + [AlwaysBroken() for _ in range(4)]
        runner, _, _, events = instrumented_pool(
            tmp_path,
            batch=BatchConfig(checkpoint_path=tmp_path / "ck.npz"),
            n_workers=1,  # deterministic completion order
            breaker_threshold=3,
        )
        with pytest.raises(CircuitOpenError):
            runner.run(blocks, SCHEDULE, seed=2)
        events.close()

        records = read_event_log(tmp_path / "events.jsonl")
        names = [r["event"] for r in records]
        assert "breaker.open" in names
        assert names[-1] == "run.aborted"
        aborted = records[-1]
        assert aborted["error_type"] == "CircuitOpenError"
        open_record = next(r for r in records if r["event"] == "breaker.open")
        assert open_record["consecutive"] == 3
        assert open_record["checkpoint_path"].endswith("ck.npz")

        fired = {
            r["rule"] for r in records if r["event"] == "alert.fired"
        }
        assert "pool-breaker-tripped" in fired

        dumps = [
            json.loads(p.read_text())
            for p in (tmp_path / "flight").glob("flight-w?-0*.json")
        ]
        assert any(d["reason"] == "breaker open" for d in dumps)
        # Per-block failure records from the worker made it into the box.
        assert any(
            e["event"] == "block.failed"
            for d in dumps
            for e in d["events"]
        )


class TestDarkPoolStaysDark:
    @pytest.mark.watchdog(120)
    def test_no_telemetry_no_files_no_deltas(self, tmp_path):
        runner = PoolRunner(PoolConfig(n_workers=2))
        runner.run(make_blocks(3), SCHEDULE, seed=1)
        assert runner.fleet.n_deltas == 0
        assert runner.fleet.worker_ids() == []
        assert runner.recorders == {}
        assert list(tmp_path.iterdir()) == []

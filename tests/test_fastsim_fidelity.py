"""End-to-end fidelity of the scale path against the address-level pipeline.

The global analyses trust `simulation.fastsim` to stand in for the full
address-level prober.  These tests measure the *same behavioural
archetypes* through both paths and require the classification outcomes to
agree — the substitution contract of DESIGN.md, checked in code.
"""

import numpy as np
import pytest

from repro.core import classify_many, measure_block
from repro.core.estimator import estimate_series
from repro.core.timeseries import trim_to_midnight
from repro.net import (
    Block24,
    make_always_on,
    make_dead,
    make_diurnal,
    merge_behaviors,
)
from repro.probing import RoundSchedule
from repro.simulation.fastsim import adaptive_counts

SCHEDULE = RoundSchedule.for_days(14)


def fastsim_label(a_high, a_low, onset_frac, uptime_frac, seed):
    """Classify a synthetic availability profile through the fast path."""
    times = SCHEDULE.times()
    day_frac = (times / 86400.0) % 1.0
    x = (day_frac - onset_frac) % 1.0
    tau = 0.0625
    window = np.clip(x / tau, 0, 1) - np.clip((x - uptime_frac) / tau, 0, 1)
    a = a_low + (a_high - a_low) * window
    rng = np.random.default_rng(seed)
    a = np.clip(a + rng.normal(0, 0.02, len(a)), 0.01, 0.99)
    p, t = adaptive_counts(a[None, :], rng)
    series = estimate_series(p, t, initial_availability=np.array([a.mean()]))
    trim = trim_to_midnight(times, SCHEDULE.round_s)
    batch = classify_many(series.a_short[:, trim], SCHEDULE.round_s)
    return int(batch.labels[0]), float(batch.phases[0])


def fullsim_label(n_stable, n_diurnal, phase_s, seed):
    parts = [make_always_on(n_stable, p_response=0.9)]
    if n_diurnal:
        parts.append(
            make_diurnal(
                n_diurnal, phase_s=phase_s, uptime_s=13 * 3600,
                sigma_start_s=1800.0,
            )
        )
    parts.append(make_dead(256 - n_stable - n_diurnal))
    block = Block24(1, merge_behaviors(*parts))
    result = measure_block(block, SCHEDULE, np.random.default_rng(seed))
    code = {"non-diurnal": 0, "relaxed": 1, "strict": 2}[result.report.label.value]
    return code, result.report.phase


class TestClassificationAgreement:
    def test_strong_diurnal_agrees(self):
        """Both paths call a deep daily swing strictly diurnal."""
        fast, _ = fastsim_label(0.8, 0.25, 8 / 24, 13 / 24, seed=1)
        full, _ = fullsim_label(n_stable=40, n_diurnal=140, phase_s=8 * 3600, seed=1)
        assert fast == 2
        assert full == 2

    def test_flat_block_agrees(self):
        fast, _ = fastsim_label(0.8, 0.8, 0.3, 0.5, seed=2)
        full, _ = fullsim_label(n_stable=150, n_diurnal=0, phase_s=0, seed=2)
        assert fast == 0
        assert full == 0

    def test_phase_agreement_for_same_onset(self):
        """Both paths put the FFT phase at the same clock position for a
        block waking at the same hour (within EWMA-lag tolerance)."""
        onset_h = 8.0
        _, fast_phase = fastsim_label(0.8, 0.25, onset_h / 24, 13 / 24, seed=3)
        _, full_phase = fullsim_label(
            n_stable=40, n_diurnal=140, phase_s=onset_h * 3600, seed=3
        )
        delta = np.angle(np.exp(1j * (fast_phase - full_phase)))
        # One hour of phase at 1 c/d is 2π/24 ≈ 0.26 rad; allow ~1.5 h for
        # the different duty shapes (square wave vs trapezoid).
        assert abs(delta) < 0.45

    @pytest.mark.parametrize("onset_h", [0.0, 5.0, 11.0, 17.0, 23.0])
    def test_agreement_across_onsets(self, onset_h):
        fast, _ = fastsim_label(0.8, 0.25, onset_h / 24, 13 / 24, seed=int(onset_h))
        full, _ = fullsim_label(
            n_stable=40, n_diurnal=140, phase_s=onset_h * 3600, seed=int(onset_h)
        )
        assert fast == 2 and full == 2


class TestCountDistributionAgreement:
    @pytest.mark.parametrize("a_true", [0.2, 0.5, 0.8])
    def test_probe_cost_matches(self, a_true):
        """Fast-path probe counts match the real prober's (per round)."""
        from repro.probing import AdaptiveProber
        from repro.probing.prober import FixedAvailability

        n_rounds = 1500
        block = Block24(
            1,
            merge_behaviors(
                make_always_on(120, p_response=a_true), make_dead(136)
            ),
        )
        schedule = RoundSchedule(n_rounds)
        oracle = block.realize(schedule.times(), np.random.default_rng(4))
        log = AdaptiveProber(oracle.ever_active).run(
            oracle, schedule, FixedAvailability(a_true)
        )
        rng = np.random.default_rng(5)
        p, t = adaptive_counts(
            np.full((1, n_rounds), a_true), rng, missing_fraction=0.0
        )
        assert t.mean() == pytest.approx(log.totals.mean(), rel=0.12)
        assert p.mean() == pytest.approx(log.positives.mean(), rel=0.05)

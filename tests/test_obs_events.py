"""Structured event log + flight recorder (repro.obs.events)."""

import json

import pytest

from repro.obs.events import (
    LEVELS,
    NULL_EVENT_LOG,
    EventLogger,
    FlightRecorder,
    read_event_log,
)
from repro.obs.tracing import Tracer


class TestEventLogger:
    def test_writes_jsonl_records(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLogger(path) as log:
            log.info("run.start", n_blocks=3)
            log.warning("block.retry", index=1)
        records = read_event_log(path)
        assert [r["event"] for r in records] == ["run.start", "block.retry"]
        assert records[0]["level"] == "info"
        assert records[0]["n_blocks"] == 3
        assert records[0]["ts"] > 0

    def test_level_threshold_filters_sink(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLogger(path, level="warning") as log:
            log.debug("noise")
            log.info("also-noise")
            log.warning("signal")
            log.error("loud-signal")
        assert [r["event"] for r in read_event_log(path)] == [
            "signal", "loud-signal",
        ]

    def test_rejects_unknown_level(self):
        with pytest.raises(ValueError, match="unknown level"):
            EventLogger(level="loud")
        with pytest.raises(KeyError):
            EventLogger().log("shout", "x")

    def test_bound_fields_merged_into_every_record(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLogger(path, run_id="r1") as log:
            log.info("a")
            log.info("b", run_id="override")
        records = read_event_log(path)
        assert records[0]["run_id"] == "r1"
        # Explicit per-call fields win over bound ones.
        assert records[1]["run_id"] == "override"

    def test_bind_shares_sink_and_count(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLogger(path) as log:
            child = log.bind(worker_id=3)
            grandchild = child.bind(block_id=9)
            log.info("parent")
            child.info("child")
            grandchild.info("grandchild")
            assert log.n_records == child.n_records == 3
        records = read_event_log(path)
        assert "worker_id" not in records[0]
        assert records[1]["worker_id"] == 3
        assert records[2]["worker_id"] == 3 and records[2]["block_id"] == 9

    def test_ring_sees_below_threshold_records(self):
        ring: list = []
        log = EventLogger(level="error", ring=ring)
        log.debug("chatter")
        log.error("boom")
        # The black box wants the debug chatter from before the crash
        # even when the sink only keeps errors.
        assert [r["event"] for r in ring] == ["chatter", "boom"]
        assert log.n_records == 1  # only the error passed the threshold

    def test_bind_adds_ring_keeps_parents(self):
        outer: list = []
        inner: list = []
        log = EventLogger(ring=outer)
        child = log.bind(ring=inner)
        child.info("x")
        assert len(outer) == len(inner) == 1

    def test_tracer_stamps_current_span(self, tmp_path):
        path = tmp_path / "events.jsonl"
        tracer = Tracer()
        with EventLogger(path, tracer=tracer) as log:
            with tracer.trace("stage") as span:
                log.info("inside")
            log.info("outside")
        inside, outside = read_event_log(path)
        assert inside["trace_id"] == span.trace_id
        assert inside["span_id"] == span.span_id
        assert "trace_id" not in outside

    def test_explicit_trace_id_not_overwritten(self, tmp_path):
        path = tmp_path / "events.jsonl"
        tracer = Tracer()
        with EventLogger(path, tracer=tracer) as log:
            with tracer.trace("stage"):
                log.info("shipped", trace_id="remote-1", span_id="remote-2")
        [record] = read_event_log(path)
        assert record["trace_id"] == "remote-1"
        assert record["span_id"] == "remote-2"

    def test_emit_preserves_record_and_merges_bound(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLogger(path, run_id="r1", worker_id=0) as log:
            log.emit({
                "ts": 123.0, "level": "warning", "event": "block.retry",
                "worker_id": 2,
            })
        [record] = read_event_log(path)
        assert record["ts"] == 123.0  # shipped timestamp kept
        assert record["run_id"] == "r1"  # bound field merged underneath
        assert record["worker_id"] == 2  # the record wins

    def test_emit_respects_threshold_and_rings(self):
        ring: list = []
        log = EventLogger(level="error", ring=ring)
        log.emit({"level": "debug", "event": "chatter"})
        assert log.n_records == 0
        assert [r["event"] for r in ring] == ["chatter"]

    def test_emit_defaults_missing_level_to_info(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLogger(path, level="info") as log:
            log.emit({"event": "bare"})
        assert len(read_event_log(path)) == 1

    def test_file_like_sink_not_closed(self, tmp_path):
        path = tmp_path / "events.jsonl"
        handle = open(path, "a", encoding="utf-8")
        log = EventLogger(handle)
        log.info("x")
        log.close()
        assert not handle.closed
        handle.close()

    def test_null_logger_full_interface(self):
        with NULL_EVENT_LOG as log:
            assert log.bind(worker_id=1) is log
            log.debug("x")
            log.info("x")
            log.warning("x")
            log.error("x")
            log.emit({"event": "x"})
            assert log.n_records == 0
            assert not log.enabled

    def test_levels_are_ordered(self):
        assert (
            LEVELS["debug"] < LEVELS["info"]
            < LEVELS["warning"] < LEVELS["error"]
        )


class TestReadEventLog:
    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLogger(path) as log:
            log.info("a")
            log.info("b")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "torn", "le')  # killed mid-write
        records = read_event_log(path)
        assert [r["event"] for r in records] == ["a", "b"]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"event": "a"}\ngarbage\n{"event": "c"}\n')
        with pytest.raises(json.JSONDecodeError):
            read_event_log(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"event": "a"}\n\n{"event": "b"}\n')
        assert len(read_event_log(path)) == 2


class TestFlightRecorder:
    def test_rings_evict_oldest_first(self):
        rec = FlightRecorder(capacity=3, metric_capacity=2)
        for i in range(5):
            rec.append({"event": f"e{i}"})
            rec.sample({"seq": i})
        snap = rec.snapshot()
        assert [r["event"] for r in snap["events"]] == ["e2", "e3", "e4"]
        assert [s["seq"] for s in snap["metric_samples"]] == [3, 4]
        # Totals keep counting past the ring capacity.
        assert snap["n_events_total"] == 5
        assert snap["n_samples_total"] == 5

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError, match="positive"):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError, match="positive"):
            FlightRecorder(metric_capacity=0)

    def test_logger_tee(self):
        rec = FlightRecorder()
        log = EventLogger(level="error", ring=rec)
        log.debug("pre-crash chatter")
        assert rec.snapshot()["events"][0]["event"] == "pre-crash chatter"

    def test_dump_writes_full_box(self, tmp_path):
        rec = FlightRecorder(capacity=4)
        rec.append({"event": "a"})
        rec.sample({"seq": 1})
        out = rec.dump(
            tmp_path / "flight.json", reason="worker crashed", worker_id=2
        )
        payload = json.loads(out.read_text())
        assert payload["reason"] == "worker crashed"
        assert payload["worker_id"] == 2
        assert payload["events"] == [{"event": "a"}]
        assert payload["metric_samples"] == [{"seq": 1}]
        assert payload["dumped_unix"] > 0
        assert rec.n_dumps == 1

    def test_dump_creates_parent_dirs(self, tmp_path):
        rec = FlightRecorder()
        out = rec.dump(tmp_path / "deep" / "nested" / "f.json", reason="x")
        assert out.exists()


class TestConcurrentWrites:
    def test_no_torn_or_interleaved_records(self, tmp_path):
        """Many threads, one sink: every JSONL line must parse whole.

        The access log and the supervision thread (plus bound children
        like per-shard loggers) all write through one ``_Sink``; a torn
        or interleaved line would corrupt the record *and* every tool
        that tails the log.  Writes serialize under the sink lock with
        the full line built first, so exactly ``threads × records``
        intact records must come back out.
        """
        import threading

        path = tmp_path / "events.jsonl"
        n_threads, n_records = 8, 200
        payload = "x" * 512  # wide records make torn writes visible
        with EventLogger(path) as log:
            children = [
                log.bind(worker=i) for i in range(n_threads)
            ]
            barrier = threading.Barrier(n_threads)

            def writer(child, worker_id):
                barrier.wait()
                for seq in range(n_records):
                    child.info(
                        "concurrency.test", seq=seq, pad=payload
                    )

            threads = [
                threading.Thread(target=writer, args=(children[i], i))
                for i in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert log.n_records == n_threads * n_records
        # Parse the raw file directly: read_event_log tolerates a torn
        # *final* line, which is exactly what this test must not skip.
        lines = path.read_text().splitlines()
        assert len(lines) == n_threads * n_records
        seen = set()
        for line in lines:
            record = json.loads(line)  # raises on any torn/mixed line
            assert record["event"] == "concurrency.test"
            assert record["pad"] == payload
            seen.add((record["worker"], record["seq"]))
        assert len(seen) == n_threads * n_records

"""Tests for Block24 and ResponseOracle."""

import numpy as np
import pytest

from repro.net import (
    Block24,
    Outage,
    make_always_on,
    make_dead,
    merge_behaviors,
    parse_block,
)


def simple_block(block="10.0.0/24"):
    behavior = merge_behaviors(make_always_on(40, p_response=0.8), make_dead(216))
    return Block24(parse_block(block), behavior)


class TestRealize:
    def test_oracle_shape(self):
        times = np.arange(100) * 660.0
        oracle = simple_block().realize(times, np.random.default_rng(0))
        assert oracle.responses.shape == (256, 100)
        assert oracle.n_rounds == 100

    def test_ever_active_excludes_dead(self):
        times = np.arange(10) * 660.0
        oracle = simple_block().realize(times, np.random.default_rng(0))
        assert oracle.n_ever_active == 40
        assert (oracle.ever_active < 40).all()

    def test_true_availability_matches_p_response(self):
        times = np.arange(2000) * 660.0
        oracle = simple_block().realize(times, np.random.default_rng(1))
        assert oracle.mean_availability() == pytest.approx(0.8, abs=0.01)

    def test_probe_agrees_with_matrix(self):
        times = np.arange(50) * 660.0
        oracle = simple_block().realize(times, np.random.default_rng(2))
        for host, r in [(0, 0), (39, 49), (200, 25)]:
            assert oracle.probe(host, r) == bool(oracle.responses[host, r])

    def test_probe_many(self):
        times = np.arange(5) * 660.0
        oracle = simple_block().realize(times, np.random.default_rng(3))
        hosts = np.array([0, 1, 2])
        assert (oracle.probe_many(hosts, 0) == oracle.responses[:3, 0]).all()

    def test_outage_drops_availability_to_zero(self):
        block = simple_block()
        block.outages.append(Outage(660.0 * 10, 660.0 * 20))
        times = np.arange(30) * 660.0
        oracle = block.realize(times, np.random.default_rng(4))
        a = oracle.true_availability()
        assert (a[10:20] == 0).all()
        assert a[:10].mean() > 0.5

    def test_empty_block_availability_zero(self):
        block = Block24(1, make_dead(256))
        oracle = block.realize(np.arange(5) * 660.0, np.random.default_rng(0))
        assert (oracle.true_availability() == 0).all()

    def test_mismatched_times_rejected(self):
        times = np.arange(10) * 660.0
        oracle = simple_block().realize(times, np.random.default_rng(0))
        from repro.net.blocks import ResponseOracle

        with pytest.raises(ValueError):
            ResponseOracle(
                block_id=1,
                times=times[:5],
                responses=oracle.responses,
                ever_active=oracle.ever_active,
            )

    def test_str_uses_paper_notation(self):
        assert str(simple_block("27.186.9/24")) == "27.186.9/24"

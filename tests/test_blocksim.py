"""Tests for the controlled block simulations (paper section 3.2.2)."""

import numpy as np
import pytest

from repro.simulation.blocksim import (
    ControlledBlockConfig,
    accuracy_sweep,
    build_controlled_block,
    detection_accuracy,
    run_controlled_block,
)

# Short observations keep the test suite fast; the benchmarks run the
# paper's full four weeks.
FAST = dict(days=7.0)


class TestConfig:
    def test_paper_defaults(self):
        cfg = ControlledBlockConfig()
        assert cfg.n_stable == 50
        assert cfg.n_diurnal == 100
        assert cfg.uptime_s == 8 * 3600
        assert cfg.days == 28.0

    def test_rejects_overfull_block(self):
        with pytest.raises(ValueError):
            ControlledBlockConfig(n_stable=200, n_diurnal=100)

    def test_rejects_no_diurnal(self):
        with pytest.raises(ValueError):
            ControlledBlockConfig(n_diurnal=0)


class TestBuild:
    def test_address_composition(self):
        cfg = ControlledBlockConfig()
        block = build_controlled_block(cfg, np.random.default_rng(0))
        from repro.net.addrmodel import AddressKind

        kinds = block.behavior.kinds
        assert (kinds == AddressKind.ALWAYS_ON).sum() == 50
        assert (kinds == AddressKind.DIURNAL).sum() == 100
        assert (kinds == AddressKind.DEAD).sum() == 106

    def test_phases_within_phi(self):
        cfg = ControlledBlockConfig(phi_max_s=4 * 3600)
        block = build_controlled_block(cfg, np.random.default_rng(1))
        from repro.net.addrmodel import AddressKind

        diurnal = block.behavior.kinds == AddressKind.DIURNAL
        phases = block.behavior.phase_s[diurnal]
        assert (phases >= cfg.base_phase_s - 1e-6).all()
        assert (phases <= cfg.base_phase_s + 4 * 3600 + 1e-6).all()


class TestDetection:
    def test_noise_free_case_always_detected(self):
        """Paper: 100% detection with Φ = σ_s = σ_d = 0."""
        cfg = ControlledBlockConfig(**FAST)
        assert detection_accuracy(cfg, n_experiments=10, seed=0) == 1.0

    def test_single_diurnal_address_usually_missed(self):
        """Paper Figure 7: n_d = 1 in front of 50 stable addresses is
        essentially invisible to stop-on-first-positive probing."""
        cfg = ControlledBlockConfig(n_diurnal=1, **FAST)
        assert detection_accuracy(cfg, n_experiments=10, seed=1) <= 0.2

    def test_accuracy_increases_with_nd(self):
        lo = detection_accuracy(
            ControlledBlockConfig(n_diurnal=4, **FAST), 12, seed=2
        )
        hi = detection_accuracy(
            ControlledBlockConfig(n_diurnal=80, **FAST), 12, seed=2
        )
        assert hi >= lo
        assert hi >= 0.9

    def test_large_phase_spread_defeats_strict(self):
        """Paper Figure 8: spreading phases over ~20+ hours blurs the
        block-level signal."""
        cfg = ControlledBlockConfig(phi_max_s=22 * 3600, **FAST)
        assert detection_accuracy(cfg, n_experiments=10, seed=3) <= 0.5

    def test_duration_noise_tolerated(self):
        """Paper Figure 9: several hours of σ_d barely matter."""
        cfg = ControlledBlockConfig(sigma_duration_s=3 * 3600, **FAST)
        assert detection_accuracy(cfg, n_experiments=10, seed=4) >= 0.8

    def test_run_returns_bool(self):
        cfg = ControlledBlockConfig(**FAST)
        assert run_controlled_block(cfg, np.random.default_rng(5)) in (True, False)

    def test_relaxed_mode_easier(self):
        strict_cfg = ControlledBlockConfig(phi_max_s=16 * 3600, **FAST)
        relaxed_cfg = ControlledBlockConfig(
            phi_max_s=16 * 3600, strict_only=False, **FAST
        )
        a_strict = detection_accuracy(strict_cfg, 10, seed=6)
        a_relaxed = detection_accuracy(relaxed_cfg, 10, seed=6)
        assert a_relaxed >= a_strict


class TestSweep:
    def test_sweep_structure(self):
        cfg = ControlledBlockConfig(**FAST)
        points = accuracy_sweep(
            cfg, "n_diurnal", [5, 100], n_batches=2, experiments_per_batch=5
        )
        assert len(points) == 2
        assert points[0].value == 5.0
        for point in points:
            assert 0.0 <= point.q1 <= point.median <= point.q3 <= 1.0

    def test_sweep_deterministic(self):
        cfg = ControlledBlockConfig(**FAST)
        a = accuracy_sweep(cfg, "n_diurnal", [50], 2, 4, seed=3)
        b = accuracy_sweep(cfg, "n_diurnal", [50], 2, 4, seed=3)
        assert np.array_equal(a[0].batch_accuracies, b[0].batch_accuracies)

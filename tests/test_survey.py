"""Tests for exhaustive surveys."""

import numpy as np
import pytest

from repro.net import Block24, make_always_on, make_dead, make_diurnal, merge_behaviors
from repro.probing import RoundSchedule, run_survey


def surveyed(behavior, n_rounds=200, seed=0):
    block = Block24(1, behavior)
    schedule = RoundSchedule(n_rounds)
    oracle = block.realize(schedule.times(), np.random.default_rng(seed))
    return run_survey(oracle, schedule), schedule


class TestSurvey:
    def test_probes_every_address_every_round(self):
        result, _ = surveyed(merge_behaviors(make_always_on(10), make_dead(246)))
        assert (result.totals == 256).all()
        assert result.total_probes == 256 * 200

    def test_availability_is_exact_fraction(self):
        result, _ = surveyed(merge_behaviors(make_always_on(64, 1.0), make_dead(192)))
        assert (result.availability == 1.0).all()
        assert (result.positives == 64).all()

    def test_availability_over_ever_active_only(self):
        """A = responsive fraction of E(b), not of all 256 addresses."""
        result, _ = surveyed(merge_behaviors(make_always_on(42, 0.735), make_dead(214)), n_rounds=2000)
        assert result.n_ever_active == 42
        assert result.mean_availability == pytest.approx(0.735, abs=0.02)

    def test_diurnal_block_availability_oscillates(self):
        behavior = merge_behaviors(
            make_always_on(50, 1.0), make_diurnal(100, phase_s=0.0, p_response=1.0)
        )
        result, _ = surveyed(behavior, n_rounds=int(86400 / 660) + 1)
        assert result.availability.max() == pytest.approx(1.0, abs=0.01)
        assert result.availability.min() == pytest.approx(50 / 150, abs=0.01)

    def test_schedule_mismatch_rejected(self):
        block = Block24(1, make_always_on(10))
        oracle = block.realize(np.arange(5) * 660.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            run_survey(oracle, RoundSchedule(6))

    def test_survey_cost_dwarfs_adaptive(self):
        """Surveys cost ~256 probes/round: fine for 2% of blocks, not for all."""
        result, schedule = surveyed(merge_behaviors(make_always_on(30), make_dead(226)))
        from repro.probing import probes_per_hour

        assert probes_per_hour(result.total_probes, schedule) > 1000

"""Tests for outage injection."""

import numpy as np
import pytest

from repro.net.events import Outage, apply_outages, outage_mask


class TestOutage:
    def test_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            Outage(100.0, 100.0)

    def test_rejects_inverted_interval(self):
        with pytest.raises(ValueError):
            Outage(200.0, 100.0)

    def test_duration(self):
        assert Outage(100.0, 400.0).duration_s() == 300.0

    def test_covers_half_open(self):
        o = Outage(100.0, 200.0)
        assert o.covers(100.0)
        assert o.covers(199.9)
        assert not o.covers(200.0)
        assert not o.covers(99.9)


class TestOutageMask:
    def test_empty_outage_list(self):
        times = np.arange(10.0)
        assert not outage_mask(times, []).any()

    def test_single_outage(self):
        times = np.arange(0.0, 100.0, 10.0)
        mask = outage_mask(times, [Outage(25.0, 55.0)])
        assert mask.tolist() == [False, False, False, True, True, True] + [False] * 4

    def test_overlapping_outages_union(self):
        times = np.arange(0.0, 50.0, 10.0)
        mask = outage_mask(times, [Outage(5.0, 25.0), Outage(20.0, 35.0)])
        assert mask.tolist() == [False, True, True, True, False]


class TestApplyOutages:
    def test_zeroes_covered_columns_only(self):
        responses = np.ones((4, 6), dtype=bool)
        times = np.arange(6) * 660.0
        out = apply_outages(responses, times, [Outage(660.0, 1900.0)])
        assert not out[:, 1].any()
        assert not out[:, 2].any()
        assert out[:, 0].all()
        assert out[:, 3:].all()

    def test_input_not_modified(self):
        responses = np.ones((2, 3), dtype=bool)
        times = np.arange(3) * 660.0
        apply_outages(responses, times, [Outage(0.0, 5000.0)])
        assert responses.all()

    def test_no_outages_returns_same_object(self):
        responses = np.ones((2, 3), dtype=bool)
        times = np.arange(3) * 660.0
        assert apply_outages(responses, times, []) is responses

"""Tests for repro.obs.export: Prometheus text, JSON snapshots, manifests."""

import json
import re

import pytest

from repro.obs.export import (
    RunManifest,
    json_snapshot,
    prometheus_text,
    write_json_snapshot,
)
from repro.obs.registry import (
    MetricsRegistry,
    NULL_REGISTRY,
    escape_label_value,
)
from repro.obs.tracing import Tracer


def populated_registry():
    reg = MetricsRegistry()
    reg.counter("events_total", kind="close").inc(3)
    reg.counter("events_total", kind="late").inc(1)
    reg.gauge("depth").set(2.5)
    h = reg.histogram("latency_seconds", buckets=(0.1, 1.0))
    # Dyadic values keep the sum exactly representable (stable repr).
    h.observe(0.0625)
    h.observe(0.5)
    h.observe(5.0)
    m = reg.meter("ingest_rate")
    m.observe(10.0)
    return reg


class TestPrometheusText:
    def test_counters_and_gauges(self):
        text = prometheus_text(populated_registry())
        assert "# TYPE events_total counter" in text
        assert 'events_total{kind="close"} 3' in text
        assert 'events_total{kind="late"} 1' in text
        assert "# TYPE depth gauge" in text
        assert "depth 2.5" in text

    def test_histogram_exposition(self):
        text = prometheus_text(populated_registry())
        assert "# TYPE latency_seconds histogram" in text
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="1"} 2' in text
        assert 'latency_seconds_bucket{le="+Inf"} 3' in text
        assert "latency_seconds_sum 5.5625" in text
        assert "latency_seconds_count 3" in text

    def test_meter_decomposes_into_gauges(self):
        text = prometheus_text(populated_registry())
        assert "# TYPE ingest_rate_rate_short gauge" in text
        assert "ingest_rate_rate_short 10" in text
        assert "ingest_rate_rate_long 10" in text
        assert "# TYPE ingest_rate_updates_total counter" in text
        assert "ingest_rate_updates_total 1" in text

    def test_type_line_emitted_once_per_name(self):
        text = prometheus_text(populated_registry())
        assert text.count("# TYPE events_total counter") == 1

    def test_empty_registry(self):
        assert prometheus_text(MetricsRegistry()) == ""
        assert prometheus_text(NULL_REGISTRY) == ""

    def test_ends_with_newline(self):
        assert prometheus_text(populated_registry()).endswith("\n")


class TestJsonSnapshot:
    def test_metrics_only(self):
        snap = json_snapshot(populated_registry())
        assert set(snap) == {"metrics"}
        assert snap["metrics"]["gauges"]["depth"] == 2.5

    def test_with_tracer(self):
        tracer = Tracer()
        with tracer.trace("stage"):
            pass
        snap = json_snapshot(populated_registry(), tracer)
        assert snap["stages"]["stage"]["count"] == 1

    def test_write_roundtrip(self, tmp_path):
        path = tmp_path / "nested" / "snap.json"
        out = write_json_snapshot(path, populated_registry())
        assert out == path
        data = json.loads(path.read_text())
        assert data["metrics"]["counters"]['events_total{kind="close"}'] == 3

    def test_json_serializable(self):
        # Histograms include an +Inf edge; the snapshot must still be
        # valid JSON (edges are stringified keys).
        json.dumps(json_snapshot(populated_registry()))


class TestRunManifest:
    def test_capture(self):
        reg = populated_registry()
        tracer = Tracer()
        with tracer.trace("classify"):
            pass
        manifest = RunManifest.capture(
            kind="batch",
            registry=reg,
            tracer=tracer,
            seed=42,
            n_blocks=7,
            fault_plan="ProbeLoss(5.0%)",
            quality_gates={"max_gap_fraction": 0.5},
            dataset="synthetic",
        )
        assert manifest.kind == "batch"
        assert manifest.seed == 42
        assert manifest.n_blocks == 7
        assert manifest.fault_plan == "ProbeLoss(5.0%)"
        assert manifest.quality_gates == {"max_gap_fraction": 0.5}
        assert manifest.stage_timings["classify"]["count"] == 1
        assert manifest.metrics["gauges"]["depth"] == 2.5
        assert manifest.extra == {"dataset": "synthetic"}
        assert manifest.created_unix > 0

    def test_capture_without_registry_or_tracer(self):
        manifest = RunManifest.capture(kind="stream")
        assert manifest.metrics == {}
        assert manifest.stage_timings == {}

    def test_save_load_roundtrip(self, tmp_path):
        manifest = RunManifest.capture(
            kind="batch",
            registry=populated_registry(),
            seed=1,
            n_blocks=3,
            fault_plan="clean (no faults)",
        )
        path = tmp_path / "run" / "manifest.json"
        manifest.save(path)
        loaded = RunManifest.load(path)
        assert loaded == manifest

    def test_to_json_is_deterministic(self):
        a = RunManifest(kind="x", seed=1, created_unix=5.0)
        b = RunManifest(kind="x", seed=1, created_unix=5.0)
        assert a.to_json() == b.to_json()
        assert json.loads(a.to_json())["kind"] == "x"


def test_format_values():
    reg = MetricsRegistry()
    reg.gauge("g_int").set(3.0)
    reg.gauge("g_float").set(3.25)
    text = prometheus_text(reg)
    assert "g_int 3\n" in text  # integral floats render as ints
    assert "g_float 3.25" in text


def test_histogram_labels_merge_with_le():
    reg = MetricsRegistry()
    reg.histogram("lat", buckets=(1.0,), path="x").observe(0.5)
    text = prometheus_text(reg)
    assert 'lat_bucket{le="1",path="x"} 1' in text
    assert 'lat_sum{path="x"}' in text


def test_negative_infinity_format():
    reg = MetricsRegistry()
    reg.gauge("g").set(float("-inf"))
    assert "g -Inf" in prometheus_text(reg)


# One exposition line: name, optional {label="value",...}, space, value.
# Label values may contain anything except raw ", \, or newline — those
# must appear escaped (\" \\ \n), which is what the value charclass and
# escape alternation below encode.
_SAMPLE_LINE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\["\\n])*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\["\\n])*")*\})?'
    r' -?(\d+(\.\d+)?([eE][+-]?\d+)?|Inf|NaN)$'
)


class TestLabelEscaping:
    def test_escape_label_value(self):
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'
        assert escape_label_value("plain") == "plain"
        assert escape_label_value(7) == "7"  # coerced like label storage

    def test_nasty_values_render_one_parseable_line_each(self):
        reg = MetricsRegistry()
        nasty = {
            "backslash": "C:\\temp\\probe",
            "quote": 'block "A"',
            "newline": "line one\nline two",
            "all-three": '\\"\n',
        }
        for name, value in nasty.items():
            reg.counter("nasty_total", kind=name, path=value).inc()
        text = prometheus_text(reg)
        sample_lines = [
            line for line in text.splitlines()
            if line and not line.startswith("#")
        ]
        assert len(sample_lines) == len(nasty)  # no line got split
        for line in sample_lines:
            assert _SAMPLE_LINE.match(line), line

    def test_grammar_lint_full_exposition(self):
        reg = populated_registry()
        reg.counter("escaped_total", path='a\\b"c\nd').inc(2)
        for line in prometheus_text(reg).splitlines():
            if not line:
                continue
            if line.startswith("#"):
                assert re.match(
                    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* "
                    r"(counter|gauge|histogram)$",
                    line,
                ), line
            else:
                assert _SAMPLE_LINE.match(line), line

    def test_escaping_round_trips(self):
        # Unescaping the rendered value must recover the original, i.e.
        # escaping is injective — two different raw values can never
        # collide into the same exposition bytes.
        raw = 'a\\b"c\nd\\\\e'
        rendered = escape_label_value(raw)
        assert (
            rendered
            .replace("\\\\", "\x00")
            .replace('\\"', '"')
            .replace("\\n", "\n")
            .replace("\x00", "\\")
        ) == raw


def test_load_rejects_unknown_fields(tmp_path):
    path = tmp_path / "m.json"
    path.write_text(json.dumps({"kind": "x", "bogus": 1}))
    with pytest.raises(TypeError):
        RunManifest.load(path)

"""Tests for the streaming diurnal engine (repro.stream.engine).

The load-bearing property is **batch parity**: every window the engine
closes must carry a report bit-identical to running the batch path
(`clean_observations` + `classify_series`) over the same observations —
including under fault injection.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classify import DiurnalClass, reports_equal
from repro.faults.config import FaultConfig
from repro.faults.plan import FaultPlan
from repro.stream import (
    ClassificationTransition,
    LateObservation,
    ListSink,
    PhaseEdge,
    QualityDegraded,
    QualityRestored,
    StreamConfig,
    StreamEngine,
    WindowClosed,
    batch_window_report,
)

ROUND = 660.0
DAY = 86400.0


def diurnal_stream(n_days, seed=0, amplitude=0.4, noise=0.02, mean=0.5):
    """A clean per-round diurnal observation stream."""
    rng = np.random.default_rng(seed)
    n = int(n_days * DAY / ROUND)
    times = np.arange(n) * ROUND
    values = (
        mean
        + amplitude * np.sin(2 * np.pi * times / DAY)
        + noise * rng.standard_normal(n)
    )
    return times, values


def flat_stream(n_days, seed=0, noise=0.02, mean=0.5):
    rng = np.random.default_rng(seed)
    n = int(n_days * DAY / ROUND)
    times = np.arange(n) * ROUND
    return times, mean + noise * rng.standard_normal(n)


def assert_parity(sink, times, values, config):
    """Every closed window's report/quality must match the batch oracle."""
    closes = sink.of_type(WindowClosed)
    assert closes, "no windows closed"
    for event in closes:
        want_report, want_quality = batch_window_report(
            times, values, event.window_start_round, event.n_rounds, config
        )
        assert reports_equal(event.report, want_report), (
            event.window_start_round,
            event.report,
            want_report,
        )
        assert event.quality == want_quality
    return closes


class TestConfig:
    def test_sub_day_window_rejected(self):
        with pytest.raises(ValueError, match="at least one full day"):
            StreamConfig(window_rounds=50)

    def test_bad_hop_rejected(self):
        n = int(2 * DAY / ROUND)
        with pytest.raises(ValueError, match="hop_rounds"):
            StreamConfig(window_rounds=n, hop_rounds=n + 1)
        with pytest.raises(ValueError, match="hop_rounds"):
            StreamConfig(window_rounds=n, hop_rounds=0)

    def test_bad_policy_rejected(self):
        n = int(2 * DAY / ROUND)
        with pytest.raises(ValueError, match="fill policy"):
            StreamConfig(window_rounds=n, fill_policy="wat")

    def test_bad_dwell_rejected(self):
        n = int(2 * DAY / ROUND)
        with pytest.raises(ValueError, match="label_dwell"):
            StreamConfig(window_rounds=n, label_dwell=0)

    def test_for_days(self):
        config = StreamConfig.for_days(2.0, hop_days=0.5)
        assert config.window_rounds == int(round(2 * DAY / ROUND))
        assert config.hop == int(round(0.5 * DAY / ROUND))

    def test_default_hop_is_tumbling(self):
        config = StreamConfig.for_days(2.0)
        assert config.hop == config.window_rounds


class TestBatchParityClean:
    def test_tumbling_windows(self):
        times, values = diurnal_stream(6, seed=1)
        config = StreamConfig.for_days(2.0, label_dwell=1)
        sink = ListSink()
        engine = StreamEngine(config, sinks=[sink])
        engine.ingest_many(0, times, values)
        engine.flush()
        closes = assert_parity(sink, times, values, config)
        n = len(times)
        want = (n - config.window_rounds) // config.hop + 1
        assert len(closes) == want
        assert all(
            e.report.label is DiurnalClass.STRICT for e in closes
        )

    def test_hopping_windows(self):
        times, values = diurnal_stream(5, seed=2)
        config = StreamConfig.for_days(2.0, hop_days=0.5, label_dwell=1)
        sink = ListSink()
        engine = StreamEngine(config, sinks=[sink])
        engine.ingest_many(3, times, values)
        engine.flush()
        closes = assert_parity(sink, times, values, config)
        n = len(times)
        want = (n - config.window_rounds) // config.hop + 1
        assert len(closes) == want
        starts = [e.window_start_round for e in closes]
        assert starts == [i * config.hop for i in range(want)]

    def test_non_diurnal_stream(self):
        times, values = flat_stream(4, seed=3)
        config = StreamConfig.for_days(2.0, label_dwell=1)
        sink = ListSink()
        engine = StreamEngine(config, sinks=[sink])
        engine.ingest_many(0, times, values)
        engine.flush()
        closes = assert_parity(sink, times, values, config)
        assert all(
            e.report.label is not DiurnalClass.STRICT for e in closes
        )

    def test_sparse_stream_parity(self):
        rng = np.random.default_rng(4)
        times, values = diurnal_stream(6, seed=4)
        keep = rng.random(len(times)) > 0.2
        config = StreamConfig.for_days(2.0, label_dwell=1)
        sink = ListSink()
        engine = StreamEngine(config, sinks=[sink])
        engine.ingest_many(0, times[keep], values[keep])
        engine.flush()
        assert_parity(sink, times[keep], values[keep], config)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        drop=st.floats(0.0, 0.5),
        hop_days=st.sampled_from([0.5, 1.0, 2.0]),
    )
    def test_property_parity(self, seed, drop, hop_days):
        rng = np.random.default_rng(seed)
        times, values = diurnal_stream(5, seed=seed)
        keep = rng.random(len(times)) > drop
        config = StreamConfig.for_days(2.0, hop_days=hop_days, label_dwell=1)
        sink = ListSink()
        engine = StreamEngine(config, sinks=[sink])
        engine.ingest_many(0, times[keep], values[keep])
        engine.flush()
        assert_parity(sink, times[keep], values[keep], config)


class TestBatchParityUnderFaults:
    FAULTS = FaultConfig(
        round_drop_rate=0.05,
        round_duplicate_rate=0.05,
        gaps_per_day=1.0,
        mean_gap_rounds=6.0,
        clock_jitter_s=60.0,
        clock_skew_ppm=50.0,
        seed=11,
    )

    def degraded(self, block_index, n_days=6, seed=5):
        times, values = diurnal_stream(n_days, seed=seed)
        plan = FaultPlan(self.FAULTS).for_block(block_index)
        return plan.degrade_stream(times, values, ROUND)

    def test_parity_with_injected_faults(self):
        # degrade_stream sorts by (corrupted) timestamp, so rounds arrive
        # in non-decreasing order and no lateness slack is needed.
        for block in range(4):
            times, values = self.degraded(block)
            config = StreamConfig.for_days(2.0, label_dwell=1)
            sink = ListSink()
            engine = StreamEngine(config, sinks=[sink])
            engine.ingest_many(block, times, values)
            engine.flush()
            assert engine.n_late(block) == 0
            assert_parity(sink, times, values, config)

    def test_heavy_faults_trigger_quality_gate(self):
        heavy = FaultConfig(round_drop_rate=0.45, gaps_per_day=4.0, seed=3)
        times, values = diurnal_stream(6, seed=6)
        obs_t, obs_v = FaultPlan(heavy).degrade_stream(times, values, ROUND)
        config = StreamConfig.for_days(2.0, label_dwell=1)
        sink = ListSink()
        engine = StreamEngine(config, sinks=[sink])
        engine.ingest_many(0, obs_t, obs_v)
        engine.flush()
        closes = assert_parity(sink, obs_t, obs_v, config)
        assert any(
            e.report.label is DiurnalClass.INSUFFICIENT for e in closes
        )
        assert sink.of_type(QualityDegraded)


class TestWatermarkAndLateness:
    def test_disorder_within_slack_is_reordered(self):
        times, values = diurnal_stream(4, seed=7)
        rng = np.random.default_rng(7)
        # Perturbing each timestamp forward by up to 5 rounds before
        # sorting bounds any observation's displacement to 5 rounds.
        order = np.argsort(
            times + rng.uniform(0, 5 * ROUND, len(times)), kind="stable"
        )
        config = StreamConfig.for_days(2.0, lateness_rounds=8, label_dwell=1)
        sink = ListSink()
        engine = StreamEngine(config, sinks=[sink])
        engine.ingest_many(0, times[order], values[order])
        engine.flush()
        assert engine.n_late(0) == 0
        assert_parity(sink, times, values, config)

    def test_late_observation_dropped_with_event(self):
        config = StreamConfig.for_days(2.0, lateness_rounds=0, label_dwell=1)
        sink = ListSink()
        engine = StreamEngine(config, sinks=[sink])
        engine.ingest(0, 100 * ROUND, 0.5)
        engine.ingest(0, 50 * ROUND, 0.9)  # behind the watermark
        late = sink.of_type(LateObservation)
        assert len(late) == 1
        assert late[0].round_index == 50
        # Watermark sits one round behind the newest round (100), so the
        # drop lags it by 99 - 50 rounds.
        assert late[0].lag_rounds == 49
        assert engine.n_late(0) == 1

    def test_negative_round_dropped(self):
        config = StreamConfig.for_days(2.0, label_dwell=1)
        sink = ListSink()
        engine = StreamEngine(config, sinks=[sink])
        engine.ingest(0, -5 * ROUND, 0.5)
        assert len(sink.of_type(LateObservation)) == 1

    def test_dropped_late_round_excluded_from_verdict(self):
        """The closed window reflects exactly the admitted observations."""
        times, values = diurnal_stream(3, seed=8)
        config = StreamConfig.for_days(2.0, lateness_rounds=0, label_dwell=1)
        sink = ListSink()
        engine = StreamEngine(config, sinks=[sink])
        # Feed rounds 10.. first so rounds 0..9 arrive late and drop.
        engine.ingest_many(0, times[10:], values[10:])
        engine.ingest_many(0, times[:10], values[:10])
        engine.flush()
        assert engine.n_late(0) == 10
        assert_parity(sink, times[10:], values[10:], config)

    def test_far_future_jump_still_parity(self):
        """A jump past ring capacity forces eviction, not corruption."""
        times, values = diurnal_stream(3, seed=9)
        config = StreamConfig.for_days(1.0, label_dwell=1)
        gap_times = np.concatenate([times, times + 30 * DAY])
        gap_values = np.concatenate([values, values])
        sink = ListSink()
        engine = StreamEngine(config, sinks=[sink])
        engine.ingest_many(0, gap_times, gap_values)
        engine.flush()
        assert_parity(sink, gap_times, gap_values, config)


class TestHysteresis:
    def build(self, dwell):
        # 2 diurnal days, then flat: tumbling 1-day windows flip labels.
        t1, v1 = diurnal_stream(2, seed=10)
        t2, v2 = flat_stream(3, seed=10)
        times = np.concatenate([t1, t2 + 2 * DAY])
        values = np.concatenate([v1, v2])
        config = StreamConfig.for_days(1.0, label_dwell=dwell)
        sink = ListSink()
        engine = StreamEngine(config, sinks=[sink])
        engine.ingest_many(0, times, values)
        engine.flush()
        return engine, sink

    def test_dwell_two_delays_transition(self):
        engine, sink = self.build(dwell=2)
        transitions = sink.of_type(ClassificationTransition)
        # Initial verdict plus exactly one (confirmed) transition.
        assert len(transitions) == 2
        first, flip = transitions
        assert first.old_label is None
        assert first.new_label.is_diurnal
        assert not flip.new_label.is_diurnal
        assert flip.dwell == 2
        # The flip fires on the second non-diurnal close, not the first.
        closes = sink.of_type(WindowClosed)
        flip_positions = [
            i for i, c in enumerate(closes)
            if c.round_index == flip.round_index
        ]
        first_bad = next(
            i for i, c in enumerate(closes)
            if not c.report.label.is_diurnal
        )
        assert flip_positions[0] == first_bad + 1
        assert not engine.stable_label(0).is_diurnal

    def test_dwell_one_flips_immediately(self):
        engine, sink = self.build(dwell=1)
        transitions = sink.of_type(ClassificationTransition)
        assert len(transitions) == 2
        assert transitions[1].dwell == 1

    def test_single_window_blip_suppressed(self):
        # diurnal, one flat day, diurnal again: with dwell=2 the stable
        # label never leaves diurnal.
        t1, v1 = diurnal_stream(2, seed=11)
        t2, v2 = flat_stream(1, seed=11)
        t3, v3 = diurnal_stream(2, seed=12)
        times = np.concatenate([t1, t2 + 2 * DAY, t3 + 3 * DAY])
        values = np.concatenate([v1, v2, v3])
        config = StreamConfig.for_days(1.0, label_dwell=2)
        sink = ListSink()
        engine = StreamEngine(config, sinks=[sink])
        engine.ingest_many(0, times, values)
        engine.flush()
        transitions = sink.of_type(ClassificationTransition)
        assert len(transitions) == 1  # only the initial verdict
        assert engine.stable_label(0).is_diurnal


class TestPhaseEdges:
    def test_clean_sinusoid_alternates(self):
        times, values = diurnal_stream(6, seed=13, noise=0.0)
        config = StreamConfig.for_days(2.0, edge_margin=0.1, label_dwell=1)
        sink = ListSink()
        engine = StreamEngine(config, sinks=[sink])
        engine.ingest_many(0, times, values)
        engine.flush()
        edges = sink.of_type(PhaseEdge)
        assert edges, "no phase edges on a clean sinusoid"
        kinds = [e.edge for e in edges]
        # Strictly alternating sleep/wake.
        assert all(a != b for a, b in zip(kinds, kinds[1:]))
        # Roughly one sleep and one wake per day after priming.
        assert 4 <= len(edges) <= 12

    def test_flat_stream_has_no_edges(self):
        times, values = flat_stream(4, seed=14, noise=0.01)
        config = StreamConfig.for_days(2.0, edge_margin=0.2, label_dwell=1)
        sink = ListSink()
        engine = StreamEngine(config, sinks=[sink])
        engine.ingest_many(0, times, values)
        engine.flush()
        assert not sink.of_type(PhaseEdge)


class TestQualityEvents:
    def test_degrade_then_restore(self):
        t1, v1 = diurnal_stream(2, seed=15)
        t3, v3 = diurnal_stream(2, seed=16)
        # Day 3 entirely missing -> the window covering it is refused.
        times = np.concatenate([t1, t3 + 3 * DAY])
        values = np.concatenate([v1, v3])
        config = StreamConfig.for_days(1.0, label_dwell=1)
        sink = ListSink()
        engine = StreamEngine(config, sinks=[sink])
        engine.ingest_many(0, times, values)
        engine.flush()
        degraded = sink.of_type(QualityDegraded)
        restored = sink.of_type(QualityRestored)
        assert len(degraded) == 1
        assert "no observations" in degraded[0].reason
        assert len(restored) == 1
        assert restored[0].round_index > degraded[0].round_index
        assert_parity(sink, times, values, config)


class TestFlush:
    def test_flush_without_partial_leaves_tail_open(self):
        times, values = diurnal_stream(2.5, seed=17)
        config = StreamConfig.for_days(1.0, label_dwell=1)
        sink = ListSink()
        engine = StreamEngine(config, sinks=[sink])
        engine.ingest_many(0, times, values)
        engine.flush()
        assert len(sink.of_type(WindowClosed)) == 2

    def test_flush_partial_classifies_tail(self):
        # 3.5 days with a 2-day window: one full close plus a ~1.5-day
        # tail, long enough (>= one day) for a partial classification.
        times, values = diurnal_stream(3.5, seed=17)
        config = StreamConfig.for_days(2.0, label_dwell=1)
        sink = ListSink()
        engine = StreamEngine(config, sinks=[sink])
        engine.ingest_many(0, times, values)
        engine.flush(close_partial=True)
        closes = sink.of_type(WindowClosed)
        assert len(closes) == 2
        tail = closes[-1]
        assert tail.partial
        assert tail.n_rounds < config.window_rounds
        want, want_q = batch_window_report(
            times, values, tail.window_start_round, tail.n_rounds, config
        )
        assert reports_equal(tail.report, want)
        assert tail.quality == want_q

    def test_flush_partial_too_short_is_skipped(self):
        # A 30-round tail spans well under a day: unclassifiable, no event.
        times, values = diurnal_stream(1.0, seed=18)
        n = int(DAY / ROUND)
        extra_t = np.arange(n, n + 30) * ROUND
        extra_v = np.full(30, 0.5)
        config = StreamConfig.for_days(1.0, label_dwell=1)
        sink = ListSink()
        engine = StreamEngine(config, sinks=[sink])
        engine.ingest_many(0, np.concatenate([times, extra_t]),
                           np.concatenate([values, extra_v]))
        engine.flush(close_partial=True)
        closes = sink.of_type(WindowClosed)
        assert len(closes) == 1
        assert not closes[0].partial

    def test_flush_single_block(self):
        # Lateness larger than the stream defers every close to flush.
        times, values = diurnal_stream(2.0, seed=19)
        config = StreamConfig.for_days(1.0, lateness_rounds=300, label_dwell=1)
        sink = ListSink()
        engine = StreamEngine(config, sinks=[sink])
        engine.ingest_many(0, times, values)
        engine.ingest_many(1, times, values)
        engine.flush(block_id=0)
        closed_blocks = {e.block_id for e in sink.of_type(WindowClosed)}
        assert closed_blocks == {0}
        engine.flush()
        closed_blocks = {e.block_id for e in sink.of_type(WindowClosed)}
        assert closed_blocks == {0, 1}


class TestMultiBlock:
    def test_interleaved_blocks_are_independent(self):
        streams = {b: diurnal_stream(3, seed=20 + b) for b in range(3)}
        config = StreamConfig.for_days(1.0, label_dwell=1)

        # Interleaved round-robin ingestion.
        sink = ListSink()
        engine = StreamEngine(config, sinks=[sink])
        n = len(streams[0][0])
        for r in range(n):
            for b, (times, values) in streams.items():
                engine.ingest(b, float(times[r]), float(values[r]))
        engine.flush()

        # Each block alone.
        for b, (times, values) in streams.items():
            solo_sink = ListSink()
            solo = StreamEngine(config, sinks=[solo_sink])
            solo.ingest_many(b, times, values)
            solo.flush()
            got = [e for e in sink.of_type(WindowClosed) if e.block_id == b]
            want = solo_sink.of_type(WindowClosed)
            assert len(got) == len(want)
            for g, w in zip(got, want):
                assert reports_equal(g.report, w.report)
                assert g.quality == w.quality

        assert engine.blocks() == [0, 1, 2]


class TestProvisional:
    def test_primes_after_one_window(self):
        # A 2-day window keeps the diurnal candidates (bins 2-3) clear of
        # the harmonic set; in a 1-day window bin 2 is both candidate and
        # first harmonic, which blurs looks_diurnal by construction.
        times, values = diurnal_stream(4, seed=21, noise=0.0)
        config = StreamConfig.for_days(2.0, label_dwell=1)
        engine = StreamEngine(config)
        n = config.window_rounds
        engine.ingest_many(0, times[: n // 2], values[: n // 2])
        assert not engine.provisional(0).primed
        engine.ingest_many(0, times[n // 2:], values[n // 2:])
        est = engine.provisional(0)
        assert est.primed
        assert est.looks_diurnal
        assert est.mean == pytest.approx(0.5, abs=0.05)

    def test_provisional_tracks_trailing_window_amplitude(self):
        times, values = diurnal_stream(3, seed=22, noise=0.0)
        config = StreamConfig.for_days(1.0, label_dwell=1)
        engine = StreamEngine(config)
        engine.ingest_many(0, times, values)
        est = engine.provisional(0)
        n = config.window_rounds
        wm = engine.watermark(0)
        window = values[wm - n + 1: wm + 1]
        ref = np.abs(np.fft.rfft(window))
        assert est.diurnal_amplitude == pytest.approx(
            ref[est.diurnal_k], rel=1e-6
        )

    def test_flat_stream_not_diurnal(self):
        times, values = flat_stream(2, seed=23)
        config = StreamConfig.for_days(1.0, label_dwell=1)
        engine = StreamEngine(config)
        engine.ingest_many(0, times, values)
        assert not engine.provisional(0).looks_diurnal


class TestReplayIntegration:
    def test_replay_iterable(self):
        times, values = diurnal_stream(2, seed=24)
        config = StreamConfig.for_days(1.0, label_dwell=1)
        sink = ListSink()
        engine = StreamEngine(config, sinks=[sink])
        n = engine.replay((7, float(t), float(v)) for t, v in zip(times, values))
        engine.flush()
        assert n == len(times)
        assert_parity(sink, times, values, config)

    def test_batch_result_replay_into(self):
        from repro.core.pipeline import BatchConfig, BatchRunner
        from repro.simulation.scenarios import survey_population

        blocks = survey_population(6, seed=0)
        from repro.probing.rounds import RoundSchedule

        schedule = RoundSchedule.for_days(4)
        batch = BatchRunner(BatchConfig()).run(blocks, schedule, seed=0)
        measured = [m for m in batch.measurements if not m.skipped]
        assert measured

        config = StreamConfig.for_days(
            2.0, start_s=schedule.start_s, label_dwell=1
        )
        sink = ListSink()
        engine = StreamEngine(config, sinks=[sink])
        n_fed = batch.replay_into(engine)
        assert n_fed == sum(m.schedule.n_rounds for m in measured)
        assert set(engine.blocks()) == {m.block_id for m in measured}
        for m in measured:
            times, values = m.observation_stream()
            events = [
                e for e in sink.of_type(WindowClosed)
                if e.block_id == m.block_id
            ]
            assert events
            for event in events:
                want, want_q = batch_window_report(
                    times, values, event.window_start_round,
                    event.n_rounds, config,
                )
                assert reports_equal(event.report, want)
                assert event.quality == want_q

    def test_observation_stream_validates_series(self):
        from repro.core.pipeline import BatchConfig, BatchRunner
        from repro.simulation.scenarios import survey_population
        from repro.probing.rounds import RoundSchedule

        blocks = survey_population(2, seed=1)
        batch = BatchRunner(BatchConfig()).run(
            blocks, RoundSchedule.for_days(2), seed=1
        )
        m = batch.measurements[0]
        with pytest.raises(ValueError, match="unknown series"):
            m.observation_stream("nope")
        times, values = m.observation_stream("true_availability", trimmed=True)
        assert len(times) == len(values)
        assert len(times) == (m.trim.stop - (m.trim.start or 0))


class TestIngestValidation:
    """Non-finite time/value observations are dropped, counted, logged."""

    BAD = [
        (float("nan"), 0.5),
        (float("inf"), 0.5),
        (100 * ROUND, float("nan")),
        (100 * ROUND, float("-inf")),
    ]

    def test_nonfinite_observations_are_dropped_and_counted(self, tmp_path):
        from repro.obs import EventLogger, MetricsRegistry, read_event_log

        registry = MetricsRegistry()
        events = EventLogger(tmp_path / "events.jsonl", level="debug")
        config = StreamConfig.for_days(2.0, label_dwell=1)
        sink = ListSink()
        engine = StreamEngine(
            config, sinks=[sink], metrics=registry, events=events
        )
        times, values = diurnal_stream(3)
        for i, (t, v) in enumerate(zip(times, values)):
            engine.ingest(0, t, v)
            if i < len(self.BAD):
                engine.ingest(0, *self.BAD[i])
        engine.flush()
        events.close()

        assert engine.n_invalid == len(self.BAD)
        assert (
            registry.counter("stream_invalid_observations_total").value
            == len(self.BAD)
        )
        records = [
            e
            for e in read_event_log(tmp_path / "events.jsonl")
            if e["event"] == "stream.invalid_observation"
        ]
        assert len(records) == len(self.BAD)
        assert all(e["level"] == "warning" for e in records)
        assert records[0]["value"] == "0.5"  # repr survives JSON round-trip

    def test_parity_is_unperturbed_by_invalid_observations(self):
        config = StreamConfig.for_days(2.0, label_dwell=1)
        sink = ListSink()
        engine = StreamEngine(config, sinks=[sink])
        times, values = diurnal_stream(4, seed=7)
        for i, (t, v) in enumerate(zip(times, values)):
            engine.ingest(0, t, v)
            engine.ingest(0, self.BAD[i % len(self.BAD)][0],
                          self.BAD[i % len(self.BAD)][1])
        engine.flush()
        # The oracle sees only the finite observations: exact parity
        # means the invalid ones left no trace in ring or verdict.
        assert_parity(sink, times, values, config)

    def test_ingest_many_validates_each_observation(self):
        config = StreamConfig.for_days(1.0, label_dwell=1)
        engine = StreamEngine(config)
        engine.ingest_many(
            5,
            np.array([0.0, ROUND, float("nan")]),
            np.array([0.5, float("inf"), 0.5]),
        )
        assert engine.n_invalid == 2

"""Smoke tests for the runnable examples.

The quickstart runs end to end (it is fast); the heavier examples are
checked for compilability and a callable main, so a syntax error or API
drift in any example fails CI without paying their full runtime.
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


class TestQuickstart:
    def test_runs_and_detects_diurnal(self):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "strict" in proc.stdout
        assert "probes per hour" in proc.stdout


class TestAllExamplesCompile:
    @pytest.mark.parametrize(
        "name",
        [
            "quickstart.py",
            "campus_ground_truth.py",
            "policy_study.py",
            "phase_geolocation.py",
        ],
    )
    def test_compiles(self, name, tmp_path):
        py_compile.compile(
            str(EXAMPLES / name), cfile=str(tmp_path / "c.pyc"), doraise=True
        )

    @pytest.mark.parametrize(
        "name",
        ["campus_ground_truth", "policy_study", "phase_geolocation"],
    )
    def test_has_main(self, name):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            name, EXAMPLES / f"{name}.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert callable(module.main)

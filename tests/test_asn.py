"""Tests for the IP→ASN table and organization clustering."""

import numpy as np
import pytest

from repro.asn import AsRecord, IpAsnTable, OrgMapper, normalize_org_name
from repro.net.ipaddr import ip_to_int, parse_block


def make_table():
    table = IpAsnTable()
    table.add_range(parse_block("10.0.0/24"), 256, AsRecord(100, "Time Warner Cable Inc.", "US"))
    table.add_range(parse_block("10.1.0/24"), 128, AsRecord(200, "China Telecom", "CN"))
    table.add_range(parse_block("10.2.0/24"), 64, AsRecord(201, "CHINA-TELECOM Backbone", "CN"))
    return table


class TestIpAsnTable:
    def test_lookup_inside_range(self):
        table = make_table()
        assert table.asn_of_block(parse_block("10.0.5/24")) == 100
        assert table.asn_of_block(parse_block("10.1.0/24")) == 200

    def test_lookup_outside_ranges(self):
        table = make_table()
        assert table.asn_of_block(parse_block("9.255.255/24")) is None
        assert table.asn_of_block(parse_block("10.3.0/24")) is None

    def test_dot0_convention_matches_block_lookup(self):
        """The paper maps blocks by their .0 address; both views agree."""
        table = make_table()
        block = parse_block("10.0.77/24")
        assert table.asn_of_block_dot0(block) == table.asn_of_block(block)

    def test_asn_of_ip(self):
        table = make_table()
        assert table.asn_of_ip(ip_to_int("10.1.0.55")) == 200

    def test_overlapping_range_rejected(self):
        table = make_table()
        with pytest.raises(ValueError):
            table.add_range(parse_block("10.2.10/24"), 10, AsRecord(9, "X", "US"))

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            IpAsnTable().add_range(0, 0, AsRecord(1, "X", "US"))

    def test_blocks_of_asn(self):
        table = make_table()
        blocks = table.blocks_of_asn(100)
        assert len(blocks) == 256
        assert blocks[0] == parse_block("10.0.0/24")

    def test_blocks_of_unknown_asn_empty(self):
        assert len(make_table().blocks_of_asn(999)) == 0

    def test_map_blocks_vectorized(self):
        table = make_table()
        ids = np.array([parse_block("10.0.0/24"), parse_block("10.3.0/24")])
        assert table.map_blocks(ids).tolist() == [100, -1]

    def test_coverage(self):
        table = make_table()
        ids = np.array([parse_block("10.0.0/24"), parse_block("10.1.1/24"),
                        parse_block("10.3.0/24"), parse_block("10.4.0/24")])
        assert table.coverage(ids) == 0.5

    def test_record_of(self):
        table = make_table()
        assert table.record_of(100).country == "US"
        assert table.record_of(999) is None


class TestNormalization:
    def test_strips_boilerplate(self):
        assert normalize_org_name("Time Warner Cable Inc.") == "time warner"

    def test_hyphen_and_case_insensitive(self):
        assert normalize_org_name("TIME-WARNER-CABLE") == "time warner"

    def test_all_boilerplate_falls_back(self):
        assert normalize_org_name("The Internet Company") != ""

    def test_distinct_orgs_stay_distinct(self):
        assert normalize_org_name("Comcast Cable") != normalize_org_name(
            "Charter Communications"
        )


class TestOrgMapper:
    def test_variants_cluster_together(self):
        mapper = OrgMapper(
            [
                AsRecord(1, "Time Warner Cable Inc.", "US"),
                AsRecord(2, "TIME-WARNER-CABLE", "US"),
                AsRecord(3, "Comcast Cable Communications", "US"),
            ]
        )
        clusters = mapper.find_clusters("time warner")
        assert len(clusters) == 1
        assert sorted(clusters[0].asns) == [1, 2]

    def test_keyword_query_returns_all_asns(self):
        table = make_table()
        mapper = OrgMapper(table.all_records())
        assert mapper.asns_of_org("china") == [200, 201]

    def test_blocks_of_org_joins_with_table(self):
        """The paper's final join: keyword → clusters → ASes → /24 blocks."""
        table = make_table()
        mapper = OrgMapper(table.all_records())
        blocks = mapper.blocks_of_org("china", table)
        assert len(blocks) == 128 + 64

    def test_unknown_org_empty(self):
        table = make_table()
        mapper = OrgMapper(table.all_records())
        assert len(mapper.blocks_of_org("nonexistent", table)) == 0

    def test_cluster_of_asn(self):
        mapper = OrgMapper([AsRecord(5, "Example Networks", "DE")])
        assert mapper.cluster_of_asn(5) is not None
        assert mapper.cluster_of_asn(6) is None

    def test_n_clusters(self):
        mapper = OrgMapper(make_table().all_records())
        assert mapper.n_clusters == 2  # Time Warner + China Telecom

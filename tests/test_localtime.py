"""Tests for the phase → time-of-day calibration (section 5.2 extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.localtime import (
    circular_hour_difference,
    ewma_lag_hours,
    local_hour,
    peak_utc_hour,
    wake_local_hour,
    wake_utc_hour,
)
from repro.core.spectral import compute_spectrum, diurnal_bin

ROUND = 660.0
DAY = 86400.0


class TestPeakHour:
    def test_cosine_peak_recovered(self):
        """A cosine peaking at hour H has phase -2πH/24; invert it."""
        for peak_h in (0.0, 6.0, 13.5, 22.0):
            n = int(14 * DAY / ROUND)
            t = np.arange(n) * ROUND
            values = 0.5 + 0.3 * np.cos(2 * np.pi * (t / 3600 - peak_h) / 24)
            spec = compute_spectrum(values, ROUND)
            phase = spec.phase(diurnal_bin(n, ROUND))
            got = float(peak_utc_hour(np.array([phase]))[0])
            assert circular_hour_difference(got, peak_h) < 0.2, peak_h

    def test_vectorized(self):
        phases = np.array([0.0, -np.pi / 2, np.pi])
        hours = peak_utc_hour(phases)
        assert hours.shape == (3,)
        assert hours[0] == pytest.approx(0.0)
        assert hours[1] == pytest.approx(6.0)
        assert hours[2] == pytest.approx(12.0)


class TestWakeHour:
    def test_mid_uptime_offset(self):
        # Peak at 14:00 with a 12-hour window wakes at 08:00.
        phase = np.array([-2 * np.pi * 14 / 24])
        assert wake_utc_hour(phase, uptime_hours=12.0)[0] == pytest.approx(8.0)

    def test_lag_correction_shifts_earlier(self):
        phase = np.array([-2 * np.pi * 14 / 24])
        plain = wake_utc_hour(phase, uptime_hours=12.0)[0]
        lagged = wake_utc_hour(phase, uptime_hours=12.0, lag_hours=1.65)[0]
        assert circular_hour_difference(lagged, plain - 1.65) < 1e-9


class TestLocalHour:
    def test_longitude_conversion(self):
        # 23:00 UTC at 135°E is 08:00 local solar time.
        assert local_hour(np.array([23.0]), np.array([135.0]))[0] == pytest.approx(8.0)

    def test_western_hemisphere(self):
        assert local_hour(np.array([14.0]), np.array([-90.0]))[0] == pytest.approx(8.0)


class TestEwmaLag:
    def test_paper_parameters(self):
        """α_s = 0.1 at 11-minute rounds lags by (0.9/0.1)·11 min = 1.65 h."""
        assert ewma_lag_hours() == pytest.approx(1.65)

    def test_faster_gain_less_lag(self):
        assert ewma_lag_hours(alpha=0.5) < ewma_lag_hours(alpha=0.1)

    def test_alpha_one_no_lag(self):
        assert ewma_lag_hours(alpha=1.0) == 0.0

    def test_bad_alpha(self):
        with pytest.raises(ValueError):
            ewma_lag_hours(alpha=0.0)


class TestCircularDifference:
    def test_wraparound(self):
        assert circular_hour_difference(23.5, 0.5) == pytest.approx(1.0)

    def test_symmetric(self):
        assert circular_hour_difference(3.0, 21.0) == circular_hour_difference(
            21.0, 3.0
        )


@settings(max_examples=50, deadline=None)
@given(
    a=st.floats(min_value=0, max_value=24),
    b=st.floats(min_value=0, max_value=24),
)
def test_circular_difference_bounded(a, b):
    d = float(circular_hour_difference(a, b))
    assert 0.0 <= d <= 12.0


@settings(max_examples=30, deadline=None)
@given(
    peak=st.floats(min_value=0, max_value=24),
    uptime=st.floats(min_value=4, max_value=18),
    lon=st.floats(min_value=-180, max_value=180),
)
def test_wake_local_hour_consistency(peak, uptime, lon):
    """wake_local = local(wake_utc) for every parameter combination."""
    phase = np.array([-2 * np.pi * peak / 24])
    via_two_steps = local_hour(
        wake_utc_hour(phase, uptime), np.array([lon])
    )[0]
    direct = wake_local_hour(phase, np.array([lon]), uptime)[0]
    assert circular_hour_difference(direct, via_two_steps) < 1e-9

"""Declarative alert rules over a metrics registry (repro.obs.alerts)."""

import pytest

from repro.obs.alerts import (
    AlertEngine,
    AlertRule,
    default_pool_rules,
)
from repro.obs.events import EventLogger, read_event_log
from repro.obs.registry import MetricsRegistry


def engine_for(rule, **kwargs):
    return AlertEngine([rule], **kwargs)


class TestRuleValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "sliding"},
            {"op": "~"},
            {"level": "fatal"},
            {"for_cycles": 0},
            {"min_count": 0},
        ],
    )
    def test_rejects_bad_rule(self, kwargs):
        with pytest.raises(ValueError):
            AlertRule(name="r", metric="m", **kwargs)

    def test_rejects_duplicate_rule_names(self):
        rule = AlertRule(name="r", metric="m")
        with pytest.raises(ValueError, match="duplicate"):
            AlertEngine([rule, AlertRule(name="r", metric="other")])


class TestThresholdRules:
    def test_fire_and_resolve_are_single_transitions(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("depth")
        engine = engine_for(AlertRule(name="deep", metric="depth",
                                      op=">", threshold=5.0))
        gauge.set(3.0)
        assert engine.evaluate(reg) == []

        gauge.set(9.0)
        [fired] = engine.evaluate(reg)
        assert fired.fired and fired.rule == "deep" and fired.value == 9.0
        # Still breached: firing state holds, no repeat event.
        assert engine.evaluate(reg) == []
        assert engine.firing() == ["deep"]

        gauge.set(1.0)
        [resolved] = engine.evaluate(reg)
        assert resolved.kind == "resolved"
        assert engine.firing() == []
        assert engine.n_fired == 1

    def test_for_cycles_hysteresis(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("ratio")
        engine = engine_for(AlertRule(name="r", metric="ratio",
                                      op=">", threshold=0.5, for_cycles=3))
        gauge.set(0.9)
        assert engine.evaluate(reg) == []
        assert engine.evaluate(reg) == []
        [fired] = engine.evaluate(reg)  # third consecutive breach
        assert fired.fired

    def test_blip_resets_consecutive_count(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("ratio")
        engine = engine_for(AlertRule(name="r", metric="ratio",
                                      op=">", threshold=0.5, for_cycles=2))
        gauge.set(0.9)
        assert engine.evaluate(reg) == []
        gauge.set(0.1)  # one healthy sample between the breaches
        assert engine.evaluate(reg) == []
        gauge.set(0.9)
        assert engine.evaluate(reg) == []
        assert engine.evaluate(reg) != []

    def test_label_subset_matches_and_family_sums(self):
        reg = MetricsRegistry()
        reg.counter("restarts_total", reason="hung").inc(2)
        reg.counter("restarts_total", reason="crashed").inc(3)
        any_reason = engine_for(AlertRule(name="any", metric="restarts_total",
                                          op=">", threshold=4))
        [fired] = any_reason.evaluate(reg)
        assert fired.value == 5  # whole family summed

        only_hung = engine_for(AlertRule(
            name="hung", metric="restarts_total",
            labels={"reason": "hung"}, op=">", threshold=4,
        ))
        assert only_hung.evaluate(reg) == []

    def test_histogram_counts_and_missing_metric_skipped(self):
        reg = MetricsRegistry()
        engine = engine_for(AlertRule(name="slow", metric="lat",
                                      op=">=", threshold=2))
        assert engine.evaluate(reg) == []  # metric absent: skip, not error
        hist = reg.histogram("lat", buckets=(1.0,))
        hist.observe(0.5)
        assert engine.evaluate(reg) == []
        hist.observe(3.0)
        [fired] = engine.evaluate(reg)
        assert fired.value == 2  # histogram contributes its count


class TestDriftRules:
    def rule(self, **kwargs):
        return AlertRule(name="drift", metric="rate", kind="ewma_drift",
                         threshold=0.5, **kwargs)

    def test_warmup_guard(self):
        reg = MetricsRegistry()
        reg.meter("rate").observe(100.0)
        engine = engine_for(self.rule(min_count=3))
        assert engine.evaluate(reg) == []  # still warming up

    def test_fires_when_short_departs_long(self):
        reg = MetricsRegistry()
        meter = reg.meter("rate", alpha_short=0.9, alpha_long=0.01)
        for _ in range(5):
            meter.observe(10.0)
        engine = engine_for(self.rule(min_count=2))
        assert engine.evaluate(reg) == []  # steady stream: no drift
        for _ in range(5):
            meter.observe(1000.0)  # step change: fast view runs ahead
        [fired] = engine.evaluate(reg)
        assert fired.fired and fired.value > 0.5


class TestEngineOutputs:
    def test_transitions_logged_and_counted(self, tmp_path):
        path = tmp_path / "events.jsonl"
        reg = MetricsRegistry()
        gauge = reg.gauge("depth")
        with EventLogger(path) as log:
            engine = AlertEngine(
                [AlertRule(name="deep", metric="depth", op=">",
                           threshold=1.0, level="critical",
                           description="too deep")],
                events=log,
                metrics=reg,
            )
            gauge.set(2.0)
            engine.evaluate(reg)
            gauge.set(0.0)
            engine.evaluate(reg)
        fired, resolved = read_event_log(path)
        assert fired["event"] == "alert.fired"
        assert fired["level"] == "error"  # critical alerts log at error
        assert fired["rule"] == "deep"
        assert fired["description"] == "too deep"
        assert resolved["event"] == "alert.resolved"
        assert resolved["level"] == "info"
        assert (
            reg.counter("alerts_fired_total",
                        rule="deep", level="critical").value == 1
        )

    def test_warning_rules_log_at_warning(self, tmp_path):
        path = tmp_path / "events.jsonl"
        reg = MetricsRegistry()
        reg.gauge("depth").set(2.0)
        with EventLogger(path) as log:
            AlertEngine(
                [AlertRule(name="deep", metric="depth", op=">",
                           threshold=1.0, level="warning")],
                events=log,
            ).evaluate(reg)
        [record] = read_event_log(path)
        assert record["level"] == "warning"


class TestDefaultPoolRules:
    def test_quarantine_and_breaker_fire_immediately(self):
        reg = MetricsRegistry()
        engine = AlertEngine(default_pool_rules())
        assert engine.evaluate(reg) == []
        reg.counter("pool_blocks_quarantined_total").inc()
        reg.counter("pool_breaker_trips_total").inc()
        fired = {e.rule for e in engine.evaluate(reg) if e.fired}
        assert fired == {"pool-block-quarantined", "pool-breaker-tripped"}
        assert all(
            r.level == "critical" for r in engine.rules if r.name in fired
        )

    def test_failure_ratio_needs_two_cycles(self):
        reg = MetricsRegistry()
        reg.gauge("pool_block_failure_ratio").set(0.8)
        engine = AlertEngine(default_pool_rules(max_failure_ratio=0.5))
        assert engine.evaluate(reg) == []
        [fired] = engine.evaluate(reg)
        assert fired.rule == "pool-block-failure-ratio"

    def test_heartbeat_rule_is_optional(self):
        names = {r.name for r in default_pool_rules()}
        assert "pool-heartbeat-age" not in names
        names = {r.name for r in default_pool_rules(max_heartbeat_age_s=5.0)}
        assert "pool-heartbeat-age" in names


class TestDefaultServiceRules:
    def test_slo_rules_present(self):
        from repro.obs.alerts import default_service_rules

        by_name = {r.name: r for r in default_service_rules()}
        p99 = by_name["service-request-p99"]
        assert p99.metric == "service_request_p99_seconds"
        assert p99.for_cycles == 3 and p99.level == "warning"
        err = by_name["service-error-ratio"]
        assert err.metric == "service_error_ratio"
        assert err.for_cycles == 2 and err.level == "critical"

    def test_request_p99_fires_after_sustained_breach(self):
        from repro.obs.alerts import default_service_rules

        reg = MetricsRegistry()
        engine = AlertEngine(default_service_rules(max_request_p99_s=0.5))
        gauge = reg.gauge("service_request_p99_seconds")
        gauge.set(2.0)
        assert engine.evaluate(reg) == []
        assert engine.evaluate(reg) == []
        [fired] = engine.evaluate(reg)
        assert fired.rule == "service-request-p99" and fired.fired
        # Latency recovers; the alert resolves on the next cycle.
        gauge.set(0.1)
        [resolved] = engine.evaluate(reg)
        assert resolved.rule == "service-request-p99"
        assert not resolved.fired

    def test_error_ratio_rides_the_ewma_fast_view(self):
        from repro.obs.alerts import default_service_rules

        reg = MetricsRegistry()
        engine = AlertEngine(default_service_rules(max_error_ratio=0.05))
        meter = reg.meter("service_error_ratio")
        # A healthy plateau never breaches...
        meter.observe(0.0)
        assert engine.evaluate(reg) == []
        assert engine.evaluate(reg) == []
        # ...a sustained 5xx plateau drives rate_short over threshold.
        meter.observe(1.0)
        meter.observe(1.0)
        assert meter.rate_short > 0.05
        engine.evaluate(reg)
        events = engine.evaluate(reg)
        assert any(
            e.rule == "service-error-ratio" and e.fired for e in events
        )


class TestHistoryRules:
    """window_s / trend predicates: rules that look backwards."""

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window_s": -1.0},
            {"window_agg": "median"},
            {"trend": "sideways", "window_s": 60.0},
            {"trend": "rising"},  # trend requires window_s > 0
            {"window_s": 60.0, "kind": "ewma_drift"},
        ],
    )
    def test_rejects_bad_history_rules(self, kwargs):
        with pytest.raises(ValueError):
            AlertRule(name="r", metric="m", **kwargs)

    def fed_history(self, values):
        from repro.obs.history import MetricsHistory
        history = MetricsHistory()
        for i, v in enumerate(values):
            history.append("shed_ratio", float(i), v)
        return history

    def test_windowed_rule_skips_without_history(self):
        rule = AlertRule(name="w", metric="shed_ratio", op=">",
                         threshold=0.5, window_s=60.0, window_agg="max")
        engine = engine_for(rule)
        reg = MetricsRegistry()
        reg.gauge("shed_ratio").set(9.0)  # instantaneous value ignored
        assert engine.evaluate(reg) == []
        assert engine.firing() == []

    def test_window_agg_fires_on_history_not_instant(self):
        rule = AlertRule(name="w", metric="shed_ratio", op=">",
                         threshold=0.5, window_s=60.0, window_agg="max")
        engine = engine_for(rule)
        reg = MetricsRegistry()
        reg.gauge("shed_ratio").set(0.0)  # instantaneously healthy
        history = self.fed_history([0.1, 0.9, 0.1])  # spiked recently
        [fired] = engine.evaluate(reg, history)
        assert fired.fired and fired.value == 0.9

    def test_rising_trend_fires_and_resolves(self):
        rule = AlertRule(name="t", metric="shed_ratio", op=">",
                         threshold=0.05, window_s=60.0, trend="rising")
        engine = engine_for(rule)
        reg = MetricsRegistry()
        flat = self.fed_history([0.2, 0.2, 0.2])
        assert engine.evaluate(reg, flat) == []
        climbing = self.fed_history([0.0, 0.1, 0.3])
        [fired] = engine.evaluate(reg, climbing)
        assert fired.fired and fired.value == pytest.approx(0.3)
        [resolved] = engine.evaluate(reg, flat)
        assert resolved.kind == "resolved"

    def test_falling_trend_negates_delta(self):
        rule = AlertRule(name="t", metric="queue_depth", op=">",
                         threshold=5.0, window_s=60.0, trend="falling")
        engine = engine_for(rule)
        reg = MetricsRegistry()
        from repro.obs.history import MetricsHistory
        history = MetricsHistory()
        for i, v in enumerate([100.0, 50.0, 10.0]):
            history.append("queue_depth", float(i), v)
        [fired] = engine.evaluate(reg, history)
        assert fired.fired and fired.value == pytest.approx(90.0)

    def test_default_service_rules_include_trend_rule(self):
        from repro.obs.alerts import default_service_rules
        rules = {r.name: r for r in default_service_rules()}
        rule = rules["service-shed-ratio-rising"]
        assert rule.window_s == 600.0 and rule.trend == "rising"
        # The trend rule must not break engines without history.
        engine = AlertEngine(default_service_rules())
        assert engine.evaluate(MetricsRegistry()) == []

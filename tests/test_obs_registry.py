"""Tests for repro.obs.registry: metric primitives and thread safety.

The load-bearing property is exactness under concurrency: counters and
histograms hammered from many threads must land on the exact totals —
a lost update would make "injected == observed" fault assertions flaky.
"""

import threading

import pytest

from repro.obs.registry import (
    Counter,
    EwmaMeter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    render_labels,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = MetricsRegistry().counter("events_total")
        assert c.value == 0.0
        c.inc()
        c.inc(3)
        assert c.value == 4.0

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("events_total")
        with pytest.raises(ValueError, match=">= 0"):
            c.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value == 6.0


class TestHistogram:
    def test_le_semantics(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0, 5.0))
        for v in (0.5, 1.0, 1.5, 6.0):
            h.observe(v)
        # le buckets are inclusive upper edges: 1.0 lands in the first.
        assert h.cumulative_buckets() == [
            (1.0, 2),
            (2.0, 3),
            (5.0, 3),
            (float("inf"), 4),
        ]
        assert h.count == 4
        assert h.sum == pytest.approx(9.0)

    def test_bounds_must_increase(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increasing"):
            reg.histogram("bad", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            reg.histogram("bad2", buckets=(2.0, 1.0))

    def test_empty_bounds_rejected(self):
        # Through the registry, empty buckets fall back to the defaults;
        # the constructor itself refuses them.
        with pytest.raises(ValueError, match="at least one bucket"):
            Histogram("bad", {}, ())
        h = MetricsRegistry().histogram("ok", buckets=())
        assert len(h.bounds) > 0


class TestEwmaMeter:
    def test_seeds_from_first_sample(self):
        m = MetricsRegistry().meter("rate")
        m.observe(10.0)
        assert m.rate_short == 10.0
        assert m.rate_long == 10.0
        assert m.count == 1
        assert m.last == 10.0

    def test_paper_gains(self):
        """Defaults reuse the section 2.1 estimator conventions."""
        m = MetricsRegistry().meter("rate")
        assert m.alpha_short == 0.1
        assert m.alpha_long == 0.01
        m.observe(10.0)
        m.observe(20.0)
        assert m.rate_short == pytest.approx(0.1 * 20.0 + 0.9 * 10.0)
        assert m.rate_long == pytest.approx(0.01 * 20.0 + 0.99 * 10.0)

    def test_bad_gain_rejected(self):
        with pytest.raises(ValueError, match="gain"):
            MetricsRegistry().meter("rate", alpha_short=0.0)
        with pytest.raises(ValueError, match="gain"):
            MetricsRegistry().meter("rate", alpha_long=1.5)


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("hits_total", path="x")
        b = reg.counter("hits_total", path="x")
        assert a is b

    def test_label_sets_are_distinct_metrics(self):
        reg = MetricsRegistry()
        a = reg.counter("hits_total", path="x")
        b = reg.counter("hits_total", path="y")
        assert a is not b
        a.inc()
        assert b.value == 0.0

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(ValueError, match="already registered as counter"):
            reg.gauge("thing")
        # Same name, different labels, different kind: still a conflict.
        with pytest.raises(ValueError, match="already registered as counter"):
            reg.gauge("thing", path="x")

    def test_histogram_bounds_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="already registered with bounds"):
            reg.histogram("lat", buckets=(1.0, 3.0))

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            reg.counter("bad name")
        with pytest.raises(ValueError, match="invalid label name"):
            reg.counter("ok", **{"bad-label": "x"})

    def test_collect_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b_total")
        reg.counter("a_total")
        assert [m.name for m in reg.collect()] == ["a_total", "b_total"]

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c_total", kind="x").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        reg.meter("m").observe(3.0)
        snap = reg.snapshot()
        assert snap["counters"] == {'c_total{kind="x"}': 2.0}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["histograms"]["h"]["buckets"]["+Inf"] == 1
        assert snap["meters"]["m"]["rate_short"] == 3.0


class TestRenderLabels:
    def test_empty(self):
        assert render_labels({}) == ""

    def test_sorted(self):
        assert render_labels({"b": "2", "a": "1"}) == '{a="1",b="2"}'


class TestNullRegistry:
    def test_shared_noop_metric(self):
        reg = NullRegistry()
        assert not reg.enabled
        c = reg.counter("x_total")
        assert c is reg.gauge("y")
        assert c is reg.histogram("z")
        assert c is reg.meter("w")
        # Every mutation is a no-op and every read is a zero.
        c.inc(100)
        c.set(5)
        c.observe(1.0)
        assert c.value == 0.0
        assert reg.collect() == []
        assert reg.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}, "meters": {},
        }

    def test_module_singleton(self):
        assert isinstance(NULL_REGISTRY, NullRegistry)


class TestConcurrency:
    """Hammer shared metrics from many threads; totals must be exact."""

    N_THREADS = 8
    N_OPS = 2500

    def _hammer(self, worker):
        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_counter_exact_total(self):
        c = MetricsRegistry().counter("hammer_total")

        def worker(_tid):
            for _ in range(self.N_OPS):
                c.inc()

        self._hammer(worker)
        assert c.value == self.N_THREADS * self.N_OPS

    def test_histogram_exact_counts(self):
        h = MetricsRegistry().histogram("hammer_lat", buckets=(0.5, 1.5))

        def worker(tid):
            # Each thread alternates buckets deterministically.
            for i in range(self.N_OPS):
                h.observe(0.0 if (tid + i) % 2 == 0 else 1.0)

        self._hammer(worker)
        total = self.N_THREADS * self.N_OPS
        assert h.count == total
        buckets = dict(h.cumulative_buckets())
        assert buckets[0.5] == total // 2
        assert buckets[1.5] == total
        assert buckets[float("inf")] == total
        assert h.sum == pytest.approx(total / 2)

    def test_concurrent_get_or_create_returns_one_object(self):
        reg = MetricsRegistry()
        seen = []
        lock = threading.Lock()
        barrier = threading.Barrier(self.N_THREADS)

        def worker(_tid):
            barrier.wait()
            c = reg.counter("race_total")
            with lock:
                seen.append(c)
            for _ in range(self.N_OPS):
                c.inc()

        self._hammer(worker)
        assert all(c is seen[0] for c in seen)
        assert seen[0].value == self.N_THREADS * self.N_OPS

    def test_meter_exact_count(self):
        m = MetricsRegistry().meter("hammer_rate")

        def worker(_tid):
            for _ in range(self.N_OPS):
                m.observe(1.0)

        self._hammer(worker)
        assert m.count == self.N_THREADS * self.N_OPS
        # Every sample was 1.0, so both EWMA views converge exactly.
        assert m.rate_short == 1.0
        assert m.rate_long == 1.0


def test_metric_kinds_are_declared():
    assert Counter.kind == "counter"
    assert Gauge.kind == "gauge"
    assert Histogram.kind == "histogram"
    assert EwmaMeter.kind == "meter"


class TestHistogramQuantile:
    """Empty merges answer nan — "no traffic" is unknown latency, not
    a healthy-looking 0.0 (the regression behind the NaN satellite)."""

    def test_empty_iterable_is_nan(self):
        import math

        from repro.obs.registry import histogram_quantile
        assert math.isnan(histogram_quantile([], 0.99))

    def test_zero_observation_histograms_are_nan(self):
        import math

        from repro.obs.registry import histogram_quantile
        reg = MetricsRegistry()
        hists = [reg.histogram("lat", buckets=(1.0,), route=r)
                 for r in ("a", "b")]
        assert math.isnan(histogram_quantile(hists, 0.5))
        hists[0].observe(0.5)
        assert histogram_quantile(hists, 0.5) == pytest.approx(0.5)

    def test_mismatched_bounds_still_rejected(self):
        from repro.obs.registry import histogram_quantile
        reg = MetricsRegistry()
        a = reg.histogram("a", buckets=(1.0,))
        b = reg.histogram("b", buckets=(2.0,))
        a.observe(0.5)
        b.observe(0.5)
        with pytest.raises(ValueError, match="identical bucket bounds"):
            histogram_quantile([a, b], 0.5)

    def test_bad_quantile_rejected(self):
        from repro.obs.registry import histogram_quantile
        with pytest.raises(ValueError, match="quantile"):
            histogram_quantile([], 1.5)


class TestQuantileFromCounts:
    def test_interpolates_within_bucket(self):
        from repro.obs.registry import quantile_from_counts
        # 10 observations in (0, 1], 10 in (1, 2].
        assert quantile_from_counts(
            (1.0, 2.0), [10, 10, 0], 0.25
        ) == pytest.approx(0.5)
        assert quantile_from_counts(
            (1.0, 2.0), [10, 10, 0], 0.75
        ) == pytest.approx(1.5)

    def test_inf_bucket_clamps_to_highest_finite_bound(self):
        from repro.obs.registry import quantile_from_counts
        assert quantile_from_counts((1.0, 2.0), [0, 0, 5], 0.99) == 2.0

    def test_zero_total_is_nan_and_bad_q_raises(self):
        import math

        from repro.obs.registry import quantile_from_counts
        assert math.isnan(quantile_from_counts((1.0,), [0, 0], 0.5))
        with pytest.raises(ValueError, match="quantile"):
            quantile_from_counts((1.0,), [1, 0], -0.1)

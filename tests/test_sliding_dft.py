"""Tests for the sliding DFT (repro.stream.sliding_dft) against rfft."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spectral import goertzel
from repro.stream.sliding_dft import SlidingDFT


def rfft_at(values, bins):
    return np.fft.rfft(values)[np.asarray(bins)]


class TestConstruction:
    def test_requires_bins(self):
        with pytest.raises(ValueError, match="no bins"):
            SlidingDFT(16, [])

    def test_rejects_out_of_range_bins(self):
        with pytest.raises(ValueError, match="tracked bins"):
            SlidingDFT(16, [9])  # n_bins = 9, valid range [0, 9)
        with pytest.raises(ValueError, match="tracked bins"):
            SlidingDFT(16, [-1])

    def test_rejects_tiny_window(self):
        with pytest.raises(ValueError, match="at least 2"):
            SlidingDFT(1, [0])

    def test_bins_deduplicated_and_sorted(self):
        dft = SlidingDFT(16, [5, 0, 5, 2])
        np.testing.assert_array_equal(dft.bins, [0, 2, 5])
        assert dft.n_tracked == 3


class TestSlide:
    def test_priming_matches_zero_padded_fft(self):
        """Sliding samples into an empty window == FFT of a 0-padded tail."""
        rng = np.random.default_rng(0)
        n = 32
        bins = [0, 1, 2, 5]
        x = rng.standard_normal(10)
        dft = SlidingDFT(n, bins)
        for v in x:
            dft.slide(v)
        window = np.concatenate([np.zeros(n - len(x)), x])
        np.testing.assert_allclose(
            dft.coefficients, rfft_at(window, bins), atol=1e-9
        )

    def test_full_window_matches_rfft(self):
        rng = np.random.default_rng(1)
        n = 64
        bins = [0, 3, 7, 21]
        x = rng.standard_normal(n)
        dft = SlidingDFT(n, bins)
        for v in x:
            dft.slide(v)
        np.testing.assert_allclose(dft.coefficients, rfft_at(x, bins), atol=1e-8)

    def test_sliding_past_full_matches_trailing_window(self):
        rng = np.random.default_rng(2)
        n = 48
        bins = [0, 2, 4, 11]
        stream = rng.standard_normal(n * 3)
        dft = SlidingDFT(n, bins)
        for i, v in enumerate(stream):
            evicted = stream[i - n] if i >= n else 0.0
            dft.slide(v, evicted)
        np.testing.assert_allclose(
            dft.coefficients, rfft_at(stream[-n:], bins), atol=1e-7
        )
        assert dft.n_slides == len(stream)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        n=st.sampled_from([16, 30, 64]),
        extra=st.integers(0, 100),
    )
    def test_property_trailing_window_parity(self, seed, n, extra):
        rng = np.random.default_rng(seed)
        bins = [0, 1, n // 4, n // 2]
        stream = rng.random(n + extra)
        dft = SlidingDFT(n, bins)
        for i, v in enumerate(stream):
            dft.slide(v, stream[i - n] if i >= n else 0.0)
        window = (
            stream[-n:]
            if len(stream) >= n
            else np.concatenate([np.zeros(n - len(stream)), stream])
        )
        np.testing.assert_allclose(
            dft.coefficients, rfft_at(window, sorted(set(bins))), atol=1e-7
        )


class TestAccessors:
    def test_mean_reads_dc(self):
        rng = np.random.default_rng(3)
        n = 32
        x = rng.random(n)
        dft = SlidingDFT(n, [0, 4])
        for v in x:
            dft.slide(v)
        assert dft.mean() == pytest.approx(x.mean(), abs=1e-10)

    def test_amplitude_and_phase(self):
        n = 64
        t = np.arange(n)
        x = 0.5 + 0.3 * np.cos(2 * np.pi * 4 * t / n + 1.1)
        dft = SlidingDFT(n, [0, 4])
        for v in x:
            dft.slide(v)
        ref = np.fft.rfft(x)
        assert dft.amplitude(4) == pytest.approx(abs(ref[4]), abs=1e-8)
        assert dft.phase(4) == pytest.approx(float(np.angle(ref[4])), abs=1e-8)

    def test_amplitudes_vector(self):
        rng = np.random.default_rng(4)
        n = 32
        x = rng.random(n)
        dft = SlidingDFT(n, [0, 2, 5])
        for v in x:
            dft.slide(v)
        np.testing.assert_allclose(
            dft.amplitudes([2, 5]), np.abs(rfft_at(x, [2, 5])), atol=1e-9
        )


class TestReseedAndAdjust:
    def test_reseed_cancels_drift(self):
        rng = np.random.default_rng(5)
        n = 32
        stream = rng.random(n * 200)
        dft = SlidingDFT(n, [0, 1, 8])
        for i, v in enumerate(stream):
            dft.slide(v, stream[i - n] if i >= n else 0.0)
        drifted = dft.coefficients.copy()
        dft.reseed(stream[-n:])
        exact = rfft_at(stream[-n:], [0, 1, 8])
        np.testing.assert_allclose(dft.coefficients, exact, rtol=1e-12)
        # The reseed is at least as accurate as the drifted state.
        assert np.abs(dft.coefficients - exact).max() <= (
            np.abs(drifted - exact).max() + 1e-15
        )

    def test_reseed_wrong_length_rejected(self):
        dft = SlidingDFT(16, [0])
        with pytest.raises(ValueError, match="exactly 16"):
            dft.reseed(np.zeros(8))

    def test_reseed_matches_goertzel(self):
        rng = np.random.default_rng(6)
        x = rng.random(24)
        dft = SlidingDFT(24, [0, 3, 7])
        dft.reseed(x)
        np.testing.assert_array_equal(
            dft.coefficients, goertzel(x, np.array([0, 3, 7]))
        )

    def test_adjust_revises_in_place_sample(self):
        """adjust() applies a correction as if the sample had that value."""
        rng = np.random.default_rng(7)
        n = 16
        x = rng.random(n)
        dft = SlidingDFT(n, [0, 2, 5])
        dft.reseed(x)
        y = x.copy()
        y[4] += 0.25
        dft.adjust(4, 0.25)
        np.testing.assert_allclose(dft.coefficients, rfft_at(y, [0, 2, 5]), atol=1e-12)

    def test_adjust_out_of_window_rejected(self):
        dft = SlidingDFT(16, [0])
        with pytest.raises(ValueError, match="outside window"):
            dft.adjust(16, 1.0)

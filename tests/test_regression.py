"""Tests for OLS line fitting."""

import numpy as np
import pytest

from repro.stats.regression import fit_line


class TestFitLine:
    def test_exact_line(self):
        x = np.arange(20.0)
        fit = fit_line(x, 3.0 * x - 2.0)
        assert fit.slope == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(-2.0)
        assert fit.r == pytest.approx(1.0)
        assert fit.p_value < 1e-20

    def test_negative_relation(self):
        x = np.arange(20.0)
        fit = fit_line(x, -0.5 * x + 4.0)
        assert fit.slope == pytest.approx(-0.5)
        assert fit.r == pytest.approx(-1.0)

    def test_noisy_fit_recovers_slope(self):
        rng = np.random.default_rng(0)
        x = rng.random(500) * 10
        y = 2.0 * x + 1.0 + rng.normal(0, 0.5, 500)
        fit = fit_line(x, y)
        assert fit.slope == pytest.approx(2.0, abs=0.05)
        assert fit.p_value < 1e-10

    def test_no_relation_high_p(self):
        rng = np.random.default_rng(1)
        fit = fit_line(rng.random(100), rng.random(100))
        assert fit.p_value > 0.001
        assert abs(fit.r) < 0.4

    def test_nan_pairs_dropped(self):
        x = np.array([0.0, 1.0, 2.0, np.nan, 4.0])
        y = np.array([0.0, 2.0, 4.0, 100.0, 8.0])
        fit = fit_line(x, y)
        assert fit.slope == pytest.approx(2.0)
        assert fit.n == 4

    def test_matches_scipy_linregress(self):
        rng = np.random.default_rng(2)
        x = rng.random(200)
        y = 0.7 * x + rng.normal(0, 0.1, 200)
        fit = fit_line(x, y)
        ref = __import__("scipy.stats", fromlist=["linregress"]).linregress(x, y)
        assert fit.slope == pytest.approx(ref.slope)
        assert fit.intercept == pytest.approx(ref.intercept)
        assert fit.r == pytest.approx(ref.rvalue)
        assert fit.p_value == pytest.approx(ref.pvalue, rel=1e-6)
        assert fit.stderr == pytest.approx(ref.stderr, rel=1e-6)

    def test_predict(self):
        fit = fit_line(np.arange(10.0), 2 * np.arange(10.0))
        assert np.allclose(fit.predict(np.array([5.0, 6.0])), [10.0, 12.0])

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_line(np.array([1.0, 2.0]), np.array([1.0, 2.0]))

    def test_zero_variance_x(self):
        with pytest.raises(ValueError):
            fit_line(np.ones(10), np.arange(10.0))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            fit_line(np.zeros(3), np.zeros(4))

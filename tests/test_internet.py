"""Tests for the synthetic Internet world generator."""

import numpy as np
import pytest

from repro.linktype import classify_block_names, synthesize_block_names
from repro.simulation import WorldConfig, generate_world
from repro.simulation.countries import country_by_code


@pytest.fixture(scope="module")
def world():
    return generate_world(WorldConfig(n_blocks=5000, seed=42))


class TestGeneration:
    def test_block_count(self, world):
        assert world.n_blocks == 5000

    def test_deterministic(self):
        a = generate_world(WorldConfig(n_blocks=500, seed=7))
        b = generate_world(WorldConfig(n_blocks=500, seed=7))
        assert np.array_equal(a.is_diurnal, b.is_diurnal)
        assert np.array_equal(a.lon, b.lon)
        assert np.array_equal(a.asn, b.asn)

    def test_seed_changes_world(self):
        a = generate_world(WorldConfig(n_blocks=500, seed=7))
        b = generate_world(WorldConfig(n_blocks=500, seed=8))
        assert not np.array_equal(a.is_diurnal, b.is_diurnal)

    def test_country_shares_proportional(self, world):
        codes = world.country_codes()
        us = (codes == "US").mean()
        cn = (codes == "CN").mean()
        # US ≈ 24%, CN ≈ 14% of the paper's block population.
        assert us == pytest.approx(0.24, abs=0.03)
        assert cn == pytest.approx(0.14, abs=0.03)

    def test_diurnal_marginals_track_country_table(self, world):
        for code in ("US", "CN", "BR"):
            expected = country_by_code(code).diurnal_frac
            got = world.designed_diurnal_fraction(code)
            assert got == pytest.approx(expected, abs=0.08), code

    def test_availability_params_sane(self, world):
        assert (world.a_low <= world.a_high + 1e-12).all()
        assert (world.a_high <= 1.0).all()
        assert (world.a_low >= 0.0).all()
        assert (world.n_active >= 15).all()

    def test_diurnal_blocks_have_depth(self, world):
        depth = 1 - world.a_low[world.is_diurnal] / world.a_high[world.is_diurnal]
        assert (depth > 0.3).all()

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            WorldConfig(n_blocks=0)
        with pytest.raises(ValueError):
            WorldConfig(geo_coverage=1.5)


class TestPhaseGeography:
    @staticmethod
    def _circular_hours(onset_frac):
        """Mean and std of clock times, handling the midnight wrap."""
        angles = onset_frac * 2 * np.pi
        z = np.exp(1j * angles)
        mean = (np.angle(z.mean()) % (2 * np.pi)) / (2 * np.pi) * 24
        r = np.abs(z.mean())
        std = np.sqrt(-2 * np.log(max(r, 1e-12))) / (2 * np.pi) * 24
        return mean, std

    def test_onset_tracks_longitude(self, world):
        """Blocks east of Greenwich wake earlier in UTC terms."""
        codes = world.country_codes()
        jp_mean, _ = self._circular_hours(world.onset_frac[codes == "JP"])
        # Japan wakes ~08:00 local = ~22:50 UTC (previous day).
        assert jp_mean > 21.0 or jp_mean < 0.5

    def test_china_single_timezone(self, world):
        """Chinese blocks share a national clock despite wide longitude."""
        codes = world.country_codes()
        cn = codes == "CN"
        lon = world.lon[cn]
        assert lon.std() > 4.0  # geographically wide...
        # ...but onset variation reflects only the wake-hour noise (~1h).
        _, std = self._circular_hours(world.onset_frac[cn])
        assert std < 1.5

    def test_us_multiple_timezones(self, world):
        codes = world.country_codes()
        _, std = self._circular_hours(world.onset_frac[codes == "US"])
        # Wake noise (1h) plus ~3 timezones of spread.
        assert std > 1.2


class TestRegistryViews:
    def test_geodb_coverage(self, world):
        db = world.build_geodb()
        assert db.coverage(world.block_id) == pytest.approx(0.93, abs=0.02)

    def test_geodb_centroid_artifacts(self, world):
        db = world.build_geodb()
        assert db.centroid_fraction() == pytest.approx(0.05, abs=0.02)

    def test_geodb_countries_match_world(self, world):
        db = world.build_geodb()
        codes = world.country_codes()
        got = db.countries(world.block_id[:200])
        located = got != ""
        assert (got[located] == codes[:200][located]).all()

    def test_ipasn_full_coverage(self, world):
        table = world.build_ipasn()
        assert table.coverage(world.block_id[:500]) == 1.0

    def test_ipasn_matches_world_asn(self, world):
        table = world.build_ipasn()
        got = table.map_blocks(world.block_id[:300])
        assert (got == world.asn[:300]).all()

    def test_as_records_have_countries(self, world):
        for record in world.as_records[:20]:
            assert len(record.country) == 2

    def test_org_clustering_on_world_asns(self, world):
        """The first ISP of each country has two AS name spellings that
        must cluster into one organization."""
        from repro.asn import OrgMapper

        mapper = OrgMapper(world.as_records)
        cluster = mapper.cluster_of_asn(64500)
        assert cluster is not None
        assert len(cluster.asns) == 2  # "X Telecom" + "X-TELECOM Backbone"


class TestLinkTypes:
    def test_feature_round_trip(self, world):
        """World features survive rDNS synthesis + keyword classification."""
        from repro.linktype import RdnsStyle

        rng = np.random.default_rng(0)
        checked = 0
        for i in range(world.n_blocks):
            if world.rdns_style[i] is not RdnsStyle.DESCRIPTIVE:
                continue
            features = world.link_features(i)
            if not features:
                continue
            names = synthesize_block_names(features, world.rdns_style[i], rng)
            got = classify_block_names(names, keep_discarded=True)
            # keep_discarded retains "wireless"; infrastructure noise
            # (rtr/gw) is suppressed by the 1/15 rule, so the surviving
            # labels are exactly the designed features.
            assert got.labels == frozenset(features)
            checked += 1
            if checked >= 50:
                break
        assert checked == 50

    def test_dynamic_more_diurnal_than_dialup(self, world):
        addressing = world.addressing.astype(str)
        access = world.access_tech.astype(str)
        dyn_frac = world.is_diurnal[addressing == "dyn"].mean()
        dial_frac = world.is_diurnal[access == "dial"].mean()
        assert dyn_frac > 2 * dial_frac

    def test_alloc_years_in_range(self, world):
        assert (world.alloc_year >= 1983).all()
        assert (world.alloc_year <= 2013).all()

    def test_newer_allocations_more_diurnal(self, world):
        """The Figure 15 premise holds in the generated world."""
        month = world.alloc_month()
        old = world.is_diurnal[month < np.percentile(month, 30)].mean()
        new = world.is_diurnal[month > np.percentile(month, 70)].mean()
        assert new > old

"""Tests for the round clock and restart schedule."""

import numpy as np
import pytest

from repro.probing.rounds import RoundSchedule, probes_per_hour


class TestSchedule:
    def test_for_days_round_count(self):
        s = RoundSchedule.for_days(14)
        assert s.n_rounds == round(14 * 86400 / 660)

    def test_paper_35_day_dataset(self):
        s = RoundSchedule.for_days(35)
        assert s.n_rounds == round(35 * 86400 / 660) == 4582

    def test_times_spacing(self):
        s = RoundSchedule(n_rounds=5, round_s=660.0, start_s=100.0)
        assert np.allclose(np.diff(s.times()), 660.0)
        assert s.times()[0] == 100.0

    def test_duration(self):
        s = RoundSchedule(n_rounds=10)
        assert s.duration_s == 6600.0

    def test_n_days(self):
        s = RoundSchedule.for_days(7)
        assert s.n_days == pytest.approx(7.0, abs=0.01)

    def test_rounds_per_day(self):
        assert RoundSchedule(10).rounds_per_day() == pytest.approx(86400 / 660)

    def test_rejects_negative_rounds(self):
        with pytest.raises(ValueError):
            RoundSchedule(n_rounds=-1)

    def test_rejects_nonpositive_round_s(self):
        with pytest.raises(ValueError):
            RoundSchedule(n_rounds=1, round_s=0.0)


class TestRestarts:
    def test_no_restarts_by_default(self):
        assert len(RoundSchedule(100).restart_rounds()) == 0

    def test_restart_every_5_5_hours(self):
        # The A_12w policy: restart every 5.5 h = every 30 rounds.
        s = RoundSchedule.for_days(1, restart_interval_s=5.5 * 3600)
        restarts = s.restart_rounds()
        assert restarts.tolist() == [30, 60, 90, 120]

    def test_round_zero_never_a_restart(self):
        s = RoundSchedule(100, restart_interval_s=660.0)
        assert 0 not in s.restart_rounds()

    def test_restarts_within_bounds(self):
        s = RoundSchedule.for_days(35, restart_interval_s=5.5 * 3600)
        restarts = s.restart_rounds()
        assert (restarts < s.n_rounds).all()
        # 35 days / 5.5 h ≈ 152 restarts.
        assert 150 <= len(restarts) <= 153


class TestProbeBudget:
    def test_probes_per_hour(self):
        s = RoundSchedule.for_days(1)
        # One probe per round is ~5.45 probes/hour.
        assert probes_per_hour(s.n_rounds, s) == pytest.approx(3600 / 660, abs=0.01)

    def test_zero_duration(self):
        assert probes_per_hour(100, RoundSchedule(0)) == 0.0

    def test_paper_budget_holds_for_adaptive_probing(self):
        # Even 3 probes/round stays under the paper's 20 probes/hour bound.
        s = RoundSchedule.for_days(35)
        assert probes_per_hour(3 * s.n_rounds, s) < 20

"""Crash-recovery chaos harness: kill the run anywhere, resume exactly.

For every injected crash point — mid-checkpoint-write, just after
checkpoint publication, mid-block, mid-journal-append, mid-worker —
the restarted run must complete and produce results bit-identical to a
run that was never interrupted, and no partially written state may
ever be loaded.
"""

import numpy as np
import pytest

from repro.core import (
    BatchConfig,
    BatchRunner,
    PoolConfig,
    PoolRunner,
    reports_equal,
)
from repro.faults import InjectedCrash, arm, disarm, fired
from repro.probing import RoundSchedule
from repro.stream import (
    ListSink,
    StreamConfig,
    StreamEngine,
    StreamJournal,
    WindowClosed,
    replay_journal,
)
from tests.test_batch_runner import make_blocks
from tests.test_supervisor import assert_results_identical

SCHEDULE = RoundSchedule.for_days(2)
N_BLOCKS = 6


@pytest.fixture(autouse=True)
def _disarm_after_test():
    yield
    disarm()


@pytest.fixture(scope="module")
def uninterrupted():
    """The oracle: a batch run that was never disturbed."""
    return BatchRunner(BatchConfig()).run(
        make_blocks(N_BLOCKS), SCHEDULE, seed=13
    )


def run_with_checkpoint(path, **batch_kwargs):
    config = BatchConfig(
        checkpoint_path=path, checkpoint_every=2, **batch_kwargs
    )
    return BatchRunner(config).run(make_blocks(N_BLOCKS), SCHEDULE, seed=13)


BATCH_CRASH_POINTS = [
    ("io.checkpoint.begin", 2),
    ("io.checkpoint.tmp_written", 2),
    ("io.checkpoint.replaced", 1),
    ("batch.block_done", 3),
    ("batch.checkpointed", 1),
]


class TestBatchCrashRecovery:
    @pytest.mark.watchdog(300)
    @pytest.mark.parametrize("point,hits", BATCH_CRASH_POINTS)
    def test_resume_is_bit_identical(
        self, tmp_path, uninterrupted, point, hits
    ):
        path = tmp_path / "ck.npz"
        arm(point, hits=hits)
        with pytest.raises(InjectedCrash):
            run_with_checkpoint(path)
        assert fired(point) == 1
        disarm()

        resumed = run_with_checkpoint(path)
        assert resumed.n_resumed >= 0
        assert_results_identical(uninterrupted, resumed)

    @pytest.mark.watchdog(300)
    def test_crash_mid_checkpoint_write_never_loses_published_state(
        self, tmp_path
    ):
        from repro.datasets.io import load_batch_checkpoint

        path = tmp_path / "ck.npz"
        arm("io.checkpoint.tmp_written", hits=2)
        with pytest.raises(InjectedCrash):
            run_with_checkpoint(path)
        disarm()
        # The crash hit the *second* checkpoint write mid-flight: the
        # first published checkpoint must still load, complete, intact.
        entries, _, meta = load_batch_checkpoint(path)
        assert len(entries) == 2
        assert meta == {"seed": 13, "n_blocks": N_BLOCKS}

    @pytest.mark.watchdog(300)
    def test_resume_after_crash_actually_resumes(self, tmp_path):
        path = tmp_path / "ck.npz"
        arm("batch.checkpointed", hits=2)  # die after the 2nd checkpoint
        with pytest.raises(InjectedCrash):
            run_with_checkpoint(path)
        disarm()
        resumed = run_with_checkpoint(path)
        assert resumed.n_resumed == 4  # two checkpoints of two blocks


class TestJournalCrashRecovery:
    @pytest.mark.watchdog(300)
    def test_torn_append_then_restart_reproduces_stream_verdicts(
        self, tmp_path
    ):
        """Kill the journal writer mid-frame; restart; verdicts identical.

        The restart protocol is the production one: recover the journal
        (torn tail truncated), replay it into a fresh engine, then keep
        ingesting from the source starting at the first unjournaled
        observation (a torn append was never acknowledged, so the
        source re-sends it).
        """
        rng = np.random.default_rng(23)
        config = StreamConfig.for_days(1)
        n = 2 * config.window_rounds
        day = 24 * 3600.0
        source = [
            (
                7,
                i * config.round_s,
                float(
                    np.clip(
                        0.5
                        + 0.3 * np.sin(2 * np.pi * i * config.round_s / day)
                        + rng.normal(0, 0.02),
                        0,
                        1,
                    )
                ),
            )
            for i in range(n)
        ]

        oracle_sink = ListSink()
        oracle = StreamEngine(config, sinks=[oracle_sink])
        for block_id, t, value in source:
            oracle.ingest(block_id, t, value)

        path = tmp_path / "wal"
        journal = StreamJournal(path)
        live = StreamEngine(config)
        arm("journal.mid_append", hits=n // 3)
        with pytest.raises(InjectedCrash):
            for block_id, t, value in source:
                seq = journal.append(block_id, t, value)
                live.ingest(block_id, t, value)
                if seq % 5 == 0:
                    journal.flush()
        disarm()

        # -- restart --
        journal = StreamJournal(path)
        assert journal.recovery.was_torn
        restart_sink = ListSink()
        restarted = StreamEngine(config, sinks=[restart_sink])
        last = replay_journal(path, restarted)
        for block_id, t, value in source[last:]:
            journal.append(block_id, t, value)
            restarted.ingest(block_id, t, value)
        journal.close()

        oracle_closes = oracle_sink.of_type(WindowClosed)
        restart_closes = restart_sink.of_type(WindowClosed)
        assert len(oracle_closes) == len(restart_closes) >= 1
        for a, b in zip(oracle_closes, restart_closes):
            assert reports_equal(a.report, b.report)


class TestPoolCrashRecovery:
    @pytest.mark.watchdog(300)
    def test_worker_killed_mid_task_results_identical(
        self, tmp_path, uninterrupted
    ):
        # The armed state is inherited by forked workers; the marker
        # file makes the death exactly-once across every worker and
        # respawn, so the pool must absorb one SIGKILL-style loss.
        marker = tmp_path / "crash-marker"
        arm(
            "pool.worker.task_start",
            hits=1,
            action="exit",
            marker=marker,
        )
        pooled = PoolRunner(
            PoolConfig(n_workers=2, max_block_failures=3)
        ).run(make_blocks(N_BLOCKS), SCHEDULE, seed=13)
        disarm()
        assert marker.exists()  # the injected kill really fired
        assert not pooled.failures
        assert_results_identical(uninterrupted, pooled)

    @pytest.mark.watchdog(300)
    def test_supervisor_crash_resumes_bit_identically(
        self, tmp_path, uninterrupted
    ):
        path = tmp_path / "ck.npz"
        config = PoolConfig(
            batch=BatchConfig(checkpoint_path=path, checkpoint_every=1),
            n_workers=2,
        )
        arm("pool.block_done", hits=3)
        with pytest.raises(InjectedCrash):
            PoolRunner(config).run(make_blocks(N_BLOCKS), SCHEDULE, seed=13)
        disarm()

        resumed = PoolRunner(config).run(
            make_blocks(N_BLOCKS), SCHEDULE, seed=13
        )
        assert resumed.n_resumed >= 2
        assert_results_identical(uninterrupted, resumed)

    @pytest.mark.watchdog(300)
    def test_crash_during_pool_checkpoint_write(self, tmp_path, uninterrupted):
        path = tmp_path / "ck.npz"
        config = PoolConfig(
            batch=BatchConfig(checkpoint_path=path, checkpoint_every=2),
            n_workers=2,
        )
        arm("io.checkpoint.tmp_written", hits=2)
        with pytest.raises(InjectedCrash):
            PoolRunner(config).run(make_blocks(N_BLOCKS), SCHEDULE, seed=13)
        disarm()
        resumed = PoolRunner(config).run(
            make_blocks(N_BLOCKS), SCHEDULE, seed=13
        )
        assert_results_identical(uninterrupted, resumed)


class TestMeasurementCrashRecovery:
    @pytest.mark.watchdog(300)
    def test_interrupted_measurement_save_retries_cleanly(self, tmp_path):
        from repro.datasets.io import load_measurement, save_measurement
        from repro.simulation.fastsim import measure_world
        from repro.simulation.internet import WorldConfig, generate_world

        world = generate_world(WorldConfig(n_blocks=30, seed=2))
        measurement = measure_world(world, SCHEDULE)
        path = tmp_path / "m.npz"
        arm("io.measurement.tmp_written", hits=1)
        with pytest.raises(InjectedCrash):
            save_measurement(path, measurement)
        disarm()
        assert not path.exists()  # never published a torn file
        save_measurement(path, measurement)
        loaded = load_measurement(path)
        np.testing.assert_array_equal(loaded.labels, measurement.labels)

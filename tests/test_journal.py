"""The write-ahead journal: framing, torn-tail recovery, idempotent replay."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import armed, corrupt_file
from repro.faults.corruption import flip_bit, truncate_tail
from repro.faults.crash import InjectedCrash
from repro.stream import (
    JournalRecord,
    StreamJournal,
    read_journal,
    replay_journal,
)


def write_records(path, n, start_seq_check=True):
    with StreamJournal(path) as journal:
        for i in range(n):
            seq = journal.append(i % 5, float(i * 660), 0.25 + 0.01 * i)
            if start_seq_check:
                assert seq == i + 1
    return path


class RecordingEngine:
    """Duck-typed ingest target that remembers every observation."""

    def __init__(self):
        self.seen = []

    def ingest(self, block_id, time_s, value):
        self.seen.append((block_id, time_s, value))


class TestRoundTrip:
    def test_append_then_read(self, tmp_path):
        path = write_records(tmp_path / "wal", 12)
        records, report = read_journal(path)
        assert len(records) == 12
        assert records[0] == JournalRecord(1, 0, 0.0, 0.25)
        assert report.last_seq == 12
        assert not report.was_torn

    def test_empty_journal(self, tmp_path):
        path = tmp_path / "wal"
        StreamJournal(path).close()
        records, report = read_journal(path)
        assert records == [] and report.last_seq == 0

    def test_reopen_continues_sequence(self, tmp_path):
        path = write_records(tmp_path / "wal", 3)
        with StreamJournal(path) as journal:
            assert journal.recovery.n_records == 3
            assert journal.append(9, 1.0, 0.5) == 4

    def test_append_many(self, tmp_path):
        path = tmp_path / "wal"
        with StreamJournal(path) as journal:
            last = journal.append_many([1, 2], [0.0, 660.0], [0.5, 0.6])
        assert last == 2
        records, _ = read_journal(path)
        assert [r.block_id for r in records] == [1, 2]

    def test_not_a_journal(self, tmp_path):
        path = tmp_path / "wal"
        path.write_bytes(b"definitely not a journal")
        with pytest.raises(ValueError, match="bad magic"):
            read_journal(path)
        with pytest.raises(ValueError, match="bad magic"):
            StreamJournal(path)

    def test_sync_every_validation(self, tmp_path):
        with pytest.raises(ValueError, match="sync_every"):
            StreamJournal(tmp_path / "wal", sync_every=0)


class FlakyReadBytes:
    """Patchable ``Path.read_bytes`` that fails its first ``n`` calls."""

    def __init__(self, n_failures):
        import pathlib

        self.real = pathlib.Path.read_bytes
        self.left = n_failures
        self.calls = 0

    def __call__(self, path):
        self.calls += 1
        if self.left > 0:
            self.left -= 1
            raise OSError("transient I/O")
        return self.real(path)


class TestOpenRetry:
    def test_open_retry_survives_transient_oserror(self, tmp_path, monkeypatch):
        import pathlib

        from repro.core import RetryPolicy

        path = write_records(tmp_path / "wal", 3)
        flaky = FlakyReadBytes(1)
        monkeypatch.setattr(pathlib.Path, "read_bytes", lambda p: flaky(p))
        with StreamJournal(path, open_retry=RetryPolicy(max_retries=2)) as j:
            assert j.recovery.n_records == 3
        assert flaky.calls == 2

    def test_without_policy_oserror_propagates(self, tmp_path, monkeypatch):
        import pathlib

        path = write_records(tmp_path / "wal", 3)
        flaky = FlakyReadBytes(1)
        monkeypatch.setattr(pathlib.Path, "read_bytes", lambda p: flaky(p))
        with pytest.raises(OSError, match="transient"):
            StreamJournal(path)
        assert flaky.calls == 1

    def test_replay_retry_survives_transient_oserror(
        self, tmp_path, monkeypatch
    ):
        import pathlib

        from repro.core import RetryPolicy

        path = write_records(tmp_path / "wal", 4)
        engine = RecordingEngine()
        flaky = FlakyReadBytes(1)
        monkeypatch.setattr(pathlib.Path, "read_bytes", lambda p: flaky(p))
        replay_journal(path, engine, retry=RetryPolicy(max_retries=1))
        assert len(engine.seen) == 4
        assert flaky.calls == 2

    def test_corruption_is_never_retried(self, tmp_path, monkeypatch):
        # Bad magic is a ValueError — structural damage, not transient
        # I/O — and must fail fast no matter how generous the policy.
        import pathlib

        from repro.core import RetryPolicy

        path = tmp_path / "wal"
        path.write_bytes(b"definitely not a journal")
        flaky = FlakyReadBytes(0)
        monkeypatch.setattr(pathlib.Path, "read_bytes", lambda p: flaky(p))
        with pytest.raises(ValueError, match="bad magic"):
            StreamJournal(path, open_retry=RetryPolicy(max_retries=5))
        assert flaky.calls == 1


class TestTornTailRecovery:
    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        path = write_records(tmp_path / "wal", 10)
        truncate_tail(path, 11)
        journal = StreamJournal(path)
        assert journal.recovery.n_records == 9
        assert journal.recovery.was_torn
        assert journal.recovery.reason == "torn frame payload"
        assert journal.append(7, 0.0, 0.9) == 10
        journal.close()
        records, report = read_journal(path)
        assert len(records) == 10 and not report.was_torn

    def test_crc_damage_truncates_from_damage_point(self, tmp_path):
        path = write_records(tmp_path / "wal", 10)
        flip_bit(path, -10)
        journal = StreamJournal(path)
        assert journal.recovery.n_records == 9
        assert journal.recovery.reason == "frame CRC mismatch"
        journal.close()

    def test_zero_length_file_reinitializes(self, tmp_path):
        path = write_records(tmp_path / "wal", 4)
        corrupt_file(path, "zero-length")
        journal = StreamJournal(path)
        assert journal.recovery.n_records == 0
        assert journal.next_seq == 1
        journal.close()

    def test_sub_header_file_reinitializes(self, tmp_path):
        path = tmp_path / "wal"
        path.write_bytes(b"RPW")  # torn mid-header
        journal = StreamJournal(path)
        assert journal.recovery.reason == "torn file header"
        journal.close()

    def test_read_journal_does_not_repair(self, tmp_path):
        path = write_records(tmp_path / "wal", 5)
        size_before = path.stat().st_size
        truncate_tail(path, 3)
        read_journal(path)
        assert path.stat().st_size == size_before - 3

    def test_torn_append_crash_recovers_cleanly(self, tmp_path):
        path = tmp_path / "wal"
        journal = StreamJournal(path)
        with armed("journal.mid_append", hits=4):
            with pytest.raises(InjectedCrash):
                for i in range(10):
                    journal.append(i, float(i), 0.5)
                    journal.flush()
        # Three full frames plus half of the fourth reached the file.
        recovered = StreamJournal(path)
        assert recovered.recovery.n_records == 3
        assert recovered.recovery.was_torn
        assert recovered.next_seq == 4
        recovered.close()


class TestIdempotentReplay:
    def test_replay_applies_all_once(self, tmp_path):
        path = write_records(tmp_path / "wal", 8)
        engine = RecordingEngine()
        last = replay_journal(path, engine)
        assert last == 8 and len(engine.seen) == 8

    def test_replay_twice_is_a_noop(self, tmp_path):
        path = write_records(tmp_path / "wal", 8)
        engine = RecordingEngine()
        last = replay_journal(path, engine)
        again = replay_journal(path, engine, after_seq=last)
        assert again == last and len(engine.seen) == 8

    def test_resume_skips_already_applied(self, tmp_path):
        path = write_records(tmp_path / "wal", 8)
        engine = RecordingEngine()
        replay_journal(path, engine)  # crashed engine got everything...
        survivor = RecordingEngine()
        survivor.seen = engine.seen[:5]  # ...but only durably kept 5
        last = replay_journal(path, survivor, after_seq=5)
        assert last == 8
        assert survivor.seen == engine.seen


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=0,
        max_size=25,
    ),
    data=st.data(),
)
def test_recovery_under_arbitrary_crash_prefix(tmp_path_factory, values, data):
    """Cut the journal at *any* byte; recover; finish; nothing is lost twice.

    For every crash prefix: the recovered journal holds an exact prefix
    of the original records, re-appending the remainder reproduces the
    uninterrupted journal, and seq-guarded replay applies each record
    exactly once.
    """
    tmp_path = tmp_path_factory.mktemp("wal")
    path = tmp_path / "wal"
    with StreamJournal(path) as journal:
        for i, value in enumerate(values):
            journal.append(i % 3, float(i * 660), value)
    original, _ = read_journal(path)
    raw = path.read_bytes()

    cut = data.draw(st.integers(min_value=0, max_value=len(raw)))
    path.write_bytes(raw[:cut])

    journal = StreamJournal(path)
    recovered = journal.recovery.n_records
    assert original[:recovered] == read_journal(path)[0]

    # The writer resumes exactly where the intact records end.
    for record in original[recovered:]:
        journal.append(record.block_id, record.time_s, record.value)
    journal.close()
    assert read_journal(path)[0] == original

    # Replay after a crash-interrupted replay applies each record once.
    engine = RecordingEngine()
    applied = data.draw(st.integers(min_value=0, max_value=len(original)))
    engine.seen = [
        (r.block_id, r.time_s, r.value) for r in original[:applied]
    ]
    replay_journal(path, engine, after_seq=applied)
    assert engine.seen == [
        (r.block_id, r.time_s, r.value) for r in original
    ]


def test_journal_feeds_stream_engine(tmp_path):
    """End to end: replaying the journal reproduces the live verdicts."""
    from repro.core import reports_equal
    from repro.stream import ListSink, StreamConfig, StreamEngine, WindowClosed

    rng = np.random.default_rng(11)
    config = StreamConfig.for_days(1)
    n = 2 * config.window_rounds
    day = 24 * 3600.0

    path = tmp_path / "wal"
    direct_sink = ListSink()
    direct = StreamEngine(config, sinks=[direct_sink])
    with StreamJournal(path) as journal:
        for i in range(n):
            t = i * config.round_s
            value = float(
                np.clip(
                    0.5 + 0.3 * np.sin(2 * np.pi * t / day) + rng.normal(0, 0.02),
                    0,
                    1,
                )
            )
            journal.append(3, t, value)
            direct.ingest(3, t, value)

    replay_sink = ListSink()
    replayed = StreamEngine(config, sinks=[replay_sink])
    replay_journal(path, replayed)

    direct_closes = direct_sink.of_type(WindowClosed)
    replay_closes = replay_sink.of_type(WindowClosed)
    assert len(direct_closes) == len(replay_closes) >= 1
    for a, b in zip(direct_closes, replay_closes):
        assert reports_equal(a.report, b.report)

"""Tests for the resilient BatchRunner: isolation, retry, checkpoint/resume."""

import numpy as np
import pytest

from repro.core import (
    BatchConfig,
    BatchRunner,
    BlockFailure,
    BlockMeasurement,
    RetryPolicy,
    measure_blocks,
)
from repro.obs import EventLogger, read_event_log
from repro.datasets.io import load_batch_checkpoint, save_batch_checkpoint
from repro.faults import FaultConfig
from repro.net import Block24, make_always_on, make_dead, make_diurnal, merge_behaviors
from repro.probing import RoundSchedule

SCHEDULE = RoundSchedule.for_days(3)


def diurnal_block(block_id):
    behavior = merge_behaviors(
        make_always_on(40),
        make_diurnal(80, phase_s=6 * 3600),
        make_dead(136),
    )
    return Block24(block_id, behavior)


def make_blocks(n):
    return [diurnal_block(i) for i in range(n)]


class AlwaysBroken:
    """A 'block' whose realization always raises."""

    block_id = 666

    def realize(self, times, rng):
        raise RuntimeError("synthetic block failure")


class FailsOnce(Block24):
    """Fails the first realize call, then behaves like a normal block."""

    def __init__(self, block_id, behavior):
        super().__init__(block_id, behavior)
        self.calls = 0

    def realize(self, times, rng):
        self.calls += 1
        if self.calls == 1:
            raise RuntimeError("transient failure")
        return super().realize(times, rng)


class KilledAt(Block24):
    """Simulates the process dying (KeyboardInterrupt) on first realize."""

    def __init__(self, block_id, behavior):
        super().__init__(block_id, behavior)
        self.killed = False

    def realize(self, times, rng):
        if not self.killed:
            self.killed = True
            raise KeyboardInterrupt
        return super().realize(times, rng)


def assert_measurements_identical(a: BlockMeasurement, b: BlockMeasurement):
    for name in (
        "positives",
        "totals",
        "states",
        "a_short",
        "a_long",
        "a_operational",
        "true_availability",
    ):
        assert np.array_equal(
            getattr(a, name), getattr(b, name), equal_nan=True
        ), name
    assert a.block_id == b.block_id
    assert a.trim == b.trim
    assert a.n_ever_active == b.n_ever_active
    assert a.skipped == b.skipped
    assert a.stationary == b.stationary
    for report_name in ("report", "true_report"):
        ra, rb = getattr(a, report_name), getattr(b, report_name)
        assert (ra is None) == (rb is None)
        if ra is not None:
            assert ra.label == rb.label
            assert ra.diurnal_k == rb.diurnal_k
            assert ra.diurnal_amplitude == rb.diurnal_amplitude
            assert ra.phase == rb.phase


class TestLegacyCompatibility:
    def test_measure_blocks_matches_batch_runner(self):
        blocks = make_blocks(3)
        legacy = measure_blocks(blocks, SCHEDULE, seed=5)
        batch = BatchRunner(BatchConfig()).run(blocks, SCHEDULE, seed=5)
        assert len(legacy) == batch.n_blocks
        for a, b in zip(legacy, batch.results):
            assert_measurements_identical(a, b)

    def test_measure_blocks_propagates_errors(self):
        blocks = [diurnal_block(0), AlwaysBroken()]
        with pytest.raises(RuntimeError, match="synthetic block failure"):
            measure_blocks(blocks, SCHEDULE, seed=0)


class TestFailureIsolation:
    def test_bad_block_recorded_not_fatal(self):
        blocks = [diurnal_block(0), AlwaysBroken(), diurnal_block(2)]
        result = BatchRunner(BatchConfig(max_retries=1)).run(
            blocks, SCHEDULE, seed=0
        )
        assert result.n_blocks == 3
        assert len(result.measurements) == 2
        [failure] = result.failures
        assert isinstance(failure, BlockFailure)
        assert failure.index == 1
        assert failure.block_id == 666
        assert failure.error_type == "RuntimeError"
        assert failure.attempts == 2
        assert "synthetic" in failure.message

    def test_good_blocks_unperturbed_by_neighbour_failure(self):
        clean = BatchRunner(BatchConfig()).run(
            [diurnal_block(0), diurnal_block(1), diurnal_block(2)],
            SCHEDULE,
            seed=3,
        )
        with_bad = BatchRunner(BatchConfig()).run(
            [diurnal_block(0), AlwaysBroken(), diurnal_block(2)],
            SCHEDULE,
            seed=3,
        )
        assert_measurements_identical(
            clean.results[0], with_bad.results[0]
        )
        assert_measurements_identical(
            clean.results[2], with_bad.results[2]
        )

    def test_summary_reports_failures(self):
        blocks = [diurnal_block(0), AlwaysBroken()]
        result = BatchRunner(BatchConfig(max_retries=0)).run(
            blocks, SCHEDULE, seed=0
        )
        assert "1 failed" in result.summary()


class TestRetry:
    def test_transient_failure_retried_to_success(self):
        block = FailsOnce(1, diurnal_block(1).behavior)
        result = BatchRunner(BatchConfig(max_retries=1)).run(
            [block], SCHEDULE, seed=0
        )
        assert len(result.measurements) == 1
        assert block.calls == 2

    def test_no_retries_means_single_attempt(self):
        block = FailsOnce(1, diurnal_block(1).behavior)
        result = BatchRunner(BatchConfig(max_retries=0)).run(
            [block], SCHEDULE, seed=0
        )
        [failure] = result.failures
        assert failure.attempts == 1

    def test_retry_uses_fresh_deterministic_substream(self):
        a = BatchRunner(BatchConfig(max_retries=2)).run(
            [FailsOnce(1, diurnal_block(1).behavior)], SCHEDULE, seed=0
        )
        b = BatchRunner(BatchConfig(max_retries=2)).run(
            [FailsOnce(1, diurnal_block(1).behavior)], SCHEDULE, seed=0
        )
        assert_measurements_identical(a.results[0], b.results[0])
        # The retry stream differs from the first-attempt stream a clean
        # block would have used.
        clean = BatchRunner(BatchConfig()).run(
            [diurnal_block(1)], SCHEDULE, seed=0
        )
        assert not np.array_equal(
            a.results[0].a_short, clean.results[0].a_short
        )

    def test_explicit_policy_overrides_max_retries(self):
        block = FailsOnce(1, diurnal_block(1).behavior)
        config = BatchConfig(
            max_retries=0, retry=RetryPolicy(max_retries=2)
        )
        result = BatchRunner(config).run([block], SCHEDULE, seed=0)
        assert len(result.measurements) == 1
        assert block.calls == 2

    def test_zero_delay_policy_is_bit_identical_to_legacy(self):
        legacy = BatchRunner(BatchConfig(max_retries=1)).run(
            [FailsOnce(1, diurnal_block(1).behavior)], SCHEDULE, seed=0
        )
        policied = BatchRunner(
            BatchConfig(retry=RetryPolicy(max_retries=1))
        ).run([FailsOnce(1, diurnal_block(1).behavior)], SCHEDULE, seed=0)
        assert_measurements_identical(legacy.results[0], policied.results[0])

    def test_retry_event_carries_policy_delay(self, tmp_path):
        events = EventLogger(tmp_path / "events.jsonl", level="debug")
        config = BatchConfig(
            retry=RetryPolicy(max_retries=1, base_delay_s=0.01)
        )
        BatchRunner(config, events=events).run(
            [FailsOnce(1, diurnal_block(1).behavior)], SCHEDULE, seed=0
        )
        events.close()
        [retry] = [
            e
            for e in read_event_log(tmp_path / "events.jsonl")
            if e["event"] == "block.retry"
        ]
        assert retry["attempt"] == 1
        assert retry["delay_s"] == pytest.approx(0.01)


class TestCheckpointResume:
    def test_killed_run_resumes_bit_identical(self, tmp_path):
        path = tmp_path / "batch.npz"
        blocks = make_blocks(6)
        uninterrupted = BatchRunner(BatchConfig()).run(blocks, SCHEDULE, seed=11)

        killed = make_blocks(6)
        killed[4] = KilledAt(4, diurnal_block(4).behavior)
        config = BatchConfig(checkpoint_path=path, checkpoint_every=2)
        with pytest.raises(KeyboardInterrupt):
            BatchRunner(config).run(killed, SCHEDULE, seed=11)
        assert path.exists()

        resumed = BatchRunner(config).run(killed, SCHEDULE, seed=11)
        assert resumed.n_resumed == 4
        assert len(resumed.measurements) == 6
        for a, b in zip(uninterrupted.results, resumed.results):
            assert_measurements_identical(a, b)

    def test_completed_checkpoint_resumes_without_work(self, tmp_path):
        path = tmp_path / "batch.npz"
        blocks = make_blocks(3)
        config = BatchConfig(checkpoint_path=path, checkpoint_every=1)
        first = BatchRunner(config).run(blocks, SCHEDULE, seed=2)
        second = BatchRunner(config).run(blocks, SCHEDULE, seed=2)
        assert second.n_resumed == 3
        for a, b in zip(first.results, second.results):
            assert_measurements_identical(a, b)

    def test_checkpoint_seed_mismatch_rejected(self, tmp_path):
        path = tmp_path / "batch.npz"
        blocks = make_blocks(2)
        config = BatchConfig(checkpoint_path=path, checkpoint_every=1)
        BatchRunner(config).run(blocks, SCHEDULE, seed=1)
        with pytest.raises(ValueError, match="seed"):
            BatchRunner(config).run(blocks, SCHEDULE, seed=2)

    def test_checkpoint_schedule_mismatch_rejected(self, tmp_path):
        path = tmp_path / "batch.npz"
        blocks = make_blocks(2)
        config = BatchConfig(checkpoint_path=path, checkpoint_every=1)
        BatchRunner(config).run(blocks, SCHEDULE, seed=1)
        with pytest.raises(ValueError, match="schedule"):
            BatchRunner(config).run(
                blocks, RoundSchedule.for_days(4), seed=1
            )

    def test_failures_survive_checkpoint_round_trip(self, tmp_path):
        path = tmp_path / "batch.npz"
        blocks = [diurnal_block(0), AlwaysBroken()]
        config = BatchConfig(
            checkpoint_path=path, checkpoint_every=1, max_retries=0
        )
        first = BatchRunner(config).run(blocks, SCHEDULE, seed=0)
        second = BatchRunner(config).run(blocks, SCHEDULE, seed=0)
        [fa], [fb] = first.failures, second.failures
        assert (fa.block_id, fa.index, fa.error_type, fa.message, fa.attempts) == (
            fb.block_id,
            fb.index,
            fb.error_type,
            fb.message,
            fb.attempts,
        )

    def test_degraded_run_checkpoints_quality_reports(self, tmp_path):
        path = tmp_path / "batch.npz"
        blocks = make_blocks(2)
        config = BatchConfig(
            checkpoint_path=path,
            checkpoint_every=1,
            faults=FaultConfig(round_drop_rate=0.05, seed=4),
        )
        first = BatchRunner(config).run(blocks, SCHEDULE, seed=6)
        resumed = BatchRunner(config).run(blocks, SCHEDULE, seed=6)
        assert resumed.n_resumed == 2
        for a, b in zip(first.measurements, resumed.measurements):
            assert a.quality is not None and b.quality is not None
            assert a.quality == b.quality
            assert_measurements_identical(a, b)


class TestCheckpointIO:
    def test_atomic_write_leaves_no_tmp_file(self, tmp_path):
        path = tmp_path / "ck.npz"
        blocks = make_blocks(1)
        result = BatchRunner(BatchConfig()).run(blocks, SCHEDULE, seed=0)
        save_batch_checkpoint(
            path,
            {0: result.results[0]},
            SCHEDULE,
            meta={"seed": 0, "n_blocks": 1},
        )
        assert path.exists()
        assert not (tmp_path / "ck.npz.tmp").exists()
        entries, schedule, meta = load_batch_checkpoint(path)
        assert meta == {"seed": 0, "n_blocks": 1}
        assert schedule == SCHEDULE
        assert_measurements_identical(entries[0], result.results[0])

    def test_corrupt_checkpoint_rejected_with_clear_error(self, tmp_path):
        path = tmp_path / "batch.npz"
        path.write_bytes(b"not an npz file at all")
        config = BatchConfig(checkpoint_path=path)
        with pytest.raises(ValueError, match="corrupt or unreadable"):
            BatchRunner(config).run(make_blocks(1), SCHEDULE, seed=0)

"""End-to-end tests for the sharded service core (repro.serve.runner).

The acceptance property is **query-during-ingest parity**: every
verdict the service serves — including after a shard is hard-killed
mid-stream, respawned, and recovered from its journal — must be
bit-identical to the offline batch oracle
(:func:`repro.stream.engine.batch_window_report`) over the same raw
observations.  The service layer (routing, journaling, respawn,
drain) must be verdict-invisible.
"""

import json
import time

import numpy as np
import pytest

from repro.core.retry import RetryPolicy
from repro.obs import MetricsRegistry
from repro.obs.alerts import default_service_rules
from repro.serve import ServiceConfig, ServiceRunner, ShardDownError
from repro.serve.shard import _report_to_dict
from repro.stream.engine import StreamConfig, batch_window_report
from repro.stream.journal import read_journal
from repro.stream.overload import OverloadConfig

ROUND = 3600.0  # 1-hour rounds: 24 rounds/day keeps tests to O(100) obs
DAY = 86400.0
WINDOW = 24  # tumbling one-day windows

N_BLOCKS = 8


def stream_config() -> StreamConfig:
    return StreamConfig(window_rounds=WINDOW, round_s=ROUND)


def service_config(tmp_path, **overrides) -> ServiceConfig:
    defaults = dict(
        stream=stream_config(),
        journal_dir=tmp_path / "journals",
        n_shards=2,
        seed=11,
        shard_deadline_s=10.0,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def block_series(block_id: int, n_rounds: int):
    """Per-block synthetic stream; shape and noise vary per block."""
    rng = np.random.default_rng(1000 + block_id)
    times = np.arange(n_rounds) * ROUND
    amplitude = 0.0 if block_id % 3 == 0 else 0.35
    values = (
        0.5
        + amplitude * np.sin(2.0 * np.pi * times / DAY + 0.3 * block_id)
        + 0.02 * rng.standard_normal(n_rounds)
    )
    return times, values


def interleaved(n_rounds: int, start_round: int = 0):
    """All blocks' observations in arrival (time) order."""
    out = []
    for block_id in range(N_BLOCKS):
        times, values = block_series(block_id, n_rounds + start_round)
        for r in range(start_round, start_round + n_rounds):
            out.append((block_id, float(times[r]), float(values[r])))
    out.sort(key=lambda triple: (triple[1], triple[0]))
    return out


def oracle_report(block_id: int, n_rounds: int, window_start: int) -> dict:
    times, values = block_series(block_id, n_rounds)
    report, _quality = batch_window_report(
        times, values, window_start, WINDOW, stream_config()
    )
    return _report_to_dict(report)


@pytest.fixture
def runner(tmp_path):
    instance = ServiceRunner(service_config(tmp_path))
    yield instance
    instance.stop(drain=False)


@pytest.mark.watchdog(120)
def test_ingest_then_query_matches_batch_oracle(runner):
    runner.start()
    report = runner.ingest(interleaved(2 * WINDOW))
    assert report["accepted"] == N_BLOCKS * 2 * WINDOW
    assert report["rejected"] == 0
    runner.flush()
    for block_id in range(N_BLOCKS):
        snapshot = runner.query_block(block_id)
        assert snapshot["shard_id"] == runner.owner(block_id)
        assert snapshot["n_closed"] == 2
        expected = oracle_report(block_id, 2 * WINDOW, WINDOW)
        assert snapshot["last_report"] == expected, block_id
        assert snapshot["stable_label"] is not None
    assert runner.query_block(10**9) is None  # untracked, not an error
    phase_map = runner.phase_map()
    assert not phase_map["partial"]
    for block_id, entry in phase_map["blocks"].items():
        expected = oracle_report(block_id, 2 * WINDOW, WINDOW)
        assert entry["label"] == expected["label"]
        assert entry["phase"] == expected["phase"]


@pytest.mark.watchdog(180)
def test_kill_respawn_replay_preserves_parity(runner):
    """The acceptance criterion: a mid-stream shard death is invisible.

    Kill a shard after 1.5 windows, let the supervisor respawn it and
    replay its journal, stream the remainder, and require verdicts
    bit-identical to the offline oracle over the full series.
    """
    runner.start()
    first = runner.ingest(interleaved(36))
    assert first["rejected"] == 0
    victim = runner.owner(0)
    runner.kill_shard(victim)
    assert runner.wait_healthy(timeout_s=60.0), "shard never rejoined"
    second = runner.ingest(interleaved(12, start_round=36))
    assert second["rejected"] == 0
    runner.flush()
    for block_id in range(N_BLOCKS):
        snapshot = runner.query_block(block_id)
        expected = oracle_report(block_id, 48, WINDOW)
        assert snapshot["last_report"] == expected, block_id
        assert snapshot["n_closed"] == 2
    fleet = runner.fleet_snapshot()
    assert fleet["respawns"] >= 1
    assert fleet["shards"][str(victim)]["respawns"] >= 1
    assert all(entry["healthy"] for entry in fleet["shards"].values())


@pytest.mark.watchdog(120)
def test_small_acked_batch_survives_sigkill(runner):
    """Write-ahead means OS-visible, not user-space-buffered.

    A batch far smaller than the stdio buffer must still be on disk
    once acked: kill the owner immediately after a 2-observation
    ingest and require the respawned shard to have replayed it.
    Regression for the settle()-before-ack ordering — without it this
    batch dies in the worker's buffer and the block vanishes.
    """
    runner.start()
    report = runner.ingest([(5, 0.0, 0.5), (5, ROUND, 0.6)])
    assert report["accepted"] == 2
    runner.kill_shard(runner.owner(5))
    assert runner.wait_healthy(timeout_s=60.0)
    snapshot = runner.query_block(5)
    assert snapshot is not None
    assert snapshot["n_observations"] == 2


@pytest.mark.watchdog(120)
def test_graceful_drain_flushes_queues_and_journals(tmp_path):
    config = service_config(tmp_path)
    runner = ServiceRunner(config, metrics=MetricsRegistry())
    runner.start()
    accepted = runner.ingest(interleaved(WINDOW))["accepted"]
    report = runner.stop(drain=True)
    assert report is not None
    total_journaled = 0
    for shard_id, shard_report in report["shards"].items():
        assert shard_report["drained"], shard_report
        assert shard_report["depth"] == 0  # queue pumped dry
        records, recovery = read_journal(config.journal_path(shard_id))
        assert recovery.truncated_bytes == 0  # fsynced, no torn tail
        assert recovery.reason == ""
        assert len(records) == shard_report["journal_last_seq"]
        total_journaled += len(records)
    assert total_journaled == accepted
    manifest = json.loads(
        (config.journal_path(0).parent / "service-manifest.json").read_text()
    )
    assert manifest["kind"] == "service"
    assert manifest["extra"]["n_shards"] == config.n_shards


@pytest.mark.watchdog(120)
def test_restart_recovers_state_from_journals(tmp_path):
    """A full service restart replays every shard's journal."""
    config = service_config(tmp_path)
    first = ServiceRunner(config)
    first.start()
    first.ingest(interleaved(2 * WINDOW))
    first.stop(drain=True)

    second = ServiceRunner(service_config(tmp_path))
    try:
        ready = second.start()
        assert sum(info["n_replayed"] for info in ready.values()) == (
            N_BLOCKS * 2 * WINDOW
        )
        second.flush()
        for block_id in range(N_BLOCKS):
            snapshot = second.query_block(block_id)
            expected = oracle_report(block_id, 2 * WINDOW, WINDOW)
            assert snapshot["last_report"] == expected, block_id
    finally:
        second.stop(drain=False)


@pytest.mark.watchdog(120)
def test_backpressure_rejects_then_releases(tmp_path):
    config = service_config(
        tmp_path,
        n_shards=1,
        overload=OverloadConfig(
            capacity=64, high_watermark=0.5, low_watermark=0.25
        ),
        pump_budget=1,  # queue drains slowly: backpressure is observable
    )
    runner = ServiceRunner(config, metrics=MetricsRegistry())
    try:
        runner.start()
        burst = [(7, r * ROUND, 0.5) for r in range(60)]
        first = runner.ingest(burst)
        assert first["accepted"] == 60
        assert first["shards"][0]["paused"]  # queue past high watermark
        second = runner.ingest([(7, 61 * ROUND, 0.5)])
        assert second["accepted"] == 0
        assert second["rejected"] == 1
        assert second["backpressure"]
        assert second["shards"][0]["reason"] == "backpressure"
        runner.flush()  # drains the admission queue fully
        third = runner.ingest([(7, 61 * ROUND, 0.5)])
        assert third["accepted"] == 1
        assert not third["backpressure"]
        text = runner.metrics_text()
        assert "service_ingest_rejected_total" in text
    finally:
        runner.stop(drain=False)


@pytest.mark.watchdog(120)
def test_down_shard_rejects_queries_and_ingest(tmp_path):
    """While the owner is out of the ring: 503 semantics, no silence."""
    config = service_config(
        tmp_path,
        n_shards=2,
        # Park the respawn far in the future so "down" is observable.
        respawn_backoff=RetryPolicy(base_delay_s=120.0),
    )
    runner = ServiceRunner(config)
    try:
        runner.start()
        runner.ingest(interleaved(WINDOW))
        victim = runner.owner(0)
        runner.kill_shard(victim)
        assert not runner.healthy
        with pytest.raises(ShardDownError):
            runner.query_block(0)
        report = runner.ingest([(0, 100 * ROUND, 0.5)])
        assert report["down"] and report["rejected"] == 1
        phase_map = runner.phase_map()
        assert phase_map["partial"]
        assert victim in phase_map["missing_shards"]
        fleet = runner.fleet_snapshot()
        assert not fleet["shards"][str(victim)]["healthy"]
    finally:
        runner.stop(drain=False)


@pytest.mark.watchdog(120)
def test_respawn_metrics_and_alert_rules(tmp_path):
    runner = ServiceRunner(
        service_config(tmp_path),
        metrics=MetricsRegistry(),
        alert_rules=default_service_rules(max_respawns=0.5),
    )
    try:
        runner.start()
        runner.ingest(interleaved(WINDOW))
        runner.kill_shard(runner.owner(0))
        assert runner.wait_healthy(timeout_s=60.0)
        deadline = time.monotonic() + 30.0
        fired = []
        while time.monotonic() < deadline and not fired:
            fired = runner.alerts.firing()
            time.sleep(0.05)
        assert "service-respawn-storm" in fired
        text = runner.metrics_text()
        assert "service_shard_respawns_total" in text
        assert "service_ingest_observations_total" in text
    finally:
        runner.stop(drain=False)


def test_placement_is_deterministic_across_instances(tmp_path):
    a = ServiceRunner(service_config(tmp_path, n_shards=4))
    b = ServiceRunner(service_config(tmp_path, n_shards=4))
    keys = range(512)
    assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]
    spread = set(a.owner(k) for k in keys)
    assert spread == set(range(4))


def test_config_validation(tmp_path):
    with pytest.raises(ValueError):
        service_config(tmp_path, n_shards=0)
    with pytest.raises(ValueError):
        service_config(tmp_path, max_batch=0)
    with pytest.raises(ValueError):
        service_config(tmp_path, shard_deadline_s=0.0)

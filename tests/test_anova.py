"""Tests for the linear-model ANOVA (paper section 2.4, Table 5 machinery)."""

import numpy as np
import pytest

from repro.stats.anova import anova_lm, pairwise_anova


def make_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    gdp = rng.uniform(1, 50, n)
    elec = rng.uniform(0.1, 15, n)
    noise = rng.normal(0, 1.0, n)
    return gdp, elec, noise


class TestAnovaLm:
    def test_strong_single_factor_significant(self):
        gdp, elec, noise = make_data()
        y = -0.05 * gdp + 0.1 * noise
        table = anova_lm(y, {"gdp": gdp}, ["gdp"])
        assert table.p_of("gdp") < 1e-10

    def test_unrelated_factor_not_significant(self):
        gdp, elec, noise = make_data(seed=1)
        y = noise
        table = anova_lm(y, {"gdp": gdp}, ["gdp"])
        assert table.p_of("gdp") > 0.01

    def test_interaction_detected(self):
        gdp, elec, noise = make_data(seed=2)
        y = 0.02 * gdp * elec + 0.5 * noise
        table = anova_lm(
            y, {"gdp": gdp, "elec": elec}, ["gdp", "elec", "gdp:elec"]
        )
        assert table.p_of("gdp:elec") < 1e-6

    def test_sequential_ss_sum_to_total(self):
        gdp, elec, noise = make_data(seed=3)
        y = 0.1 * gdp - 0.2 * elec + noise
        table = anova_lm(y, {"gdp": gdp, "elec": elec}, ["gdp", "elec"])
        total_ss = float(((y - y.mean()) ** 2).sum())
        explained = sum(row.sum_sq for row in table.rows)
        assert explained + table.residual_ss == pytest.approx(total_ss)

    def test_term_order_changes_type1_ss(self):
        """Type I SS is sequential: correlated factors split differently."""
        rng = np.random.default_rng(4)
        a = rng.normal(0, 1, 300)
        b = a + rng.normal(0, 0.3, 300)  # strongly correlated with a
        y = a + rng.normal(0, 0.5, 300)
        ab = anova_lm(y, {"a": a, "b": b}, ["a", "b"])
        ba = anova_lm(y, {"a": a, "b": b}, ["b", "a"])
        ss_a_first = next(r.sum_sq for r in ab.rows if r.term == "a")
        ss_a_second = next(r.sum_sq for r in ba.rows if r.term == "a")
        assert ss_a_first > ss_a_second

    def test_categorical_factor(self):
        rng = np.random.default_rng(5)
        region = np.array(["asia", "europe", "america"] * 60)
        effect = {"asia": 0.4, "europe": 0.1, "america": 0.0}
        y = np.array([effect[r] for r in region]) + rng.normal(0, 0.1, 180)
        table = anova_lm(y, {"region": region}, ["region"])
        row = table.rows[0]
        assert row.df == 2  # three levels, treatment coding
        assert row.p_value < 1e-10

    def test_categorical_single_level_contributes_nothing(self):
        rng = np.random.default_rng(6)
        region = np.array(["asia"] * 30)
        y = rng.normal(0, 1, 30)
        table = anova_lm(y, {"region": region}, ["region"])
        assert table.rows[0].df == 0
        assert table.rows[0].p_value == 1.0

    def test_unknown_factor_rejected(self):
        with pytest.raises(KeyError):
            anova_lm(np.zeros(10), {"a": np.arange(10)}, ["b"])

    def test_wrong_length_factor_rejected(self):
        with pytest.raises(ValueError):
            anova_lm(np.zeros(10), {"a": np.arange(9)}, ["a"])

    def test_empty_terms_rejected(self):
        with pytest.raises(ValueError):
            anova_lm(np.zeros(10), {"a": np.arange(10)}, [])

    def test_saturated_model_rejected(self):
        with pytest.raises(ValueError):
            anova_lm(
                np.array([1.0, 2.0, 3.0]),
                {"a": np.array([1.0, 2.0, 4.0]), "b": np.array([2.0, 1.0, 5.0])},
                ["a", "b"],
            )

    def test_table_formatting(self):
        gdp, _, noise = make_data(seed=7)
        table = anova_lm(noise + 0.1 * gdp, {"gdp": gdp}, ["gdp"])
        text = str(table)
        assert "gdp" in text and "residuals" in text

    def test_matches_scipy_f_oneway_for_groups(self):
        """One-way ANOVA on a categorical factor must agree with scipy."""
        from scipy.stats import f_oneway

        rng = np.random.default_rng(8)
        groups = [rng.normal(mu, 1.0, 40) for mu in (0.0, 0.3, 0.8)]
        y = np.concatenate(groups)
        labels = np.array(["g0"] * 40 + ["g1"] * 40 + ["g2"] * 40)
        table = anova_lm(y, {"g": labels}, ["g"])
        ref_f, ref_p = f_oneway(*groups)
        assert table.rows[0].f_value == pytest.approx(ref_f)
        assert table.rows[0].p_value == pytest.approx(ref_p, rel=1e-9)


class TestPairwiseAnova:
    def test_table5_layout(self):
        gdp, elec, noise = make_data(seed=9)
        alloc = np.random.default_rng(10).uniform(0, 20, len(gdp))
        y = -0.04 * gdp + 0.2 * noise
        table = pairwise_anova(
            y, {"gdp": gdp, "elec": elec, "alloc": alloc}
        )
        assert ("gdp", "gdp") in table
        assert ("gdp", "elec") in table
        assert ("elec", "alloc") in table
        assert ("elec", "gdp") not in table  # unordered pairs stored once
        assert table[("gdp", "gdp")] < 1e-8
        assert table[("elec", "elec")] > 0.01

    def test_interaction_only_effect(self):
        rng = np.random.default_rng(11)
        a = rng.normal(0, 1, 400)
        b = rng.normal(0, 1, 400)
        y = a * b + rng.normal(0, 0.5, 400)
        table = pairwise_anova(y, {"a": a, "b": b})
        assert table[("a", "b")] < 1e-10
        assert table[("a", "a")] > 0.001

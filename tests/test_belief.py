"""Tests for the Bayesian block-state belief."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.probing.belief import BeliefConfig, BlockBelief, BlockState


class TestConfig:
    def test_defaults_valid(self):
        BeliefConfig()

    def test_rejects_inverted_thresholds(self):
        with pytest.raises(ValueError):
            BeliefConfig(up_threshold=0.1, down_threshold=0.9)

    def test_rejects_bad_p_lie(self):
        with pytest.raises(ValueError):
            BeliefConfig(p_lie=0.0)
        with pytest.raises(ValueError):
            BeliefConfig(p_lie=0.6)

    def test_rejects_degenerate_prior(self):
        with pytest.raises(ValueError):
            BeliefConfig(prior_up=1.0)


class TestUpdates:
    def test_positive_concludes_up(self):
        b = BlockBelief()
        b.update(True, availability=0.5)
        assert b.state() is BlockState.UP

    def test_positive_recovers_from_down(self):
        b = BlockBelief()
        for _ in range(30):
            b.update(False, availability=0.9)
        assert b.state() is BlockState.DOWN
        b.update(True, availability=0.9)
        assert b.state() is BlockState.UP

    def test_negatives_conclude_down_eventually(self):
        b = BlockBelief()
        for _ in range(50):
            b.update(False, availability=0.9)
        assert b.state() is BlockState.DOWN

    def test_high_availability_negatives_stronger_evidence(self):
        """With a higher assumed availability, fewer negatives conclude down."""

        def negatives_to_down(avail):
            b = BlockBelief()
            n = 0
            while b.state() is not BlockState.DOWN:
                b.update(False, avail)
                n += 1
                assert n < 1000
            return n

        assert negatives_to_down(0.9) < negatives_to_down(0.3)

    def test_overestimated_availability_causes_false_outages(self):
        """The section 2.1.1 failure mode: Â_o > A makes negatives too damning.

        A block with true per-address availability 0.3 produces ~70%
        negatives even when up; with an (over)assumed availability of 0.9
        the belief machine concludes "down" after very few of them.
        """
        b = BlockBelief()
        for _ in range(3):
            b.update(False, availability=0.9)
        assert b.belief < 0.5  # already half-convinced of an outage

    def test_belief_stays_in_unit_interval(self):
        b = BlockBelief()
        for _ in range(1000):
            b.update(False, availability=0.99)
        assert 0.0 < b.belief < 1.0
        for _ in range(5):
            b.update(True, availability=0.01)
        assert 0.0 < b.belief < 1.0

    def test_reset_restores_prior(self):
        b = BlockBelief()
        for _ in range(20):
            b.update(False, 0.9)
        b.reset()
        assert b.belief == b.config.prior_up
        assert b.state() is BlockState.UP

    def test_is_decided(self):
        cfg = BeliefConfig(prior_up=0.5)
        b = BlockBelief(cfg)
        assert b.state() is BlockState.UNCERTAIN
        assert not b.is_decided()
        b.update(True, 0.5)
        assert b.is_decided()


@given(
    avail=st.floats(min_value=0.0, max_value=1.0),
    outcomes=st.lists(st.booleans(), min_size=1, max_size=50),
)
def test_belief_always_a_probability(avail, outcomes):
    b = BlockBelief()
    for outcome in outcomes:
        value = b.update(outcome, avail)
        assert 0.0 < value < 1.0


@given(avail=st.floats(min_value=0.1, max_value=0.9))
def test_positive_always_increases_belief_from_uncertain(avail):
    b = BlockBelief(BeliefConfig(prior_up=0.5))
    before = b.belief
    assert b.update(True, avail) > before

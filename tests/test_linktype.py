"""Tests for link-type inference from reverse DNS."""

import numpy as np

from repro.linktype import (
    ACTIVE_KEYWORDS,
    ALL_KEYWORDS,
    DISCARDED_KEYWORDS,
    RdnsStyle,
    classify_block_names,
    match_features,
    synthesize_block_names,
)


class TestKeywordSets:
    def test_sixteen_keywords(self):
        assert len(ALL_KEYWORDS) == 16

    def test_seven_discarded(self):
        assert len(DISCARDED_KEYWORDS) == 7

    def test_nine_active(self):
        assert len(ACTIVE_KEYWORDS) == 9
        assert set(ACTIVE_KEYWORDS) == {
            "sta", "dyn", "srv", "dhcp", "ppp", "dsl", "dial", "cable", "res"
        }


class TestMatchFeatures:
    def test_paper_example(self):
        """'dhcp-dialup-001.example.com' is both DHCP and dial-up."""
        features = match_features("dhcp-dialup-001.example.com")
        assert "dhcp" in features
        assert "dial" in features

    def test_case_insensitive(self):
        assert "dsl" in match_features("DSL-POOL-7.ISP.NET")

    def test_substring_semantics(self):
        assert "dyn" in match_features("dynamic-12.isp.net")
        assert "sta" in match_features("static-3.isp.net")

    def test_none_and_empty(self):
        assert match_features(None) == frozenset()
        assert match_features("") == frozenset()

    def test_no_keywords(self):
        assert match_features("host-001.example.com") == frozenset()

    def test_wireless_does_not_trigger_res(self):
        assert "res" not in match_features("wireless-001.example.com")
        assert "wireless" in match_features("wireless-001.example.com")


class TestClassifyBlock:
    def test_uniform_block_single_label(self):
        names = [f"dsl-{i:03d}.isp.net" for i in range(256)]
        result = classify_block_names(names)
        assert result.labels == frozenset({"dsl"})
        assert result.has_feature
        assert not result.multi_feature

    def test_minor_feature_suppressed(self):
        """One router name among 200 DSL names is noise (1/15 rule)."""
        names = [f"dsl-{i:03d}.isp.net" for i in range(200)]
        names.append("sta-gateway.isp.net")
        result = classify_block_names(names)
        assert result.labels == frozenset({"dsl"})
        assert result.counts["sta"] == 1

    def test_major_secondary_feature_kept(self):
        names = [f"dsl-{i:03d}.isp.net" for i in range(150)] + [
            f"cable-{i:03d}.isp.net" for i in range(100)
        ]
        result = classify_block_names(names)
        assert result.labels == frozenset({"dsl", "cable"})
        assert result.multi_feature

    def test_boundary_exactly_one_fifteenth_kept(self):
        names = [f"dyn-{i:03d}.isp.net" for i in range(150)] + [
            f"srv-{i:03d}.isp.net" for i in range(10)
        ]
        result = classify_block_names(names)
        assert "srv" in result.labels  # 10 >= 150/15

    def test_discarded_keywords_removed_from_labels(self):
        names = [f"wireless-{i:03d}.isp.net" for i in range(256)]
        result = classify_block_names(names)
        assert result.labels == frozenset()
        assert result.counts["wireless"] == 256

    def test_keep_discarded_option(self):
        names = [f"rtr-{i:03d}.isp.net" for i in range(20)]
        result = classify_block_names(names, keep_discarded=True)
        assert "rtr" in result.labels

    def test_empty_block(self):
        result = classify_block_names([None] * 256)
        assert not result.has_feature
        assert result.n_named == 0

    def test_n_named_counts_ptr_records(self):
        names = ["host-1.isp.net", None, "dsl-2.isp.net"]
        assert classify_block_names(names).n_named == 2

    def test_combined_name_counts_both(self):
        names = [f"dyn-dsl-{i:03d}.isp.net" for i in range(100)]
        result = classify_block_names(names)
        assert result.labels == frozenset({"dyn", "dsl"})


class TestRdnsSynthesis:
    def test_none_style_no_names(self):
        names = synthesize_block_names(("dsl",), RdnsStyle.NONE, np.random.default_rng(0))
        assert names == [None] * 256

    def test_descriptive_style_classifies_back(self):
        """Round-trip: synthesized names recover the intended features."""
        rng = np.random.default_rng(1)
        names = synthesize_block_names(("dyn", "dsl"), RdnsStyle.DESCRIPTIVE, rng)
        result = classify_block_names(names)
        assert result.labels == frozenset({"dyn", "dsl"})

    def test_generic_style_has_no_features(self):
        rng = np.random.default_rng(2)
        names = synthesize_block_names(("dsl",), RdnsStyle.GENERIC, rng)
        result = classify_block_names(names)
        assert not result.has_feature
        assert result.n_named > 200

    def test_ptr_coverage_respected(self):
        rng = np.random.default_rng(3)
        names = synthesize_block_names(
            ("cable",), RdnsStyle.DESCRIPTIVE, rng, ptr_coverage=0.5
        )
        named = sum(1 for n in names if n)
        assert 90 < named < 165

    def test_infrastructure_noise_suppressed(self):
        """The rtr/gw noise the synthesizer injects must not survive the
        1/15 suppression rule in a normal block."""
        rng = np.random.default_rng(4)
        names = synthesize_block_names(("ppp",), RdnsStyle.DESCRIPTIVE, rng)
        result = classify_block_names(names, keep_discarded=True)
        assert "rtr" not in result.labels or result.counts.get("rtr", 0) >= result.counts["ppp"] / 15

    def test_custom_block_size(self):
        rng = np.random.default_rng(5)
        names = synthesize_block_names(("dsl",), RdnsStyle.DESCRIPTIVE, rng, n=64)
        assert len(names) == 64

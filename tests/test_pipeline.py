"""Integration tests for the end-to-end measurement pipeline."""

import numpy as np
import pytest

from repro.core import DiurnalClass, MeasurementConfig, measure_block, measure_blocks
from repro.core.pipeline import classify_ground_truth
from repro.net import (
    Block24,
    Outage,
    make_always_on,
    make_dead,
    make_diurnal,
    merge_behaviors,
)
from repro.probing import RoundSchedule


def diurnal_block(block_id=1, n_diurnal=100, n_stable=50):
    behavior = merge_behaviors(
        make_always_on(n_stable),
        make_diurnal(n_diurnal, phase_s=8 * 3600),
        make_dead(256 - n_stable - n_diurnal),
    )
    return Block24(block_id, behavior)


def stable_block(block_id=2, n_active=42, p=0.735):
    behavior = merge_behaviors(
        make_always_on(n_active, p_response=p), make_dead(256 - n_active)
    )
    return Block24(block_id, behavior)


class TestMeasureBlock:
    def test_diurnal_block_detected_from_estimates(self):
        m = measure_block(
            diurnal_block(), RoundSchedule.for_days(14), np.random.default_rng(0)
        )
        assert m.report.label is DiurnalClass.STRICT
        assert m.true_report.label is DiurnalClass.STRICT

    def test_stable_block_not_diurnal(self):
        m = measure_block(
            stable_block(), RoundSchedule.for_days(14), np.random.default_rng(1)
        )
        assert m.report.label is DiurnalClass.NON_DIURNAL

    def test_estimate_tracks_truth(self):
        m = measure_block(
            stable_block(), RoundSchedule.for_days(14), np.random.default_rng(2)
        )
        # After warm-up, Â_s should hover near true A = 0.735.
        tail = slice(200, None)
        assert abs(m.a_short[tail].mean() - m.true_availability[tail].mean()) < 0.05

    def test_operational_underestimates(self):
        m = measure_block(
            stable_block(), RoundSchedule.for_days(14), np.random.default_rng(3)
        )
        assert m.underestimate_fraction() > 0.9

    def test_probe_budget_under_20_per_hour(self):
        m = measure_block(
            stable_block(), RoundSchedule.for_days(14), np.random.default_rng(4)
        )
        assert m.probe_rate_per_hour() < 20

    def test_sparse_block_skipped(self):
        """Trinocular's policy drops blocks with fewer than 15 active
        addresses — the cause of the paper's USC wireless false negatives."""
        block = Block24(
            9, merge_behaviors(make_always_on(10), make_dead(246))
        )
        m = measure_block(block, RoundSchedule.for_days(14), np.random.default_rng(5))
        assert m.skipped
        assert m.report is None
        assert m.total_probes == 0

    def test_min_ever_active_configurable(self):
        block = Block24(9, merge_behaviors(make_always_on(10), make_dead(246)))
        config = MeasurementConfig(min_ever_active=5)
        m = measure_block(
            block, RoundSchedule.for_days(14), np.random.default_rng(6), config
        )
        assert not m.skipped
        assert m.report is not None

    def test_outage_visible_in_states(self):
        block = stable_block()
        block.outages.append(Outage(660.0 * 957, 660.0 * 1000))
        m = measure_block(block, RoundSchedule.for_days(14), np.random.default_rng(7))
        assert (m.states[960:1000] == -1).any()

    def test_stationary_flag(self):
        m = measure_block(
            stable_block(), RoundSchedule.for_days(14), np.random.default_rng(8)
        )
        assert m.stationary

    def test_trim_applied_for_offset_start(self):
        schedule = RoundSchedule.for_days(14, start_s=5 * 3600.0)
        m = measure_block(stable_block(), schedule, np.random.default_rng(9))
        assert m.trim.start > 0

    def test_walk_seed_reproducible(self):
        schedule = RoundSchedule.for_days(3)
        a = measure_block(
            stable_block(), schedule, np.random.default_rng(10), walk_seed=42
        )
        b = measure_block(
            stable_block(), schedule, np.random.default_rng(10), walk_seed=42
        )
        assert np.array_equal(a.totals, b.totals)
        assert np.array_equal(a.a_short, b.a_short)


class TestMeasureBlocks:
    def test_batch_runs_all(self):
        blocks = [diurnal_block(1), stable_block(2)]
        results = measure_blocks(blocks, RoundSchedule.for_days(7), seed=0)
        assert len(results) == 2
        assert results[0].report.is_diurnal
        # A short 7-day window leaves the diurnal bin deep in the EWMA's
        # red-noise region, so a stable block can land "relaxed" by chance;
        # the strict test is the reliable discriminator (paper section 2.2).
        assert not results[1].report.is_strict

    def test_batch_reproducible(self):
        blocks = [stable_block(2)]
        first = measure_blocks(blocks, RoundSchedule.for_days(3), seed=5)
        second = measure_blocks(blocks, RoundSchedule.for_days(3), seed=5)
        assert np.array_equal(first[0].a_short, second[0].a_short)


class TestGroundTruthClassification:
    def test_matches_direct_series_classification(self):
        block = diurnal_block()
        schedule = RoundSchedule.for_days(14)
        oracle = block.realize(schedule.times(), np.random.default_rng(11))
        report = classify_ground_truth(oracle, schedule)
        assert report.label is DiurnalClass.STRICT

    def test_restart_artifact_creates_periodicity(self):
        """Ablation: a prober whose restarts lose estimator state puts
        energy at ~4.36 cycles/day into Â_s (paper Figure 10 artifact)."""
        from repro.core.estimator import EstimatorConfig, RestartPolicy

        schedule = RoundSchedule.for_days(14, restart_interval_s=5.5 * 3600)
        block = stable_block(3, n_active=100, p=0.3)
        config = MeasurementConfig(
            estimator=EstimatorConfig(restart=RestartPolicy(reset_short=True))
        )
        m = measure_block(block, schedule, np.random.default_rng(12), config)
        from repro.core.spectral import compute_spectrum

        spec = compute_spectrum(m.a_short[m.trim], schedule.round_s)
        cpd = np.array([spec.cycles_per_day(k) for k in range(spec.n_bins)])
        artifact = (cpd > 4.0) & (cpd < 4.8)
        background = (cpd > 2.0) & (cpd < 3.5)
        assert spec.amplitudes[artifact].max() > 2 * spec.amplitudes[background].max()


class TestSkippedBlockMeasurement:
    """Regression tests: skipped-block results must be self-consistent
    (same array-length convention as measured blocks, stationarity computed
    from the truth series rather than hardcoded)."""

    def sparse_trending_block(self):
        """Nine addresses that all depart during the window: too sparse to
        probe, and strongly non-stationary in ground truth."""
        from repro.net import make_trending

        events = np.linspace(0.2, 0.8, 9) * 3 * 86400.0
        return Block24(9, merge_behaviors(make_trending(9, events, departing=True), make_dead(247)))

    def test_skipped_arrays_match_schedule_length(self):
        schedule = RoundSchedule.for_days(14)
        block = Block24(9, merge_behaviors(make_always_on(10), make_dead(246)))
        m = measure_block(block, schedule, np.random.default_rng(5))
        assert m.skipped
        for name in m._ROUND_ARRAYS:
            assert len(getattr(m, name)) == schedule.n_rounds, name
        assert 0 <= m.trim.start <= m.trim.stop <= schedule.n_rounds

    def test_skipped_block_stationarity_computed_from_truth(self):
        schedule = RoundSchedule.for_days(3)
        m = measure_block(
            self.sparse_trending_block(), schedule, np.random.default_rng(5)
        )
        assert m.skipped
        assert not m.stationary

    def test_skipped_stable_block_is_stationary(self):
        schedule = RoundSchedule.for_days(3)
        block = Block24(9, merge_behaviors(make_always_on(10), make_dead(246)))
        m = measure_block(block, schedule, np.random.default_rng(5))
        assert m.skipped
        assert m.stationary

    def test_mismatched_array_length_rejected(self):
        import dataclasses

        schedule = RoundSchedule.for_days(3)
        m = measure_block(stable_block(), schedule, np.random.default_rng(0))
        with pytest.raises(ValueError, match="rounds"):
            dataclasses.replace(m, positives=m.positives[:-1])

    def test_out_of_bounds_trim_rejected(self):
        import dataclasses

        schedule = RoundSchedule.for_days(3)
        m = measure_block(stable_block(), schedule, np.random.default_rng(0))
        with pytest.raises(ValueError, match="trim"):
            dataclasses.replace(m, trim=slice(0, schedule.n_rounds + 1))

#!/usr/bin/env python3
"""Quickstart: measure one /24 block end to end.

Builds a simulated diurnal block (50 always-on + 100 diurnal addresses,
the controlled composition of the paper's section 3.2.2), probes it for
two weeks with the Trinocular-style adaptive prober, estimates its
availability with the paper's EWMA estimators, and classifies it with the
spectral diurnal detector.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import core, net, probing


def main() -> None:
    # A /24 with 50 always-on addresses and 100 that are up 8h/day
    # starting around 08:00, with mild day-to-day noise.
    behavior = net.merge_behaviors(
        net.make_always_on(50, p_response=0.92),
        net.make_diurnal(
            100,
            phase_s=8 * 3600.0,
            uptime_s=8 * 3600.0,
            sigma_start_s=1800.0,
        ),
        net.make_dead(106),
    )
    block = net.Block24(net.parse_block("27.186.9/24"), behavior)

    # Two weeks of 11-minute rounds, like survey S51W.
    schedule = probing.RoundSchedule.for_days(14)
    result = core.measure_block(block, schedule, np.random.default_rng(0))

    report = result.report
    print(f"block:               {block}")
    print(f"ever-active |E(b)|:  {result.n_ever_active}")
    print(f"true mean A:         {result.mean_true_availability:.3f}")
    print(f"probes per round:    {result.mean_probes_per_round():.2f}")
    print(f"probes per hour:     {result.probe_rate_per_hour():.1f}  (paper bound: <20)")
    print(f"operational <= A:    {result.underestimate_fraction():.1%} of rounds")
    print()
    print(f"classification:      {report.label.value}")
    print(f"diurnal bin k:       {report.diurnal_k} "
          f"(~{report.dominant_cycles_per_day:.2f} cycles/day)")
    print(f"diurnal amplitude:   {report.diurnal_amplitude:.1f}")
    print(f"next competitor:     {report.strongest_other:.1f} "
          f"(strict requires 2x dominance)")
    print(f"FFT phase:           {report.phase:+.2f} rad "
          f"(when the block wakes, relative to midnight UTC)")

    # The same series, via the lower-level API.
    spectrum = core.compute_spectrum(
        result.a_short[result.trim], schedule.round_s
    )
    k = core.diurnal_bin(spectrum.n_samples, schedule.round_s)
    print(f"\nA_s spectrum peak at k={spectrum.dominant_bin()} "
          f"(diurnal bin is k={k})")


if __name__ == "__main__":
    main()

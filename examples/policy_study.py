#!/usr/bin/env python3
"""Policy study: who is reaching always-on networking? (paper section 5.6)

The paper's motivating application: use diurnal fractions to judge how
countries and access technologies progress toward always-on networking.
This example measures a synthetic Internet, then answers three policy
questions the way the paper suggests:

1. Which countries' networks sleep, and how does that track GDP?
2. Are newer access technologies (cable) more always-on than older ones
   (dial-up, DSL)?
3. Does an individual organization look different from its country?

Run:  python examples/policy_study.py
"""

import numpy as np

from repro.analysis import (
    GlobalStudy,
    run_country_table,
    run_gdp_scatter,
    run_linktype_study,
)
from repro.asn import OrgMapper


def main() -> None:
    print("generating and measuring a 10k-block Internet (about a minute)…")
    study = GlobalStudy.run(n_blocks=10000, seed=3, days=14.0)
    m = study.measurement
    print(f"strictly diurnal: {m.fraction_strict():.1%} (paper: 11%); "
          f"strict or relaxed: {m.fraction_diurnal():.1%} (paper: 25%)\n")

    # 1. Countries.
    table = run_country_table(study=study, min_blocks=60)
    print("where the Internet sleeps (top countries by diurnal fraction):")
    print(table.format_table(10))
    scatter = run_gdp_scatter(table=table)
    print(f"\nGDP correlation: {scatter.correlation():+.3f} "
          f"(paper: -0.526 — national wealth buys always-on networks)\n")

    # 2. Technologies.
    links = run_linktype_study(study=study, max_classified=4000)
    print("always-on progress by access/addressing keyword:")
    print(links.format_table())

    # 3. One organization vs its country.
    mapper = OrgMapper(study.world.as_records)
    table_asn = study.world.build_ipasn()
    blocks = mapper.blocks_of_org("china telecom", table_asn)
    if len(blocks):
        idx = np.isin(study.world.block_id, blocks)
        org_frac = float(m.strict_mask[idx].mean())
        cn_frac = table.row_of("CN").fraction_diurnal
        print(f"\n'China Telecom' cluster: {idx.sum()} blocks, "
              f"{org_frac:.1%} diurnal (country-wide: {cn_frac:.1%})")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Phase-based geolocation: the paper's Figure 14c as an application.

Diurnal blocks wake with the local morning, so the FFT phase of the
1-cycle/day component encodes longitude.  The paper observes that "phase
may help geolocate diurnal blocks": most phases predict longitude within
±20 degrees.  This example fits the phase→longitude predictor on blocks
the geolocation database *can* resolve, then applies it to diurnal blocks
the database misses, and scores the predictions against the simulation's
hidden truth.

Run:  python examples/phase_geolocation.py
"""

import numpy as np

from repro.analysis import GlobalStudy, run_phase_longitude


def main() -> None:
    print("generating and measuring a 10k-block Internet…")
    study = GlobalStudy.run(n_blocks=10000, seed=4)
    world, m = study.world, study.measurement

    # Fit the predictor on geolocatable relaxed-diurnal blocks (Fig 14c
    # uses the relaxed population for coverage).
    fit = run_phase_longitude(study=study, population="relaxed")
    centers, mean_lon, std_lon = fit.predictor()
    print(f"fitted on {fit.n_blocks} geolocated diurnal blocks; "
          f"corr(phase, longitude) = {fit.correlation():.3f} (paper: 0.763)")

    # Blocks the database cannot resolve, but which are diurnal.
    _, _, located = study.located()
    candidates = np.flatnonzero(m.diurnal_mask & ~located)
    print(f"unlocatable diurnal blocks to place: {len(candidates)}")

    errors = []
    for i in candidates:
        b = int(np.argmin(np.abs(
            np.angle(np.exp(1j * (centers - m.phases[i])))
        )))
        if np.isnan(mean_lon[b]):
            continue
        predicted = mean_lon[b]
        true_lon = world.lon[i]
        err = abs(np.degrees(np.angle(np.exp(1j * np.radians(predicted - true_lon)))))
        errors.append(err)

    errors = np.array(errors)
    print(f"\nplaced {len(errors)} blocks by phase alone:")
    print(f"  median longitude error: {np.median(errors):6.1f}°")
    print(f"  within ±20°:            {np.mean(errors <= 20):6.1%} "
          f"(paper: most phases predict within ±20°)")
    print(f"  within ±45°:            {np.mean(errors <= 45):6.1%}")
    print("\nper-phase predictor quality (Fig 14c):")
    print(f"{'phase (rad)':>12}{'mean lon':>10}{'±σ (deg)':>10}")
    for c, lon, sd in zip(centers[::4], mean_lon[::4], std_lon[::4]):
        if np.isnan(lon):
            continue
        print(f"{c:>12.2f}{lon:>10.1f}{sd:>10.1f}")


if __name__ == "__main__":
    main()

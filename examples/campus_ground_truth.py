#!/usr/bin/env python3
"""Campus ground-truth study: the paper's section 3.2.4, recreated.

Builds a USC-like campus — 142 heavily overprovisioned wireless blocks,
32 dynamic-pool blocks, general-use blocks (a quarter hiding 16-address
dynamic pockets), and server blocks — measures every block with the full
adaptive pipeline, and compares detections against the operator's truth.

The run reproduces the paper's findings:

* wireless blocks are *truly* diurnal but average ~10 live addresses, so
  Trinocular's 15-address do-no-harm floor skips them — false negatives
  caused by policy, not by the detector;
* dynamic pockets make otherwise general-use blocks diurnal;
* detected diurnal blocks are essentially never false positives.

Run:  python examples/campus_ground_truth.py   (takes a minute or two)
"""

import numpy as np

from repro.core import measure_block
from repro.linktype import classify_block_names
from repro.probing import RoundSchedule
from repro.simulation import build_campus


def main() -> None:
    campus = build_campus(seed=7)
    schedule = RoundSchedule.for_days(14)
    children = np.random.SeedSequence(1234).spawn(len(campus))

    stats = {}
    false_positives = 0
    detected_blocks = []
    for cb, child in zip(campus, children):
        rng = np.random.default_rng(child)
        result = measure_block(cb.block, schedule, rng)
        entry = stats.setdefault(
            cb.usage, {"total": 0, "skipped": 0, "detected": 0, "truly": 0}
        )
        entry["total"] += 1
        entry["truly"] += cb.truly_diurnal
        if result.skipped:
            entry["skipped"] += 1
            continue
        detected = result.report.is_diurnal
        if detected:
            entry["detected"] += 1
            detected_blocks.append((cb, result))
            if not cb.truly_diurnal:
                false_positives += 1

    print(f"{'usage':<10}{'blocks':>7}{'truly diurnal':>15}"
          f"{'skipped (<15)':>15}{'detected':>10}")
    for usage in ("wireless", "dynamic", "general", "server"):
        e = stats[usage]
        print(f"{usage:<10}{e['total']:>7}{e['truly']:>15}"
              f"{e['skipped']:>15}{e['detected']:>10}")

    wireless = stats["wireless"]
    print(f"\nwireless blocks skipped by the 15-address probing floor: "
          f"{wireless['skipped']}/{wireless['total']} "
          f"(the paper's USC false negatives: 119/142)")
    print(f"false positives among detections: {false_positives} "
          f"(paper: at most 3% for USC)")

    # The paper confirms detections against reverse DNS; do the same for
    # a few detected blocks.
    print("\nreverse-DNS check of detected blocks:")
    for cb, result in detected_blocks[:6]:
        labels = classify_block_names(cb.rdns_names, keep_discarded=True).labels
        print(f"  {cb.block} usage={cb.usage:<9} "
              f"labels={sorted(labels)} label={result.report.label.value}")


if __name__ == "__main__":
    main()

"""Linear-model ANOVA with sequential (Type I) sums of squares.

This mirrors what the paper gets from R's ``aov``: each term of a linear
model is added in order, the reduction in residual sum of squares it buys is
its sum of squares, and its F statistic compares that (per degree of
freedom) against the full model's residual mean square.

Terms are named by the factors they involve: ``"gdp"`` is a main effect,
``"gdp:elec"`` the interaction (elementwise product for continuous factors,
product of dummy columns for categorical ones).  Categorical factors are
passed as string/object arrays and expanded to treatment-coded dummies.

:func:`pairwise_anova` reproduces the paper's Table 5 layout directly: the
diagonal holds each factor's single-factor p-value, the off-diagonal the
p-value of the pairwise interaction term fitted after both main effects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

__all__ = ["AnovaRow", "AnovaTable", "anova_lm", "pairwise_anova"]


@dataclass(frozen=True)
class AnovaRow:
    """One line of an ANOVA table."""

    term: str
    df: int
    sum_sq: float
    mean_sq: float
    f_value: float
    p_value: float


@dataclass
class AnovaTable:
    """A complete ANOVA decomposition."""

    rows: list[AnovaRow]
    residual_df: int
    residual_ss: float

    @property
    def residual_mean_sq(self) -> float:
        return self.residual_ss / self.residual_df if self.residual_df else float("nan")

    def p_of(self, term: str) -> float:
        for row in self.rows:
            if row.term == term:
                return row.p_value
        raise KeyError(f"no term {term!r} in ANOVA table")

    def significant_terms(self, alpha: float = 0.05) -> list[str]:
        return [row.term for row in self.rows if row.p_value < alpha]

    def __str__(self) -> str:
        lines = [
            f"{'term':<24}{'df':>4}{'sum sq':>12}{'mean sq':>12}"
            f"{'F':>10}{'p':>12}"
        ]
        for row in self.rows:
            lines.append(
                f"{row.term:<24}{row.df:>4}{row.sum_sq:>12.4g}"
                f"{row.mean_sq:>12.4g}{row.f_value:>10.3f}{row.p_value:>12.3g}"
            )
        lines.append(
            f"{'residuals':<24}{self.residual_df:>4}{self.residual_ss:>12.4g}"
            f"{self.residual_mean_sq:>12.4g}"
        )
        return "\n".join(lines)


def _dummy_columns(values: np.ndarray) -> np.ndarray:
    """Treatment-coded dummy matrix for a categorical factor (drop first level)."""
    levels = sorted(set(values.tolist()))
    if len(levels) < 2:
        return np.zeros((len(values), 0))
    columns = [
        (values == level).astype(np.float64) for level in levels[1:]
    ]
    return np.column_stack(columns)


def _factor_columns(name: str, values: np.ndarray) -> np.ndarray:
    """Design columns for one factor: 1 column if numeric, dummies if not."""
    values = np.asarray(values)
    if values.dtype.kind in "fiub":
        col = values.astype(np.float64)
        return col.reshape(-1, 1)
    return _dummy_columns(values)


def _term_columns(term: str, factors: dict[str, np.ndarray]) -> np.ndarray:
    """Design columns for a (possibly interaction) term like "gdp:elec"."""
    parts = term.split(":")
    blocks = []
    for part in parts:
        if part not in factors:
            raise KeyError(f"unknown factor {part!r} in term {term!r}")
        blocks.append(_factor_columns(part, np.asarray(factors[part])))
    columns = blocks[0]
    for block in blocks[1:]:
        # All pairwise column products (Kronecker-style interaction).
        columns = np.einsum("ij,ik->ijk", columns, block).reshape(
            len(columns), -1
        )
    return columns


def _rss(design: np.ndarray, y: np.ndarray) -> tuple[float, int]:
    """Residual sum of squares and model rank for an OLS fit."""
    coef, _, rank, _ = np.linalg.lstsq(design, y, rcond=None)
    residuals = y - design @ coef
    return float(np.dot(residuals, residuals)), int(rank)


def anova_lm(
    y: np.ndarray, factors: dict[str, np.ndarray], terms: list[str]
) -> AnovaTable:
    """Sequential ANOVA of ``y`` against the listed model terms.

    Terms enter the model in the given order (Type I sums of squares, as in
    R's ``aov``); each row's F-test uses the residual mean square of the
    *full* model.
    """
    y = np.asarray(y, dtype=np.float64).ravel()
    n = len(y)
    if n < 3:
        raise ValueError("ANOVA needs at least 3 observations")
    for name, values in factors.items():
        if len(np.asarray(values)) != n:
            raise ValueError(f"factor {name!r} has wrong length")
    if not terms:
        raise ValueError("no model terms given")

    design = np.ones((n, 1))
    rss_prev, rank_prev = _rss(design, y)
    steps = []
    for term in terms:
        columns = _term_columns(term, factors)
        design = np.column_stack([design, columns])
        rss_now, rank_now = _rss(design, y)
        df = rank_now - rank_prev
        steps.append((term, df, rss_prev - rss_now))
        rss_prev, rank_prev = rss_now, rank_now

    residual_df = n - rank_prev
    if residual_df <= 0:
        raise ValueError("model is saturated; no residual degrees of freedom")
    residual_ms = rss_prev / residual_df

    rows = []
    for term, df, ss in steps:
        if df <= 0:
            rows.append(AnovaRow(term, 0, 0.0, float("nan"), float("nan"), 1.0))
            continue
        ms = ss / df
        f_value = ms / residual_ms if residual_ms > 0 else float("inf")
        p_value = float(sps.f.sf(f_value, df, residual_df))
        rows.append(AnovaRow(term, df, ss, ms, f_value, p_value))
    return AnovaTable(rows=rows, residual_df=residual_df, residual_ss=rss_prev)


def pairwise_anova(
    y: np.ndarray, factors: dict[str, np.ndarray]
) -> dict[tuple[str, str], float]:
    """The paper's Table 5: p-values for single factors and pairwise combos.

    Returns a mapping from (factor_i, factor_j) to a p-value.  Diagonal
    entries (i == i) are the single-factor model p-values; off-diagonal
    entries are the p-value of the interaction term ``i:j`` fitted after
    both main effects.  The mapping contains each unordered pair once, with
    names in the order given in ``factors``.
    """
    names = list(factors)
    table: dict[tuple[str, str], float] = {}
    for i, a in enumerate(names):
        table[(a, a)] = anova_lm(y, factors, [a]).p_of(a)
        for b in names[i + 1:]:
            model = anova_lm(y, factors, [a, b, f"{a}:{b}"])
            table[(a, b)] = model.p_of(f"{a}:{b}")
    return table

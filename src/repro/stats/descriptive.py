"""Descriptive statistics used throughout the analysis layer."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["binned_quartiles", "density_grid", "pearson", "unroll_phase"]


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient of two equal-length samples.

    NaN pairs are dropped.  Degenerate inputs (fewer than two valid pairs,
    or zero variance) return 0.0 rather than raising, since sweeps routinely
    produce empty cells.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    valid = ~(np.isnan(x) | np.isnan(y))
    x, y = x[valid], y[valid]
    if len(x) < 2:
        return 0.0
    xc = x - x.mean()
    yc = y - y.mean()
    denom = np.sqrt(np.dot(xc, xc) * np.dot(yc, yc))
    if denom == 0.0:
        return 0.0
    return float(np.dot(xc, yc) / denom)


@dataclass
class BinnedQuartiles:
    """Quartiles of ``y`` within equal-width bins of ``x`` (Figure 4/5 boxes)."""

    bin_edges: np.ndarray
    bin_centers: np.ndarray
    counts: np.ndarray
    q1: np.ndarray
    median: np.ndarray
    q3: np.ndarray


def binned_quartiles(
    x: np.ndarray, y: np.ndarray, bin_width: float = 0.1,
    lo: float = 0.0, hi: float = 1.0,
) -> BinnedQuartiles:
    """Quartiles of ``y`` grouped by ``bin_width``-wide bins of ``x``.

    Empty bins report NaN quartiles and zero counts.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    n_bins = int(round((hi - lo) / bin_width))
    edges = lo + np.arange(n_bins + 1) * bin_width
    centers = (edges[:-1] + edges[1:]) / 2
    idx = np.clip(((x - lo) / bin_width).astype(np.int64), 0, n_bins - 1)
    counts = np.zeros(n_bins, dtype=np.int64)
    q1 = np.full(n_bins, np.nan)
    med = np.full(n_bins, np.nan)
    q3 = np.full(n_bins, np.nan)
    for b in range(n_bins):
        members = y[idx == b]
        counts[b] = len(members)
        if len(members):
            q1[b], med[b], q3[b] = np.percentile(members, [25, 50, 75])
    return BinnedQuartiles(
        bin_edges=edges, bin_centers=centers, counts=counts, q1=q1, median=med, q3=q3
    )


def density_grid(
    x: np.ndarray,
    y: np.ndarray,
    n_bins: int = 100,
    x_range: tuple[float, float] = (0.0, 1.0),
    y_range: tuple[float, float] = (0.0, 1.0),
    normalize: bool = True,
) -> np.ndarray:
    """2-D density histogram, as drawn in the paper's Figures 4, 5 and 14.

    When ``normalize`` is set, counts are divided by the total number of
    points — the paper normalizes by (number of blocks × rounds).
    """
    hist, _, _ = np.histogram2d(
        np.asarray(x, dtype=np.float64).ravel(),
        np.asarray(y, dtype=np.float64).ravel(),
        bins=n_bins,
        range=[list(x_range), list(y_range)],
    )
    if normalize and hist.sum() > 0:
        hist = hist / hist.sum()
    return hist


def unroll_phase(phase: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Unwrap circular ``phase`` (radians) around a per-point ``reference``.

    Both phase and longitude wrap around the circle; the paper "unrolls"
    phase into the window ``[reference - pi, reference + pi)`` so a linear
    correlation against longitude (also in radians) makes sense.
    """
    phase = np.asarray(phase, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    return reference + np.angle(np.exp(1j * (phase - reference)))

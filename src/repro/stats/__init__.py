"""Statistics substrate: descriptive tools, OLS regression, and ANOVA.

The paper leans on three statistical instruments: Pearson correlation (for
the Figure 4/14 validations), linear regression (Figures 15/16), and R's
``aov`` for the Table 5 factor analysis.  All three are implemented here
from first principles; only the F-distribution tail probability is taken
from scipy.
"""

from repro.stats.descriptive import (
    binned_quartiles,
    density_grid,
    pearson,
    unroll_phase,
)
from repro.stats.regression import LinearFit, fit_line
from repro.stats.anova import AnovaRow, AnovaTable, anova_lm, pairwise_anova

__all__ = [
    "AnovaRow",
    "AnovaTable",
    "LinearFit",
    "anova_lm",
    "binned_quartiles",
    "density_grid",
    "fit_line",
    "pairwise_anova",
    "pearson",
    "unroll_phase",
]

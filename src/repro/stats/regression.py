"""Ordinary least squares line fitting (Figures 15 and 16)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

__all__ = ["LinearFit", "fit_line"]


@dataclass(frozen=True)
class LinearFit:
    """A fitted line ``y = slope * x + intercept`` with fit quality.

    Attributes:
        slope, intercept: OLS coefficients.
        r: Pearson correlation coefficient of x and y.
        p_value: two-sided p-value for the null hypothesis slope == 0.
        stderr: standard error of the slope.
        n: number of points used.
    """

    slope: float
    intercept: float
    r: float
    p_value: float
    stderr: float
    n: int

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.slope * np.asarray(x, dtype=np.float64) + self.intercept


def fit_line(x: np.ndarray, y: np.ndarray) -> LinearFit:
    """OLS fit of y on x, dropping NaN pairs.

    Raises ValueError with fewer than three valid points (no residual
    degrees of freedom for the significance test).
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    valid = ~(np.isnan(x) | np.isnan(y))
    x, y = x[valid], y[valid]
    n = len(x)
    if n < 3:
        raise ValueError(f"need at least 3 points to fit a line, got {n}")
    xc = x - x.mean()
    yc = y - y.mean()
    sxx = float(np.dot(xc, xc))
    if sxx == 0.0:
        raise ValueError("x has zero variance; line is undefined")
    slope = float(np.dot(xc, yc) / sxx)
    intercept = float(y.mean() - slope * x.mean())
    syy = float(np.dot(yc, yc))
    r = 0.0 if syy == 0.0 else slope * np.sqrt(sxx / syy)
    residuals = y - (slope * x + intercept)
    rss = float(np.dot(residuals, residuals))
    df = n - 2
    stderr = np.sqrt(rss / df / sxx) if df > 0 else float("nan")
    if stderr > 0 and df > 0:
        t_stat = slope / stderr
        p_value = float(2 * sps.t.sf(abs(t_stat), df))
    else:
        p_value = 0.0 if slope != 0 else 1.0
    return LinearFit(
        slope=slope, intercept=intercept, r=float(r),
        p_value=p_value, stderr=float(stderr), n=n,
    )

"""Exhaustive surveys: the ground-truth side of the methodology.

The paper's Internet surveys (S_51w and friends) probe *every* address of
about 2% of /24 blocks every 11 minutes for two weeks.  With complete data,
block availability needs no estimation: ``A`` is simply the responsive
fraction of the ever-active set each round.  Surveys therefore provide the
ground truth against which the Trinocular-based estimates are validated
(sections 3.1–3.2), at a probing cost ~256x the adaptive prober's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.blocks import ResponseOracle
from repro.probing.rounds import RoundSchedule

__all__ = ["SurveyResult", "run_survey"]


@dataclass
class SurveyResult:
    """Complete per-round observation of one block.

    Attributes:
        block_id: the surveyed /24.
        availability: ground-truth A per round (responsive fraction of E(b)).
        positives: positive responses per round over the whole block.
        totals: probes per round (always the full block size).
        responses: the raw (n_addresses, n_rounds) outcome matrix.
        ever_active: host indices of E(b).
    """

    block_id: int
    availability: np.ndarray
    positives: np.ndarray
    totals: np.ndarray
    responses: np.ndarray
    ever_active: np.ndarray

    @property
    def n_rounds(self) -> int:
        return len(self.availability)

    @property
    def n_ever_active(self) -> int:
        return len(self.ever_active)

    @property
    def mean_availability(self) -> float:
        return float(self.availability.mean()) if self.n_rounds else 0.0

    @property
    def total_probes(self) -> int:
        return int(self.totals.sum())


def run_survey(oracle: ResponseOracle, schedule: RoundSchedule) -> SurveyResult:
    """Probe every address of the block in every round.

    Unlike the adaptive prober this sends ``n_addresses`` probes per round
    regardless of outcome; the result's ``availability`` series is the black
    ground-truth line of the paper's Figures 1–3.
    """
    if schedule.n_rounds != oracle.n_rounds:
        raise ValueError(
            f"schedule has {schedule.n_rounds} rounds, oracle has {oracle.n_rounds}"
        )
    n_addresses = oracle.responses.shape[0]
    positives = oracle.responses.sum(axis=0).astype(np.int32)
    totals = np.full(oracle.n_rounds, n_addresses, dtype=np.int32)
    return SurveyResult(
        block_id=oracle.block_id,
        availability=oracle.true_availability(),
        positives=positives,
        totals=totals,
        responses=oracle.responses,
        ever_active=oracle.ever_active,
    )

"""Round timing: the 11-minute probing clock and prober restarts.

The paper samples every block once per 11-minute round (660 s), following
the Internet-survey methodology.  The probing software is restarted on a
fixed interval (5.5 hours in dataset A_12w), which leaves the measurable
~4.3 cycles/day artifact in Figure 10; the schedule here models both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ROUND_SECONDS", "RoundSchedule", "probes_per_hour"]

ROUND_SECONDS = 660.0

_DAY_SECONDS = 86400.0


@dataclass(frozen=True)
class RoundSchedule:
    """An evenly spaced sequence of probing rounds.

    Attributes:
        n_rounds: number of rounds in the observation.
        round_s: seconds between rounds (660 in all paper datasets).
        start_s: absolute time of round 0, in seconds since an epoch whose
            origin is midnight UTC.  A non-midnight start exercises the
            midnight-trimming step of the cleaning pipeline.
        restart_interval_s: if positive, the prober restarts every this many
            seconds (measured from ``start_s``).
    """

    n_rounds: int
    round_s: float = ROUND_SECONDS
    start_s: float = 0.0
    restart_interval_s: float = 0.0

    def __post_init__(self) -> None:
        if self.n_rounds < 0:
            raise ValueError("n_rounds must be non-negative")
        if self.round_s <= 0:
            raise ValueError("round_s must be positive")

    @classmethod
    def for_days(
        cls,
        days: float,
        round_s: float = ROUND_SECONDS,
        start_s: float = 0.0,
        restart_interval_s: float = 0.0,
    ) -> "RoundSchedule":
        """Schedule spanning ``days`` days (rounded to whole rounds)."""
        n_rounds = int(round(days * _DAY_SECONDS / round_s))
        return cls(
            n_rounds=n_rounds,
            round_s=round_s,
            start_s=start_s,
            restart_interval_s=restart_interval_s,
        )

    @property
    def duration_s(self) -> float:
        return self.n_rounds * self.round_s

    @property
    def n_days(self) -> float:
        return self.duration_s / _DAY_SECONDS

    def times(self) -> np.ndarray:
        """Absolute time of each round."""
        return self.start_s + np.arange(self.n_rounds) * self.round_s

    def restart_rounds(self) -> np.ndarray:
        """Indices of rounds at which the prober restarts.

        A restart happens at the first round at or after each multiple of
        ``restart_interval_s``; round 0 is a cold start, not a restart.
        """
        if self.restart_interval_s <= 0 or self.n_rounds == 0:
            return np.zeros(0, dtype=np.int64)
        marks = np.arange(
            self.restart_interval_s, self.duration_s, self.restart_interval_s
        )
        rounds = np.ceil(marks / self.round_s).astype(np.int64)
        rounds = rounds[rounds < self.n_rounds]
        return np.unique(rounds)

    def rounds_per_day(self) -> float:
        return _DAY_SECONDS / self.round_s


def probes_per_hour(total_probes: int, schedule: RoundSchedule) -> float:
    """Average probing rate in probes per hour for one /24.

    The paper's headline cost figure: outage detection needs fewer than 20
    probes/hour per block, under 1% of background radiation.
    """
    hours = schedule.duration_s / 3600.0
    if hours <= 0:
        return 0.0
    return total_probes / hours

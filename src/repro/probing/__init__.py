"""Trinocular-style probing substrate.

Reimplements the data-collection side of Quan et al.'s Trinocular (SIGCOMM
2013) as the paper uses it: 11-minute rounds, a pseudorandom walk over the
ever-active addresses of each /24, stop-on-first-positive adaptive probing
capped at 15 probes per round, and a Bayesian up/down belief whose update
depends on the current availability estimate — the coupling that makes the
paper's conservative operational estimate necessary.

The availability estimator itself lives in :mod:`repro.core`; the prober
receives it through a narrow callable interface so the substrate stays
independent of the contribution built on top of it.
"""

from repro.probing.rounds import (
    ROUND_SECONDS,
    RoundSchedule,
    probes_per_hour,
)
from repro.probing.belief import BlockBelief, BeliefConfig, BlockState
from repro.probing.prober import AdaptiveProber, ProbeLog, ProberConfig
from repro.probing.survey import SurveyResult, run_survey

__all__ = [
    "ROUND_SECONDS",
    "AdaptiveProber",
    "BeliefConfig",
    "BlockBelief",
    "BlockState",
    "ProbeLog",
    "ProberConfig",
    "RoundSchedule",
    "SurveyResult",
    "probes_per_hour",
    "run_survey",
]

"""Bayesian up/down belief for one /24 block (Trinocular's state model).

Trinocular maintains the probability that a block is up and updates it with
each probe outcome via Bayes' rule:

* a positive reply is (nearly) impossible from a down block, so it drives
  belief to ~1 immediately — which is why probing stops on first positive;
* a negative reply is only weak evidence, since an up block answers a random
  ever-active address with probability ``A`` (the block availability).  The
  strength of negative evidence therefore depends on the availability
  estimate — the dependency that forces the paper's operational estimate
  ``Â_o`` to avoid *over*-estimating A (section 2.1.1).

A small "lie" probability keeps the belief away from the absorbing values so
the block can always be re-concluded after transient noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["BeliefConfig", "BlockBelief", "BlockState"]


class BlockState(Enum):
    """Concluded reachability state of a block after a probing round."""

    UP = "up"
    DOWN = "down"
    UNCERTAIN = "uncertain"


@dataclass(frozen=True)
class BeliefConfig:
    """Thresholds and priors of the belief machine.

    Attributes:
        prior_up: initial P(block up) at cold start.
        up_threshold: belief above this concludes the block is up.
        down_threshold: belief below this concludes the block is down.
        p_lie: floor/ceiling clamp on the availability used in updates, so
            a single probe is never infinitely informative.
        p_false_positive: probability a *down* block still answers
            (spoofing, middleboxes).  Kept very small: a positive reply is
            near-proof the block is up, which is what lets one positive
            conclude "up" and end the round.
        belief_floor: clamp keeping the belief away from the absorbing
            states so a recovered block can be re-concluded up after a long
            outage (and vice versa).
    """

    prior_up: float = 0.9
    up_threshold: float = 0.9
    down_threshold: float = 0.1
    p_lie: float = 0.01
    p_false_positive: float = 0.001
    belief_floor: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 < self.down_threshold < self.up_threshold < 1.0:
            raise ValueError("need 0 < down_threshold < up_threshold < 1")
        if not 0.0 < self.p_lie < 0.5:
            raise ValueError("p_lie must be in (0, 0.5)")
        if not 0.0 < self.p_false_positive < 0.5:
            raise ValueError("p_false_positive must be in (0, 0.5)")
        if not 0.0 < self.prior_up < 1.0:
            raise ValueError("prior_up must be in (0, 1)")
        if not 0.0 < self.belief_floor <= self.down_threshold:
            raise ValueError("belief_floor must be in (0, down_threshold]")


class BlockBelief:
    """Evolving P(up) for one block."""

    def __init__(self, config: BeliefConfig | None = None) -> None:
        self.config = config or BeliefConfig()
        self.belief = self.config.prior_up

    def reset(self) -> None:
        """Return to the prior, as after a prober restart."""
        self.belief = self.config.prior_up

    def update(self, positive: bool, availability: float) -> float:
        """Apply one probe outcome; returns the posterior P(up).

        ``availability`` is the current operational estimate ``Â_o`` of the
        probability that a random ever-active address of an *up* block
        answers.  It is clamped away from 0 and 1 so a single probe can
        never be infinitely informative.
        """
        cfg = self.config
        a = min(max(availability, cfg.p_lie), 1.0 - cfg.p_lie)
        if positive:
            p_obs_up = a
            p_obs_down = cfg.p_false_positive
        else:
            p_obs_up = 1.0 - a
            p_obs_down = 1.0 - cfg.p_false_positive
        up = self.belief * p_obs_up
        down = (1.0 - self.belief) * p_obs_down
        posterior = up / (up + down)
        self.belief = min(max(posterior, cfg.belief_floor), 1.0 - cfg.belief_floor)
        return self.belief

    def state(self) -> BlockState:
        """Conclusion implied by the current belief."""
        if self.belief >= self.config.up_threshold:
            return BlockState.UP
        if self.belief <= self.config.down_threshold:
            return BlockState.DOWN
        return BlockState.UNCERTAIN

    def is_decided(self) -> bool:
        return self.state() is not BlockState.UNCERTAIN

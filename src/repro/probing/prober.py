"""Adaptive per-block probing: Trinocular's sampling policy.

Each round the prober walks the block's ever-active addresses in a fixed
pseudorandom order (the walk position persists across rounds, so over time
every address is sampled — the property the paper calls "ideal for analysis
of diurnal blocks").  Probing stops on the first positive response or when
the Bayesian belief concludes the block is down, with at most 15 probes per
round.  The result is the per-round ``(p, t)`` counts that the paper's
availability estimators consume — *biased toward positive responses* by
construction, which is exactly the bias the estimators must live with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.net.blocks import ResponseOracle
from repro.probing.belief import BeliefConfig, BlockBelief, BlockState
from repro.probing.rounds import RoundSchedule, probes_per_hour

__all__ = [
    "AdaptiveProber",
    "AvailabilityFeedback",
    "FixedAvailability",
    "ProbeLog",
    "ProberConfig",
]

_STATE_CODE = {BlockState.DOWN: -1, BlockState.UNCERTAIN: 0, BlockState.UP: 1}


class AvailabilityFeedback(Protocol):
    """What the prober needs from an availability estimator.

    The coupling matches section 2.1.1: belief updates use the *operational*
    availability, and each round's raw counts feed back into the estimator.
    """

    def current(self) -> float:
        """Operational availability estimate Â_o used in belief updates."""
        ...

    def observe(self, positives: int, total: int) -> None:
        """Record one round's raw probe counts."""
        ...

    def restart(self) -> None:
        """Handle a prober restart (state reload from coarse history)."""
        ...


class FixedAvailability:
    """Trivial feedback with a constant availability; useful standalone."""

    def __init__(self, availability: float = 0.5) -> None:
        self.availability = availability

    def current(self) -> float:
        return self.availability

    def observe(self, positives: int, total: int) -> None:  # noqa: ARG002
        return None

    def restart(self) -> None:
        return None


@dataclass(frozen=True)
class ProberConfig:
    """Probing policy knobs (defaults match Trinocular as the paper uses it)."""

    max_probes_per_round: int = 15
    belief: BeliefConfig = field(default_factory=BeliefConfig)
    walk_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_probes_per_round < 1:
            raise ValueError("max_probes_per_round must be at least 1")


@dataclass
class ProbeLog:
    """Per-round record of one block's adaptive probing.

    Attributes:
        positives: positive responses per round (the paper's ``p``).
        totals: probes sent per round (the paper's ``t``).
        states: concluded block state per round (+1 up, 0 uncertain, -1 down).
        beliefs: posterior P(up) at the end of each round.
    """

    positives: np.ndarray
    totals: np.ndarray
    states: np.ndarray
    beliefs: np.ndarray

    @property
    def n_rounds(self) -> int:
        return len(self.totals)

    @property
    def total_probes(self) -> int:
        return int(self.totals.sum())

    def mean_probes_per_round(self) -> float:
        return float(self.totals.mean()) if self.n_rounds else 0.0

    def probe_rate_per_hour(self, schedule: RoundSchedule) -> float:
        return probes_per_hour(self.total_probes, schedule)

    def detected_outages(self) -> list[tuple[int, int]]:
        """Maximal runs of DOWN rounds as (start_round, end_round_exclusive)."""
        down = self.states == _STATE_CODE[BlockState.DOWN]
        if not down.any():
            return []
        edges = np.flatnonzero(np.diff(down.astype(np.int8)))
        starts = list(edges[down[edges + 1]] + 1)
        ends = list(edges[~down[edges + 1]] + 1)
        if down[0]:
            starts.insert(0, 0)
        if down[-1]:
            ends.append(len(down))
        return list(zip(starts, ends))


class AdaptiveProber:
    """Stateful adaptive prober for one block.

    The prober keeps a pseudorandom permutation of the ever-active addresses
    and a walk cursor that advances with every probe and persists across
    rounds.  Restarts reset the belief and the cursor, modelling the state
    lost when the probing software is relaunched.
    """

    def __init__(
        self, ever_active: np.ndarray, config: ProberConfig | None = None
    ) -> None:
        self.config = config or ProberConfig()
        rng = np.random.default_rng(self.config.walk_seed)
        self._walk = rng.permutation(np.asarray(ever_active, dtype=np.intp))
        self._cursor = 0
        self.belief = BlockBelief(self.config.belief)

    @property
    def n_targets(self) -> int:
        return len(self._walk)

    def _next_host(self) -> int:
        host = int(self._walk[self._cursor])
        self._cursor = (self._cursor + 1) % len(self._walk)
        return host

    def restart(self) -> None:
        """Simulate a prober software restart: lose belief and walk position."""
        self.belief.reset()
        self._cursor = 0

    def probe_round(
        self, oracle: ResponseOracle, round_idx: int, availability: float
    ) -> tuple[int, int]:
        """Run one adaptive round; returns ``(positives, total_probes)``.

        Probes until the first positive response (which concludes "up"), the
        belief concludes "down", or the 15-probe cap — Trinocular's
        do-no-harm policy.
        """
        if len(self._walk) == 0:
            return 0, 0
        positives = 0
        total = 0
        for _ in range(self.config.max_probes_per_round):
            host = self._next_host()
            positive = oracle.probe(host, round_idx)
            self.belief.update(positive, availability)
            total += 1
            if positive:
                positives += 1
                break
            if self.belief.state() is BlockState.DOWN:
                break
        return positives, total

    def run(
        self,
        oracle: ResponseOracle,
        schedule: RoundSchedule,
        feedback: AvailabilityFeedback | None = None,
        extra_restarts: np.ndarray | None = None,
    ) -> ProbeLog:
        """Probe a block over a whole schedule, coupling to an estimator.

        ``feedback`` supplies the operational availability before each round
        and absorbs the raw counts afterwards; when omitted, a fixed 0.5 is
        used (pure outage detection with no estimation).
        ``extra_restarts`` adds unscheduled restart rounds (crash faults)
        on top of the schedule's periodic ones.
        """
        if schedule.n_rounds != oracle.n_rounds:
            raise ValueError(
                f"schedule has {schedule.n_rounds} rounds, "
                f"oracle has {oracle.n_rounds}"
            )
        feedback = feedback if feedback is not None else FixedAvailability()
        n = schedule.n_rounds
        positives = np.zeros(n, dtype=np.int16)
        totals = np.zeros(n, dtype=np.int16)
        states = np.zeros(n, dtype=np.int8)
        beliefs = np.zeros(n, dtype=np.float64)
        restarts = set(schedule.restart_rounds().tolist())
        if extra_restarts is not None:
            restarts.update(
                int(r) for r in np.asarray(extra_restarts, dtype=np.int64)
            )

        for r in range(n):
            if r in restarts:
                self.restart()
                feedback.restart()
            p, t = self.probe_round(oracle, r, feedback.current())
            feedback.observe(p, t)
            positives[r] = p
            totals[r] = t
            states[r] = _STATE_CODE[self.belief.state()]
            beliefs[r] = self.belief.belief

        return ProbeLog(
            positives=positives, totals=totals, states=states, beliefs=beliefs
        )

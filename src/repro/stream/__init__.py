"""Streaming diurnal engine: live verdicts from incremental ingestion.

``engine``
    :class:`StreamEngine` — watermark-ordered ingestion, per-round
    sliding-DFT updates, hop-window closes with batch-parity verdicts,
    label hysteresis, and event emission.
``window``
    :class:`RoundWindow` — the bounded ring-buffer grid with the batch
    path's duplicate/gap-fill/quality semantics.
``sliding_dft``
    :class:`SlidingDFT` — O(tracked bins) per-round spectral updates at
    the DC, diurnal, and harmonic bins.
``events`` / ``sinks``
    Typed events, the synchronous :class:`EventBus`, and pluggable
    sinks (list, counting, callback, filter, CSV).
``journal``
    :class:`StreamJournal` — a CRC-framed write-ahead log for
    observations, with torn-tail recovery on open and idempotent
    sequence-numbered replay (:func:`replay_journal`).
``overload``
    :class:`AdmissionController` — bounded ingest queue with watermark
    hysteresis, a backpressure signal for producers, and deterministic
    priority load-shedding under sustained overload
    (:func:`paced_replay` is the backpressure-honoring producer loop).

The correctness anchor is *batch parity*: every window-close report is
bit-identical to :func:`repro.core.classify.classify_series` over the
same window (:func:`batch_window_report` is the oracle).
"""

from repro.stream.engine import (
    ProvisionalEstimate,
    StreamConfig,
    StreamEngine,
    batch_window_report,
)
from repro.stream.events import (
    ClassificationTransition,
    EventBus,
    LateObservation,
    ObservationShed,
    PhaseEdge,
    QualityDegraded,
    QualityRestored,
    ShedDegraded,
    StreamEvent,
    WindowClosed,
)
from repro.stream.journal import (
    JournalRecord,
    RecoveryReport,
    StreamJournal,
    read_journal,
    replay_journal,
)
from repro.stream.overload import (
    AdmissionController,
    OverloadConfig,
    ShedRecord,
    paced_replay,
)
from repro.stream.sinks import (
    CallbackSink,
    CountingSink,
    CsvSink,
    EventSink,
    FilterSink,
    ListSink,
)
from repro.stream.sliding_dft import SlidingDFT
from repro.stream.window import RoundWindow

__all__ = [
    "AdmissionController",
    "CallbackSink",
    "ClassificationTransition",
    "CountingSink",
    "CsvSink",
    "EventBus",
    "EventSink",
    "FilterSink",
    "JournalRecord",
    "LateObservation",
    "ListSink",
    "ObservationShed",
    "OverloadConfig",
    "PhaseEdge",
    "ProvisionalEstimate",
    "QualityDegraded",
    "QualityRestored",
    "RecoveryReport",
    "RoundWindow",
    "ShedDegraded",
    "ShedRecord",
    "SlidingDFT",
    "StreamConfig",
    "StreamEngine",
    "StreamEvent",
    "StreamJournal",
    "WindowClosed",
    "batch_window_report",
    "paced_replay",
    "read_journal",
    "replay_journal",
]

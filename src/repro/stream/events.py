"""Typed events emitted by the streaming diurnal engine.

Every event names the block it concerns and the absolute round/time at
which it was produced.  Events are plain frozen dataclasses so sinks can
persist them, tests can compare them, and downstream consumers can match
on type without parsing strings.

The :class:`EventBus` is deliberately tiny: synchronous fan-out to
registered sinks, with per-type counters for cheap observability.  Sinks
live in :mod:`repro.stream.sinks`; anything with an ``emit(event)``
method qualifies.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core.classify import DiurnalClass, DiurnalReport
    from repro.core.timeseries import QualityReport

__all__ = [
    "ClassificationTransition",
    "EventBus",
    "LateObservation",
    "ObservationShed",
    "PhaseEdge",
    "QualityDegraded",
    "QualityRestored",
    "ShedDegraded",
    "StreamEvent",
    "WindowClosed",
]


@dataclass(frozen=True)
class StreamEvent:
    """Base event: which block, at which absolute round and time."""

    block_id: int
    round_index: int
    time_s: float

    @property
    def kind(self) -> str:
        return type(self).__name__

    def payload(self) -> dict:
        """The subclass-specific fields, for generic sinks (CSV, logs)."""
        base = {f.name for f in fields(StreamEvent)}
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name not in base
        }


@dataclass(frozen=True)
class WindowClosed(StreamEvent):
    """A hop window closed with an exact (batch-parity) verdict.

    ``window_start_round`` is the absolute round of the window's first
    slot; ``n_rounds`` its length (shorter than the configured window only
    for a forced partial close).  ``report`` is bit-identical to running
    :func:`repro.core.classify.classify_series` on the same window.
    """

    window_start_round: int
    n_rounds: int
    report: "DiurnalReport"
    quality: "QualityReport"
    partial: bool = False


@dataclass(frozen=True)
class ClassificationTransition(StreamEvent):
    """The hysteresis-stable label changed.

    ``old_label`` is ``None`` for the first verdict a block receives.
    ``dwell`` is how many consecutive closes confirmed the new label
    before the transition fired.
    """

    old_label: "DiurnalClass | None"
    new_label: "DiurnalClass"
    report: "DiurnalReport"
    dwell: int


@dataclass(frozen=True)
class PhaseEdge(StreamEvent):
    """The block crossed its rolling daily midline: a sleep or wake edge.

    ``kind`` is ``"sleep"`` (availability fell below mean − margin) or
    ``"wake"`` (rose above mean + margin); ``value`` and ``window_mean``
    are the crossing sample and the sliding-window mean that defined the
    band.
    """

    edge: str
    value: float
    window_mean: float


@dataclass(frozen=True)
class QualityDegraded(StreamEvent):
    """A closed window failed the quality gate (insufficient data)."""

    quality: "QualityReport"
    reason: str


@dataclass(frozen=True)
class QualityRestored(StreamEvent):
    """Quality recovered: a close produced a classifiable window again."""

    quality: "QualityReport"


@dataclass(frozen=True)
class LateObservation(StreamEvent):
    """An observation arrived behind the watermark and was dropped.

    ``lag_rounds`` is how far behind the frozen frontier it landed
    (negative ``round_index`` means before the grid origin entirely).
    """

    value: float
    lag_rounds: int


@dataclass(frozen=True)
class ObservationShed(StreamEvent):
    """The overload shedder dropped this observation before ingestion.

    ``tier`` is the value class the shedder assigned (0 = mid-window
    sample of a long-stable block, 1 = near a phase edge, 2 =
    provisional/unknown block — higher tiers are only shed when the
    queue holds nothing cheaper); ``depth`` is the queue depth at the
    moment the shed episode triggered; ``seq`` is the submission
    sequence number, which makes shed sets comparable across runs.
    """

    value: float
    tier: int
    depth: int
    seq: int


@dataclass(frozen=True)
class ShedDegraded(StreamEvent):
    """A window closed whose observations were partially shed.

    Published immediately after the corresponding :class:`WindowClosed`
    so consumers can tell a verdict degraded by deliberate load-shedding
    from one degraded by upstream data loss: ``n_shed`` observations
    that would have landed in ``[window_start_round,
    window_start_round + n_rounds)`` were dropped by the overload
    shedder, and the close's quality report already accounts for the
    resulting gaps (heavily shed windows fail the quality gate and
    close as ``insufficient-data`` rather than silently wrong).
    """

    window_start_round: int
    n_rounds: int
    n_shed: int


class EventBus:
    """Synchronous fan-out of stream events to registered sinks."""

    def __init__(self, sinks=()) -> None:
        self._sinks = list(sinks)
        self.counts: dict[str, int] = {}
        self.n_published = 0

    def subscribe(self, sink) -> None:
        self._sinks.append(sink)

    def publish(self, event: StreamEvent) -> None:
        self.n_published += 1
        kind = event.kind
        self.counts[kind] = self.counts.get(kind, 0) + 1
        for sink in self._sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

"""Sliding-window DFT maintained incrementally at selected bins.

The classifier's hot-path quantities — DC mean, the 1-cycle/day bins,
and their harmonics — are a handful of coefficients out of an
``n//2 + 1``-bin spectrum.  This module maintains exactly those
coefficients over the trailing ``n``-round window using the sliding-DFT
recurrence

    X'_k = (X_k − x_evicted + x_entering) · e^{+2πjk/n}

so each new round costs O(tracked bins) instead of the O(n log n) a full
re-FFT per round would.  Conventions match ``np.fft.rfft``: for window
samples ``x[0..n-1]`` (oldest first), ``X_k = Σ x[i]·e^{−2πjk·i/n}``, so
amplitudes and phases agree with :class:`repro.core.spectral.Spectrum`.

Floating-point drift from the repeated rotations is bounded by periodic
:meth:`SlidingDFT.reseed` from the exact Goertzel transform; the engine
reseeds once per window length by default.
"""

from __future__ import annotations

import numpy as np

from repro.core.spectral import goertzel

__all__ = ["SlidingDFT"]


class SlidingDFT:
    """Tracked DFT coefficients over a sliding window of ``n`` samples."""

    def __init__(self, n: int, bins) -> None:
        if n < 2:
            raise ValueError("window must span at least 2 samples")
        bins = np.unique(np.asarray(bins, dtype=np.int64))
        n_bins = n // 2 + 1
        if len(bins) == 0:
            raise ValueError("no bins to track")
        if bins.min() < 0 or bins.max() >= n_bins:
            raise ValueError(
                f"tracked bins must be in [0, {n_bins}) for window {n}"
            )
        self.n = n
        self.bins = bins
        self._index = {int(k): i for i, k in enumerate(bins)}
        self._rotation = np.exp(2j * np.pi * bins / n)
        self.coefficients = np.zeros(len(bins), dtype=np.complex128)
        self.n_slides = 0

    @property
    def n_tracked(self) -> int:
        return len(self.bins)

    def slide(self, entering: float, evicted: float = 0.0) -> None:
        """Advance the window one sample: O(tracked bins).

        ``entering`` is the newest sample; ``evicted`` the sample falling
        off the old end (0 while the window is still priming, matching a
        zero-padded history).
        """
        self.coefficients = (
            self.coefficients - evicted + entering
        ) * self._rotation
        self.n_slides += 1

    def adjust(self, offset: int, delta: float) -> None:
        """Apply a correction ``delta`` at window position ``offset``.

        ``offset`` counts from the oldest retained sample (0) to the
        newest (n − 1); used when a retained sample's value is revised in
        place rather than slid in.
        """
        if not 0 <= offset < self.n:
            raise ValueError(f"offset {offset} outside window of {self.n}")
        self.coefficients = self.coefficients + delta * np.exp(
            -2j * np.pi * self.bins * offset / self.n
        )

    def reseed(self, values: np.ndarray) -> None:
        """Recompute exactly from the full window (drift control).

        ``values`` must be the current window contents, oldest first,
        NaN-free (the engine substitutes 0 for not-yet-observed rounds,
        consistent with what :meth:`slide` accumulated).
        """
        values = np.asarray(values, dtype=np.float64)
        if len(values) != self.n:
            raise ValueError(
                f"reseed needs exactly {self.n} samples, got {len(values)}"
            )
        self.coefficients = goertzel(values, self.bins)

    def coefficient(self, k: int) -> complex:
        return complex(self.coefficients[self._index[int(k)]])

    def amplitude(self, k: int) -> float:
        return abs(self.coefficient(k))

    def amplitudes(self, bins) -> np.ndarray:
        return np.abs(
            self.coefficients[[self._index[int(k)] for k in bins]]
        )

    def phase(self, k: int) -> float:
        return float(np.angle(self.coefficient(k)))

    def mean(self) -> float:
        """Window mean, read from the DC bin (bin 0 must be tracked)."""
        return self.coefficient(0).real / self.n

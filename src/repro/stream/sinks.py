"""Pluggable event sinks for the streaming engine's event bus.

A sink is anything with ``emit(event)``; ``close()`` is optional and
called by :meth:`repro.stream.events.EventBus.close`.  The sinks here
cover the common consumers: collect in memory (tests, notebooks), count
by type (benchmarks, health checks), call back into user code, filter a
downstream sink, and append to a CSV file (offline analysis).
"""

from __future__ import annotations

import csv
import os
from pathlib import Path

from repro.stream.events import StreamEvent

__all__ = [
    "CallbackSink",
    "CountingSink",
    "CsvSink",
    "EventSink",
    "FilterSink",
    "ListSink",
]


class EventSink:
    """Base sink: swallows everything.  Subclass and override ``emit``.

    Every sink is a context manager — ``with CsvSink(path) as sink:``
    guarantees buffered output reaches disk even when the engine feeding
    it raises; ``__exit__`` simply calls :meth:`close`.
    """

    def emit(self, event: StreamEvent) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class ListSink(EventSink):
    """Collect events in memory, optionally keeping only the newest.

    ``maxlen`` bounds memory on long campaigns; older events are dropped
    from the front (``n_dropped`` counts them).
    """

    def __init__(self, maxlen: int | None = None) -> None:
        if maxlen is not None and maxlen < 1:
            raise ValueError("maxlen must be positive")
        self.maxlen = maxlen
        self.events: list[StreamEvent] = []
        self.n_dropped = 0

    def emit(self, event: StreamEvent) -> None:
        self.events.append(event)
        if self.maxlen is not None and len(self.events) > self.maxlen:
            del self.events[0]
            self.n_dropped += 1

    def of_type(self, event_type: type) -> list[StreamEvent]:
        return [e for e in self.events if isinstance(e, event_type)]


class CountingSink(EventSink):
    """Count events by type without retaining them."""

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}

    def emit(self, event: StreamEvent) -> None:
        self.counts[event.kind] = self.counts.get(event.kind, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())


class CallbackSink(EventSink):
    """Invoke a callable per event (bridges to user code or queues)."""

    def __init__(self, callback) -> None:
        self.callback = callback

    def emit(self, event: StreamEvent) -> None:
        self.callback(event)


class FilterSink(EventSink):
    """Forward only selected events to a downstream sink.

    ``event_types`` keeps isinstance matches; ``predicate`` (if given)
    must also return True.  Both default to pass-everything.
    """

    def __init__(self, sink, event_types=None, predicate=None) -> None:
        self.sink = sink
        self.event_types = tuple(event_types) if event_types else None
        self.predicate = predicate

    def emit(self, event: StreamEvent) -> None:
        if self.event_types and not isinstance(event, self.event_types):
            return
        if self.predicate is not None and not self.predicate(event):
            return
        self.sink.emit(event)

    def close(self) -> None:
        close = getattr(self.sink, "close", None)
        if close is not None:
            close()


class CsvSink(EventSink):
    """Append events to a CSV file: one row per event.

    Columns are the shared header (kind, block, round, time) plus a
    ``payload`` column holding the subclass fields as ``key=value``
    pairs — heterogeneous event types share one file without a schema
    per type.  The file is opened lazily on the first event.
    """

    HEADER = ("kind", "block_id", "round_index", "time_s", "payload")

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._handle = None
        self._writer = None
        self.n_written = 0

    def emit(self, event: StreamEvent) -> None:
        if self._writer is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "w", newline="")
            self._writer = csv.writer(self._handle)
            self._writer.writerow(self.HEADER)
        payload = ";".join(
            f"{name}={value}" for name, value in sorted(event.payload().items())
        )
        self._writer.writerow(
            [event.kind, event.block_id, event.round_index, event.time_s, payload]
        )
        self.n_written += 1

    def flush(self) -> None:
        """Push buffered rows durably to disk without closing the file.

        Flushes Python's buffer *and* fsyncs, so every row emitted
        before a flush survives a crash — a half-buffered row can only
        be one the caller never flushed.
        """
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self.flush()
            self._handle.close()
            self._handle = None
            self._writer = None

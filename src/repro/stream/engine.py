"""The streaming diurnal engine: incremental ingestion to live verdicts.

The batch pipeline classifies a block once, after the campaign ends.
This engine consumes the same per-round observations *as they arrive*
and maintains, per block:

* a bounded :class:`~repro.stream.window.RoundWindow` ring with the
  section 2.2 grid/duplicate/fill semantics (memory is O(window), not
  O(campaign));
* a :class:`~repro.stream.sliding_dft.SlidingDFT` over the trailing
  window, tracking only the DC, diurnal, and harmonic bins — O(tracked
  bins) per round instead of O(n log n) per reclassification;
* a hysteresis-stable diurnal label that only transitions after
  ``label_dwell`` consecutive window closes agree, so verdicts don't
  flap at the strict/relaxed boundary;
* an :class:`~repro.stream.events.EventBus` emitting typed events:
  window closes, classification transitions, sleep/wake phase edges,
  quality degradation/restoration, and dropped late observations.

Out-of-order delivery is handled with a watermark: rounds up to
``max_round − lateness_rounds`` are frozen; observations behind the
watermark are dropped (with a :class:`~repro.stream.events.
LateObservation` event) exactly because their window may already have
closed.  **Batch parity** is the correctness anchor: every window-close
verdict is produced by materializing the ring through the same
grid-and-fill code and calling the same classifier the batch path uses,
so the streaming report is bit-identical to
:func:`repro.core.classify.classify_series` over the identical window —
:func:`batch_window_report` is the oracle tests compare against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from math import isfinite
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.obs.export import RunManifest

from repro.core.classify import (
    ClassifierConfig,
    DiurnalClass,
    DiurnalReport,
    classify_series,
)
from repro.core.spectral import (
    diurnal_bin,
    diurnal_candidates,
    harmonic_bins,
)
from repro.core.timeseries import (
    FILL_POLICIES,
    QualityReport,
    clean_observations,
    round_index,
)
from repro.obs.events import NULL_EVENT_LOG
from repro.obs.registry import NULL_REGISTRY
from repro.obs.tracing import NULL_TRACER
from repro.probing.rounds import ROUND_SECONDS
from repro.stream.events import (
    ClassificationTransition,
    EventBus,
    LateObservation,
    PhaseEdge,
    QualityDegraded,
    QualityRestored,
    WindowClosed,
)
from repro.stream.sliding_dft import SlidingDFT
from repro.stream.window import RoundWindow

__all__ = [
    "ProvisionalEstimate",
    "StreamConfig",
    "StreamEngine",
    "batch_window_report",
]

_DAY_SECONDS = 86400.0


@dataclass(frozen=True)
class StreamConfig:
    """Knobs for the streaming engine.

    Attributes:
        window_rounds: spectral window length in rounds; must span at
            least one whole day (the classifier needs a diurnal bin).
        round_s: grid period in seconds (660 in all paper datasets).
        start_s: absolute time of round 0 (the grid origin).
        hop_rounds: rounds between window closes; ``None`` means
            tumbling windows (hop = window).
        lateness_rounds: how many rounds behind the newest observation
            the watermark trails; out-of-order delivery within this
            slack is reordered correctly, anything older is dropped.
        fill_policy: gap-fill policy for window materialization (see
            :data:`repro.core.timeseries.FILL_POLICIES`).
        max_fill_gap: bound on filled gap length (``None`` fills all).
        classifier: thresholds shared with the batch classifier.
        label_dwell: consecutive closes a new label needs before the
            stable label transitions (1 disables hysteresis).
        edge_margin: half-width of the dead band around the sliding
            window mean for sleep/wake edge detection, in availability
            units.
        reseed_every: recompute the sliding DFT exactly every this many
            rounds to cancel float drift (``None``: once per window).
    """

    window_rounds: int
    round_s: float = ROUND_SECONDS
    start_s: float = 0.0
    hop_rounds: int | None = None
    lateness_rounds: int = 0
    fill_policy: str = "hold"
    max_fill_gap: int | None = None
    classifier: ClassifierConfig = field(default_factory=ClassifierConfig)
    label_dwell: int = 2
    edge_margin: float = 0.05
    reseed_every: int | None = None

    def __post_init__(self) -> None:
        if self.window_rounds < 4:
            raise ValueError("window_rounds must be at least 4")
        if self.round_s <= 0:
            raise ValueError("round_s must be positive")
        # Raises for windows shorter than one day, where no diurnal bin
        # exists and every close would fail.
        diurnal_bin(self.window_rounds, self.round_s)
        if self.hop is not None and not 1 <= self.hop <= self.window_rounds:
            raise ValueError(
                "hop_rounds must be in [1, window_rounds]"
            )
        if self.lateness_rounds < 0:
            raise ValueError("lateness_rounds must be non-negative")
        if self.fill_policy not in FILL_POLICIES:
            raise ValueError(
                f"unknown fill policy {self.fill_policy!r}; "
                f"expected one of {FILL_POLICIES}"
            )
        if self.label_dwell < 1:
            raise ValueError("label_dwell must be at least 1")
        if self.edge_margin < 0:
            raise ValueError("edge_margin must be non-negative")
        if self.reseed_every is not None and self.reseed_every < 1:
            raise ValueError("reseed_every must be positive")

    @property
    def hop(self) -> int:
        return (
            self.window_rounds if self.hop_rounds is None else self.hop_rounds
        )

    @classmethod
    def for_days(
        cls,
        window_days: float,
        hop_days: float | None = None,
        round_s: float = ROUND_SECONDS,
        **kwargs,
    ) -> "StreamConfig":
        """Window/hop expressed in days, rounded to whole rounds."""
        window = int(round(window_days * _DAY_SECONDS / round_s))
        hop = (
            None
            if hop_days is None
            else max(1, int(round(hop_days * _DAY_SECONDS / round_s)))
        )
        return cls(
            window_rounds=window, round_s=round_s, hop_rounds=hop, **kwargs
        )


@dataclass(frozen=True)
class ProvisionalEstimate:
    """Per-round spectral state from the sliding DFT (cheap, approximate).

    Exact verdicts only happen at window closes; between closes this is
    the O(tracked bins) view: the trailing window's mean, its 1-cycle/day
    amplitude and phase, and the strongest harmonic.  ``primed`` is False
    until the trailing window is fully covered by observed (or held)
    rounds, when the numbers are not yet meaningful.
    """

    block_id: int
    round_index: int
    time_s: float
    mean: float
    diurnal_k: int
    diurnal_amplitude: float
    diurnal_phase: float
    strongest_harmonic: float
    primed: bool

    @property
    def looks_diurnal(self) -> bool:
        """Cheap per-round indicator: diurnal energy beats every harmonic."""
        return (
            self.primed
            and self.diurnal_amplitude > 0
            and self.diurnal_amplitude > self.strongest_harmonic
        )


class _BlockState:
    """Everything the engine tracks for one block."""

    __slots__ = (
        "ring",
        "dft",
        "filled_ring",
        "last_filled",
        "trailing_missing",
        "n_frozen",
        "max_round",
        "watermark",
        "next_close_start",
        "stable_label",
        "candidate",
        "candidate_count",
        "stable_run",
        "last_edge_round",
        "degraded",
        "level",
        "last_report",
        "n_closed",
        "n_late",
        "n_observations",
    )

    def __init__(self, capacity: int, window: int, bins) -> None:
        self.ring = RoundWindow(capacity)
        self.dft = SlidingDFT(window, bins)
        self.filled_ring = np.full(window, np.nan)
        self.last_filled = float("nan")
        self.trailing_missing = window
        self.n_frozen = 0
        self.max_round = -1
        self.watermark = -1
        self.next_close_start = 0
        self.stable_label: DiurnalClass | None = None
        self.candidate: DiurnalClass | None = None
        self.candidate_count = 0
        self.stable_run = 0
        self.last_edge_round: int | None = None
        self.degraded = False
        self.level: str | None = None
        self.last_report: DiurnalReport | None = None
        self.n_closed = 0
        self.n_late = 0
        self.n_observations = 0


class _EngineMetrics:
    """Pre-bound engine metrics; one attribute load + no-op call when off.

    Bucket bounds for close latency cover the observed range: a window
    close is one materialize + one FFT classify, tens of microseconds to
    a few milliseconds.
    """

    __slots__ = ("enabled", "ingested", "late", "invalid", "frozen",
                 "reseeds", "closes", "partial_closes", "transitions",
                 "blocks", "close_seconds", "ingest_rate")

    _CLOSE_BUCKETS = (
        1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 5e-3, 2.5e-2, 0.1,
    )

    def __init__(self, registry) -> None:
        self.enabled = registry.enabled
        self.ingested = registry.counter("stream_observations_total")
        self.late = registry.counter("stream_late_observations_total")
        self.invalid = registry.counter("stream_invalid_observations_total")
        self.frozen = registry.counter("stream_rounds_frozen_total")
        self.reseeds = registry.counter("stream_dft_reseeds_total")
        self.closes = registry.counter(
            "stream_window_closes_total", partial="false"
        )
        self.partial_closes = registry.counter(
            "stream_window_closes_total", partial="true"
        )
        self.transitions = registry.counter("stream_label_transitions_total")
        self.blocks = registry.gauge("stream_tracked_blocks")
        self.close_seconds = registry.histogram(
            "stream_close_seconds", buckets=self._CLOSE_BUCKETS
        )
        self.ingest_rate = registry.meter("stream_close_interval_observations")


class StreamEngine:
    """Consume per-round observations, maintain verdicts, emit events.

    ``metrics``/``tracer``/``events`` attach a
    :class:`repro.obs.MetricsRegistry` / :class:`repro.obs.Tracer` /
    :class:`repro.obs.EventLogger`; by default the null implementations
    keep every code path allocation-free.  Instrumentation is strictly
    observational — verdicts, events, and state are bit-identical with
    or without it (``tests/test_obs_parity.py``).  The structured event
    log mirrors the typed bus events that matter operationally: late
    drops, quality degradation/restoration, label transitions, and
    (at debug level, for flight recorders) every window close.
    """

    def __init__(
        self,
        config: StreamConfig,
        sinks=(),
        metrics=None,
        tracer=None,
        events=None,
    ) -> None:
        self.config = config
        self.bus = EventBus(sinks)
        self.metrics = NULL_REGISTRY if metrics is None else metrics
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.events = NULL_EVENT_LOG if events is None else events
        self._m = _EngineMetrics(self.metrics)
        self._since_close = 0
        # Hot-path event tallies are plain ints, synced to the registry
        # at close/flush boundaries — a locked counter increment per
        # observation would dominate the ingest cost (see
        # ``benchmarks/test_abl_obs_overhead.py``).  Totals are exact at
        # every observation point (after ``flush`` or a window close).
        self._pending_ingested = 0
        self._pending_late = 0
        self._pending_invalid = 0
        self._pending_frozen = 0
        self._n_invalid = 0
        self._states: dict[int, _BlockState] = {}
        n = config.window_rounds
        n_bins = n // 2 + 1
        k_d = diurnal_bin(n, config.round_s)
        self._cand = np.array(
            diurnal_candidates(n, config.round_s), dtype=np.int64
        )
        self._harmonics = harmonic_bins(
            k_d,
            n_bins,
            max_harmonic=config.classifier.max_harmonic,
            tolerance=config.classifier.harmonic_tolerance,
        )
        self._tracked = np.unique(
            np.concatenate([[0], self._cand, self._harmonics])
        )
        self._capacity = n + config.hop + config.lateness_rounds + 2
        self._reseed_every = (
            n if config.reseed_every is None else config.reseed_every
        )

    # -- ingestion ---------------------------------------------------------

    def ingest(self, block_id: int, time_s: float, value: float) -> None:
        """Process one observation (any order within the lateness slack).

        Non-finite ``time_s``/``value`` (NaN, +/-inf — a corrupt frame,
        a broken sensor) are dropped before they can poison the ring:
        NaN times grid to garbage rounds and NaN values defeat the
        fill/quality accounting.  Each drop is a structured
        ``stream.invalid_observation`` event and a
        ``stream_invalid_observations_total`` count, never an exception
        — invalid input is an operational condition, not a bug.
        """
        if not (isfinite(time_s) and isfinite(value)):
            self._pending_invalid += 1
            self._n_invalid += 1
            self.events.warning(
                "stream.invalid_observation",
                block_id=block_id,
                time_s=repr(float(time_s)),
                value=repr(float(value)),
            )
            return
        state = self._state(block_id)
        r = int(round_index(time_s, self.config.round_s, self.config.start_s))
        if r < 0 or r <= state.watermark:
            state.n_late += 1
            self._pending_late += 1
            self.bus.publish(
                LateObservation(
                    block_id=block_id,
                    round_index=r,
                    time_s=time_s,
                    value=float(value),
                    lag_rounds=state.watermark - r,
                )
            )
            self.events.warning(
                "stream.late_drop",
                block_id=block_id,
                round_index=r,
                lag_rounds=state.watermark - r,
            )
            return
        if r >= state.ring.base + state.ring.capacity:
            # A jump ahead: freeze/close/evict everything that must
            # precede this round so the ring has room for it.
            self._advance(state, block_id, r - self.config.lateness_rounds - 1)
        state.ring.observe(r, float(time_s), float(value))
        state.n_observations += 1
        self._pending_ingested += 1
        self._since_close += 1
        if r > state.max_round:
            state.max_round = r
            # The newest round itself stays open (a same-round duplicate
            # must still be able to revise it), so the watermark trails
            # one round behind the lateness slack.
            target = r - self.config.lateness_rounds - 1
            if target > state.watermark:
                self._advance(state, block_id, target)

    def ingest_many(
        self, block_id: int, times: np.ndarray, values: np.ndarray
    ) -> None:
        """Feed a batch of observations for one block, in arrival order."""
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if times.shape != values.shape:
            raise ValueError("times and values must have the same shape")
        for t, v in zip(times, values):
            self.ingest(block_id, float(t), float(v))

    def replay(self, stream) -> int:
        """Consume ``(block_id, time_s, value)`` tuples from an iterable."""
        n = 0
        for block_id, time_s, value in stream:
            self.ingest(block_id, time_s, value)
            n += 1
        return n

    def flush(
        self, block_id: int | None = None, close_partial: bool = False
    ) -> None:
        """Expire the lateness slack: freeze and close everything due.

        With ``close_partial`` the tail beyond the last full window is
        also classified (when it spans at least one day), exactly as the
        batch path would classify the same shorter window.
        """
        ids = [block_id] if block_id is not None else list(self._states)
        for bid in ids:
            state = self._states[bid]
            if state.max_round > state.watermark:
                self._advance(state, bid, state.max_round)
            if close_partial and state.next_close_start <= state.max_round:
                n_tail = state.max_round - state.next_close_start + 1
                self._close_window(state, bid, n_tail, partial=True)
        self._sync_counters()

    # -- accessors ---------------------------------------------------------

    def blocks(self) -> list[int]:
        return sorted(self._states)

    def watermark(self, block_id: int) -> int:
        return self._states[block_id].watermark

    def stable_label(self, block_id: int) -> DiurnalClass | None:
        """The hysteresis-smoothed label (None before the first close)."""
        return self._states[block_id].stable_label

    def last_report(self, block_id: int) -> DiurnalReport | None:
        return self._states[block_id].last_report

    def n_late(self, block_id: int) -> int:
        return self._states[block_id].n_late

    @property
    def n_invalid(self) -> int:
        """Observations dropped for non-finite time/value, all blocks."""
        return self._n_invalid

    def tracked(self, block_id: int) -> bool:
        """Whether the engine has any state for this block yet."""
        return block_id in self._states

    def stable_run(self, block_id: int) -> int:
        """Consecutive closes agreeing with the current stable label.

        0 before the first close (or right after a dissenting close);
        large values mean the block has been boringly stable for many
        windows — exactly the blocks the overload shedder can afford to
        thin out first.  Unknown blocks report 0.
        """
        state = self._states.get(block_id)
        return 0 if state is None else state.stable_run

    def last_edge_round(self, block_id: int) -> int | None:
        """The round of the block's most recent sleep/wake phase edge."""
        state = self._states.get(block_id)
        return None if state is None else state.last_edge_round

    def next_close_start(self, block_id: int) -> int:
        """First round of the next window this block will close."""
        state = self._states.get(block_id)
        return 0 if state is None else state.next_close_start

    def provisional(self, block_id: int) -> ProvisionalEstimate:
        """The current trailing-window spectral state (O(tracked bins))."""
        state = self._states[block_id]
        dft = state.dft
        cand_amps = dft.amplitudes(self._cand)
        best = int(np.argmax(cand_amps))
        k_best = int(self._cand[best])
        strongest_harmonic = (
            float(dft.amplitudes(self._harmonics).max())
            if len(self._harmonics)
            else 0.0
        )
        return ProvisionalEstimate(
            block_id=block_id,
            round_index=state.watermark,
            time_s=self._round_time(state.watermark),
            mean=dft.mean(),
            diurnal_k=k_best,
            diurnal_amplitude=float(cand_amps[best]),
            diurnal_phase=dft.phase(k_best),
            strongest_harmonic=strongest_harmonic,
            primed=state.trailing_missing == 0,
        )

    def snapshot(self, block_id: int) -> dict | None:
        """Queryable state of one block (``None`` when untracked).

        This is the read surface the serving layer exposes per block:
        the hysteresis-stable label, the last window-close report (the
        bit-identical-to-batch verdict), the cheap provisional spectral
        estimate, and the ingest bookkeeping an operator asks about
        (watermark, late/observation counts).  Values are engine-native
        objects — :func:`repro.serve.shard.snapshot_to_dict` flattens
        them for JSON transport.
        """
        state = self._states.get(block_id)
        if state is None:
            return None
        return {
            "block_id": block_id,
            "watermark": state.watermark,
            "max_round": state.max_round,
            "next_close_start": state.next_close_start,
            "stable_label": state.stable_label,
            "stable_run": state.stable_run,
            "last_report": state.last_report,
            "n_closed": state.n_closed,
            "n_late": state.n_late,
            "n_observations": state.n_observations,
            "last_edge_round": state.last_edge_round,
            "degraded": state.degraded,
            "provisional": self.provisional(block_id),
        }

    def phase_map(self) -> dict[int, dict]:
        """Diurnal phase per block whose last verdict is diurnal.

        The live counterpart of the paper's Fig. 14 input: for every
        block whose most recent window close was strictly or relaxed
        diurnal, the winning bin, its FFT phase (radians), amplitude,
        and the hysteresis-stable label.  Non-diurnal and unclassified
        blocks are omitted — their phase is noise by definition.
        """
        out: dict[int, dict] = {}
        for block_id, state in self._states.items():
            report = state.last_report
            if report is None or not report.label.is_diurnal:
                continue
            out[block_id] = {
                "label": report.label.value,
                "stable_label": (
                    state.stable_label.value
                    if state.stable_label is not None
                    else None
                ),
                "diurnal_k": report.diurnal_k,
                "phase": report.phase,
                "amplitude": report.diurnal_amplitude,
                "watermark": state.watermark,
                # Freshness key for replicated serving: two replicas of
                # the same block compare applied-observation counts to
                # decide whose entry wins a merge.
                "n_observations": state.n_observations,
            }
        return out

    def manifest(self, **extra) -> "RunManifest":
        """Telemetry manifest for this engine's run so far.

        Captures the quality gates, tracked-block count, stage timings
        (when a tracer is attached), and the current metric values; pass
        free-form keywords (dataset name, campaign id, ...) for the
        ``extra`` section.
        """
        from dataclasses import asdict

        from repro.obs.export import RunManifest

        self._sync_counters()
        return RunManifest.capture(
            kind="stream",
            registry=self.metrics,
            tracer=self.tracer,
            n_blocks=len(self._states),
            quality_gates=asdict(self.config.classifier),
            window_rounds=self.config.window_rounds,
            hop_rounds=self.config.hop,
            lateness_rounds=self.config.lateness_rounds,
            fill_policy=self.config.fill_policy,
            **extra,
        )

    # -- internals ---------------------------------------------------------

    def _sync_counters(self) -> None:
        """Flush pending hot-path tallies into the metrics registry."""
        if self._pending_ingested:
            self._m.ingested.inc(self._pending_ingested)
            self._pending_ingested = 0
        if self._pending_late:
            self._m.late.inc(self._pending_late)
            self._pending_late = 0
        if self._pending_invalid:
            self._m.invalid.inc(self._pending_invalid)
            self._pending_invalid = 0
        if self._pending_frozen:
            self._m.frozen.inc(self._pending_frozen)
            self._pending_frozen = 0

    def _state(self, block_id: int) -> _BlockState:
        state = self._states.get(block_id)
        if state is None:
            state = _BlockState(
                self._capacity, self.config.window_rounds, self._tracked
            )
            self._states[block_id] = state
            self._m.blocks.inc()
        return state

    def _round_time(self, r: int) -> float:
        return self.config.start_s + r * self.config.round_s

    def _advance(self, state: _BlockState, block_id: int, target: int) -> None:
        close_at = state.next_close_start + self.config.window_rounds - 1
        for f in range(state.watermark + 1, target + 1):
            self._freeze_round(state, block_id, f)
            state.watermark = f
            if f == close_at:
                self._close_window(
                    state, block_id, self.config.window_rounds, partial=False
                )
                close_at = (
                    state.next_close_start + self.config.window_rounds - 1
                )

    def _freeze_round(
        self, state: _BlockState, block_id: int, f: int
    ) -> None:
        """Fix round ``f``'s held value and push it through the DFT."""
        n = self.config.window_rounds
        raw = state.ring.value_at(f)
        if np.isnan(raw):
            filled = state.last_filled
        else:
            filled = raw
            state.last_filled = raw
        i = f % n
        evicted = state.filled_ring[i]
        state.filled_ring[i] = filled
        entering_nan = np.isnan(filled)
        evicted_nan = np.isnan(evicted)
        state.dft.slide(
            0.0 if entering_nan else filled,
            0.0 if evicted_nan else evicted,
        )
        state.trailing_missing += int(entering_nan) - int(evicted_nan)
        state.n_frozen += 1
        self._pending_frozen += 1
        if state.n_frozen % self._reseed_every == 0:
            order = np.arange(f - n + 1, f + 1) % n
            state.dft.reseed(
                np.nan_to_num(state.filled_ring[order], nan=0.0)
            )
            self._m.reseeds.inc()
        if state.trailing_missing == 0 and not entering_nan:
            self._phase_edge(state, block_id, f, filled)

    def _phase_edge(
        self, state: _BlockState, block_id: int, f: int, value: float
    ) -> None:
        mean = state.dft.mean()
        if value > mean + self.config.edge_margin:
            level = "high"
        elif value < mean - self.config.edge_margin:
            level = "low"
        else:
            return
        if state.level is None:
            state.level = level
            return
        if level != state.level:
            state.level = level
            state.last_edge_round = f
            self.bus.publish(
                PhaseEdge(
                    block_id=block_id,
                    round_index=f,
                    time_s=self._round_time(f),
                    edge="wake" if level == "high" else "sleep",
                    value=value,
                    window_mean=mean,
                )
            )

    def _close_window(
        self,
        state: _BlockState,
        block_id: int,
        n_rounds: int,
        partial: bool,
    ) -> None:
        if not (self._m.enabled or self.tracer.enabled):
            self._close_window_impl(state, block_id, n_rounds, partial)
            return
        with self.tracer.trace(
            "stream.close_window", block=block_id, partial=partial
        ):
            t0 = time.perf_counter()
            self._close_window_impl(state, block_id, n_rounds, partial)
            self._m.close_seconds.observe(time.perf_counter() - t0)
        self._m.ingest_rate.observe(self._since_close)
        self._since_close = 0
        self._sync_counters()

    def _close_window_impl(
        self,
        state: _BlockState,
        block_id: int,
        n_rounds: int,
        partial: bool,
    ) -> None:
        w_start = state.next_close_start
        values, quality = state.ring.materialize(
            w_start,
            n_rounds,
            policy=self.config.fill_policy,
            max_gap=self.config.max_fill_gap,
        )
        try:
            report = classify_series(
                values, self.config.round_s, self.config.classifier,
                quality=quality,
            )
        except ValueError:
            # Only reachable on a partial close too short to classify;
            # full windows are validated at config time.
            if not partial:
                raise
            return
        end_round = w_start + n_rounds - 1
        self.bus.publish(
            WindowClosed(
                block_id=block_id,
                round_index=end_round,
                time_s=self._round_time(end_round),
                window_start_round=w_start,
                n_rounds=n_rounds,
                report=report,
                quality=quality,
                partial=partial,
            )
        )
        state.last_report = report
        state.n_closed += 1
        (self._m.partial_closes if partial else self._m.closes).inc()
        self.events.debug(
            "stream.window_closed",
            block_id=block_id,
            end_round=end_round,
            n_rounds=n_rounds,
            partial=partial,
            label=report.label.value,
        )
        self._quality_events(state, block_id, end_round, report, quality)
        self._hysteresis(state, block_id, end_round, report)
        state.next_close_start = (
            end_round + 1 if partial else w_start + self.config.hop
        )
        state.ring.advance_base(state.next_close_start)

    def _quality_events(
        self,
        state: _BlockState,
        block_id: int,
        end_round: int,
        report: DiurnalReport,
        quality: QualityReport,
    ) -> None:
        degraded_now = not report.is_classified
        if degraded_now and not state.degraded:
            state.degraded = True
            if quality.n_observed == 0:
                reason = "no observations in window"
            elif not quality.usable(
                max_gap_fraction=self.config.classifier.max_gap_fraction,
                max_longest_gap=self.config.classifier.max_longest_gap,
            ):
                reason = (
                    f"quality gate: {quality.gap_fraction:.1%} missing, "
                    f"longest gap {quality.longest_gap} rounds"
                )
            else:
                reason = "filled series still contains NaN"
            self.bus.publish(
                QualityDegraded(
                    block_id=block_id,
                    round_index=end_round,
                    time_s=self._round_time(end_round),
                    quality=quality,
                    reason=reason,
                )
            )
            self.events.warning(
                "stream.quality_degraded",
                block_id=block_id,
                end_round=end_round,
                reason=reason,
            )
        elif not degraded_now and state.degraded:
            state.degraded = False
            self.bus.publish(
                QualityRestored(
                    block_id=block_id,
                    round_index=end_round,
                    time_s=self._round_time(end_round),
                    quality=quality,
                )
            )
            self.events.info(
                "stream.quality_restored",
                block_id=block_id,
                end_round=end_round,
            )

    def _hysteresis(
        self,
        state: _BlockState,
        block_id: int,
        end_round: int,
        report: DiurnalReport,
    ) -> None:
        label = report.label

        def publish(old: DiurnalClass | None, dwell: int) -> None:
            self._m.transitions.inc()
            self.bus.publish(
                ClassificationTransition(
                    block_id=block_id,
                    round_index=end_round,
                    time_s=self._round_time(end_round),
                    old_label=old,
                    new_label=label,
                    report=report,
                    dwell=dwell,
                )
            )
            self.events.info(
                "stream.label_transition",
                block_id=block_id,
                end_round=end_round,
                old_label=old.value if old is not None else None,
                new_label=label.value,
                dwell=dwell,
            )

        if state.stable_label is None:
            state.stable_label = label
            state.stable_run = 1
            publish(None, 1)
        elif label == state.stable_label:
            state.candidate = None
            state.candidate_count = 0
            state.stable_run += 1
        else:
            state.stable_run = 0
            if label == state.candidate:
                state.candidate_count += 1
            else:
                state.candidate = label
                state.candidate_count = 1
            if state.candidate_count >= self.config.label_dwell:
                old = state.stable_label
                state.stable_label = label
                state.stable_run = 1
                publish(old, state.candidate_count)
                state.candidate = None
                state.candidate_count = 0


def batch_window_report(
    times: np.ndarray,
    values: np.ndarray,
    window_start_round: int,
    n_rounds: int,
    config: StreamConfig,
) -> tuple[DiurnalReport, QualityReport]:
    """The batch-path verdict for one hop window of a raw stream.

    This is the parity oracle: select the observations that grid into
    ``[window_start_round, window_start_round + n_rounds)``, run them
    through :func:`repro.core.timeseries.clean_observations`, and
    classify.  For every window the engine closes, its report must equal
    this one field-for-field (see
    :func:`repro.core.classify.reports_equal`).
    """
    times = np.asarray(times, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    idx = round_index(times, config.round_s, config.start_s)
    in_window = (idx >= window_start_round) & (
        idx < window_start_round + n_rounds
    )
    window_start_s = (
        config.start_s + window_start_round * config.round_s
    )
    series, quality = clean_observations(
        times[in_window],
        values[in_window],
        config.round_s,
        window_start_s,
        n_rounds,
        policy=config.fill_policy,
        max_gap=config.max_fill_gap,
    )
    report = classify_series(
        series, config.round_s, config.classifier, quality=quality
    )
    return report, quality

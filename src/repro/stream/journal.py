"""Write-ahead journal for streaming observations.

The streaming engine classifies from in-memory ring buffers, so a crash
loses every observation since the last checkpoint.  The journal closes
that hole the way databases do: append each observation to a
length-prefixed, CRC-framed log *before* (or while) it is ingested, and
on restart recover the log and replay it into a fresh engine.

Frame format (all little-endian)::

    file   := header frame*
    header := magic(4) version(u16) pad(u16)          # 8 bytes
    frame  := length(u32) crc32(u32) payload          # length = len(payload)
    payload:= seq(u64) block_id(i64) time_s(f64) value(f64)   # 32 bytes

Durability properties:

* **append-only** — a crash can only damage the tail, never rewrite
  history;
* **torn-tail recovery** — on open, the log is scanned frame by frame;
  the first frame with a short read or CRC mismatch marks the valid
  end, and everything after it is truncated away (a torn append is
  indistinguishable from an append that never happened, which is the
  correct semantics for a write-*ahead* log);
* **idempotent replay** — every record carries a monotonically
  increasing sequence number, so :func:`replay_journal` can skip
  records at or below a resume point and re-running a replay applies
  nothing twice;
* **caller-assigned sequences** — :meth:`StreamJournal.append` /
  :meth:`StreamJournal.append_many` accept explicit ``seq`` values so a
  replicated router can journal every replica of an observation under
  one per-replica-stream sequence number.  Sequences must stay strictly
  increasing but may be *gapped* (a shard journals only the subsequence
  of its stream that it owns); replay and torn-tail recovery only rely
  on monotonicity, never density.

Crash points (``journal.append.begin`` / ``journal.mid_append`` /
``journal.append.done``) let the chaos harness kill a writer halfway
through a frame and assert recovery truncates exactly the torn bytes.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.retry import RetryPolicy
from repro.faults.crash import any_armed, crashpoint
from repro.obs.registry import NULL_REGISTRY

__all__ = [
    "JournalRecord",
    "RecoveryReport",
    "StreamJournal",
    "read_journal",
    "replay_journal",
]

_MAGIC = b"RPWJ"
_VERSION = 1
_HEADER = struct.Struct("<4sHH")
_FRAME = struct.Struct("<II")  # payload length, crc32(payload)
_PAYLOAD = struct.Struct("<Qqdd")  # seq, block_id, time_s, value

# Journals only ever carry fixed-size observation payloads today; a
# frame claiming more is damage, not data (guards the scanner against
# allocating garbage lengths from a corrupted length field).
_MAX_PAYLOAD = 4096

# Vectorized framing for append_many: one packed row per frame, laid
# out exactly as the struct formats above (little-endian, no padding).
_PAYLOAD_DTYPE = np.dtype(
    {
        "names": ["seq", "block_id", "time_s", "value"],
        "formats": ["<u8", "<i8", "<f8", "<f8"],
    }
)
_FRAME_DTYPE = np.dtype(
    {
        "names": ["length", "crc", "seq", "block_id", "time_s", "value"],
        "formats": ["<u4", "<u4", "<u8", "<i8", "<f8", "<f8"],
    }
)
assert _PAYLOAD_DTYPE.itemsize == _PAYLOAD.size
assert _FRAME_DTYPE.itemsize == _FRAME.size + _PAYLOAD.size


@dataclass(frozen=True)
class JournalRecord:
    """One durably logged observation."""

    seq: int
    block_id: int
    time_s: float
    value: float


@dataclass(frozen=True)
class RecoveryReport:
    """What opening an existing journal found (and repaired).

    ``truncated_bytes`` is how many torn-tail bytes were discarded;
    ``reason`` says why the tail was invalid (empty string for a clean
    log).  ``last_seq`` is 0 for an empty journal.
    """

    n_records: int
    last_seq: int
    truncated_bytes: int
    reason: str = ""

    @property
    def was_torn(self) -> bool:
        return self.truncated_bytes > 0


class _JournalMetrics:
    __slots__ = ("appends", "recovered", "torn_bytes", "replayed", "skipped")

    def __init__(self, registry) -> None:
        self.appends = registry.counter("journal_appends_total")
        self.recovered = registry.counter("journal_records_recovered_total")
        self.torn_bytes = registry.counter("journal_torn_bytes_total")
        self.replayed = registry.counter("journal_records_replayed_total")
        self.skipped = registry.counter(
            "journal_records_skipped_total", reason="already_applied"
        )


def _scan(raw: bytes) -> tuple[list[JournalRecord], int, str]:
    """Walk frames in ``raw`` (header already verified).

    Returns ``(records, valid_end, reason)`` where ``valid_end`` is the
    offset just past the last intact frame and ``reason`` describes the
    first invalid tail (empty if the whole log is intact).
    """
    records: list[JournalRecord] = []
    offset = _HEADER.size
    while offset < len(raw):
        if offset + _FRAME.size > len(raw):
            return records, offset, "torn frame header"
        length, crc = _FRAME.unpack_from(raw, offset)
        if length > _MAX_PAYLOAD:
            return records, offset, f"implausible frame length {length}"
        start = offset + _FRAME.size
        end = start + length
        if end > len(raw):
            return records, offset, "torn frame payload"
        payload = raw[start:end]
        if zlib.crc32(payload) != crc:
            return records, offset, "frame CRC mismatch"
        if length != _PAYLOAD.size:
            return records, offset, f"unknown payload size {length}"
        seq, block_id, time_s, value = _PAYLOAD.unpack(payload)
        records.append(JournalRecord(seq, block_id, time_s, value))
        offset = end
    return records, offset, ""


class StreamJournal:
    """Appendable, crash-recovering observation log.

    Opening an existing file scans and repairs it (torn tail truncated,
    ``recovery`` reports what happened) and continues the sequence
    numbering where the intact records left off; opening a fresh path
    writes the header.  Appends are buffered — call :meth:`flush` (or
    rely on ``sync_every``) to make them durable; ``close`` always
    flushes.  Usable as a context manager.

    ``open_retry`` retries the open/recover step on :class:`OSError`
    under a :class:`~repro.core.retry.RetryPolicy` — a journal on
    network storage that hiccups at open time (stale handle, quota
    race) should back off and try again rather than fail the whole
    resume.  Corruption errors (bad magic, wrong version) are never
    retried; they need an operator, not patience.
    """

    def __init__(
        self,
        path: str | Path,
        sync_every: int | None = None,
        metrics=None,
        open_retry: RetryPolicy | None = None,
    ) -> None:
        if sync_every is not None and sync_every < 1:
            raise ValueError("sync_every must be positive")
        self.path = Path(path)
        self.sync_every = sync_every
        self._m = _JournalMetrics(
            NULL_REGISTRY if metrics is None else metrics
        )
        self._since_sync = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if open_retry is None:
            self.recovery = self._open_and_recover()
        else:
            self.recovery = open_retry.call(
                self._open_and_recover, retry_on=(OSError,)
            )
        self.next_seq = self.recovery.last_seq + 1

    def _open_and_recover(self) -> RecoveryReport:
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            raw = b""
        if raw and len(raw) >= _HEADER.size:
            magic, version, _ = _HEADER.unpack_from(raw, 0)
            if magic != _MAGIC:
                raise ValueError(
                    f"{self.path} is not a stream journal "
                    f"(bad magic {magic!r})"
                )
            if version != _VERSION:
                raise ValueError(
                    f"{self.path} has journal version {version}, "
                    f"expected {_VERSION}"
                )
            records, valid_end, reason = _scan(raw)
            truncated = len(raw) - valid_end
            self._handle = open(self.path, "r+b")
            if truncated:
                self._handle.truncate(valid_end)
                self._handle.flush()
                os.fsync(self._handle.fileno())
                self._m.torn_bytes.inc(truncated)
            self._handle.seek(valid_end)
            self._m.recovered.inc(len(records))
            return RecoveryReport(
                n_records=len(records),
                last_seq=records[-1].seq if records else 0,
                truncated_bytes=truncated,
                reason=reason,
            )
        # Fresh (or sub-header, i.e. torn-at-birth) journal.
        truncated = len(raw)
        self._handle = open(self.path, "wb")
        self._handle.write(_HEADER.pack(_MAGIC, _VERSION, 0))
        self._handle.flush()
        os.fsync(self._handle.fileno())
        if truncated:
            self._m.torn_bytes.inc(truncated)
        return RecoveryReport(
            n_records=0,
            last_seq=0,
            truncated_bytes=truncated,
            reason="torn file header" if truncated else "",
        )

    def append(
        self, block_id: int, time_s: float, value: float, seq: int | None = None
    ) -> int:
        """Durably frame one observation; returns its sequence number.

        ``seq`` overrides the self-assigned sequence (replicated
        streams journal under the router's per-replica numbering); it
        must exceed every sequence already journaled.
        """
        if seq is None:
            seq = self.next_seq
        elif seq < self.next_seq:
            raise ValueError(
                f"seq {seq} is not past the journal high-water "
                f"{self.next_seq - 1}"
            )
        payload = _PAYLOAD.pack(seq, int(block_id), float(time_s), float(value))
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        if any_armed():
            crashpoint("journal.append.begin")
            # Chaos mode: land the first half on disk before the torn
            # crash point so an injected death really tears the frame.
            half = len(frame) // 2
            self._handle.write(frame[:half])
            self._handle.flush()
            crashpoint("journal.mid_append")
            self._handle.write(frame[half:])
        else:
            self._handle.write(frame)
        self.next_seq = seq + 1
        self._m.appends.inc()
        self._since_sync += 1
        if self.sync_every is not None and self._since_sync >= self.sync_every:
            self.flush()
        crashpoint("journal.append.done")
        return seq

    def append_many(self, block_ids, times, values, seqs=None) -> int:
        """Append aligned observation arrays; returns the last seq.

        ``block_ids`` broadcasts against ``times``/``values``, so one
        block's whole round batch journals as
        ``append_many(block_id, times, values)`` — the write-ahead
        counterpart of :meth:`StreamEngine.ingest_many`.  Frames are
        built vectorized and written in one call, which is what keeps
        journaling affordable on the streaming hot path (see
        ``benchmarks/test_abl_pool_runner.py``).

        ``seqs`` journals under caller-assigned sequence numbers (a
        replicated router's per-replica stream); they must be strictly
        increasing and start past the journal's high-water mark, but
        may be gapped.
        """
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        n = len(times)
        if n == 0:
            return self.next_seq - 1
        if seqs is not None:
            seqs = np.asarray(seqs, dtype=np.uint64)
            if seqs.shape != times.shape:
                raise ValueError("seqs must align with times/values")
            if int(seqs[0]) < self.next_seq or (
                n > 1 and bool((np.diff(seqs.astype(np.int64)) <= 0).any())
            ):
                raise ValueError(
                    "caller-assigned seqs must be strictly increasing and "
                    f"past the journal high-water {self.next_seq - 1}"
                )
        if any_armed():
            # Chaos mode: per-record appends so every crash point and
            # torn-frame window is exercised exactly as documented.
            seq = self.next_seq - 1
            ids = np.broadcast_to(np.asarray(block_ids), times.shape)
            for i, (block_id, time_s, value) in enumerate(
                zip(ids, times, values)
            ):
                seq = self.append(
                    block_id, time_s, value,
                    seq=None if seqs is None else int(seqs[i]),
                )
            return seq
        frames = np.empty(n, dtype=_FRAME_DTYPE)
        frames["length"] = _PAYLOAD.size
        frames["seq"] = (
            np.arange(self.next_seq, self.next_seq + n, dtype=np.uint64)
            if seqs is None
            else seqs
        )
        frames["block_id"] = block_ids
        frames["time_s"] = times
        frames["value"] = values
        payloads = np.empty(n, dtype=_PAYLOAD_DTYPE)
        for name in _PAYLOAD_DTYPE.names:
            payloads[name] = frames[name]
        raw = memoryview(payloads.tobytes())
        crc32 = zlib.crc32
        size = _PAYLOAD.size
        frames["crc"] = np.fromiter(
            (crc32(raw[i * size: (i + 1) * size]) for i in range(n)),
            dtype=np.uint32,
            count=n,
        )
        self._handle.write(frames.tobytes())
        last = int(frames["seq"][-1])
        self.next_seq = last + 1
        self._m.appends.inc(n)
        self._since_sync += n
        if self.sync_every is not None and self._since_sync >= self.sync_every:
            self.flush()
        return last

    def settle(self) -> None:
        """Push buffered frames to the OS without paying an fsync.

        After ``settle`` the appended bytes live in the kernel page
        cache: they survive the *process* dying (SIGKILL, OOM), which
        is the failure a supervised worker plans for, but not the
        machine dying — :meth:`flush` is the full-durability barrier.
        A write-ahead acker must call one of the two before acking;
        frames left in the user-space buffer die with the process.
        """
        self._handle.flush()

    def flush(self) -> None:
        """Make every appended frame durable (flush + fsync)."""
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._since_sync = 0

    def close(self) -> None:
        if self._handle is not None:
            self.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "StreamJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def read_journal(path: str | Path) -> tuple[list[JournalRecord], RecoveryReport]:
    """Read a journal without repairing it (pure, side-effect free).

    Returns the intact records plus a report describing any torn tail
    (which is left on disk; only :class:`StreamJournal` truncates).
    """
    raw = Path(path).read_bytes()
    if len(raw) < _HEADER.size:
        return [], RecoveryReport(0, 0, len(raw), "torn file header")
    magic, version, _ = _HEADER.unpack_from(raw, 0)
    if magic != _MAGIC:
        raise ValueError(f"{path} is not a stream journal (bad magic {magic!r})")
    if version != _VERSION:
        raise ValueError(
            f"{path} has journal version {version}, expected {_VERSION}"
        )
    records, valid_end, reason = _scan(raw)
    return records, RecoveryReport(
        n_records=len(records),
        last_seq=records[-1].seq if records else 0,
        truncated_bytes=len(raw) - valid_end,
        reason=reason,
    )


def replay_journal(
    path: str | Path,
    engine,
    after_seq: int = 0,
    metrics=None,
    retry: RetryPolicy | None = None,
) -> int:
    """Replay journaled observations into an engine, idempotently.

    ``engine`` is duck-typed: anything with ``ingest(block_id, time_s,
    value)``.  Only records with ``seq > after_seq`` are applied, in
    sequence order, so resuming a replay from the last sequence number
    the engine durably processed never applies a record twice — and
    replaying the same journal into the same engine again with the
    returned value is a no-op.  Returns the last applied sequence
    number (``after_seq`` when nothing new was found).

    ``retry`` applies a :class:`~repro.core.retry.RetryPolicy` to the
    journal *read* (transient :class:`OSError` only); the replay itself
    runs once, since the records are already in memory.
    """
    m = _JournalMetrics(NULL_REGISTRY if metrics is None else metrics)
    if retry is None:
        records, _ = read_journal(path)
    else:
        records, _ = retry.call(
            lambda: read_journal(path), retry_on=(OSError,)
        )
    last = after_seq
    for record in records:
        if record.seq <= last:
            m.skipped.inc()
            continue
        engine.ingest(record.block_id, record.time_s, record.value)
        m.replayed.inc()
        last = record.seq
    return last

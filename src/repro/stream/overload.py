"""Overload resilience for the streaming ingest path.

Outage monitors see their *worst* input exactly when the signal matters
most: a routing event or a planet-scale round generator can offer the
collector far more observations per second than it can absorb.  Before
this module the :class:`~repro.stream.engine.StreamEngine` ingested
unboundedly — a sustained burst either OOMed the process or stalled
every producer behind it.  This module makes overload a *managed*
condition with three cooperating pieces:

**Bounded ingest queue with watermark hysteresis.**  Producers submit
observations into a queue of at most ``capacity`` entries.  Crossing
``high_watermark`` asserts the backpressure signal; it stays asserted
until the queue drains back below ``low_watermark`` (hysteresis, so the
signal doesn't flap at the boundary).  Well-behaved producers — the
round generator via :func:`paced_replay`, the
:class:`~repro.core.supervisor.PoolRunner` dispatch loop via its
``backpressure`` hook — pause or slow production while the signal is up.

**Deterministic value-based shedding.**  If producers cannot slow down
(real packets keep arriving), the queue is never allowed past
``capacity``: an overflow triggers a shed episode that drops the
*lowest-value* queued observations until the queue is back at the low
watermark.  Value is scored in three tiers: mid-window samples of
long-stable blocks shed first (tier 0 — hold-fill reconstructs a flat
plateau almost perfectly), anything near a sleep/wake phase edge sheds
only after that (tier 1 — those samples pin the phase), and
observations for provisional, unknown, or already-degraded blocks shed
last (tier 2 — they are the only path to a first or recovered verdict).
Ties break by a CRC32 hash of ``(seed, block_id, round)``, so the shed
set is a pure function of the seed and the arrival/pump sequence —
bit-identical across runs, replayable in tests.

**Honest degradation.**  A shed observation simply never reaches the
ring, so the window it belonged to materializes with a gap: the
existing fill/quality machinery counts it, the classifier's quality
gate refuses heavily shed windows with the explicit
``insufficient-data`` verdict, and every affected close additionally
publishes a :class:`~repro.stream.events.ShedDegraded` event naming how
many observations the shedder took from that window.  Windows the
shedder did not touch keep exact bit-for-bit batch parity.

The controller is a drop-in engine: ``ingest``/``ingest_many``/``flush``
delegate straight through when the queue is empty (the unloaded hot
path is two integer increments and one branch), so
:meth:`~repro.core.pipeline.BatchResult.replay_into` and
:func:`~repro.stream.journal.replay_journal` work unchanged against it.
"""

from __future__ import annotations

import struct
import zlib
from collections import deque
from dataclasses import dataclass
from math import ceil, floor

import numpy as np

from repro.core.timeseries import round_index
from repro.obs.events import NULL_EVENT_LOG
from repro.obs.registry import NULL_REGISTRY
from repro.stream.events import ObservationShed, ShedDegraded, WindowClosed

__all__ = [
    "AdmissionController",
    "OverloadConfig",
    "ShedRecord",
    "paced_replay",
]


@dataclass(frozen=True)
class OverloadConfig:
    """Knobs for the overload-resilience layer.

    Attributes:
        capacity: hard bound on queued (submitted but not yet ingested)
            observations; an overflow triggers a shed episode.
        high_watermark: queue fraction at which backpressure asserts.
        low_watermark: queue fraction below which backpressure releases
            (and the depth a shed episode drains back to).
        edge_guard_rounds: observations within this many rounds of a
            block's last sleep/wake edge are protected (tier 1).
        stable_closes: consecutive agreeing window closes before a block
            counts as long-stable (sheddable at tier 0).
        seed: tie-break seed; the shed set is a deterministic function
            of this seed and the arrival/pump sequence.
        shed_log_capacity: most recent shed decisions retained for
            inspection/replay comparison (the log is a bounded ring so a
            weeks-long soak cannot grow it without limit).
    """

    capacity: int = 4096
    high_watermark: float = 0.75
    low_watermark: float = 0.5
    edge_guard_rounds: int = 3
    stable_closes: int = 3
    seed: int = 0
    shed_log_capacity: int = 100_000

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be positive")
        if not 0.0 < self.low_watermark < self.high_watermark <= 1.0:
            raise ValueError(
                "watermarks must satisfy 0 < low_watermark < "
                "high_watermark <= 1"
            )
        if self.edge_guard_rounds < 0:
            raise ValueError("edge_guard_rounds must be non-negative")
        if self.stable_closes < 1:
            raise ValueError("stable_closes must be at least 1")
        if self.shed_log_capacity < 1:
            raise ValueError("shed_log_capacity must be positive")

    @property
    def high_depth(self) -> int:
        """Absolute queue depth at which backpressure asserts."""
        return ceil(self.high_watermark * self.capacity)

    @property
    def low_depth(self) -> int:
        """Absolute depth backpressure releases at (and sheds drain to)."""
        return floor(self.low_watermark * self.capacity)


@dataclass(frozen=True)
class ShedRecord:
    """One shed decision, exactly as replayable telemetry.

    ``seq`` is the controller-wide submission sequence number; two runs
    with the same seed and arrival/pump sequence produce identical
    record lists (the determinism tests compare them wholesale).
    """

    seq: int
    block_id: int
    round_index: int
    time_s: float
    value: float
    tier: int


class _OverloadMetrics:
    """Pre-bound overload metrics (null registry by default).

    ``stream_ingest_queue_depth`` and ``stream_shed_ratio`` are the two
    gauges :func:`repro.obs.alerts.default_pool_rules` watches.
    """

    __slots__ = ("enabled", "submitted", "serviced", "shed", "episodes",
                 "engagements", "engaged", "depth", "shed_ratio")

    def __init__(self, registry) -> None:
        self.enabled = registry.enabled
        self.submitted = registry.counter("stream_submitted_total")
        self.serviced = registry.counter("stream_serviced_total")
        self.shed = tuple(
            registry.counter("stream_observations_shed_total", tier=str(t))
            for t in range(3)
        )
        self.episodes = registry.counter("stream_shed_episodes_total")
        self.engagements = registry.counter(
            "stream_backpressure_engagements_total"
        )
        self.engaged = registry.gauge("stream_backpressure_engaged")
        self.depth = registry.gauge("stream_ingest_queue_depth")
        self.shed_ratio = registry.gauge("stream_shed_ratio")


class _CloseWatcher:
    """Bus sink that flags window closes overlapping shed observations."""

    __slots__ = ("controller",)

    def __init__(self, controller: "AdmissionController") -> None:
        self.controller = controller

    def emit(self, event) -> None:
        if isinstance(event, WindowClosed):
            self.controller._on_close(event)


class AdmissionController:
    """Bounded, shedding, backpressure-signalling front of an engine.

    Two usage modes:

    * **decoupled** (overload-capable): producers call :meth:`submit`,
      a service loop calls :meth:`pump` with whatever per-cycle budget
      the hardware affords.  The queue absorbs bursts, backpressure
      tells producers to pause, and overflow sheds deterministically.
    * **drop-in** (synchronous): :meth:`ingest`/:meth:`ingest_many`/
      :meth:`flush` mirror :class:`~repro.stream.engine.StreamEngine`,
      delegating directly when the queue is empty — replay helpers and
      journals that expect an engine work unchanged, at near-zero
      overhead while unloaded.

    ``metrics``/``events`` attach the usual registry/structured log;
    verdict-affecting behavior (what is shed, when) never depends on
    them.
    """

    def __init__(
        self,
        engine,
        config: OverloadConfig | None = None,
        metrics=None,
        events=None,
    ) -> None:
        self.engine = engine
        self.config = config or OverloadConfig()
        self.metrics = NULL_REGISTRY if metrics is None else metrics
        self.events = NULL_EVENT_LOG if events is None else events
        self._m = _OverloadMetrics(self.metrics)
        self._queue: deque = deque()
        self._paused = False
        self._seq = 0
        self.n_submitted = 0
        self.n_serviced = 0
        self.n_shed = 0
        self.n_episodes = 0
        self.n_engagements = 0
        self.max_depth = 0
        self._synced_submitted = 0
        self._synced_serviced = 0
        self._high = self.config.high_depth
        self._low = self.config.low_depth
        self._shed_log: deque = deque(maxlen=self.config.shed_log_capacity)
        # block_id -> {round -> shed count}, pruned as windows close.
        self._shed_rounds: dict[int, dict[int, int]] = {}
        self._round_cap = max(
            1024, 4 * getattr(engine.config, "window_rounds", 256)
        )
        engine.bus.subscribe(_CloseWatcher(self))

    # -- producer side -----------------------------------------------------

    def submit(self, block_id: int, time_s: float, value: float) -> None:
        """Enqueue one observation (the decoupled producer API).

        Crossing the high watermark asserts backpressure; exceeding
        ``capacity`` triggers a deterministic shed episode that drains
        the queue back to the low watermark.  The queue therefore never
        holds more than ``capacity`` observations.
        """
        self._seq += 1
        self.n_submitted += 1
        self._queue.append((self._seq, block_id, float(time_s), float(value)))
        depth = len(self._queue)
        if depth > self.max_depth:
            self.max_depth = depth
        if depth >= self._high and not self._paused:
            self._engage(depth)
        if depth > self.config.capacity:
            self._shed_episode()

    def pump(self, budget: int | None = None) -> int:
        """Service up to ``budget`` queued observations into the engine.

        ``None`` drains everything.  Releases backpressure when the
        drain brings the queue to or below the low watermark.  Returns
        the number of observations ingested.
        """
        if budget is not None and budget < 0:
            raise ValueError("budget must be non-negative")
        queue = self._queue
        n = len(queue) if budget is None else min(budget, len(queue))
        ingest = self.engine.ingest
        for _ in range(n):
            _, block_id, time_s, value = queue.popleft()
            ingest(block_id, time_s, value)
        self.n_serviced += n
        depth = len(queue)
        if self._paused and depth <= self._low:
            self._release(depth)
        if n:
            self._sync()
        return n

    def backpressure(self) -> bool:
        """The admission signal producers honor by pausing production."""
        return self._paused

    @property
    def paused(self) -> bool:
        return self._paused

    @property
    def depth(self) -> int:
        return len(self._queue)

    # -- drop-in engine interface ------------------------------------------

    def ingest(self, block_id: int, time_s: float, value: float) -> None:
        """Synchronous drop-in for ``StreamEngine.ingest``.

        With an empty queue this is a direct delegation (two integer
        increments and one branch of overhead — the unloaded hot path);
        with queued observations it preserves arrival order by going
        through the queue and draining it.
        """
        if self._queue:
            self.submit(block_id, time_s, value)
            self.pump()
            return
        self._seq += 1
        self.n_submitted += 1
        self.n_serviced += 1
        self.engine.ingest(block_id, time_s, value)

    def ingest_many(self, block_id: int, times, values) -> None:
        """Feed a batch for one block, in arrival order (drop-in)."""
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if times.shape != values.shape:
            raise ValueError("times and values must have the same shape")
        for t, v in zip(times, values):
            self.ingest(block_id, float(t), float(v))

    def flush(
        self, block_id: int | None = None, close_partial: bool = False
    ) -> None:
        """Drain the queue fully, then flush the wrapped engine."""
        self.pump()
        self.engine.flush(block_id=block_id, close_partial=close_partial)
        self._sync()

    # -- inspection --------------------------------------------------------

    def shed_log(self) -> list[ShedRecord]:
        """The retained shed decisions, oldest first."""
        return list(self._shed_log)

    def shed_rounds(self, block_id: int) -> dict[int, int]:
        """Outstanding shed counts per round for one block (pre-prune)."""
        return dict(self._shed_rounds.get(block_id, {}))

    @property
    def shed_ratio(self) -> float:
        return self.n_shed / self.n_submitted if self.n_submitted else 0.0

    def stats(self) -> dict:
        """Operational snapshot (what the runbook asks operators for)."""
        return {
            "n_submitted": self.n_submitted,
            "n_serviced": self.n_serviced,
            "n_shed": self.n_shed,
            "n_episodes": self.n_episodes,
            "n_engagements": self.n_engagements,
            "shed_ratio": self.shed_ratio,
            "depth": len(self._queue),
            "max_depth": self.max_depth,
            "paused": self._paused,
        }

    # -- internals ---------------------------------------------------------

    def _sync(self) -> None:
        """Flush batched tallies into the registry (amortized hot path)."""
        d = self.n_submitted - self._synced_submitted
        if d:
            self._m.submitted.inc(d)
            self._synced_submitted = self.n_submitted
        d = self.n_serviced - self._synced_serviced
        if d:
            self._m.serviced.inc(d)
            self._synced_serviced = self.n_serviced
        if self._m.enabled:
            self._m.depth.set(len(self._queue))
            self._m.shed_ratio.set(self.shed_ratio)

    def _engage(self, depth: int) -> None:
        self._paused = True
        self.n_engagements += 1
        self._m.engagements.inc()
        self._m.engaged.set(1)
        self.events.warning(
            "stream.backpressure_engaged",
            depth=depth,
            high_depth=self._high,
        )

    def _release(self, depth: int) -> None:
        self._paused = False
        self._m.engaged.set(0)
        self.events.info(
            "stream.backpressure_released",
            depth=depth,
            low_depth=self._low,
        )

    def _score(self, entry, memo: dict) -> tuple[int, int, int]:
        """(tier, tie-break hash, round) for one queued observation.

        Lower tuples shed first.  Tier is derived from *public* engine
        state only (stable run length, last phase edge, provisional
        mean), so the score — and therefore the shed set — is a
        deterministic function of the seed and the observation history.
        """
        _, block_id, time_s, value = entry
        engine_config = self.engine.config
        r = int(
            round_index(time_s, engine_config.round_s, engine_config.start_s)
        )
        cached = memo.get(block_id)
        if cached is None:
            engine = self.engine
            if (
                not engine.tracked(block_id)
                or engine.stable_run(block_id) < self.config.stable_closes
            ):
                cached = (2, None, None)
            else:
                report = engine.last_report(block_id)
                if report is not None and not report.is_classified:
                    # Starving an already-degraded block would keep it
                    # degraded forever; its observations are the only
                    # path back to a verdict.
                    cached = (2, None, None)
                else:
                    prov = engine.provisional(block_id)
                    mean = prov.mean if prov.primed else None
                    cached = (0, engine.last_edge_round(block_id), mean)
            memo[block_id] = cached
        base_tier, edge_round, mean = cached
        tier = base_tier
        if base_tier == 0:
            if (
                edge_round is not None
                and abs(r - edge_round) <= self.config.edge_guard_rounds
            ):
                tier = 1
            elif (
                mean is not None
                and abs(value - mean) <= engine_config.edge_margin
            ):
                # Inside the midline dead band: this sample could be the
                # crossing that defines the next sleep/wake edge.
                tier = 1
        h = zlib.crc32(struct.pack("<qqq", self.config.seed, block_id, r))
        return tier, h, r

    def _shed_episode(self) -> None:
        entries = list(self._queue)
        depth_before = len(entries)
        n_drop = depth_before - self._low
        memo: dict = {}
        keys = [self._score(entry, memo) for entry in entries]
        order = sorted(range(depth_before), key=keys.__getitem__)
        drop = set(order[:n_drop])
        self._queue = deque(
            entry for i, entry in enumerate(entries) if i not in drop
        )
        tier_counts = [0, 0, 0]
        publish = self.engine.bus.publish
        for i in sorted(drop):
            seq, block_id, time_s, value = entries[i]
            tier, _, r = keys[i]
            tier_counts[tier] += 1
            self.n_shed += 1
            self._shed_log.append(
                ShedRecord(
                    seq=seq,
                    block_id=block_id,
                    round_index=r,
                    time_s=time_s,
                    value=value,
                    tier=tier,
                )
            )
            rounds = self._shed_rounds.setdefault(block_id, {})
            rounds[r] = rounds.get(r, 0) + 1
            if len(rounds) > self._round_cap:
                # A block that never closes (no ingested observations)
                # cannot prune via the close watcher; cap its footprint
                # by forgetting the oldest rounds, which could only have
                # annotated windows that are already behind us.
                for stale in sorted(rounds)[: len(rounds) - self._round_cap]:
                    del rounds[stale]
            publish(
                ObservationShed(
                    block_id=block_id,
                    round_index=r,
                    time_s=time_s,
                    value=value,
                    tier=tier,
                    depth=depth_before,
                    seq=seq,
                )
            )
            self._m.shed[tier].inc()
        self.n_episodes += 1
        self._m.episodes.inc()
        self.events.warning(
            "stream.shed",
            n_shed=n_drop,
            depth_before=depth_before,
            depth_after=len(self._queue),
            tier0=tier_counts[0],
            tier1=tier_counts[1],
            tier2=tier_counts[2],
        )
        self._sync()

    def _on_close(self, event: WindowClosed) -> None:
        rounds = self._shed_rounds.get(event.block_id)
        if not rounds:
            return
        start = event.window_start_round
        end = start + event.n_rounds
        n_shed = sum(
            count for r, count in rounds.items() if start <= r < end
        )
        if n_shed:
            self.engine.bus.publish(
                ShedDegraded(
                    block_id=event.block_id,
                    round_index=event.round_index,
                    time_s=event.time_s,
                    window_start_round=start,
                    n_rounds=event.n_rounds,
                    n_shed=n_shed,
                )
            )
            self.events.warning(
                "stream.shed_degraded",
                block_id=event.block_id,
                window_start_round=start,
                n_rounds=event.n_rounds,
                n_shed=n_shed,
                label=event.report.label.value,
            )
        # Rounds before the next window's start can never annotate a
        # future close; forget them (bounded-memory invariant).
        hop = getattr(self.engine.config, "hop", event.n_rounds)
        horizon = start + (event.n_rounds if event.partial else hop)
        for r in [r for r in rounds if r < horizon]:
            del rounds[r]
        if not rounds:
            del self._shed_rounds[event.block_id]


def paced_replay(
    stream,
    controller: AdmissionController,
    pump_every: int = 64,
    pump_budget: int | None = None,
) -> tuple[int, int]:
    """Feed ``(block_id, time_s, value)`` tuples, honoring backpressure.

    This is the producer half of the admission contract — the shape the
    round generator uses: submit observations, service the queue every
    ``pump_every`` submissions with ``pump_budget`` observations per
    cycle, and when the backpressure signal asserts, *stop producing*
    and drain until it releases.  A producer wired this way never
    triggers shedding: the queue stays at or below the high watermark
    (plus the in-flight batch) by construction.

    Returns ``(n_fed, n_pause_cycles)``.
    """
    if pump_every < 1:
        raise ValueError("pump_every must be positive")
    if pump_budget is not None and pump_budget < 1:
        raise ValueError("pump_budget must be positive")
    n_fed = 0
    n_pauses = 0
    since_pump = 0
    for block_id, time_s, value in stream:
        while controller.backpressure():
            n_pauses += 1
            controller.pump(pump_budget)
        controller.submit(block_id, time_s, value)
        n_fed += 1
        since_pump += 1
        if since_pump >= pump_every:
            controller.pump(pump_budget)
            since_pump = 0
    while controller.depth:
        controller.pump(pump_budget)
    return n_fed, n_pauses

"""Bounded ring-buffer grid for streaming ingestion.

:class:`RoundWindow` is the streaming counterpart of
:func:`repro.core.timeseries.observations_to_grid`: observations snap to
the same round grid, duplicates resolve most-recent-wins by observation
timestamp (arrival order breaking ties, exactly like the batch path's
stable time sort), and materializing a window runs the same
:func:`~repro.core.timeseries.fill_gaps` fill with the same
:class:`~repro.core.timeseries.QualityReport` bookkeeping.  Memory is
bounded: only ``capacity`` rounds are retained, and the engine advances
``base`` past rounds it has finished with.
"""

from __future__ import annotations

import numpy as np

from repro.core.timeseries import QualityReport, fill_gaps, longest_nan_run

__all__ = ["RoundWindow"]


class RoundWindow:
    """A sliding grid of rounds ``[base, base + capacity)``.

    Slot state per retained round: the winning value, the timestamp that
    won it (for most-recent-wins), and how many extra observations landed
    on it (the duplicate count the quality report uses).
    """

    def __init__(self, capacity: int, base: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.base = base
        self.max_round = base - 1
        self._values = np.full(capacity, np.nan)
        self._obs_time = np.full(capacity, -np.inf)
        self._observed = np.zeros(capacity, dtype=bool)
        self._duplicates = np.zeros(capacity, dtype=np.int64)

    def _slot(self, r: int) -> int:
        return r % self.capacity

    def observe(self, r: int, time_s: float, value: float) -> None:
        """Record one observation for round ``r`` (most-recent-wins).

        The caller (the engine) is responsible for dropping rounds below
        ``base`` as late and for advancing the ring before rounds at or
        past ``base + capacity`` arrive; both are errors here.
        """
        if r < self.base:
            raise ValueError(f"round {r} is below the ring base {self.base}")
        if r >= self.base + self.capacity:
            raise ValueError(
                f"round {r} is beyond ring capacity "
                f"[{self.base}, {self.base + self.capacity})"
            )
        i = self._slot(r)
        if self._observed[i]:
            self._duplicates[i] += 1
            # >= so a same-timestamp later arrival wins, matching the
            # batch path's stable sort by time.
            if time_s >= self._obs_time[i]:
                self._values[i] = value
                self._obs_time[i] = time_s
        else:
            self._observed[i] = True
            self._values[i] = value
            self._obs_time[i] = time_s
        if r > self.max_round:
            self.max_round = r

    def value_at(self, r: int) -> float:
        """The winning value for round ``r``; NaN when unobserved."""
        if not self.base <= r < self.base + self.capacity:
            return float("nan")
        i = self._slot(r)
        return float(self._values[i]) if self._observed[i] else float("nan")

    def advance_base(self, new_base: int) -> None:
        """Evict every round below ``new_base`` (bounded-memory step)."""
        if new_base <= self.base:
            return
        for r in range(self.base, min(new_base, self.base + self.capacity)):
            i = self._slot(r)
            self._observed[i] = False
            self._values[i] = np.nan
            self._obs_time[i] = -np.inf
            self._duplicates[i] = 0
        self.base = new_base
        if self.max_round < new_base - 1:
            self.max_round = new_base - 1

    def grid(self, start: int, n_rounds: int) -> np.ndarray:
        """The raw (unfilled) grid for rounds ``[start, start + n_rounds)``."""
        if start < self.base or start + n_rounds > self.base + self.capacity:
            raise ValueError(
                f"window [{start}, {start + n_rounds}) outside retained "
                f"rounds [{self.base}, {self.base + self.capacity})"
            )
        out = np.full(n_rounds, np.nan)
        for offset in range(n_rounds):
            out[offset] = self.value_at(start + offset)
        return out

    def materialize(
        self,
        start: int,
        n_rounds: int,
        policy: str = "hold",
        max_gap: int | None = None,
    ) -> tuple[np.ndarray, QualityReport]:
        """Grid-and-fill one window, exactly like ``clean_observations``.

        Returns the filled series plus the same :class:`QualityReport`
        the batch cleaning pass would produce for the same observations —
        this is what makes window-close verdicts bit-identical to
        :func:`repro.core.classify.classify_series` on the batch path.
        """
        grid = self.grid(start, n_rounds)
        n_observed = int(np.sum(~np.isnan(grid)))
        duplicates = 0
        for offset in range(n_rounds):
            r = start + offset
            i = self._slot(r)
            if self._observed[i]:
                duplicates += int(self._duplicates[i])
        longest = longest_nan_run(grid) if n_rounds else 0
        if n_observed == 0:
            return grid, QualityReport(
                n_rounds=n_rounds,
                n_observed=0,
                n_duplicates=duplicates,
                n_filled=0,
                longest_gap=longest,
            )
        filled, n_filled = fill_gaps(grid, policy=policy, max_gap=max_gap)
        return filled, QualityReport(
            n_rounds=n_rounds,
            n_observed=n_observed,
            n_duplicates=duplicates,
            n_filled=n_filled,
            longest_gap=longest,
        )

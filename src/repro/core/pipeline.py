"""End-to-end measurement of simulated blocks.

This module wires the layers together the way the paper's deployment does:
a block's oracle is probed adaptively, each round's counts feed the EWMA
estimators, the resulting Â_s series is cleaned and trimmed to midnight
UTC, and the spectral classifier labels the block.  Ground truth (the full
response matrix) rides along so validation experiments can compare the
estimate-driven label against the truth-driven one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.classify import (
    ClassifierConfig,
    DiurnalReport,
    classify_series,
)
from repro.core.estimator import AvailabilityEstimator, EstimatorConfig
from repro.core.timeseries import is_stationary, trim_to_midnight
from repro.net.blocks import Block24, ResponseOracle
from repro.probing.prober import AdaptiveProber, ProberConfig
from repro.probing.rounds import RoundSchedule, probes_per_hour

__all__ = [
    "BlockMeasurement",
    "MeasurementConfig",
    "RecordingEstimator",
    "classify_ground_truth",
    "measure_block",
    "measure_blocks",
]

# Trinocular refuses to probe blocks with too few historically active
# addresses (do-no-harm policy); the paper traces its USC false negatives
# to exactly this threshold.
DEFAULT_MIN_EVER_ACTIVE = 15


@dataclass(frozen=True)
class MeasurementConfig:
    """Knobs for the full per-block measurement pipeline."""

    estimator: EstimatorConfig = field(default_factory=EstimatorConfig)
    prober: ProberConfig = field(default_factory=ProberConfig)
    classifier: ClassifierConfig = field(default_factory=ClassifierConfig)
    min_ever_active: int = DEFAULT_MIN_EVER_ACTIVE
    trim_midnight: bool = True


class RecordingEstimator:
    """Availability feedback that records the estimator state every round."""

    def __init__(self, estimator: AvailabilityEstimator) -> None:
        self.estimator = estimator
        self.a_short: list[float] = []
        self.a_long: list[float] = []
        self.a_operational: list[float] = []

    def current(self) -> float:
        return self.estimator.current()

    def observe(self, positives: int, total: int) -> None:
        self.estimator.observe(positives, total)
        self.a_short.append(self.estimator.a_short)
        self.a_long.append(self.estimator.a_long)
        self.a_operational.append(self.estimator.a_operational)

    def restart(self) -> None:
        self.estimator.restart()

    def series(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return (
            np.array(self.a_short),
            np.array(self.a_long),
            np.array(self.a_operational),
        )


@dataclass
class BlockMeasurement:
    """Everything the pipeline learned about one block.

    ``report`` is the classification from the estimated Â_s (None when the
    block was skipped as too sparse); ``true_report`` is the classification
    from ground-truth A, available because the simulation knows the full
    response matrix (as a survey would).
    """

    block_id: int
    schedule: RoundSchedule
    positives: np.ndarray
    totals: np.ndarray
    states: np.ndarray
    a_short: np.ndarray
    a_long: np.ndarray
    a_operational: np.ndarray
    true_availability: np.ndarray
    trim: slice
    n_ever_active: int
    skipped: bool
    report: DiurnalReport | None
    true_report: DiurnalReport | None
    stationary: bool

    @property
    def total_probes(self) -> int:
        return int(self.totals.sum())

    def probe_rate_per_hour(self) -> float:
        return probes_per_hour(self.total_probes, self.schedule)

    def mean_probes_per_round(self) -> float:
        return float(self.totals.mean()) if len(self.totals) else 0.0

    @property
    def mean_true_availability(self) -> float:
        return float(self.true_availability.mean())

    def underestimate_fraction(self) -> float:
        """Fraction of rounds where Â_o ≤ true A — the Figure 5 criterion.

        Rounds where the true availability is below the 0.1 operational
        floor are excluded: the paper omits very-sparse cases, which
        Trinocular would not probe and where Â_o cannot go low enough.
        """
        floor = 0.1
        comparable = self.true_availability >= floor
        if not comparable.any():
            return 1.0
        ok = self.a_operational[comparable] <= self.true_availability[comparable]
        return float(ok.mean())


def classify_ground_truth(
    oracle: ResponseOracle,
    schedule: RoundSchedule,
    config: MeasurementConfig | None = None,
) -> DiurnalReport:
    """Classify a block from its *true* availability series.

    This is the paper's ground-truth path (survey data in section 3.2.3):
    same cleaning and classifier, but fed the exact per-round A.
    """
    config = config or MeasurementConfig()
    series = oracle.true_availability()
    trim = (
        trim_to_midnight(schedule.times(), schedule.round_s)
        if config.trim_midnight
        else slice(0, len(series))
    )
    return classify_series(series[trim], schedule.round_s, config.classifier)


def measure_block(
    block: Block24,
    schedule: RoundSchedule,
    rng: np.random.Generator,
    config: MeasurementConfig | None = None,
    walk_seed: int | None = None,
) -> BlockMeasurement:
    """Run the full pipeline on one block.

    The oracle realization consumes ``rng``; the prober's pseudorandom walk
    uses ``walk_seed`` (or a draw from ``rng``) so runs are reproducible.
    """
    config = config or MeasurementConfig()
    times = schedule.times()
    oracle = block.realize(times, rng)
    ever_active = oracle.ever_active
    truth = oracle.true_availability()
    trim = (
        trim_to_midnight(times, schedule.round_s)
        if config.trim_midnight
        else slice(0, schedule.n_rounds)
    )
    skipped = len(ever_active) < config.min_ever_active

    if skipped:
        zeros = np.zeros(schedule.n_rounds)
        return BlockMeasurement(
            block_id=block.block_id,
            schedule=schedule,
            positives=np.zeros(schedule.n_rounds, dtype=np.int16),
            totals=np.zeros(schedule.n_rounds, dtype=np.int16),
            states=np.zeros(schedule.n_rounds, dtype=np.int8),
            a_short=zeros.copy(),
            a_long=zeros.copy(),
            a_operational=zeros.copy(),
            true_availability=truth,
            trim=trim,
            n_ever_active=len(ever_active),
            skipped=True,
            report=None,
            true_report=None,
            stationary=True,
        )

    if walk_seed is None:
        walk_seed = int(rng.integers(0, 2**31 - 1))
    prober_config = ProberConfig(
        max_probes_per_round=config.prober.max_probes_per_round,
        belief=config.prober.belief,
        walk_seed=walk_seed,
    )
    prober = AdaptiveProber(ever_active, prober_config)
    feedback = RecordingEstimator(AvailabilityEstimator(config.estimator))
    log = prober.run(oracle, schedule, feedback)
    a_short, a_long, a_oper = feedback.series()

    report = classify_series(
        a_short[trim], schedule.round_s, config.classifier
    )
    true_report = classify_series(
        truth[trim], schedule.round_s, config.classifier
    )
    stationary = is_stationary(times[trim], truth[trim], len(ever_active))

    return BlockMeasurement(
        block_id=block.block_id,
        schedule=schedule,
        positives=log.positives,
        totals=log.totals,
        states=log.states,
        a_short=a_short,
        a_long=a_long,
        a_operational=a_oper,
        true_availability=truth,
        trim=trim,
        n_ever_active=len(ever_active),
        skipped=False,
        report=report,
        true_report=true_report,
        stationary=stationary,
    )


def measure_blocks(
    blocks: list[Block24],
    schedule: RoundSchedule,
    seed: int = 0,
    config: MeasurementConfig | None = None,
) -> list[BlockMeasurement]:
    """Measure a list of blocks with independent, reproducible randomness."""
    config = config or MeasurementConfig()
    children = np.random.SeedSequence(seed).spawn(len(blocks))
    results = []
    for block, child in zip(blocks, children):
        rng = np.random.default_rng(child)
        results.append(measure_block(block, schedule, rng, config))
    return results

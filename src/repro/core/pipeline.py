"""End-to-end measurement of simulated blocks.

This module wires the layers together the way the paper's deployment does:
a block's oracle is probed adaptively, each round's counts feed the EWMA
estimators, the resulting Â_s series is cleaned and trimmed to midnight
UTC, and the spectral classifier labels the block.  Ground truth (the full
response matrix) rides along so validation experiments can compare the
estimate-driven label against the truth-driven one.

Two robustness layers sit on top of the per-block path:

* **fault injection** — :func:`measure_block` accepts a
  :class:`~repro.faults.plan.FaultPlan`; probe loss hits the oracle,
  crashes add restarts, and the estimate stream is degraded
  (drops/duplicates/gaps/clock errors) then re-cleaned through the
  section 2.2 grid-and-fill path, yielding a per-block
  :class:`~repro.core.timeseries.QualityReport`;
* **batch resilience** — :class:`BatchRunner` isolates per-block
  exceptions as :class:`BlockFailure` records, retries with fresh seed
  substreams, checkpoints periodically through ``repro.datasets.io``, and
  resumes bit-identically to an uninterrupted run.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Union

import numpy as np

from repro.core.classify import (
    ClassifierConfig,
    DiurnalReport,
    classify_series,
)
from repro.core.estimator import AvailabilityEstimator, EstimatorConfig
from repro.core.retry import RetryPolicy
from repro.core.timeseries import (
    QualityReport,
    clean_observations,
    is_stationary,
    trim_to_midnight,
)
from repro.faults.crash import crashpoint
from repro.net.blocks import Block24, ResponseOracle
from repro.obs.events import NULL_EVENT_LOG
from repro.obs.export import RunManifest
from repro.obs.registry import NULL_REGISTRY
from repro.obs.tracing import NULL_TRACER
from repro.probing.prober import AdaptiveProber, ProberConfig
from repro.probing.rounds import RoundSchedule, probes_per_hour

if TYPE_CHECKING:
    from repro.faults.config import FaultConfig
    from repro.faults.plan import FaultPlan

__all__ = [
    "BatchConfig",
    "BatchResult",
    "BatchRunner",
    "BlockFailure",
    "BlockMeasurement",
    "MeasurementConfig",
    "RecordingEstimator",
    "classify_ground_truth",
    "measure_block",
    "measure_blocks",
]

# Trinocular refuses to probe blocks with too few historically active
# addresses (do-no-harm policy); the paper traces its USC false negatives
# to exactly this threshold.
DEFAULT_MIN_EVER_ACTIVE = 15


@dataclass(frozen=True)
class MeasurementConfig:
    """Knobs for the full per-block measurement pipeline.

    ``fill_policy`` and ``max_fill_gap`` only matter on the degraded
    path: they choose how multi-round gaps in a faulty stream are filled
    before spectral analysis (see
    :func:`~repro.core.timeseries.fill_gaps`).
    """

    estimator: EstimatorConfig = field(default_factory=EstimatorConfig)
    prober: ProberConfig = field(default_factory=ProberConfig)
    classifier: ClassifierConfig = field(default_factory=ClassifierConfig)
    min_ever_active: int = DEFAULT_MIN_EVER_ACTIVE
    trim_midnight: bool = True
    fill_policy: str = "hold"
    max_fill_gap: int | None = None


class RecordingEstimator:
    """Availability feedback that records the estimator state every round."""

    def __init__(self, estimator: AvailabilityEstimator) -> None:
        self.estimator = estimator
        self.a_short: list[float] = []
        self.a_long: list[float] = []
        self.a_operational: list[float] = []

    def current(self) -> float:
        return self.estimator.current()

    def observe(self, positives: int, total: int) -> None:
        self.estimator.observe(positives, total)
        self.a_short.append(self.estimator.a_short)
        self.a_long.append(self.estimator.a_long)
        self.a_operational.append(self.estimator.a_operational)

    def restart(self) -> None:
        self.estimator.restart()

    def series(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return (
            np.array(self.a_short),
            np.array(self.a_long),
            np.array(self.a_operational),
        )


@dataclass
class BlockMeasurement:
    """Everything the pipeline learned about one block.

    ``report`` is the classification from the estimated Â_s (None when the
    block was skipped as too sparse); ``true_report`` is the classification
    from ground-truth A, available because the simulation knows the full
    response matrix (as a survey would).  ``quality`` is set only on the
    degraded path, where the estimate stream went through grid-and-fill
    cleaning.

    Every per-round array — counts, states, the three estimate series, and
    the truth — shares one length convention (``schedule.n_rounds``), and
    ``trim`` indexes into that shared axis; this holds for skipped blocks
    too and is enforced at construction.
    """

    block_id: int
    schedule: RoundSchedule
    positives: np.ndarray
    totals: np.ndarray
    states: np.ndarray
    a_short: np.ndarray
    a_long: np.ndarray
    a_operational: np.ndarray
    true_availability: np.ndarray
    trim: slice
    n_ever_active: int
    skipped: bool
    report: DiurnalReport | None
    true_report: DiurnalReport | None
    stationary: bool
    quality: QualityReport | None = None

    _ROUND_ARRAYS = (
        "positives",
        "totals",
        "states",
        "a_short",
        "a_long",
        "a_operational",
        "true_availability",
    )

    def __post_init__(self) -> None:
        n = self.schedule.n_rounds
        for name in self._ROUND_ARRAYS:
            length = len(getattr(self, name))
            if length != n:
                raise ValueError(
                    f"{name} has {length} rounds, schedule has {n}"
                )
        start, stop = self.trim.start or 0, self.trim.stop
        if stop is None or not 0 <= start <= stop <= n:
            raise ValueError(
                f"trim {self.trim} out of bounds for {n} rounds"
            )

    @classmethod
    def for_skipped(
        cls,
        block_id: int,
        schedule: RoundSchedule,
        truth: np.ndarray,
        trim: slice,
        n_ever_active: int,
    ) -> "BlockMeasurement":
        """A self-consistent result for a block the prober refused.

        Counts and estimate series are zero-filled to the schedule's
        length (same dtypes as the live path), no reports are produced,
        and stationarity is evaluated from the truth series exactly as on
        the measured path rather than hardcoded.
        """
        n = schedule.n_rounds
        zeros = np.zeros(n)
        times = schedule.times()
        return cls(
            block_id=block_id,
            schedule=schedule,
            positives=np.zeros(n, dtype=np.int16),
            totals=np.zeros(n, dtype=np.int16),
            states=np.zeros(n, dtype=np.int8),
            a_short=zeros.copy(),
            a_long=zeros.copy(),
            a_operational=zeros.copy(),
            true_availability=truth,
            trim=trim,
            n_ever_active=n_ever_active,
            skipped=True,
            report=None,
            true_report=None,
            stationary=is_stationary(
                times[trim], truth[trim], n_ever_active
            ),
        )

    @property
    def total_probes(self) -> int:
        return int(self.totals.sum())

    def probe_rate_per_hour(self) -> float:
        return probes_per_hour(self.total_probes, self.schedule)

    def mean_probes_per_round(self) -> float:
        return float(self.totals.mean()) if len(self.totals) else 0.0

    @property
    def mean_true_availability(self) -> float:
        return float(self.true_availability.mean())

    def observation_stream(
        self, series: str = "a_short", trimmed: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """One estimate series as a ``(times, values)`` observation stream.

        This is the bridge to the streaming engine: the returned pair can
        be fed to :meth:`repro.stream.engine.StreamEngine.ingest_many`
        round by round, replaying the measurement as if it were arriving
        live.  ``series`` names any per-round float series (``a_short``,
        ``a_long``, ``a_operational``, ``true_availability``);
        ``trimmed`` restricts to the midnight-aligned span the batch
        classifier saw.
        """
        if series not in self._ROUND_ARRAYS:
            raise ValueError(
                f"unknown series {series!r}; expected one of "
                f"{self._ROUND_ARRAYS}"
            )
        times = self.schedule.times()
        values = np.asarray(getattr(self, series), dtype=np.float64)
        if trimmed:
            return times[self.trim], values[self.trim]
        return times, values

    def underestimate_fraction(self) -> float:
        """Fraction of rounds where Â_o ≤ true A — the Figure 5 criterion.

        Rounds where the true availability is below the 0.1 operational
        floor are excluded: the paper omits very-sparse cases, which
        Trinocular would not probe and where Â_o cannot go low enough.
        """
        floor = 0.1
        comparable = self.true_availability >= floor
        if not comparable.any():
            return 1.0
        ok = self.a_operational[comparable] <= self.true_availability[comparable]
        return float(ok.mean())


@dataclass
class BlockFailure:
    """Record of one block that could not be measured.

    A failed block yields this instead of killing the batch; the error is
    captured as strings so failures serialize through checkpoints.
    """

    block_id: int
    index: int
    error_type: str
    message: str
    attempts: int

    def __str__(self) -> str:
        return (
            f"block {self.block_id} (index {self.index}) failed after "
            f"{self.attempts} attempt(s): {self.error_type}: {self.message}"
        )


def classify_ground_truth(
    oracle: ResponseOracle,
    schedule: RoundSchedule,
    config: MeasurementConfig | None = None,
) -> DiurnalReport:
    """Classify a block from its *true* availability series.

    This is the paper's ground-truth path (survey data in section 3.2.3):
    same cleaning and classifier, but fed the exact per-round A.
    """
    config = config or MeasurementConfig()
    series = oracle.true_availability()
    trim = (
        trim_to_midnight(schedule.times(), schedule.round_s)
        if config.trim_midnight
        else slice(0, len(series))
    )
    return classify_series(series[trim], schedule.round_s, config.classifier)


def measure_block(
    block: Block24,
    schedule: RoundSchedule,
    rng: np.random.Generator,
    config: MeasurementConfig | None = None,
    walk_seed: int | None = None,
    faults: "FaultPlan | None" = None,
) -> BlockMeasurement:
    """Run the full pipeline on one block.

    The oracle realization consumes ``rng``; the prober's pseudorandom walk
    uses ``walk_seed`` (or a draw from ``rng``) so runs are reproducible.
    ``faults`` optionally degrades the measurement: probe loss on the
    oracle, unscheduled prober crashes, and stream corruption of the Â_s
    observations, which are then re-cleaned through the grid/fill path and
    quality-gated before classification.
    """
    config = config or MeasurementConfig()
    times = schedule.times()
    oracle = block.realize(times, rng)
    ever_active = oracle.ever_active
    truth = oracle.true_availability()
    trim = (
        trim_to_midnight(times, schedule.round_s)
        if config.trim_midnight
        else slice(0, schedule.n_rounds)
    )

    if len(ever_active) < config.min_ever_active:
        return BlockMeasurement.for_skipped(
            block_id=block.block_id,
            schedule=schedule,
            truth=truth,
            trim=trim,
            n_ever_active=len(ever_active),
        )

    if faults is not None and not faults.is_clean:
        probed_oracle = faults.wrap_oracle(oracle)
        extra_restarts = faults.crash_rounds(schedule)
    else:
        probed_oracle = oracle
        extra_restarts = None

    if walk_seed is None:
        walk_seed = int(rng.integers(0, 2**31 - 1))
    prober_config = ProberConfig(
        max_probes_per_round=config.prober.max_probes_per_round,
        belief=config.prober.belief,
        walk_seed=walk_seed,
    )
    prober = AdaptiveProber(ever_active, prober_config)
    feedback = RecordingEstimator(AvailabilityEstimator(config.estimator))
    log = prober.run(
        probed_oracle, schedule, feedback, extra_restarts=extra_restarts
    )
    a_short, a_long, a_oper = feedback.series()

    quality: QualityReport | None = None
    if faults is not None and not faults.is_clean:
        obs_times, obs_values = faults.degrade_stream(
            times, a_short, schedule.round_s
        )
        if len(obs_times) == 0:
            a_short = np.full(schedule.n_rounds, np.nan)
            quality = QualityReport(
                n_rounds=schedule.n_rounds,
                n_observed=0,
                n_duplicates=0,
                n_filled=0,
                longest_gap=schedule.n_rounds,
            )
        else:
            a_short, quality = clean_observations(
                obs_times,
                obs_values,
                schedule.round_s,
                schedule.start_s,
                schedule.n_rounds,
                policy=config.fill_policy,
                max_gap=config.max_fill_gap,
            )

    report = classify_series(
        a_short[trim], schedule.round_s, config.classifier, quality=quality
    )
    true_report = classify_series(
        truth[trim], schedule.round_s, config.classifier
    )
    stationary = is_stationary(times[trim], truth[trim], len(ever_active))

    return BlockMeasurement(
        block_id=block.block_id,
        schedule=schedule,
        positives=log.positives,
        totals=log.totals,
        states=log.states,
        a_short=a_short,
        a_long=a_long,
        a_operational=a_oper,
        true_availability=truth,
        trim=trim,
        n_ever_active=len(ever_active),
        skipped=False,
        report=report,
        true_report=true_report,
        stationary=stationary,
        quality=quality,
    )


@dataclass(frozen=True)
class BatchConfig:
    """Resilience policy for a batch run.

    Attributes:
        measurement: the per-block pipeline configuration.
        faults: optional degradation scenario; each block gets an
            independent fault substream keyed by its batch index.
        max_retries: additional attempts per block after the first
            failure, each with a fresh deterministic seed substream.
        retry: full backoff policy for those attempts; ``None`` derives
            an instant-retry :class:`~repro.core.retry.RetryPolicy` from
            ``max_retries`` (bit-identical to the legacy loop).  When
            set, its ``max_retries`` takes precedence.
        fail_fast: re-raise the original exception instead of recording a
            :class:`BlockFailure` (legacy ``measure_blocks`` semantics).
        checkpoint_path: where to persist partial results; ``None``
            disables checkpointing.
        checkpoint_every: flush the checkpoint after this many newly
            completed blocks.
    """

    measurement: MeasurementConfig = field(default_factory=MeasurementConfig)
    faults: "FaultConfig | None" = None
    max_retries: int = 1
    retry: RetryPolicy | None = None
    fail_fast: bool = False
    checkpoint_path: str | Path | None = None
    checkpoint_every: int = 1000

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be at least 1")

    @property
    def retry_policy(self) -> RetryPolicy:
        """The effective policy (``retry``, or instant ``max_retries``)."""
        if self.retry is not None:
            return self.retry
        return RetryPolicy(max_retries=self.max_retries)


@dataclass
class BatchResult:
    """Index-aligned outcomes of one batch run.

    ``manifest`` is the run's telemetry record (seeds, fault plan,
    quality gates, stage timings, metric snapshot); it is attached by
    :class:`BatchRunner` and ``None`` for results built by hand.
    """

    results: list[Union[BlockMeasurement, BlockFailure]]
    n_resumed: int = 0
    manifest: "RunManifest | None" = None

    @property
    def n_blocks(self) -> int:
        return len(self.results)

    @property
    def measurements(self) -> list[BlockMeasurement]:
        return [r for r in self.results if isinstance(r, BlockMeasurement)]

    @property
    def failures(self) -> list[BlockFailure]:
        return [r for r in self.results if isinstance(r, BlockFailure)]

    def summary(self) -> str:
        ok = len(self.measurements)
        failed = len(self.failures)
        skipped = sum(1 for m in self.measurements if m.skipped)
        return (
            f"{self.n_blocks} blocks: {ok} measured ({skipped} skipped as "
            f"sparse), {failed} failed, {self.n_resumed} from checkpoint"
        )

    def replay_into(
        self,
        engine,
        series: str = "a_short",
        include_skipped: bool = False,
        flush: bool = True,
    ) -> int:
        """Feed every measurement into a streaming engine, block by block.

        ``engine`` is duck-typed (anything with ``ingest_many`` and
        ``flush``), so ``repro.core`` does not import ``repro.stream``.
        Skipped-as-sparse blocks are omitted unless ``include_skipped``
        (their series are all zeros, not measurements).  Returns the
        number of observations fed.
        """
        n_fed = 0
        for m in self.measurements:
            if m.skipped and not include_skipped:
                continue
            times, values = m.observation_stream(series)
            engine.ingest_many(m.block_id, times, values)
            n_fed += len(times)
        if flush:
            engine.flush()
        return n_fed


class _RunnerMetrics:
    """Pre-bound batch-runner metrics (null registry by default)."""

    __slots__ = ("enabled", "measured", "skipped", "failed", "attempts",
                 "retries", "resumed", "checkpoints", "checkpoint_seconds",
                 "block_seconds")

    # Checkpoint writes run milliseconds to tens of seconds; per-block
    # measurement runs milliseconds to seconds.
    _CHECKPOINT_BUCKETS = (
        0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0,
    )
    _BLOCK_BUCKETS = (
        0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
        2.5, 5.0, 15.0,
    )

    def __init__(self, registry) -> None:
        self.enabled = registry.enabled
        self.measured = registry.counter("batch_blocks_total",
                                         outcome="measured")
        self.skipped = registry.counter("batch_blocks_total",
                                        outcome="skipped")
        self.failed = registry.counter("batch_blocks_total", outcome="failed")
        self.attempts = registry.counter("batch_attempts_total")
        self.retries = registry.counter("batch_retries_total")
        self.resumed = registry.counter("batch_blocks_resumed_total")
        self.checkpoints = registry.counter("batch_checkpoints_total")
        self.checkpoint_seconds = registry.histogram(
            "batch_checkpoint_seconds", buckets=self._CHECKPOINT_BUCKETS
        )
        self.block_seconds = registry.histogram(
            "batch_block_seconds", buckets=self._BLOCK_BUCKETS
        )


class BatchRunner:
    """Hardened batch measurement: isolation, retry, checkpoint, resume.

    Per-block randomness is derived exactly as the legacy
    ``measure_blocks`` did — one spawned :class:`numpy.random.SeedSequence`
    child per block, consumed on the first attempt — so a clean run is
    bit-identical to the old code, an interrupted-then-resumed run is
    bit-identical to an uninterrupted one, and a retry draws a fresh
    substream spawned from the same child (deterministic but independent
    of the failed attempt).

    ``metrics``/``tracer``/``events`` attach a
    :class:`repro.obs.MetricsRegistry` / :class:`repro.obs.Tracer` /
    :class:`repro.obs.EventLogger`; the defaults are the no-op null
    implementations.  Instrumentation never touches the RNG derivation
    or the measurement path, so instrumented runs stay bit-identical.
    """

    def __init__(
        self,
        config: BatchConfig | None = None,
        metrics=None,
        tracer=None,
        events=None,
    ) -> None:
        self.config = config or BatchConfig()
        self.metrics = NULL_REGISTRY if metrics is None else metrics
        self.tracer = NULL_TRACER if tracer is None else tracer
        events = NULL_EVENT_LOG if events is None else events
        if events.enabled and self.tracer.enabled:
            # Stamp every record with the active span so log lines
            # resolve into the trace tree.
            events = events.bind(tracer=self.tracer)
        self.events = events
        self._m = _RunnerMetrics(self.metrics)

    def run(
        self,
        blocks: list[Block24],
        schedule: RoundSchedule,
        seed: int = 0,
    ) -> BatchResult:
        with self.tracer.trace("batch.run", n_blocks=len(blocks), seed=seed):
            self.events.info(
                "run.start", kind="batch", n_blocks=len(blocks), seed=seed
            )
            result = self._run(blocks, schedule, seed)
            self.events.info("run.end", summary=result.summary())
        result.manifest = self._manifest(seed, len(blocks))
        return result

    def _run(
        self,
        blocks: list[Block24],
        schedule: RoundSchedule,
        seed: int,
    ) -> BatchResult:
        config = self.config
        children = np.random.SeedSequence(seed).spawn(len(blocks))
        fault_plan = self._fault_plan()

        completed = self._load_checkpoint(schedule, seed, len(blocks))
        n_resumed = len(completed)
        if n_resumed:
            self._m.resumed.inc(n_resumed)
            self.events.info("run.resumed", n_resumed=n_resumed)
        pending_since_flush = 0

        for index, (block, child) in enumerate(zip(blocks, children)):
            if index in completed:
                continue
            completed[index] = self._measure_one(
                block, index, schedule, child, fault_plan
            )
            self._count_outcome(completed[index])
            crashpoint("batch.block_done")
            pending_since_flush += 1
            if (
                config.checkpoint_path is not None
                and pending_since_flush >= config.checkpoint_every
            ):
                self._save_checkpoint(completed, schedule, seed, len(blocks))
                pending_since_flush = 0
                crashpoint("batch.checkpointed")

        if config.checkpoint_path is not None and pending_since_flush:
            self._save_checkpoint(completed, schedule, seed, len(blocks))

        results = [completed[i] for i in range(len(blocks))]
        return BatchResult(results=results, n_resumed=n_resumed)

    def _count_outcome(
        self, outcome: Union[BlockMeasurement, BlockFailure]
    ) -> None:
        if isinstance(outcome, BlockFailure):
            self._m.failed.inc()
        elif outcome.skipped:
            self._m.skipped.inc()
        else:
            self._m.measured.inc()

    def _manifest(self, seed: int, n_blocks: int) -> RunManifest:
        fault_plan = self._fault_plan()
        return RunManifest.capture(
            kind="batch",
            registry=self.metrics,
            tracer=self.tracer,
            seed=seed,
            n_blocks=n_blocks,
            fault_plan=(
                fault_plan.describe()
                if fault_plan is not None
                else "clean (no faults)"
            ),
            quality_gates=asdict(self.config.measurement.classifier),
            max_retries=self.config.max_retries,
            checkpoint_path=(
                str(self.config.checkpoint_path)
                if self.config.checkpoint_path is not None
                else None
            ),
            fill_policy=self.config.measurement.fill_policy,
        )

    def _fault_plan(self) -> "FaultPlan | None":
        if self.config.faults is None or self.config.faults.is_clean:
            return None
        from repro.faults.plan import FaultPlan

        return FaultPlan(
            self.config.faults, metrics=self.metrics, events=self.events
        )

    def _measure_one(
        self,
        block: Block24,
        index: int,
        schedule: RoundSchedule,
        child: np.random.SeedSequence,
        fault_plan: "FaultPlan | None",
    ) -> Union[BlockMeasurement, BlockFailure]:
        config = self.config
        policy = config.retry_policy
        plan = fault_plan.for_block(index) if fault_plan is not None else None
        last_error: Exception | None = None
        attempts = 0
        for attempt in policy.attempts():
            # Attempt 0 consumes the child itself (legacy-compatible);
            # each retry spawns the next substream off the same child.
            stream = child if attempt == 0 else child.spawn(1)[0]
            rng = np.random.default_rng(stream)
            attempts += 1
            self._m.attempts.inc()
            if attempt > 0:
                self._m.retries.inc()
                self.events.warning(
                    "block.retry",
                    index=index,
                    block_id=int(getattr(block, "block_id", -1)),
                    attempt=attempt,
                    delay_s=policy.delay_s(attempt),
                    error_type=type(last_error).__name__,
                    message=str(last_error),
                )
            try:
                with self.tracer.trace(
                    "batch.measure_block", index=index, attempt=attempt
                ):
                    t0 = time.perf_counter()
                    result = measure_block(
                        block,
                        schedule,
                        rng,
                        config.measurement,
                        faults=plan,
                    )
                    self._m.block_seconds.observe(time.perf_counter() - t0)
                return result
            except Exception as error:  # noqa: BLE001 — isolation boundary
                last_error = error
                if config.fail_fast:
                    raise
        assert last_error is not None
        failure = BlockFailure(
            block_id=int(getattr(block, "block_id", -1)),
            index=index,
            error_type=type(last_error).__name__,
            message=str(last_error),
            attempts=attempts,
        )
        self.events.error(
            "block.failed",
            index=index,
            block_id=failure.block_id,
            error_type=failure.error_type,
            message=failure.message,
            attempts=attempts,
        )
        return failure

    def _load_checkpoint(
        self, schedule: RoundSchedule, seed: int, n_blocks: int
    ) -> dict[int, Union[BlockMeasurement, BlockFailure]]:
        path = self.config.checkpoint_path
        if path is None or not Path(path).exists():
            return {}
        from repro.datasets.io import (
            CorruptCheckpointError,
            load_batch_checkpoint,
        )

        try:
            entries, ckpt_schedule, meta = load_batch_checkpoint(path)
        except CorruptCheckpointError:
            # Already typed, named, and (if damaged) quarantined by the
            # loader; the message carries everything a caller needs.
            raise
        except Exception as exc:
            raise ValueError(
                f"checkpoint {path} is corrupt or unreadable "
                f"({type(exc).__name__}: {exc}); delete it to start fresh"
            ) from exc
        if int(meta["seed"]) != seed or int(meta["n_blocks"]) != n_blocks:
            raise ValueError(
                f"checkpoint {path} was written for seed "
                f"{int(meta['seed'])} / {int(meta['n_blocks'])} blocks; "
                f"this run uses seed {seed} / {n_blocks} blocks"
            )
        if ckpt_schedule != schedule:
            raise ValueError(
                f"checkpoint {path} schedule {ckpt_schedule} does not match "
                f"this run's schedule {schedule}"
            )
        return entries

    def _save_checkpoint(
        self,
        completed: dict[int, Union[BlockMeasurement, BlockFailure]],
        schedule: RoundSchedule,
        seed: int,
        n_blocks: int,
    ) -> None:
        from repro.datasets.io import save_batch_checkpoint

        with self.tracer.trace("batch.checkpoint", n_entries=len(completed)):
            t0 = time.perf_counter()
            save_batch_checkpoint(
                self.config.checkpoint_path,
                completed,
                schedule,
                meta={"seed": seed, "n_blocks": n_blocks},
            )
            self._m.checkpoint_seconds.observe(time.perf_counter() - t0)
        self._m.checkpoints.inc()
        self.events.info(
            "checkpoint.saved",
            n_entries=len(completed),
            path=str(self.config.checkpoint_path),
        )


def measure_blocks(
    blocks: list[Block24],
    schedule: RoundSchedule,
    seed: int = 0,
    config: MeasurementConfig | None = None,
) -> list[BlockMeasurement]:
    """Measure a list of blocks with independent, reproducible randomness.

    Legacy strict interface over :class:`BatchRunner`: no retries, no
    checkpointing, and any per-block exception propagates.  Results are
    bit-identical to the pre-runner implementation.
    """
    runner = BatchRunner(
        BatchConfig(
            measurement=config or MeasurementConfig(),
            max_retries=0,
            fail_fast=True,
        )
    )
    return runner.run(blocks, schedule, seed=seed).measurements

"""The paper's contribution: availability estimation and diurnal detection.

``estimator``
    EWMA estimators of block availability from biased adaptive-probing
    counts: short-term Â_s, long-term Â_l, and the conservative operational
    Â_o (section 2.1), plus the legacy direct-EWMA variant kept for the
    over-estimation ablation.
``timeseries``
    Cleaning of the probe stream into an evenly sampled 11-minute series,
    midnight-UTC trimming, and the stationarity check (section 2.2).
``spectral``
    DFT amplitude/phase machinery: diurnal bins, harmonics, dominant
    frequencies (section 2.2).
``classify``
    Strict/relaxed diurnal classification and phase extraction.
``pipeline``
    End-to-end measurement of simulated blocks: probing, estimation,
    cleaning, classification, outage extraction — plus the resilient
    :class:`BatchRunner` (per-block failure isolation, retry,
    checkpoint/resume) and fault-injected degraded measurement.
``supervisor``
    :class:`PoolRunner` — the same batch across supervised worker
    processes: per-block deadlines, hung/dead-worker respawn, poison
    quarantine, a circuit breaker, and deterministic merge
    bit-identical to serial execution.
"""

from repro.core.estimator import (
    AvailabilityEstimator,
    AvailabilitySeries,
    DirectEwmaEstimator,
    EstimatorConfig,
    RestartPolicy,
    estimate_series,
)
from repro.core.timeseries import (
    CleanStats,
    QualityReport,
    clean_observations,
    fill_gaps,
    fill_missing,
    linear_slope,
    is_stationary,
    longest_nan_run,
    observations_to_grid,
    round_index,
    trim_to_midnight,
)
from repro.core.spectral import (
    Spectrum,
    compute_spectrum,
    compute_spectra,
    diurnal_bin,
    goertzel,
    harmonic_bins,
)
from repro.core.classify import (
    ClassifierConfig,
    DiurnalClass,
    DiurnalReport,
    classify_series,
    classify_spectrum,
    classify_many,
    decide_label,
    insufficient_report,
    reports_equal,
)
from repro.core.localtime import (
    circular_hour_difference,
    ewma_lag_hours,
    local_hour,
    peak_utc_hour,
    wake_local_hour,
    wake_utc_hour,
)
from repro.core.pipeline import (
    BatchConfig,
    BatchResult,
    BatchRunner,
    BlockFailure,
    BlockMeasurement,
    MeasurementConfig,
    measure_block,
    measure_blocks,
    classify_ground_truth,
)
from repro.core.retry import RetryPolicy
from repro.core.supervisor import (
    CircuitOpenError,
    PoolConfig,
    PoolRunner,
)

__all__ = [
    "AvailabilityEstimator",
    "AvailabilitySeries",
    "BatchConfig",
    "BatchResult",
    "BatchRunner",
    "BlockFailure",
    "BlockMeasurement",
    "CircuitOpenError",
    "ClassifierConfig",
    "CleanStats",
    "DirectEwmaEstimator",
    "DiurnalClass",
    "DiurnalReport",
    "EstimatorConfig",
    "MeasurementConfig",
    "PoolConfig",
    "PoolRunner",
    "QualityReport",
    "RestartPolicy",
    "RetryPolicy",
    "Spectrum",
    "circular_hour_difference",
    "classify_ground_truth",
    "classify_many",
    "clean_observations",
    "local_hour",
    "peak_utc_hour",
    "wake_local_hour",
    "wake_utc_hour",
    "classify_series",
    "classify_spectrum",
    "compute_spectra",
    "compute_spectrum",
    "decide_label",
    "diurnal_bin",
    "estimate_series",
    "goertzel",
    "ewma_lag_hours",
    "fill_gaps",
    "fill_missing",
    "harmonic_bins",
    "insufficient_report",
    "is_stationary",
    "linear_slope",
    "longest_nan_run",
    "measure_block",
    "measure_blocks",
    "observations_to_grid",
    "reports_equal",
    "round_index",
    "trim_to_midnight",
]

"""Supervised multi-process batch measurement.

:class:`BatchRunner` survives per-block *exceptions*; a production-scale
campaign also has to survive the failures exceptions cannot express — a
worker process that dies (OOM kill, segfault in a native library) or
wedges forever in a C loop.  :class:`PoolRunner` runs the same per-block
pipeline across a pool of worker processes under a supervisor that:

* enforces a **per-block wall-clock deadline**, killing and respawning
  any worker whose heartbeat goes stale past it;
* detects **worker death** via process sentinels and re-dispatches the
  interrupted block to a fresh worker;
* **quarantines poison blocks**: a block that kills its worker
  ``max_block_failures`` times is recorded as a
  :class:`~repro.core.pipeline.BlockFailure` instead of crashing the
  pool forever;
* trips a **circuit breaker** after a burst of consecutive failures —
  the checkpoint is saved, the pool shuts down, and
  :class:`CircuitOpenError` tells the operator the environment (not one
  block) is sick;
* merges results **deterministically**: every block's randomness comes
  from the same per-index :class:`~numpy.random.SeedSequence` child the
  serial runner would use, and a re-dispatched block gets the identical
  child again, so the merged :class:`~repro.core.pipeline.BatchResult`
  is bit-identical to a serial :class:`BatchRunner` run with the same
  seed — regardless of completion order, retries, or worker deaths.

Checkpoints are shared with the serial runner (same file format, same
resume semantics), so a campaign can move between serial and pooled
execution across restarts.

**Distributed telemetry.**  When any of ``metrics``/``tracer``/``events``
is attached, each worker runs instrumented with a private
:class:`~repro.obs.distributed.WorkerTelemetry` and ships a
:class:`~repro.obs.distributed.TelemetryDelta` *with every result* over
the existing pipe — metrics since the last cut, finished span trees
(parented under the supervisor's dispatch span via a shipped
:class:`~repro.obs.tracing.TraceContext`), and buffered structured
events.  Riding the result channel makes telemetry exactly-once by
construction: a killed worker's unsent delta dies with its unsent
result, so the supervisor's :class:`~repro.obs.distributed.FleetView`
totals always equal the work it actually received.  Supervisor-side,
every dispatch, completion, retry, kill, quarantine, and breaker trip
is a correlated record in the structured event log; per-worker
:class:`~repro.obs.events.FlightRecorder` black boxes are dumped to
``flight_recorder_dir`` on hung-worker kills, worker deaths, and
breaker trips (workers additionally dump their own box at armed crash
points, before ``os._exit``); and declarative
:class:`~repro.obs.alerts.AlertRule`\\ s are evaluated over the live
fleet aggregate each supervision cycle.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import uuid
from collections import deque
from dataclasses import asdict, dataclass, field
from multiprocessing import connection
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.pipeline import (
    BatchConfig,
    BatchResult,
    BatchRunner,
    BlockFailure,
    BlockMeasurement,
)
from repro.core.retry import RetryPolicy
from repro.faults.crash import crashpoint, set_crash_observer
from repro.net.blocks import Block24
from repro.obs.alerts import AlertEngine
from repro.obs.distributed import FleetView, WorkerTelemetry
from repro.obs.events import NULL_EVENT_LOG, FlightRecorder
from repro.obs.export import RunManifest
from repro.obs.registry import NULL_REGISTRY
from repro.obs.tracing import NULL_TRACER
from repro.probing.rounds import RoundSchedule

__all__ = [
    "CircuitOpenError",
    "PoolConfig",
    "PoolRunner",
    "SlotSupervisor",
]


class SlotSupervisor:
    """Liveness tracking and paced respawn for long-running worker slots.

    :class:`PoolRunner` reaps and respawns workers inside its dispatch
    loop, which is batch-shaped: every slot's life ends with the run.
    An always-on service (``repro.serve``) needs the same machinery —
    heartbeat staleness detection, respawn pacing under the shared
    :class:`~repro.core.retry.RetryPolicy`, streak reset once a
    replacement proves healthy — detached from any dispatch loop, plus
    a **rejoin hook**: a callback invoked after each successful respawn
    so the owner can return the recovered slot to service (the serve
    layer re-marks the shard healthy in its hash ring).

    The class is policy-only: it never touches processes itself.  The
    owner reports heartbeats (:meth:`beat`), asks which slots are stale
    (:meth:`stale`), asks how long to pace the next respawn of a slot
    (:meth:`respawn_delay`, which advances that slot's streak), and
    reports outcomes (:meth:`respawned`, :meth:`mark_alive`).
    """

    def __init__(
        self,
        deadline_s: float | None = None,
        backoff: RetryPolicy | None = None,
        rejoin=None,
        clock=time.monotonic,
    ) -> None:
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        self.deadline_s = deadline_s
        self.backoff = backoff if backoff is not None else RetryPolicy()
        self.rejoin = rejoin
        self._clock = clock
        self._beats: dict = {}
        self._streaks: dict = {}
        self.n_respawns = 0

    def beat(self, slot, at: float | None = None) -> None:
        """Record a sign of life for ``slot`` (``at`` defaults to now)."""
        self._beats[slot] = self._clock() if at is None else at

    def age(self, slot) -> float:
        """Seconds since the slot's last recorded heartbeat."""
        beat = self._beats.get(slot)
        return float("inf") if beat is None else self._clock() - beat

    def stale(self, slot) -> bool:
        """Whether the slot's heartbeat has aged past the deadline."""
        return self.deadline_s is not None and self.age(slot) > self.deadline_s

    def streak(self, slot) -> int:
        """Consecutive respawns of this slot without a healthy period."""
        return self._streaks.get(slot, 0)

    def respawn_delay(self, slot) -> float:
        """Advance the slot's respawn streak; return the paced delay."""
        streak = self._streaks.get(slot, 0) + 1
        self._streaks[slot] = streak
        self.n_respawns += 1
        return self.backoff.delay_s(streak)

    def respawned(self, slot) -> None:
        """A replacement is up: restart its heartbeat, fire the rejoin hook."""
        self.beat(slot)
        if self.rejoin is not None:
            self.rejoin(slot)

    def mark_alive(self, slot) -> None:
        """The slot proved healthy; its respawn streak resets."""
        self._streaks.pop(slot, None)

    def forget(self, slot) -> None:
        """Drop all state for a retired slot."""
        self._beats.pop(slot, None)
        self._streaks.pop(slot, None)


class CircuitOpenError(RuntimeError):
    """The pool aborted after a burst of consecutive failures.

    A single bad block is isolated and retried; ``breaker_threshold``
    failures *in a row* mean something systemic (disk full, bad deploy,
    poisoned dataset) and continuing would burn the whole campaign.
    Completed work is already checkpointed when this raises; fix the
    environment and rerun to resume.
    """

    def __init__(self, n_consecutive: int, checkpoint_path) -> None:
        where = (
            f"; completed blocks are checkpointed at {checkpoint_path}"
            if checkpoint_path is not None
            else ""
        )
        super().__init__(
            f"circuit breaker open after {n_consecutive} consecutive "
            f"block failures{where}"
        )
        self.n_consecutive = n_consecutive
        self.checkpoint_path = checkpoint_path


@dataclass(frozen=True)
class PoolConfig:
    """Supervision policy for a pooled batch run.

    Attributes:
        batch: the serial resilience policy (measurement, retries,
            checkpointing) each worker applies per block.
        n_workers: worker processes.
        block_deadline_s: wall-clock budget per dispatched block;
            a worker whose heartbeat goes stale past it is killed and
            respawned.  ``None`` disables deadlines.
        max_block_failures: worker deaths tolerated per block before it
            is quarantined as a :class:`BlockFailure` (in-worker
            exceptions are already retried by the per-block pipeline;
            this bounds *environment* failures).
        breaker_threshold: consecutive failed blocks that trip
            :class:`CircuitOpenError`; ``None`` disables the breaker.
        heartbeat_interval_s: how often idle workers refresh their
            heartbeat; also the supervisor's poll granularity.
        respawn_backoff: pacing for consecutive respawns of the same
            worker slot (a crash-looping environment should not fork as
            fast as the kernel allows).  The streak resets when the
            slot's worker completes a task; the default zero-delay
            policy respawns instantly (legacy behavior).
        mp_context: multiprocessing start method.  ``"fork"`` (default)
            inherits test doubles and armed crash points; ``"spawn"``
            requires everything dispatched to be importable.
        flight_recorder_dir: where flight-recorder black boxes are
            dumped on worker kills, quarantines, crash points, and
            breaker trips; ``None`` disables dumping (recorders still
            run in memory when telemetry is attached).
        flight_recorder_capacity: events retained per worker's ring.
    """

    batch: BatchConfig = field(default_factory=BatchConfig)
    n_workers: int = 2
    block_deadline_s: float | None = None
    max_block_failures: int = 2
    breaker_threshold: int | None = 5
    heartbeat_interval_s: float = 0.05
    respawn_backoff: RetryPolicy = field(default_factory=RetryPolicy)
    mp_context: str = "fork"
    flight_recorder_dir: str | Path | None = None
    flight_recorder_capacity: int = 256

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        if self.block_deadline_s is not None and self.block_deadline_s <= 0:
            raise ValueError("block_deadline_s must be positive")
        if self.max_block_failures < 1:
            raise ValueError("max_block_failures must be at least 1")
        if self.breaker_threshold is not None and self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be at least 1")
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if self.flight_recorder_capacity < 1:
            raise ValueError("flight_recorder_capacity must be at least 1")


def _worker_main(
    conn,
    heartbeat,
    worker_id,
    batch_config,
    schedule,
    telemetry=False,
    flight_dir=None,
) -> None:
    """Worker loop: recv ``(index, block, child, ctx)``, send
    ``(index, result, delta)``.

    Reuses :meth:`BatchRunner._measure_one` verbatim, so retry
    semantics and RNG substream derivation are *identical* to serial
    execution.  The heartbeat slot is refreshed at every task boundary
    and while idle; a worker wedged inside a block stops refreshing and
    the supervisor's deadline reaps it.

    With ``telemetry``, the worker measures under a private
    :class:`WorkerTelemetry` and cuts one delta per completed task,
    shipped in the same message as the result.  The cut happens *after*
    the ``pool.worker.task_done`` crash point: a worker killed there
    loses result and telemetry together, never one without the other.
    With ``flight_dir``, a crash-point firing dumps the worker's own
    black box before the process dies.
    """
    telem = None
    if telemetry or flight_dir is not None:
        recorder = (
            FlightRecorder() if flight_dir is not None else None
        )
        telem = WorkerTelemetry(worker_id, recorder=recorder)
        if recorder is not None:
            def _on_crash(point: str, action: str) -> None:
                recorder.dump(
                    Path(flight_dir)
                    / f"flight-w{worker_id}-p{os.getpid()}-crash.json",
                    reason=f"crashpoint:{point}",
                    worker_id=worker_id,
                    action=action,
                )

            set_crash_observer(_on_crash)
        runner = BatchRunner(
            batch_config, telem.registry, telem.tracer, events=telem.events
        )
    else:
        runner = BatchRunner(batch_config)
    fault_plan = runner._fault_plan()
    try:
        while True:
            heartbeat[worker_id] = time.monotonic()
            if not conn.poll(0.05):
                continue
            task = conn.recv()
            if task is None:
                return
            index, block, child, tctx = task
            heartbeat[worker_id] = time.monotonic()
            crashpoint("pool.worker.task_start")
            if telem is not None:
                telem.registry.counter("pool_worker_tasks_total").inc()
                with telem.tracer.trace(
                    "worker.measure_block",
                    parent_context=tctx,
                    index=index,
                    worker_id=worker_id,
                    block_id=int(getattr(block, "block_id", -1)),
                ):
                    result = runner._measure_one(
                        block, index, schedule, child, fault_plan
                    )
            else:
                result = runner._measure_one(
                    block, index, schedule, child, fault_plan
                )
            crashpoint("pool.worker.task_done")
            delta = telem.cut_delta() if telem is not None else None
            conn.send((index, result, delta))
            heartbeat[worker_id] = time.monotonic()
    except (EOFError, OSError, KeyboardInterrupt):
        return
    finally:
        conn.close()


@dataclass
class _Worker:
    """Supervisor-side handle for one worker process."""

    worker_id: int
    process: multiprocessing.Process
    conn: connection.Connection
    task: tuple | None = None
    dispatched_at: float = 0.0
    span: object = None  # detached pool.dispatch span while a task is out


class _PoolMetrics:
    """Pre-bound pool supervision metrics (null registry by default)."""

    __slots__ = ("dispatched", "hung", "crashed", "quarantined",
                 "breaker_trips", "workers", "deltas", "failure_ratio",
                 "heartbeat_age", "dispatch_pauses")

    def __init__(self, registry) -> None:
        self.dispatched = registry.counter("pool_tasks_dispatched_total")
        self.dispatch_pauses = registry.counter("pool_dispatch_pauses_total")
        self.hung = registry.counter("pool_worker_restarts_total",
                                     reason="hung")
        self.crashed = registry.counter("pool_worker_restarts_total",
                                        reason="crashed")
        self.quarantined = registry.counter("pool_blocks_quarantined_total")
        self.breaker_trips = registry.counter("pool_breaker_trips_total")
        self.workers = registry.gauge("pool_workers")
        self.deltas = registry.counter("pool_telemetry_deltas_total")
        self.failure_ratio = registry.gauge("pool_block_failure_ratio")
        self.heartbeat_age = registry.gauge("pool_heartbeat_age_seconds")


class PoolRunner:
    """Run a batch across supervised worker processes.

    Drop-in alternative to :class:`BatchRunner.run` — same arguments,
    same :class:`BatchResult`, bit-identical results for the same seed —
    that additionally survives hung and dying workers.  See the module
    docstring for the supervision policy and the distributed-telemetry
    data flow.

    ``events`` is a :class:`repro.obs.EventLogger` (every supervision
    decision and every worker-shipped record lands in it, correlated by
    ``run_id``/``worker_id``/``trace_id``); ``alert_rules`` is an
    iterable of :class:`repro.obs.AlertRule` evaluated against the live
    fleet aggregate each supervision cycle.  After a run, ``fleet``
    holds the per-worker and aggregate metric view, ``alerts`` the rule
    engine with its firing state, and ``recorders`` the per-worker
    flight recorders.

    ``backpressure`` is an optional zero-argument callable (typically
    :meth:`repro.stream.overload.AdmissionController.backpressure` of a
    downstream consumer): while it returns true the dispatch loop stops
    handing new blocks to idle workers — in-flight blocks still
    complete — so an overloaded consumer slows the producer instead of
    forcing it to shed.  Pause/resume transitions are logged and counted
    (``pool_dispatch_pauses_total``, ``stats["dispatch_pauses"]``).
    """

    def __init__(
        self,
        config: PoolConfig | None = None,
        metrics=None,
        tracer=None,
        events=None,
        alert_rules=None,
        backpressure=None,
    ) -> None:
        self.config = config or PoolConfig()
        self.metrics = NULL_REGISTRY if metrics is None else metrics
        self.tracer = NULL_TRACER if tracer is None else tracer
        events = NULL_EVENT_LOG if events is None else events
        if events.enabled and self.tracer.enabled:
            events = events.bind(tracer=self.tracer)
        self.events = events
        self.backpressure = backpressure
        self._alert_rules = tuple(alert_rules) if alert_rules else ()
        self.alerts: AlertEngine | None = None
        self.fleet = FleetView()
        self.recorders: dict[int, FlightRecorder] = {}
        self.run_id: str | None = None
        self._m = _PoolMetrics(self.metrics)
        self._telemetry = bool(
            self.metrics.enabled or self.tracer.enabled or events.enabled
        )
        self._last_stats: dict = {}
        # Checkpoint IO and outcome counting are delegated to a serial
        # runner so the two execution modes share one format and one
        # metric family.
        self._serial = BatchRunner(
            self.config.batch, metrics, tracer, events=events
        )

    def run(
        self,
        blocks: list[Block24],
        schedule: RoundSchedule,
        seed: int = 0,
    ) -> BatchResult:
        self.run_id = uuid.uuid4().hex[:12]
        self.fleet = FleetView()
        self.recorders = {}
        events = self.events.bind(run_id=self.run_id)
        self._serial.events = events
        self.alerts = (
            AlertEngine(self._alert_rules, events=events, metrics=self.metrics)
            if self._alert_rules
            else None
        )
        self._last_stats = {
            "respawns_hung": 0,
            "respawns_crashed": 0,
            "blocks_quarantined": 0,
            "breaker_trips": 0,
            "alerts_fired": 0,
            "flight_dumps": 0,
            "dispatch_pauses": 0,
        }
        try:
            with self.tracer.trace(
                "pool.run",
                n_blocks=len(blocks),
                seed=seed,
                n_workers=self.config.n_workers,
            ) as root:
                events.info(
                    "run.start",
                    kind="pool",
                    n_blocks=len(blocks),
                    seed=seed,
                    n_workers=self.config.n_workers,
                )
                result = self._run(blocks, schedule, seed, root, events)
                events.info("run.end", summary=result.summary())
        except BaseException as error:
            events.error(
                "run.aborted",
                error_type=type(error).__name__,
                message=str(error),
            )
            raise
        result.manifest = self._manifest(seed, len(blocks))
        return result

    def _manifest(self, seed: int, n_blocks: int) -> RunManifest:
        fault_plan = self._serial._fault_plan()
        return RunManifest.capture(
            kind="pool",
            registry=self.metrics,
            tracer=self.tracer,
            seed=seed,
            n_blocks=n_blocks,
            fault_plan=(
                fault_plan.describe()
                if fault_plan is not None
                else "clean (no faults)"
            ),
            quality_gates=asdict(self.config.batch.measurement.classifier),
            max_retries=self.config.batch.max_retries,
            checkpoint_path=(
                str(self.config.batch.checkpoint_path)
                if self.config.batch.checkpoint_path is not None
                else None
            ),
            fill_policy=self.config.batch.measurement.fill_policy,
            n_workers=self.config.n_workers,
            block_deadline_s=self.config.block_deadline_s,
            max_block_failures=self.config.max_block_failures,
            breaker_threshold=self.config.breaker_threshold,
            run_id=self.run_id,
            pool_stats=dict(self._last_stats),
            telemetry={
                "n_deltas": self.fleet.n_deltas,
                "workers_heard": len(self.fleet.worker_ids()),
                "events_logged": getattr(self.events, "n_records", 0),
                "alerts_fired": (
                    self.alerts.n_fired if self.alerts is not None else 0
                ),
            },
        )

    def _run(
        self,
        blocks: list[Block24],
        schedule: RoundSchedule,
        seed: int,
        root,
        events,
    ) -> BatchResult:
        children = np.random.SeedSequence(seed).spawn(len(blocks))
        completed = self._serial._load_checkpoint(schedule, seed, len(blocks))
        n_resumed = len(completed)
        if n_resumed:
            self._serial._m.resumed.inc(n_resumed)
            events.info("run.resumed", n_resumed=n_resumed)

        pending = deque(
            (index, blocks[index], children[index])
            for index in range(len(blocks))
            if index not in completed
        )
        if pending:
            self._supervise(
                pending, completed, blocks, schedule, seed, root, events
            )
        results = [completed[i] for i in range(len(blocks))]
        return BatchResult(results=results, n_resumed=n_resumed)

    def _supervise(
        self,
        pending: deque,
        completed: dict[int, Union[BlockMeasurement, BlockFailure]],
        blocks: list[Block24],
        schedule: RoundSchedule,
        seed: int,
        root,
        events,
    ) -> None:
        config = self.config
        ctx = multiprocessing.get_context(config.mp_context)
        heartbeat = ctx.Array("d", config.n_workers, lock=False)
        fr_dir = (
            Path(config.flight_recorder_dir)
            if config.flight_recorder_dir is not None
            else None
        )
        if fr_dir is not None:
            fr_dir.mkdir(parents=True, exist_ok=True)
        workers = [
            self._spawn(ctx, wid, heartbeat, schedule)
            for wid in range(config.n_workers)
        ]
        self._m.workers.set(len(workers))
        fleet = self.fleet
        alerts = self.alerts
        stats = self._last_stats
        recorders = self.recorders
        env_failures: dict[int, int] = {}
        respawn_streak: dict[int, int] = {}
        bp_active = False
        state = {
            "consecutive": 0,
            "pending_since_flush": 0,
            "n_done": 0,
            "n_failed": 0,
        }
        n_blocks = len(blocks)
        # Per-worker bound loggers tee into that worker's flight
        # recorder, which outlives respawns: the black box is about the
        # worker *slot*, and a replacement's history continues it.
        wlogs: dict[int, object] = {}

        def recorder(wid: int) -> FlightRecorder:
            rec = recorders.get(wid)
            if rec is None:
                rec = recorders[wid] = FlightRecorder(
                    capacity=config.flight_recorder_capacity
                )
            return rec

        def wlog(wid: int):
            logger = wlogs.get(wid)
            if logger is None:
                if events.enabled or fr_dir is not None:
                    logger = events.bind(ring=recorder(wid), worker_id=wid)
                else:
                    logger = events  # fully dark: no ring, no recorder
                wlogs[wid] = logger
            return logger

        def dump_flight(wid: int, reason: str, **extra) -> None:
            if fr_dir is None or wid not in recorders:
                return
            stats["flight_dumps"] += 1
            path = fr_dir / f"flight-w{wid}-{stats['flight_dumps']:03d}.json"
            out = recorders[wid].dump(
                path,
                reason=reason,
                run_id=self.run_id,
                worker_id=wid,
                **extra,
            )
            events.info(
                "flight.dumped", worker_id=wid, reason=reason, path=str(out)
            )

        def span_fields(span) -> dict:
            if span is None:
                return {}
            return {"trace_id": span.trace_id, "span_id": span.span_id}

        def ingest_delta(delta, span) -> None:
            if delta is None or not fleet.apply(delta):
                return
            self._m.deltas.inc()
            for span_data in delta.spans:
                self.tracer.graft(span_data, parent=span)
            rec = recorder(delta.worker_id)
            for record_ in delta.events:
                events.emit(record_)
                rec.append(record_)
            if delta.metrics:
                rec.sample(
                    {
                        "worker_id": delta.worker_id,
                        "seq": delta.seq,
                        "pid": delta.pid,
                        "metrics": delta.metrics,
                    }
                )

        def evaluate_alerts() -> None:
            if alerts is None:
                return
            alerts.evaluate(fleet.aggregate(self.metrics))
            stats["alerts_fired"] = alerts.n_fired

        def record(index, outcome) -> None:
            completed[index] = outcome
            self._serial._count_outcome(outcome)
            crashpoint("pool.block_done")
            state["n_done"] += 1
            if isinstance(outcome, BlockFailure):
                state["consecutive"] += 1
                state["n_failed"] += 1
            else:
                state["consecutive"] = 0
            self._m.failure_ratio.set(state["n_failed"] / state["n_done"])
            state["pending_since_flush"] += 1
            if (
                config.batch.checkpoint_path is not None
                and state["pending_since_flush"]
                >= config.batch.checkpoint_every
            ):
                self._serial._save_checkpoint(
                    completed, schedule, seed, n_blocks
                )
                state["pending_since_flush"] = 0
                crashpoint("pool.checkpointed")

        def reap(worker: _Worker, reason: str) -> _Worker:
            """Kill/bury one worker, requeue or quarantine its block."""
            (self._m.hung if reason == "hung" else self._m.crashed).inc()
            stats[
                "respawns_hung" if reason == "hung" else "respawns_crashed"
            ] += 1
            wid = worker.worker_id
            index = worker.task[0] if worker.task is not None else None
            wlog(wid).warning(
                f"worker.{reason}",
                pid=worker.process.pid,
                index=index,
                **span_fields(worker.span),
            )
            if worker.process.is_alive():
                worker.process.terminate()
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=5.0)
            try:
                worker.conn.close()
            except OSError:
                pass
            if worker.task is not None:
                index, block, child = worker.task
                if worker.span is not None:
                    worker.span.attrs["outcome"] = reason
                self.tracer.end(worker.span, parent=root)
                worker.span = None
                env_failures[index] = env_failures.get(index, 0) + 1
                if env_failures[index] >= config.max_block_failures:
                    self._m.quarantined.inc()
                    stats["blocks_quarantined"] += 1
                    wlog(wid).error(
                        "block.quarantined",
                        index=index,
                        block_id=int(getattr(block, "block_id", -1)),
                        failures=env_failures[index],
                    )
                    record(
                        index,
                        BlockFailure(
                            block_id=int(getattr(block, "block_id", -1)),
                            index=index,
                            error_type="WorkerLost",
                            message=(
                                f"worker {reason} "
                                f"{env_failures[index]} time(s); "
                                f"block quarantined as poison"
                            ),
                            attempts=env_failures[index],
                        ),
                    )
                else:
                    # Same pickled child ⇒ the retry is bit-identical
                    # to what an undisturbed worker would have produced.
                    pending.appendleft(worker.task)
                    wlog(wid).info(
                        "task.requeued",
                        index=index,
                        failures=env_failures[index],
                    )
            dump_flight(wid, reason=f"worker {reason}", index=index)
            streak = respawn_streak.get(wid, 0) + 1
            respawn_streak[wid] = streak
            delay = config.respawn_backoff.delay_s(streak)
            if delay > 0:
                # Pace consecutive respawns of the same slot: a sick
                # environment (OOM storm, bad deploy) otherwise turns
                # the supervisor into a fork bomb.
                wlog(wid).warning(
                    "worker.respawn_backoff", streak=streak, delay_s=delay
                )
                time.sleep(delay)
            replacement = self._spawn(ctx, wid, heartbeat, schedule)
            workers[wid] = replacement
            wlog(wid).info("worker.respawned", pid=replacement.process.pid)
            evaluate_alerts()
            return replacement

        try:
            while len(completed) < n_blocks:
                if (
                    config.breaker_threshold is not None
                    and state["consecutive"] >= config.breaker_threshold
                ):
                    self._m.breaker_trips.inc()
                    stats["breaker_trips"] += 1
                    events.error(
                        "breaker.open",
                        consecutive=state["consecutive"],
                        checkpoint_path=(
                            str(config.batch.checkpoint_path)
                            if config.batch.checkpoint_path is not None
                            else None
                        ),
                    )
                    evaluate_alerts()
                    for wid in sorted(recorders):
                        dump_flight(wid, reason="breaker open")
                    if (
                        config.batch.checkpoint_path is not None
                        and state["pending_since_flush"]
                    ):
                        self._serial._save_checkpoint(
                            completed, schedule, seed, n_blocks
                        )
                        state["pending_since_flush"] = 0
                    raise CircuitOpenError(
                        state["consecutive"], config.batch.checkpoint_path
                    )

                paused = bool(
                    self.backpressure is not None
                    and pending
                    and self.backpressure()
                )
                if paused and not bp_active:
                    self._m.dispatch_pauses.inc()
                    stats["dispatch_pauses"] += 1
                    events.warning(
                        "pool.dispatch_paused", queued=len(pending)
                    )
                elif bp_active and not paused:
                    events.info("pool.dispatch_resumed", queued=len(pending))
                bp_active = paused
                for worker in workers:
                    if worker.task is None and pending and not paused:
                        task = pending.popleft()
                        index = task[0]
                        span = self.tracer.begin(
                            "pool.dispatch",
                            index=index,
                            worker_id=worker.worker_id,
                            parent=root,
                        )
                        tctx = span.context if span is not None else None
                        try:
                            worker.conn.send((*task, tctx))
                        except (OSError, ValueError):
                            worker.task = task  # requeued by reap
                            worker.span = span
                            reap(worker, "crashed")
                            continue
                        worker.task = task
                        worker.span = span
                        worker.dispatched_at = time.monotonic()
                        self._m.dispatched.inc()
                        wlog(worker.worker_id).debug(
                            "task.dispatched",
                            index=index,
                            **span_fields(span),
                        )

                handles: dict[object, tuple[_Worker, str]] = {}
                for worker in workers:
                    if worker.task is not None:
                        handles[worker.conn] = (worker, "conn")
                    handles[worker.process.sentinel] = (worker, "sentinel")
                ready = connection.wait(
                    list(handles), timeout=config.heartbeat_interval_s
                )
                replaced: set[int] = set()
                for handle in ready:
                    worker, kind = handles[handle]
                    if worker.worker_id in replaced:
                        continue
                    if kind == "conn":
                        try:
                            index, outcome, delta = worker.conn.recv()
                        except (EOFError, OSError):
                            reap(worker, "crashed")
                            replaced.add(worker.worker_id)
                            continue
                        span = worker.span
                        worker.task = None
                        worker.span = None
                        respawn_streak.pop(worker.worker_id, None)
                        ingest_delta(delta, span)
                        if span is not None:
                            span.attrs["outcome"] = "completed"
                        self.tracer.end(span, parent=root)
                        wlog(worker.worker_id).debug(
                            "task.completed",
                            index=index,
                            **span_fields(span),
                        )
                        if isinstance(outcome, BlockFailure):
                            wlog(worker.worker_id).warning(
                                "block.failed",
                                index=index,
                                block_id=outcome.block_id,
                                error_type=outcome.error_type,
                                message=outcome.message,
                                attempts=outcome.attempts,
                                **span_fields(span),
                            )
                        record(index, outcome)
                        evaluate_alerts()
                    else:  # sentinel: the process died
                        reap(worker, "crashed")
                        replaced.add(worker.worker_id)

                now = time.monotonic()
                busy_ages = [
                    now
                    - max(worker.dispatched_at, heartbeat[worker.worker_id])
                    for worker in workers
                    if worker.task is not None
                ]
                self._m.heartbeat_age.set(max(busy_ages, default=0.0))
                if config.block_deadline_s is not None:
                    for worker in list(workers):
                        if worker.task is None:
                            continue
                        last_sign_of_life = max(
                            worker.dispatched_at,
                            heartbeat[worker.worker_id],
                        )
                        if now - last_sign_of_life > config.block_deadline_s:
                            reap(worker, "hung")

            if (
                config.batch.checkpoint_path is not None
                and state["pending_since_flush"]
            ):
                self._serial._save_checkpoint(
                    completed, schedule, seed, n_blocks
                )
            evaluate_alerts()
        finally:
            for worker in workers:
                try:
                    worker.conn.send(None)
                except (OSError, ValueError):
                    pass
            for worker in workers:
                worker.process.join(timeout=2.0)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=5.0)
                try:
                    worker.conn.close()
                except OSError:
                    pass
            self._m.workers.set(0)
            self._m.heartbeat_age.set(0.0)

    def _spawn(self, ctx, worker_id: int, heartbeat, schedule) -> _Worker:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        heartbeat[worker_id] = time.monotonic()
        process = ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                heartbeat,
                worker_id,
                self.config.batch,
                schedule,
                self._telemetry,
                (
                    str(self.config.flight_recorder_dir)
                    if self.config.flight_recorder_dir is not None
                    else None
                ),
            ),
            daemon=True,
            name=f"pool-worker-{worker_id}",
        )
        process.start()
        child_conn.close()  # parent must not hold the child's end open
        return _Worker(
            worker_id=worker_id, process=process, conn=parent_conn
        )

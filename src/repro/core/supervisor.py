"""Supervised multi-process batch measurement.

:class:`BatchRunner` survives per-block *exceptions*; a production-scale
campaign also has to survive the failures exceptions cannot express — a
worker process that dies (OOM kill, segfault in a native library) or
wedges forever in a C loop.  :class:`PoolRunner` runs the same per-block
pipeline across a pool of worker processes under a supervisor that:

* enforces a **per-block wall-clock deadline**, killing and respawning
  any worker whose heartbeat goes stale past it;
* detects **worker death** via process sentinels and re-dispatches the
  interrupted block to a fresh worker;
* **quarantines poison blocks**: a block that kills its worker
  ``max_block_failures`` times is recorded as a
  :class:`~repro.core.pipeline.BlockFailure` instead of crashing the
  pool forever;
* trips a **circuit breaker** after a burst of consecutive failures —
  the checkpoint is saved, the pool shuts down, and
  :class:`CircuitOpenError` tells the operator the environment (not one
  block) is sick;
* merges results **deterministically**: every block's randomness comes
  from the same per-index :class:`~numpy.random.SeedSequence` child the
  serial runner would use, and a re-dispatched block gets the identical
  child again, so the merged :class:`~repro.core.pipeline.BatchResult`
  is bit-identical to a serial :class:`BatchRunner` run with the same
  seed — regardless of completion order, retries, or worker deaths.

Checkpoints are shared with the serial runner (same file format, same
resume semantics), so a campaign can move between serial and pooled
execution across restarts.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from multiprocessing import connection
from typing import Union

import numpy as np

from repro.core.pipeline import (
    BatchConfig,
    BatchResult,
    BatchRunner,
    BlockFailure,
    BlockMeasurement,
)
from repro.faults.crash import crashpoint
from repro.net.blocks import Block24
from repro.obs.export import RunManifest
from repro.obs.registry import NULL_REGISTRY
from repro.obs.tracing import NULL_TRACER
from repro.probing.rounds import RoundSchedule

__all__ = ["CircuitOpenError", "PoolConfig", "PoolRunner"]


class CircuitOpenError(RuntimeError):
    """The pool aborted after a burst of consecutive failures.

    A single bad block is isolated and retried; ``breaker_threshold``
    failures *in a row* mean something systemic (disk full, bad deploy,
    poisoned dataset) and continuing would burn the whole campaign.
    Completed work is already checkpointed when this raises; fix the
    environment and rerun to resume.
    """

    def __init__(self, n_consecutive: int, checkpoint_path) -> None:
        where = (
            f"; completed blocks are checkpointed at {checkpoint_path}"
            if checkpoint_path is not None
            else ""
        )
        super().__init__(
            f"circuit breaker open after {n_consecutive} consecutive "
            f"block failures{where}"
        )
        self.n_consecutive = n_consecutive
        self.checkpoint_path = checkpoint_path


@dataclass(frozen=True)
class PoolConfig:
    """Supervision policy for a pooled batch run.

    Attributes:
        batch: the serial resilience policy (measurement, retries,
            checkpointing) each worker applies per block.
        n_workers: worker processes.
        block_deadline_s: wall-clock budget per dispatched block;
            a worker whose heartbeat goes stale past it is killed and
            respawned.  ``None`` disables deadlines.
        max_block_failures: worker deaths tolerated per block before it
            is quarantined as a :class:`BlockFailure` (in-worker
            exceptions are already retried by the per-block pipeline;
            this bounds *environment* failures).
        breaker_threshold: consecutive failed blocks that trip
            :class:`CircuitOpenError`; ``None`` disables the breaker.
        heartbeat_interval_s: how often idle workers refresh their
            heartbeat; also the supervisor's poll granularity.
        mp_context: multiprocessing start method.  ``"fork"`` (default)
            inherits test doubles and armed crash points; ``"spawn"``
            requires everything dispatched to be importable.
    """

    batch: BatchConfig = field(default_factory=BatchConfig)
    n_workers: int = 2
    block_deadline_s: float | None = None
    max_block_failures: int = 2
    breaker_threshold: int | None = 5
    heartbeat_interval_s: float = 0.05
    mp_context: str = "fork"

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        if self.block_deadline_s is not None and self.block_deadline_s <= 0:
            raise ValueError("block_deadline_s must be positive")
        if self.max_block_failures < 1:
            raise ValueError("max_block_failures must be at least 1")
        if self.breaker_threshold is not None and self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be at least 1")
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")


def _worker_main(conn, heartbeat, worker_id, batch_config, schedule) -> None:
    """Worker loop: receive ``(index, block, child)``, send ``(index, result)``.

    Reuses :meth:`BatchRunner._measure_one` verbatim, so retry
    semantics and RNG substream derivation are *identical* to serial
    execution.  The heartbeat slot is refreshed at every task boundary
    and while idle; a worker wedged inside a block stops refreshing and
    the supervisor's deadline reaps it.
    """
    runner = BatchRunner(batch_config)
    fault_plan = runner._fault_plan()
    try:
        while True:
            heartbeat[worker_id] = time.monotonic()
            if not conn.poll(0.05):
                continue
            task = conn.recv()
            if task is None:
                return
            index, block, child = task
            heartbeat[worker_id] = time.monotonic()
            crashpoint("pool.worker.task_start")
            result = runner._measure_one(
                block, index, schedule, child, fault_plan
            )
            crashpoint("pool.worker.task_done")
            conn.send((index, result))
            heartbeat[worker_id] = time.monotonic()
    except (EOFError, OSError, KeyboardInterrupt):
        return
    finally:
        conn.close()


@dataclass
class _Worker:
    """Supervisor-side handle for one worker process."""

    worker_id: int
    process: multiprocessing.Process
    conn: connection.Connection
    task: tuple | None = None
    dispatched_at: float = 0.0


class _PoolMetrics:
    """Pre-bound pool supervision metrics (null registry by default)."""

    __slots__ = ("dispatched", "hung", "crashed", "quarantined",
                 "breaker_trips", "workers")

    def __init__(self, registry) -> None:
        self.dispatched = registry.counter("pool_tasks_dispatched_total")
        self.hung = registry.counter("pool_worker_restarts_total",
                                     reason="hung")
        self.crashed = registry.counter("pool_worker_restarts_total",
                                        reason="crashed")
        self.quarantined = registry.counter("pool_blocks_quarantined_total")
        self.breaker_trips = registry.counter("pool_breaker_trips_total")
        self.workers = registry.gauge("pool_workers")


class PoolRunner:
    """Run a batch across supervised worker processes.

    Drop-in alternative to :class:`BatchRunner.run` — same arguments,
    same :class:`BatchResult`, bit-identical results for the same seed —
    that additionally survives hung and dying workers.  See the module
    docstring for the supervision policy.
    """

    def __init__(
        self,
        config: PoolConfig | None = None,
        metrics=None,
        tracer=None,
    ) -> None:
        self.config = config or PoolConfig()
        self.metrics = NULL_REGISTRY if metrics is None else metrics
        self.tracer = NULL_TRACER if tracer is None else tracer
        self._m = _PoolMetrics(self.metrics)
        # Checkpoint IO and outcome counting are delegated to a serial
        # runner so the two execution modes share one format and one
        # metric family.
        self._serial = BatchRunner(self.config.batch, metrics, tracer)

    def run(
        self,
        blocks: list[Block24],
        schedule: RoundSchedule,
        seed: int = 0,
    ) -> BatchResult:
        with self.tracer.trace(
            "pool.run",
            n_blocks=len(blocks),
            seed=seed,
            n_workers=self.config.n_workers,
        ):
            result = self._run(blocks, schedule, seed)
        result.manifest = self._manifest(seed, len(blocks))
        return result

    def _manifest(self, seed: int, n_blocks: int) -> RunManifest:
        fault_plan = self._serial._fault_plan()
        return RunManifest.capture(
            kind="pool",
            registry=self.metrics,
            tracer=self.tracer,
            seed=seed,
            n_blocks=n_blocks,
            fault_plan=(
                fault_plan.describe()
                if fault_plan is not None
                else "clean (no faults)"
            ),
            quality_gates=asdict(self.config.batch.measurement.classifier),
            max_retries=self.config.batch.max_retries,
            checkpoint_path=(
                str(self.config.batch.checkpoint_path)
                if self.config.batch.checkpoint_path is not None
                else None
            ),
            fill_policy=self.config.batch.measurement.fill_policy,
            n_workers=self.config.n_workers,
            block_deadline_s=self.config.block_deadline_s,
            max_block_failures=self.config.max_block_failures,
            breaker_threshold=self.config.breaker_threshold,
        )

    def _run(
        self,
        blocks: list[Block24],
        schedule: RoundSchedule,
        seed: int,
    ) -> BatchResult:
        config = self.config
        children = np.random.SeedSequence(seed).spawn(len(blocks))
        completed = self._serial._load_checkpoint(schedule, seed, len(blocks))
        n_resumed = len(completed)
        if n_resumed:
            self._serial._m.resumed.inc(n_resumed)

        pending = deque(
            (index, blocks[index], children[index])
            for index in range(len(blocks))
            if index not in completed
        )
        if pending:
            self._supervise(pending, completed, blocks, schedule, seed)
        results = [completed[i] for i in range(len(blocks))]
        return BatchResult(results=results, n_resumed=n_resumed)

    def _supervise(
        self,
        pending: deque,
        completed: dict[int, Union[BlockMeasurement, BlockFailure]],
        blocks: list[Block24],
        schedule: RoundSchedule,
        seed: int,
    ) -> None:
        config = self.config
        ctx = multiprocessing.get_context(config.mp_context)
        heartbeat = ctx.Array("d", config.n_workers, lock=False)
        workers = [
            self._spawn(ctx, wid, heartbeat, schedule)
            for wid in range(config.n_workers)
        ]
        self._m.workers.set(len(workers))
        env_failures: dict[int, int] = {}
        state = {"consecutive": 0, "pending_since_flush": 0}
        n_blocks = len(blocks)

        def record(index, outcome) -> None:
            completed[index] = outcome
            self._serial._count_outcome(outcome)
            crashpoint("pool.block_done")
            if isinstance(outcome, BlockFailure):
                state["consecutive"] += 1
            else:
                state["consecutive"] = 0
            state["pending_since_flush"] += 1
            if (
                config.batch.checkpoint_path is not None
                and state["pending_since_flush"]
                >= config.batch.checkpoint_every
            ):
                self._serial._save_checkpoint(
                    completed, schedule, seed, n_blocks
                )
                state["pending_since_flush"] = 0
                crashpoint("pool.checkpointed")

        def reap(worker: _Worker, reason: str) -> _Worker:
            """Kill/bury one worker, requeue or quarantine its block."""
            (self._m.hung if reason == "hung" else self._m.crashed).inc()
            if worker.process.is_alive():
                worker.process.terminate()
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=5.0)
            try:
                worker.conn.close()
            except OSError:
                pass
            if worker.task is not None:
                index, block, child = worker.task
                env_failures[index] = env_failures.get(index, 0) + 1
                if env_failures[index] >= config.max_block_failures:
                    self._m.quarantined.inc()
                    record(
                        index,
                        BlockFailure(
                            block_id=int(getattr(block, "block_id", -1)),
                            index=index,
                            error_type="WorkerLost",
                            message=(
                                f"worker {reason} "
                                f"{env_failures[index]} time(s); "
                                f"block quarantined as poison"
                            ),
                            attempts=env_failures[index],
                        ),
                    )
                else:
                    # Same pickled child ⇒ the retry is bit-identical
                    # to what an undisturbed worker would have produced.
                    pending.appendleft(worker.task)
            replacement = self._spawn(
                ctx, worker.worker_id, heartbeat, schedule
            )
            workers[worker.worker_id] = replacement
            return replacement

        try:
            while len(completed) < n_blocks:
                if (
                    config.breaker_threshold is not None
                    and state["consecutive"] >= config.breaker_threshold
                ):
                    self._m.breaker_trips.inc()
                    if (
                        config.batch.checkpoint_path is not None
                        and state["pending_since_flush"]
                    ):
                        self._serial._save_checkpoint(
                            completed, schedule, seed, n_blocks
                        )
                        state["pending_since_flush"] = 0
                    raise CircuitOpenError(
                        state["consecutive"], config.batch.checkpoint_path
                    )

                for worker in workers:
                    if worker.task is None and pending:
                        task = pending.popleft()
                        try:
                            worker.conn.send(task)
                        except (OSError, ValueError):
                            worker.task = task  # requeued by reap
                            reap(worker, "crashed")
                            continue
                        worker.task = task
                        worker.dispatched_at = time.monotonic()
                        self._m.dispatched.inc()

                handles: dict[object, tuple[_Worker, str]] = {}
                for worker in workers:
                    if worker.task is not None:
                        handles[worker.conn] = (worker, "conn")
                    handles[worker.process.sentinel] = (worker, "sentinel")
                ready = connection.wait(
                    list(handles), timeout=config.heartbeat_interval_s
                )
                replaced: set[int] = set()
                for handle in ready:
                    worker, kind = handles[handle]
                    if worker.worker_id in replaced:
                        continue
                    if kind == "conn":
                        try:
                            index, outcome = worker.conn.recv()
                        except (EOFError, OSError):
                            reap(worker, "crashed")
                            replaced.add(worker.worker_id)
                            continue
                        worker.task = None
                        record(index, outcome)
                    else:  # sentinel: the process died
                        reap(worker, "crashed")
                        replaced.add(worker.worker_id)

                if config.block_deadline_s is not None:
                    now = time.monotonic()
                    for worker in list(workers):
                        if worker.task is None:
                            continue
                        last_sign_of_life = max(
                            worker.dispatched_at,
                            heartbeat[worker.worker_id],
                        )
                        if now - last_sign_of_life > config.block_deadline_s:
                            reap(worker, "hung")

            if (
                config.batch.checkpoint_path is not None
                and state["pending_since_flush"]
            ):
                self._serial._save_checkpoint(completed, schedule, seed, n_blocks)
        finally:
            for worker in workers:
                try:
                    worker.conn.send(None)
                except (OSError, ValueError):
                    pass
            for worker in workers:
                worker.process.join(timeout=2.0)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=5.0)
                try:
                    worker.conn.close()
                except OSError:
                    pass
            self._m.workers.set(0)

    def _spawn(self, ctx, worker_id: int, heartbeat, schedule) -> _Worker:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        heartbeat[worker_id] = time.monotonic()
        process = ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                heartbeat,
                worker_id,
                self.config.batch,
                schedule,
            ),
            daemon=True,
            name=f"pool-worker-{worker_id}",
        )
        process.start()
        child_conn.close()  # parent must not hold the child's end open
        return _Worker(
            worker_id=worker_id, process=process, conn=parent_conn
        )

"""Phase to time-of-day conversion (the paper's section 5.2 future work).

The paper uses FFT phase only *relatively* (against longitude); it leaves
"calibrating phase with local time of day" to future work.  The
calibration is straightforward once the series is trimmed to start at
midnight UTC: for the 1-cycle/day component, the coefficient's angle φ
puts the daily availability *peak* at UTC hour ``-φ/(2π)·24``.  A block
that is up for ``u`` hours a day peaks mid-window, so it wakes ``u/2``
hours earlier; longitude then converts UTC to local solar time.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "circular_hour_difference",
    "ewma_lag_hours",
    "local_hour",
    "peak_utc_hour",
    "wake_utc_hour",
    "wake_local_hour",
]


def ewma_lag_hours(alpha: float = 0.1, round_s: float = 660.0) -> float:
    """Group delay of the short-term EWMA at diurnal frequencies.

    An EWMA with gain α lags a slow signal by ``(1-α)/α`` samples; with
    the paper's α_s = 0.1 and 11-minute rounds that is ~1.65 hours.  Any
    absolute time-of-day read from an *estimated* series' phase should be
    advanced by this much (phases from ground-truth A need no correction).
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError("alpha must be in (0, 1]")
    return (1.0 - alpha) / alpha * round_s / 3600.0


def peak_utc_hour(phase: np.ndarray) -> np.ndarray:
    """UTC hour of the daily availability peak from the FFT phase.

    ``phase`` is the angle (radians) of the 1-cycle/day coefficient of a
    series whose first sample lies at midnight UTC.
    """
    phase = np.asarray(phase, dtype=np.float64)
    return (-phase / (2 * np.pi) * 24.0) % 24.0


def wake_utc_hour(
    phase: np.ndarray,
    uptime_hours: float = 13.5,
    lag_hours: float = 0.0,
) -> np.ndarray:
    """UTC hour the block wakes, assuming it peaks mid-uptime.

    ``uptime_hours`` defaults to a typical human-use window; pass the
    measured duty cycle when known.  When the phase came from an
    *estimated* Â_s series, pass ``lag_hours=ewma_lag_hours(...)`` to
    remove the estimator's group delay.
    """
    return (peak_utc_hour(phase) - uptime_hours / 2.0 - lag_hours) % 24.0


def local_hour(utc_hour: np.ndarray, lon_deg: np.ndarray) -> np.ndarray:
    """Convert UTC hours to local solar hours at a longitude (15°/hour)."""
    utc_hour = np.asarray(utc_hour, dtype=np.float64)
    lon_deg = np.asarray(lon_deg, dtype=np.float64)
    return (utc_hour + lon_deg / 15.0) % 24.0


def wake_local_hour(
    phase: np.ndarray,
    lon_deg: np.ndarray,
    uptime_hours: float = 13.5,
    lag_hours: float = 0.0,
) -> np.ndarray:
    """Local solar hour a diurnal block wakes, from phase + longitude.

    This is the section 5.2 calibration: with it, "when does the Internet
    sleep" becomes an absolute clock-time statement per block.
    """
    return local_hour(wake_utc_hour(phase, uptime_hours, lag_hours), lon_deg)


def circular_hour_difference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Absolute difference between clock hours on the 24-hour circle."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    delta = np.abs(a - b) % 24.0
    return np.minimum(delta, 24.0 - delta)

"""One retry policy for every retry site in the system.

Before this module, three ad-hoc retry/delay loops lived in three
corners of the codebase: :class:`~repro.core.pipeline.BatchRunner`
retried failed blocks immediately in a bare ``for`` loop, the
:class:`~repro.core.supervisor.PoolRunner` respawned dead workers with
no pacing at all (a crash-looping environment would fork as fast as the
kernel allowed), and a journal whose file was briefly unopenable (NFS
hiccup, quota race) failed permanently on first touch.  Each site had
reinvented part of a retry policy and none had all of it.

:class:`RetryPolicy` is the shared answer: exponential backoff with a
cap, **deterministic** seeded jitter (the same ``(seed, attempt)`` pair
always produces the same delay, so retry schedules are replayable in
tests and identical across reruns — no wall-clock or global-RNG
dependence), and an optional total deadline budget that bounds how long
a caller can spend waiting across all attempts.

The default policy (``base_delay_s=0``) degenerates to "retry
immediately", which is bit-identical to the legacy behavior of every
call site — production configs opt into real backoff.
"""

from __future__ import annotations

import struct
import time
import zlib
from dataclasses import dataclass
from typing import Callable, Iterator

__all__ = ["RetryPolicy"]


def _unit_interval(seed: int, attempt: int) -> float:
    """A deterministic draw in [0, 1) keyed by (seed, attempt).

    CRC32 of the packed pair: cheap, stateless, stable across platforms
    and Python versions (unlike ``hash``), and independent of NumPy's
    global RNG — jitter must never perturb the measurement streams.
    """
    h = zlib.crc32(struct.pack("<qq", seed, attempt))
    return h / 2**32


@dataclass(frozen=True)
class RetryPolicy:
    """Seeded exponential backoff with jitter and a deadline budget.

    Attributes:
        max_retries: additional attempts after the first (0 = one shot).
        base_delay_s: delay before the first retry; 0 retries instantly.
        multiplier: exponential growth factor per subsequent retry.
        max_delay_s: cap on any single delay (pre-jitter).
        jitter: +/- fraction of the delay randomized deterministically
            from ``seed`` (0 disables, 1 allows the full [0, 2x] range).
        deadline_s: total budget across all waits; a retry whose delay
            would exceed the remaining budget is not attempted.
            ``None`` means unbounded.
        seed: jitter seed; same seed, same schedule, every run.
    """

    max_retries: int = 1
    base_delay_s: float = 0.0
    multiplier: float = 2.0
    max_delay_s: float = 30.0
    jitter: float = 0.0
    deadline_s: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.base_delay_s < 0:
            raise ValueError("base_delay_s must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1")
        if self.max_delay_s < 0:
            raise ValueError("max_delay_s must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.deadline_s is not None and self.deadline_s < 0:
            raise ValueError("deadline_s must be non-negative")

    def delay_s(self, attempt: int) -> float:
        """The backoff before retry ``attempt`` (1-based; 0 means none).

        ``min(base * multiplier**(attempt-1), max_delay)``, then spread
        by the deterministic jitter draw for this ``(seed, attempt)``.
        """
        if attempt < 1 or self.base_delay_s == 0.0:
            return 0.0
        delay = min(
            self.base_delay_s * self.multiplier ** (attempt - 1),
            self.max_delay_s,
        )
        if self.jitter:
            u = _unit_interval(self.seed, attempt)
            delay *= 1.0 - self.jitter + 2.0 * self.jitter * u
        return delay

    def schedule(self) -> list[float]:
        """Every delay this policy would sleep, in order (for logs/tests)."""
        return [self.delay_s(k) for k in range(1, self.max_retries + 1)]

    def attempts(
        self,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> Iterator[int]:
        """Yield attempt indices ``0..max_retries``, sleeping in between.

        The caller breaks out on success.  A retry whose delay would
        blow the remaining ``deadline_s`` budget is withheld — the
        generator simply ends, and the caller treats its last failure
        as final.
        """
        start = clock()
        yield 0
        for attempt in range(1, self.max_retries + 1):
            delay = self.delay_s(attempt)
            if (
                self.deadline_s is not None
                and (clock() - start) + delay > self.deadline_s
            ):
                return
            if delay > 0:
                sleep(delay)
            yield attempt

    def call(
        self,
        fn: Callable[[], object],
        retry_on: tuple = (Exception,),
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Callable[[int, BaseException], None] | None = None,
    ):
        """Run ``fn`` under this policy; return its first success.

        Only exceptions matching ``retry_on`` are retried; anything else
        propagates immediately.  ``on_retry(attempt, error)`` is invoked
        before each retry sleep (for structured logging).  When every
        attempt fails, the last error is re-raised.
        """
        last: BaseException | None = None
        for attempt in self.attempts(sleep=sleep):
            if attempt > 0 and on_retry is not None:
                assert last is not None
                on_retry(attempt, last)
            try:
                return fn()
            except retry_on as error:
                last = error
        assert last is not None
        raise last

"""Strict/relaxed diurnal classification of availability spectra (section 2.2).

A block is **strictly diurnal** when the strongest non-DC frequency is the
1-cycle-per-day bin (``N_d`` or ``N_d+1``), its amplitude is at least twice
the next strongest *non-harmonic* frequency, and it exceeds every harmonic.
It is **relaxed diurnal** when the strongest frequency is at 1 cycle/day or
the first harmonic, with no ratio requirement.  Phase is read from the
winning diurnal bin and is only meaningful for (strictly or relaxed)
diurnal blocks — for anything else it is effectively random.

Degraded inputs get a fourth verdict, **insufficient data**: when the
cleaned series still contains NaNs, or its :class:`~repro.core.timeseries.
QualityReport` shows too many missing rounds, the classifier refuses to
label rather than running an FFT over manufactured fill values.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.core.timeseries import QualityReport

from repro.core.spectral import (
    Spectrum,
    compute_spectra,
    compute_spectrum,
    diurnal_bin,
    diurnal_candidates,
    harmonic_bins,
)
from repro.obs.registry import NULL_REGISTRY

__all__ = [
    "ClassifierConfig",
    "DiurnalBatch",
    "DiurnalClass",
    "DiurnalReport",
    "classify_many",
    "classify_series",
    "classify_spectrum",
    "decide_label",
    "insufficient_report",
    "reports_equal",
    "set_metrics",
]


class DiurnalClass(Enum):
    """Diurnal label of one block."""

    NON_DIURNAL = "non-diurnal"
    RELAXED = "relaxed"
    STRICT = "strict"
    INSUFFICIENT = "insufficient-data"

    @property
    def is_strict(self) -> bool:
        return self is DiurnalClass.STRICT

    @property
    def is_diurnal(self) -> bool:
        """True for the paper's "either" set: strict or relaxed."""
        return self in (DiurnalClass.STRICT, DiurnalClass.RELAXED)

    @property
    def is_classified(self) -> bool:
        """False only for the insufficient-data refusal verdict."""
        return self is not DiurnalClass.INSUFFICIENT


class _Instruments:
    """Pre-bound classification metrics (null registry by default).

    Bound once per :func:`set_metrics` call so the per-classification
    cost is a dict lookup and a no-op (or locked) increment — never a
    registry lookup on the hot path.
    """

    __slots__ = (
        "enabled",
        "verdicts",
        "gate_trips",
        "nan_refusals",
        "fft_seconds",
        "fft_batch_seconds",
    )

    # FFT windows run tens of microseconds to tens of milliseconds.
    _FFT_BUCKETS = (
        1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
        1e-3, 2.5e-3, 5e-3, 1e-2, 5e-2, 0.1,
    )

    def __init__(self, registry) -> None:
        self.enabled = registry.enabled
        self.verdicts = {
            label: registry.counter(
                "classify_verdicts_total", label=label.value
            )
            for label in DiurnalClass
        }
        self.gate_trips = registry.counter("classify_quality_gate_trips_total")
        self.nan_refusals = registry.counter("classify_nan_refusals_total")
        self.fft_seconds = registry.histogram(
            "classify_fft_seconds", buckets=self._FFT_BUCKETS, path="single"
        )
        self.fft_batch_seconds = registry.histogram(
            "classify_fft_seconds", buckets=self._FFT_BUCKETS, path="batch"
        )


_obs = _Instruments(NULL_REGISTRY)


def set_metrics(registry) -> None:
    """Point this module's verdict/gate/FFT metrics at ``registry``.

    Pass ``None`` (or :data:`repro.obs.registry.NULL_REGISTRY`) to turn
    instrumentation back off.  Usually called through
    :func:`repro.obs.install_metrics`.
    """
    global _obs
    _obs = _Instruments(registry if registry is not None else NULL_REGISTRY)


@dataclass(frozen=True)
class ClassifierConfig:
    """Classification thresholds.

    Attributes:
        strict_ratio: the diurnal amplitude must be at least this multiple
            of the strongest non-harmonic competitor (paper: 2.0).
        max_harmonic: highest harmonic multiple treated as harmonic energy.
        harmonic_tolerance: ± bins of slack around each harmonic.
        max_gap_fraction: when a quality report is supplied, refuse to
            classify series missing more than this fraction of rounds.
        max_longest_gap: likewise refuse when the longest gap exceeds this
            many rounds (``None`` disables the check).
    """

    strict_ratio: float = 2.0
    max_harmonic: int = 8
    harmonic_tolerance: int = 1
    max_gap_fraction: float = 0.35
    max_longest_gap: int | None = None

    def __post_init__(self) -> None:
        if self.strict_ratio < 1.0:
            raise ValueError("strict_ratio must be at least 1")
        if not 0.0 <= self.max_gap_fraction <= 1.0:
            raise ValueError("max_gap_fraction must be in [0, 1]")
        if self.max_longest_gap is not None and self.max_longest_gap < 0:
            raise ValueError("max_longest_gap must be non-negative")


@dataclass
class DiurnalReport:
    """Classification outcome for one block.

    Attributes:
        label: strict / relaxed / non-diurnal.
        diurnal_k: the winning diurnal candidate bin.
        diurnal_amplitude: amplitude at that bin.
        dominant_k: the strongest non-DC bin overall.
        dominant_cycles_per_day: its frequency in cycles/day.
        strongest_other: strongest non-diurnal, non-harmonic amplitude.
        strongest_harmonic: strongest harmonic amplitude.
        phase: FFT phase (radians) at the winning diurnal bin; meaningful
            only when the block is diurnal.
    """

    label: DiurnalClass
    diurnal_k: int
    diurnal_amplitude: float
    dominant_k: int
    dominant_cycles_per_day: float
    strongest_other: float
    strongest_harmonic: float
    phase: float

    @property
    def is_strict(self) -> bool:
        return self.label.is_strict

    @property
    def is_diurnal(self) -> bool:
        return self.label.is_diurnal

    @property
    def is_classified(self) -> bool:
        """False only for the :data:`DiurnalClass.INSUFFICIENT` refusal."""
        return self.label.is_classified

    @property
    def phase_valid(self) -> bool:
        return self.label.is_diurnal


def insufficient_report() -> DiurnalReport:
    """The explicit refusal verdict for series too degraded to classify."""
    return DiurnalReport(
        label=DiurnalClass.INSUFFICIENT,
        diurnal_k=-1,
        diurnal_amplitude=float("nan"),
        dominant_k=-1,
        dominant_cycles_per_day=float("nan"),
        strongest_other=float("nan"),
        strongest_harmonic=float("nan"),
        phase=float("nan"),
    )


def decide_label(
    dominant_is_diurnal: bool,
    dominant_in_first_harmonic: bool,
    diurnal_amplitude: float,
    strongest_other: float,
    strongest_harmonic: float,
    config: ClassifierConfig,
) -> DiurnalClass:
    """The section 2.2 decision rule on already-reduced amplitudes.

    Shared by the batch classifier and the streaming engine, so the two
    paths cannot drift: strict needs the diurnal bin to dominate overall,
    beat every harmonic, and exceed ``strict_ratio`` times the strongest
    non-harmonic competitor; relaxed only needs dominance at 1 cycle/day
    or its first harmonic.
    """
    strict = (
        dominant_is_diurnal
        and diurnal_amplitude >= config.strict_ratio * strongest_other
        and diurnal_amplitude > strongest_harmonic
    )
    if strict:
        return DiurnalClass.STRICT
    if dominant_is_diurnal or dominant_in_first_harmonic:
        return DiurnalClass.RELAXED
    return DiurnalClass.NON_DIURNAL


def reports_equal(a: DiurnalReport, b: DiurnalReport) -> bool:
    """Field-wise report equality treating NaN as equal to NaN.

    Dataclass ``==`` is false for two insufficient-data reports because
    their NaN fields compare unequal; parity oracles (streaming versus
    batch) need the NaN-tolerant comparison.
    """
    if a.label is not b.label:
        return False
    for field in (
        "diurnal_k",
        "diurnal_amplitude",
        "dominant_k",
        "dominant_cycles_per_day",
        "strongest_other",
        "strongest_harmonic",
        "phase",
    ):
        va, vb = getattr(a, field), getattr(b, field)
        if va != vb and not (np.isnan(va) and np.isnan(vb)):
            return False
    return True


def _bin_sets(
    n_samples: int, round_s: float, config: ClassifierConfig
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Index sets shared by scalar and batch classification.

    Returns (diurnal candidate bins, first-harmonic bins, all harmonic bins,
    "other" bins: everything non-DC that is neither diurnal nor harmonic).
    """
    n_bins = n_samples // 2 + 1
    k_d = diurnal_bin(n_samples, round_s)
    cand = np.array(diurnal_candidates(n_samples, round_s), dtype=np.int64)
    harmonics = harmonic_bins(
        k_d, n_bins, max_harmonic=config.max_harmonic,
        tolerance=config.harmonic_tolerance,
    )
    first = harmonic_bins(
        k_d, n_bins, max_harmonic=2, tolerance=config.harmonic_tolerance
    )
    mask = np.ones(n_bins, dtype=bool)
    mask[0] = False
    mask[cand] = False
    mask[harmonics] = False
    others = np.flatnonzero(mask)
    return cand, first, harmonics, others


def classify_spectrum(
    spectrum: Spectrum, config: ClassifierConfig | None = None
) -> DiurnalReport:
    """Classify one block from its spectrum."""
    config = config or ClassifierConfig()
    if spectrum.coefficients.ndim != 1:
        raise ValueError("classify_spectrum takes a single-block spectrum")
    if spectrum.n_samples < 4:
        raise ValueError("series too short to classify")
    amps = spectrum.amplitudes
    cand, first, harmonics, others = _bin_sets(
        spectrum.n_samples, spectrum.round_s, config
    )
    if len(cand) == 0:
        raise ValueError("observation shorter than one day; no diurnal bin")

    k_best = int(cand[np.argmax(amps[cand])])
    diurnal_amp = float(amps[k_best])
    strongest_other = float(amps[others].max()) if len(others) else 0.0
    strongest_harmonic = float(amps[harmonics].max()) if len(harmonics) else 0.0
    dominant_k = spectrum.dominant_bin()

    label = decide_label(
        dominant_is_diurnal=dominant_k in cand,
        dominant_in_first_harmonic=dominant_k in first,
        diurnal_amplitude=diurnal_amp,
        strongest_other=strongest_other,
        strongest_harmonic=strongest_harmonic,
        config=config,
    )

    _obs.verdicts[label].inc()
    return DiurnalReport(
        label=label,
        diurnal_k=k_best,
        diurnal_amplitude=diurnal_amp,
        dominant_k=dominant_k,
        dominant_cycles_per_day=spectrum.cycles_per_day(dominant_k),
        strongest_other=strongest_other,
        strongest_harmonic=strongest_harmonic,
        phase=spectrum.phase(k_best),
    )


def classify_series(
    values: np.ndarray,
    round_s: float,
    config: ClassifierConfig | None = None,
    quality: "QualityReport | None" = None,
) -> DiurnalReport:
    """Classify one block straight from its cleaned availability series.

    When a :class:`~repro.core.timeseries.QualityReport` is supplied the
    classifier first checks it against the config's quality thresholds and
    returns the ``insufficient-data`` verdict instead of classifying a
    series that is mostly fill.  A series still containing NaNs (the
    ``nan`` fill policy, or gaps past ``max_gap``) is likewise refused —
    an FFT over NaNs yields garbage, not a label.
    """
    config = config or ClassifierConfig()
    if quality is not None and not quality.usable(
        max_gap_fraction=config.max_gap_fraction,
        max_longest_gap=config.max_longest_gap,
    ):
        _obs.gate_trips.inc()
        _obs.verdicts[DiurnalClass.INSUFFICIENT].inc()
        return insufficient_report()
    values = np.asarray(values, dtype=np.float64)
    if np.isnan(values).any():
        _obs.nan_refusals.inc()
        _obs.verdicts[DiurnalClass.INSUFFICIENT].inc()
        return insufficient_report()
    if _obs.enabled:
        t0 = time.perf_counter()
        spectrum = compute_spectrum(values, round_s)
        _obs.fft_seconds.observe(time.perf_counter() - t0)
    else:
        spectrum = compute_spectrum(values, round_s)
    return classify_spectrum(spectrum, config)


@dataclass
class DiurnalBatch:
    """Vectorized classification results for many blocks.

    ``labels`` uses integer codes 0 (non-diurnal), 1 (relaxed), 2 (strict),
    and -1 (insufficient data — the row contained NaNs); the masks and
    :meth:`label_of` give the friendlier view.
    """

    labels: np.ndarray
    phases: np.ndarray
    diurnal_k: np.ndarray
    diurnal_amplitude: np.ndarray
    dominant_k: np.ndarray
    dominant_cycles_per_day: np.ndarray

    LABEL_CODES = {
        DiurnalClass.NON_DIURNAL: 0,
        DiurnalClass.RELAXED: 1,
        DiurnalClass.STRICT: 2,
        DiurnalClass.INSUFFICIENT: -1,
    }

    @property
    def n_blocks(self) -> int:
        return len(self.labels)

    @property
    def strict_mask(self) -> np.ndarray:
        return self.labels == 2

    @property
    def diurnal_mask(self) -> np.ndarray:
        """Strict or relaxed — the paper's "either" set."""
        return self.labels >= 1

    @property
    def insufficient_mask(self) -> np.ndarray:
        """Rows refused for insufficient data."""
        return self.labels == -1

    def label_of(self, i: int) -> DiurnalClass:
        for label, code in self.LABEL_CODES.items():
            if code == self.labels[i]:
                return label
        raise ValueError(f"bad label code {self.labels[i]}")

    def fraction_strict(self) -> float:
        return float(self.strict_mask.mean()) if self.n_blocks else 0.0

    def fraction_diurnal(self) -> float:
        return float(self.diurnal_mask.mean()) if self.n_blocks else 0.0


def classify_many(
    matrix: np.ndarray, round_s: float, config: ClassifierConfig | None = None
) -> DiurnalBatch:
    """Classify many blocks at once; rows of ``matrix`` are cleaned series.

    Bit-for-bit equivalent to calling :func:`classify_series` per row
    (tested), but runs one batched FFT and vectorized bin reductions.
    Rows containing NaN (degraded series under the ``nan`` fill policy)
    receive label code -1 (insufficient data) and a NaN phase.
    """
    config = config or ClassifierConfig()
    matrix = np.asarray(matrix, dtype=np.float64)
    nan_rows = np.isnan(matrix).any(axis=1)
    if nan_rows.any():
        # Zero out degraded rows so the batched FFT stays finite; their
        # labels are overridden below.
        matrix = np.where(nan_rows[:, None], 0.0, matrix)
    if _obs.enabled:
        t0 = time.perf_counter()
        spectra = compute_spectra(matrix, round_s)
        _obs.fft_batch_seconds.observe(time.perf_counter() - t0)
    else:
        spectra = compute_spectra(matrix, round_s)
    coeff = spectra.coefficients
    amps = np.abs(coeff)
    n_blocks, n_bins = amps.shape
    cand, first, harmonics, others = _bin_sets(
        spectra.n_samples, round_s, config
    )
    if len(cand) == 0:
        raise ValueError("observation shorter than one day; no diurnal bin")

    cand_amps = amps[:, cand]
    best_idx = np.argmax(cand_amps, axis=1)
    k_best = cand[best_idx]
    diurnal_amp = cand_amps[np.arange(n_blocks), best_idx]
    strongest_other = (
        amps[:, others].max(axis=1) if len(others) else np.zeros(n_blocks)
    )
    strongest_harmonic = (
        amps[:, harmonics].max(axis=1) if len(harmonics) else np.zeros(n_blocks)
    )
    dominant_k = np.argmax(amps[:, 1:], axis=1) + 1

    dominant_is_diurnal = np.isin(dominant_k, cand)
    strict = (
        dominant_is_diurnal
        & (diurnal_amp >= config.strict_ratio * strongest_other)
        & (diurnal_amp > strongest_harmonic)
    )
    relaxed = dominant_is_diurnal | np.isin(dominant_k, first)

    labels = np.zeros(n_blocks, dtype=np.int8)
    labels[relaxed] = 1
    labels[strict] = 2

    phases = np.angle(coeff[np.arange(n_blocks), k_best])
    day_cycles = dominant_k / (round_s * spectra.n_samples) * 86400.0

    if nan_rows.any():
        labels[nan_rows] = -1
        phases = phases.copy()
        phases[nan_rows] = np.nan

    if _obs.enabled:
        for label, code in DiurnalBatch.LABEL_CODES.items():
            n = int((labels == code).sum())
            if n:
                _obs.verdicts[label].inc(n)
        n_nan = int(nan_rows.sum())
        if n_nan:
            _obs.nan_refusals.inc(n_nan)

    return DiurnalBatch(
        labels=labels,
        phases=phases,
        diurnal_k=k_best.astype(np.int64),
        diurnal_amplitude=diurnal_amp,
        dominant_k=dominant_k.astype(np.int64),
        dominant_cycles_per_day=day_cycles,
    )

"""Timeseries cleaning for spectral analysis (section 2.2, "Data cleaning").

Spectral analysis needs an evenly sampled series, but real probing output is
not perfectly aligned to 11-minute rounds: about 5% of rounds arrive with a
missing or duplicate observation.  Following the paper (and the Trinocular
technical report it cites), we

* snap observations to the round grid, trusting the most recent value when
  two land in the same round;
* extrapolate single missing rounds from the previous value;
* trim the series to start and end near midnight UTC, which anchors FFT
  phase to physical time and reduces spectral leakage at diurnal
  frequencies;
* verify stationarity with a linear fit — the paper found ~80.3% of survey
  blocks change by less than one address per day.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.registry import NULL_REGISTRY

__all__ = [
    "CleanStats",
    "FILL_POLICIES",
    "QualityReport",
    "clean_observations",
    "fill_gaps",
    "fill_missing",
    "is_stationary",
    "linear_slope",
    "longest_nan_run",
    "observations_to_grid",
    "round_index",
    "set_metrics",
    "trim_to_midnight",
]

DAY_SECONDS = 86400.0

FILL_POLICIES = ("hold", "interp", "nan")


@dataclass
class CleanStats:
    """Bookkeeping from one cleaning pass."""

    n_rounds: int
    n_missing: int
    n_duplicates: int
    n_filled: int

    @property
    def missing_fraction(self) -> float:
        return self.n_missing / self.n_rounds if self.n_rounds else 0.0


@dataclass
class QualityReport:
    """Per-series data-quality summary from one cleaning pass.

    Downstream consumers use this to refuse to classify garbage: a series
    that is mostly holes carries no spectral information, and filling it
    manufactures a flat (or worse, periodic) signal that was never
    measured.

    Attributes:
        n_rounds: rounds in the target grid.
        n_observed: rounds that received at least one observation.
        n_duplicates: extra observations sharing a round with another.
        n_filled: gap rounds filled by the fill policy.
        longest_gap: longest run of consecutive missing rounds (pre-fill).
    """

    n_rounds: int
    n_observed: int
    n_duplicates: int
    n_filled: int
    longest_gap: int

    @property
    def n_missing(self) -> int:
        return self.n_rounds - self.n_observed

    @property
    def gap_fraction(self) -> float:
        return self.n_missing / self.n_rounds if self.n_rounds else 1.0

    @property
    def duplicate_fraction(self) -> float:
        return self.n_duplicates / self.n_rounds if self.n_rounds else 0.0

    def usable(
        self,
        max_gap_fraction: float = 0.35,
        max_longest_gap: int | None = None,
    ) -> bool:
        """Whether the series carries enough signal to classify."""
        if self.n_observed == 0:
            return False
        if self.gap_fraction > max_gap_fraction:
            return False
        if max_longest_gap is not None and self.longest_gap > max_longest_gap:
            return False
        return True


class _Instruments:
    """Pre-bound cleaning metrics (null registry by default)."""

    __slots__ = ("enabled", "cleanings", "observed", "filled", "missing",
                 "duplicates")

    def __init__(self, registry) -> None:
        self.enabled = registry.enabled
        self.cleanings = registry.counter("timeseries_cleanings_total")
        self.observed = registry.counter("timeseries_rounds_observed_total")
        self.filled = registry.counter("timeseries_rounds_filled_total")
        self.missing = registry.counter("timeseries_rounds_missing_total")
        self.duplicates = registry.counter(
            "timeseries_duplicate_observations_total"
        )


_obs = _Instruments(NULL_REGISTRY)


def set_metrics(registry) -> None:
    """Point this module's cleaning metrics at ``registry``.

    Pass ``None`` to turn instrumentation back off.  Usually called
    through :func:`repro.obs.install_metrics`.
    """
    global _obs
    _obs = _Instruments(registry if registry is not None else NULL_REGISTRY)


def _record_cleaning(report: "QualityReport") -> None:
    """Tally one cleaning pass into the module metrics."""
    _obs.cleanings.inc()
    if report.n_observed:
        _obs.observed.inc(report.n_observed)
    if report.n_filled:
        _obs.filled.inc(report.n_filled)
    if report.n_missing:
        _obs.missing.inc(report.n_missing)
    if report.n_duplicates:
        _obs.duplicates.inc(report.n_duplicates)


def longest_nan_run(values: np.ndarray) -> int:
    """Length of the longest run of consecutive NaNs."""
    isnan = np.isnan(np.asarray(values, dtype=np.float64))
    if not isnan.any():
        return 0
    padded = np.concatenate([[False], isnan, [False]]).astype(np.int8)
    edges = np.flatnonzero(np.diff(padded))
    return int((edges[1::2] - edges[0::2]).max())


def round_index(
    obs_times: np.ndarray, round_s: float, start_s: float = 0.0
) -> np.ndarray:
    """Grid round index for each observation time (nearest-round snapping).

    This is the single definition of the section 2.2 snapping rule, shared
    by the batch gridder and the streaming engine so an observation can
    never land in different rounds on the two paths.
    """
    if round_s <= 0:
        raise ValueError(f"round_s must be positive, got {round_s}")
    obs_times = np.asarray(obs_times, dtype=np.float64)
    return np.round((obs_times - start_s) / round_s).astype(np.int64)


def observations_to_grid(
    obs_times: np.ndarray,
    obs_values: np.ndarray,
    round_s: float,
    start_s: float,
    n_rounds: int,
) -> tuple[np.ndarray, CleanStats]:
    """Snap raw observations onto an even round grid.

    Each observation is assigned to the nearest round of the grid
    ``start_s + i * round_s``; when several observations land in the same
    round the most recent wins (the paper's rule for duplicates).  Rounds
    with no observation become NaN.  Returns the gridded values and stats.

    Non-monotonic timestamps are legal — degraded streams deliver out of
    order — and are resolved by a stable time sort before the duplicate
    rule is applied; non-finite timestamps, empty inputs, and nonsensical
    grid parameters raise ``ValueError``.
    """
    obs_times = np.asarray(obs_times, dtype=np.float64)
    obs_values = np.asarray(obs_values, dtype=np.float64)
    if obs_times.ndim != 1:
        raise ValueError(f"times must be 1-d, got shape {obs_times.shape}")
    if obs_times.shape != obs_values.shape:
        raise ValueError("times and values must have the same shape")
    if len(obs_times) == 0:
        raise ValueError("empty observation series: nothing to grid")
    if not np.isfinite(obs_times).all():
        raise ValueError("observation times contain NaN or infinity")
    if round_s <= 0:
        raise ValueError(f"round_s must be positive, got {round_s}")
    if n_rounds <= 0:
        raise ValueError(f"n_rounds must be positive, got {n_rounds}")
    grid = np.full(n_rounds, np.nan)
    idx = round_index(obs_times, round_s, start_s)
    in_range = (idx >= 0) & (idx < n_rounds)
    idx, values, times = idx[in_range], obs_values[in_range], obs_times[in_range]
    # Process in time order so "most recent observation wins" holds.
    order = np.argsort(times, kind="stable")
    seen = np.zeros(n_rounds, dtype=bool)
    n_duplicates = 0
    for i in order:
        r = idx[i]
        if seen[r]:
            n_duplicates += 1
        seen[r] = True
        grid[r] = values[i]
    n_missing = int(n_rounds - seen.sum())
    stats = CleanStats(
        n_rounds=n_rounds,
        n_missing=n_missing,
        n_duplicates=n_duplicates,
        n_filled=0,
    )
    return grid, stats


def fill_missing(values: np.ndarray, max_gap: int = 1) -> tuple[np.ndarray, int]:
    """Extrapolate missing (NaN) rounds from the previous observation.

    Gaps of up to ``max_gap`` consecutive rounds are filled by carrying the
    last value forward, the paper's rule for single missing estimates; pass
    ``max_gap=0`` to disable, or a large value to fill everything (needed
    before an FFT, which tolerates no NaNs).  Leading NaNs are back-filled
    from the first observation.  Returns the filled series and fill count.
    """
    values = np.asarray(values, dtype=np.float64).copy()
    if values.ndim != 1:
        raise ValueError(f"series must be 1-d, got shape {values.shape}")
    if len(values) == 0:
        raise ValueError("empty series: nothing to fill")
    if max_gap < 0:
        raise ValueError(f"max_gap must be non-negative, got {max_gap}")
    isnan = np.isnan(values)
    if not isnan.any():
        return values, 0
    if isnan.all():
        raise ValueError("series has no observations at all")

    n_filled = 0
    first_valid = int(np.flatnonzero(~isnan)[0])
    if first_valid > 0 and first_valid <= max_gap:
        values[:first_valid] = values[first_valid]
        n_filled += first_valid
    gap = 0
    last = values[first_valid]
    for i in range(first_valid, len(values)):
        if np.isnan(values[i]):
            gap += 1
            if gap <= max_gap:
                values[i] = last
                n_filled += 1
        else:
            last = values[i]
            gap = 0
    return values, n_filled


def fill_gaps(
    values: np.ndarray,
    policy: str = "hold",
    max_gap: int | None = None,
) -> tuple[np.ndarray, int]:
    """Fill multi-round gaps under a selectable policy.

    Policies:

    * ``"hold"`` — carry the last observation forward (the paper's rule,
      generalized to longer gaps);
    * ``"interp"`` — linear interpolation between the gap's endpoints,
      with hold/backfill at the series edges;
    * ``"nan"`` — leave every gap as NaN (a mask for consumers that can
      handle missing data; the FFT path cannot).

    ``max_gap`` bounds the length of gaps that get filled (``None`` fills
    everything); longer gaps stay NaN so the quality gate can see them.
    Returns the filled series and the number of rounds filled.
    """
    if policy not in FILL_POLICIES:
        raise ValueError(
            f"unknown fill policy {policy!r}; expected one of {FILL_POLICIES}"
        )
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError(f"series must be 1-d, got shape {values.shape}")
    if len(values) == 0:
        raise ValueError("empty series: nothing to fill")
    if policy == "nan":
        return values.copy(), 0
    limit = len(values) if max_gap is None else max_gap
    if policy == "hold":
        return fill_missing(values, max_gap=limit)

    # policy == "interp"
    isnan = np.isnan(values)
    if not isnan.any():
        return values.copy(), 0
    if isnan.all():
        raise ValueError("series has no observations at all")
    filled = values.copy()
    valid = np.flatnonzero(~isnan)
    interior = np.arange(valid[0], valid[-1] + 1)
    candidate = filled.copy()
    candidate[interior] = np.interp(interior, valid, values[valid])
    candidate[: valid[0]] = values[valid[0]]
    candidate[valid[-1] + 1 :] = values[valid[-1]]
    # Respect max_gap: only gaps short enough are actually replaced.
    n_filled = 0
    padded = np.concatenate([[False], isnan, [False]]).astype(np.int8)
    edges = np.flatnonzero(np.diff(padded))
    for start, stop in zip(edges[0::2], edges[1::2]):
        if stop - start <= limit:
            filled[start:stop] = candidate[start:stop]
            n_filled += stop - start
    return filled, n_filled


def clean_observations(
    obs_times: np.ndarray,
    obs_values: np.ndarray,
    round_s: float,
    start_s: float,
    n_rounds: int,
    policy: str = "hold",
    max_gap: int | None = None,
) -> tuple[np.ndarray, QualityReport]:
    """Full cleaning pass: grid a degraded stream, fill, and audit it.

    This is the section 2.2 path as one call: snap observations to the
    round grid (duplicates resolved most-recent-wins), fill gaps under
    ``policy``, and return the series plus a :class:`QualityReport` that
    downstream classification uses to refuse insufficient data.  An empty
    stream, or a grid every round of which is missing, is returned as all-NaN
    rather than raising, so batch pipelines can record the failure
    per-block instead of dying.
    """
    if len(np.asarray(obs_times)) == 0:
        if n_rounds <= 0:
            raise ValueError(f"n_rounds must be positive, got {n_rounds}")
        report = QualityReport(
            n_rounds=n_rounds,
            n_observed=0,
            n_duplicates=0,
            n_filled=0,
            longest_gap=n_rounds,
        )
        _record_cleaning(report)
        return np.full(n_rounds, np.nan), report
    grid, stats = observations_to_grid(
        obs_times, obs_values, round_s, start_s, n_rounds
    )
    longest = longest_nan_run(grid)
    n_observed = n_rounds - stats.n_missing
    if n_observed == 0 or np.isnan(grid).all():
        report = QualityReport(
            n_rounds=n_rounds,
            n_observed=0,
            n_duplicates=stats.n_duplicates,
            n_filled=0,
            longest_gap=longest,
        )
        _record_cleaning(report)
        return grid, report
    filled, n_filled = fill_gaps(grid, policy=policy, max_gap=max_gap)
    report = QualityReport(
        n_rounds=n_rounds,
        n_observed=n_observed,
        n_duplicates=stats.n_duplicates,
        n_filled=n_filled,
        longest_gap=longest,
    )
    _record_cleaning(report)
    return filled, report


def trim_to_midnight(
    times: np.ndarray, round_s: float, day_s: float = DAY_SECONDS
) -> slice:
    """Slice selecting the sub-series starting/ending nearest midnight UTC.

    ``times`` are absolute round times whose origin is midnight UTC.  The
    returned slice begins at the round closest to the first midnight at or
    after the series start and ends at the round closest to the last
    midnight at or before the series end, so the retained window spans a
    whole number of days (which concentrates diurnal energy into a single
    FFT bin and ties phase to physical time).
    """
    times = np.asarray(times, dtype=np.float64)
    if len(times) < 2:
        return slice(0, len(times))
    first_midnight = np.ceil((times[0] - round_s / 2) / day_s) * day_s
    last_midnight = np.floor((times[-1] + round_s / 2) / day_s) * day_s
    if last_midnight <= first_midnight:
        return slice(0, len(times))
    start = int(np.argmin(np.abs(times - first_midnight)))
    stop = int(np.argmin(np.abs(times - last_midnight))) + 1
    if stop - start < 2:
        return slice(0, len(times))
    return slice(start, stop)


def linear_slope(times: np.ndarray, values: np.ndarray) -> float:
    """Least-squares slope of ``values`` against ``times`` (units: per second).

    NaN values are ignored.  Used by the stationarity check.
    """
    times = np.asarray(times, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    valid = ~np.isnan(values)
    if valid.sum() < 2:
        return 0.0
    t = times[valid]
    v = values[valid]
    t = t - t.mean()
    denom = float(np.dot(t, t))
    if denom == 0.0:
        return 0.0
    return float(np.dot(t, v - v.mean()) / denom)


def is_stationary(
    times: np.ndarray,
    availability: np.ndarray,
    n_ever_active: int,
    max_addresses_per_day: float = 1.0,
) -> bool:
    """Paper's stationarity test: linear trend below ~1 address per day.

    The availability slope (per second) is converted to addresses per day
    through the size of the ever-active set; blocks drifting more than
    ``max_addresses_per_day`` are considered non-stationary and their FFT
    interpretation suspect.
    """
    if n_ever_active <= 0:
        return True
    slope = linear_slope(times, availability)
    addresses_per_day = abs(slope) * DAY_SECONDS * n_ever_active
    return addresses_per_day < max_addresses_per_day

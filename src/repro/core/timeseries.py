"""Timeseries cleaning for spectral analysis (section 2.2, "Data cleaning").

Spectral analysis needs an evenly sampled series, but real probing output is
not perfectly aligned to 11-minute rounds: about 5% of rounds arrive with a
missing or duplicate observation.  Following the paper (and the Trinocular
technical report it cites), we

* snap observations to the round grid, trusting the most recent value when
  two land in the same round;
* extrapolate single missing rounds from the previous value;
* trim the series to start and end near midnight UTC, which anchors FFT
  phase to physical time and reduces spectral leakage at diurnal
  frequencies;
* verify stationarity with a linear fit — the paper found ~80.3% of survey
  blocks change by less than one address per day.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "CleanStats",
    "fill_missing",
    "is_stationary",
    "linear_slope",
    "observations_to_grid",
    "trim_to_midnight",
]

DAY_SECONDS = 86400.0


@dataclass
class CleanStats:
    """Bookkeeping from one cleaning pass."""

    n_rounds: int
    n_missing: int
    n_duplicates: int
    n_filled: int

    @property
    def missing_fraction(self) -> float:
        return self.n_missing / self.n_rounds if self.n_rounds else 0.0


def observations_to_grid(
    obs_times: np.ndarray,
    obs_values: np.ndarray,
    round_s: float,
    start_s: float,
    n_rounds: int,
) -> tuple[np.ndarray, CleanStats]:
    """Snap raw observations onto an even round grid.

    Each observation is assigned to the nearest round of the grid
    ``start_s + i * round_s``; when several observations land in the same
    round the most recent wins (the paper's rule for duplicates).  Rounds
    with no observation become NaN.  Returns the gridded values and stats.
    """
    obs_times = np.asarray(obs_times, dtype=np.float64)
    obs_values = np.asarray(obs_values, dtype=np.float64)
    if obs_times.shape != obs_values.shape:
        raise ValueError("times and values must have the same shape")
    grid = np.full(n_rounds, np.nan)
    idx = np.round((obs_times - start_s) / round_s).astype(np.int64)
    in_range = (idx >= 0) & (idx < n_rounds)
    idx, values, times = idx[in_range], obs_values[in_range], obs_times[in_range]
    # Process in time order so "most recent observation wins" holds.
    order = np.argsort(times, kind="stable")
    seen = np.zeros(n_rounds, dtype=bool)
    n_duplicates = 0
    for i in order:
        r = idx[i]
        if seen[r]:
            n_duplicates += 1
        seen[r] = True
        grid[r] = values[i]
    n_missing = int(n_rounds - seen.sum())
    stats = CleanStats(
        n_rounds=n_rounds,
        n_missing=n_missing,
        n_duplicates=n_duplicates,
        n_filled=0,
    )
    return grid, stats


def fill_missing(values: np.ndarray, max_gap: int = 1) -> tuple[np.ndarray, int]:
    """Extrapolate missing (NaN) rounds from the previous observation.

    Gaps of up to ``max_gap`` consecutive rounds are filled by carrying the
    last value forward, the paper's rule for single missing estimates; pass
    ``max_gap=0`` to disable, or a large value to fill everything (needed
    before an FFT, which tolerates no NaNs).  Leading NaNs are back-filled
    from the first observation.  Returns the filled series and fill count.
    """
    values = np.asarray(values, dtype=np.float64).copy()
    isnan = np.isnan(values)
    if not isnan.any():
        return values, 0
    if isnan.all():
        raise ValueError("series has no observations at all")

    n_filled = 0
    first_valid = int(np.flatnonzero(~isnan)[0])
    if first_valid > 0 and first_valid <= max_gap:
        values[:first_valid] = values[first_valid]
        n_filled += first_valid
    gap = 0
    last = values[first_valid]
    for i in range(first_valid, len(values)):
        if np.isnan(values[i]):
            gap += 1
            if gap <= max_gap:
                values[i] = last
                n_filled += 1
        else:
            last = values[i]
            gap = 0
    return values, n_filled


def trim_to_midnight(
    times: np.ndarray, round_s: float, day_s: float = DAY_SECONDS
) -> slice:
    """Slice selecting the sub-series starting/ending nearest midnight UTC.

    ``times`` are absolute round times whose origin is midnight UTC.  The
    returned slice begins at the round closest to the first midnight at or
    after the series start and ends at the round closest to the last
    midnight at or before the series end, so the retained window spans a
    whole number of days (which concentrates diurnal energy into a single
    FFT bin and ties phase to physical time).
    """
    times = np.asarray(times, dtype=np.float64)
    if len(times) < 2:
        return slice(0, len(times))
    first_midnight = np.ceil((times[0] - round_s / 2) / day_s) * day_s
    last_midnight = np.floor((times[-1] + round_s / 2) / day_s) * day_s
    if last_midnight <= first_midnight:
        return slice(0, len(times))
    start = int(np.argmin(np.abs(times - first_midnight)))
    stop = int(np.argmin(np.abs(times - last_midnight))) + 1
    if stop - start < 2:
        return slice(0, len(times))
    return slice(start, stop)


def linear_slope(times: np.ndarray, values: np.ndarray) -> float:
    """Least-squares slope of ``values`` against ``times`` (units: per second).

    NaN values are ignored.  Used by the stationarity check.
    """
    times = np.asarray(times, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    valid = ~np.isnan(values)
    if valid.sum() < 2:
        return 0.0
    t = times[valid]
    v = values[valid]
    t = t - t.mean()
    denom = float(np.dot(t, t))
    if denom == 0.0:
        return 0.0
    return float(np.dot(t, v - v.mean()) / denom)


def is_stationary(
    times: np.ndarray,
    availability: np.ndarray,
    n_ever_active: int,
    max_addresses_per_day: float = 1.0,
) -> bool:
    """Paper's stationarity test: linear trend below ~1 address per day.

    The availability slope (per second) is converted to addresses per day
    through the size of the ever-active set; blocks drifting more than
    ``max_addresses_per_day`` are considered non-stationary and their FFT
    interpretation suspect.
    """
    if n_ever_active <= 0:
        return True
    slope = linear_slope(times, availability)
    addresses_per_day = abs(slope) * DAY_SECONDS * n_ever_active
    return addresses_per_day < max_addresses_per_day

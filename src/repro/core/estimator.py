"""EWMA availability estimators (section 2.1 of the paper).

Adaptive probing yields per-round counts ``(p, t)`` — positives and total
probes — that are biased toward positive outcomes because probing stops on
the first response.  The paper derives three estimates of block
availability from this stream:

* **short-term** ``Â_s = p̂_s / t̂_s`` with gain ``α_s = 0.1``, where ``p̂_s``
  and ``t̂_s`` are *separate* EWMAs of the counts.  Tracking numerator and
  denominator separately (rather than smoothing the ratio) is what keeps
  the estimator unbiased, for the same reason one summarizes normalized
  benchmark results with a geometric mean;
* **long-term** ``Â_l`` with gain ``α_l = 0.01``;
* **operational** ``Â_o = max(Â_l − d̂_l/2, 0.1)`` where ``d̂_l`` is an EWMA
  of the absolute deviation ``|Â_l − p/t|``.  Â_o deliberately
  *under*-estimates, because outage detection turns negative probes into
  "down" evidence with strength proportional to the assumed availability:
  an over-estimate manufactures false outages.  The 0.1 floor enforces
  Trinocular's do-no-harm probing cap.

:class:`DirectEwmaEstimator` reproduces the legacy variant used in dataset
A_12w that smooths the ratio directly and consistently over-estimates; it is
kept for the ablation benchmark.

:func:`estimate_series` is the vectorized batch form used for whole-Internet
scale runs; it is bit-for-bit equivalent to streaming
:class:`AvailabilityEstimator` over each row (tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "AvailabilityEstimator",
    "AvailabilitySeries",
    "DirectEwmaEstimator",
    "EstimatorConfig",
    "RestartPolicy",
    "estimate_series",
]


@dataclass(frozen=True)
class RestartPolicy:
    """What estimator state survives a prober restart.

    The production prober checkpoints its state, so by default nothing is
    lost (the paper's ~4.3 cycles/day Figure 10 artifact comes from the
    *prober's* walk-order reset, not the estimator).  The reset flags exist
    for the ablation that shows what a stateless restart would do.
    """

    reset_short: bool = False
    reset_long: bool = False
    reset_deviation: bool = False


@dataclass(frozen=True)
class EstimatorConfig:
    """Gains and initial state of the availability estimators.

    Attributes:
        alpha_short: gain of the short-term EWMA (paper: 0.1).
        alpha_long: gain of the long-term EWMA and of the deviation EWMA
            (paper: 0.01).
        operational_floor: lower clamp on Â_o (paper: 0.1).
        deviation_margin: fraction of d̂_l subtracted from Â_l (paper: 1/2).
        initial_availability: the (possibly stale) historical estimate used
            to seed the EWMAs; section 2.1.1 notes it "may be off
            significantly".
        initial_weight: pseudo-count seeding t̂ so early rounds do not whip
            the ratio around.
        initial_deviation: seed for d̂_l.
        restart: what state a prober restart clears.
    """

    alpha_short: float = 0.1
    alpha_long: float = 0.01
    operational_floor: float = 0.1
    deviation_margin: float = 0.5
    initial_availability: float = 0.5
    initial_weight: float = 2.0
    initial_deviation: float = 0.1
    restart: RestartPolicy = field(default_factory=RestartPolicy)

    def __post_init__(self) -> None:
        for name in ("alpha_short", "alpha_long"):
            alpha = getattr(self, name)
            if not 0.0 < alpha <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {alpha}")
        if not 0.0 <= self.initial_availability <= 1.0:
            raise ValueError("initial_availability must be in [0, 1]")
        if self.initial_weight <= 0:
            raise ValueError("initial_weight must be positive")


class AvailabilityEstimator:
    """Streaming estimator for one block; implements the prober's
    :class:`~repro.probing.prober.AvailabilityFeedback` protocol."""

    def __init__(self, config: EstimatorConfig | None = None) -> None:
        self.config = config or EstimatorConfig()
        self._init_state()

    def _init_state(self) -> None:
        cfg = self.config
        self.t_short = cfg.initial_weight
        self.p_short = cfg.initial_availability * cfg.initial_weight
        self.t_long = cfg.initial_weight
        self.p_long = cfg.initial_availability * cfg.initial_weight
        self.deviation = cfg.initial_deviation
        self.n_observed = 0

    @property
    def a_short(self) -> float:
        """Short-term availability Â_s."""
        return self.p_short / self.t_short

    @property
    def a_long(self) -> float:
        """Long-term availability Â_l."""
        return self.p_long / self.t_long

    @property
    def a_operational(self) -> float:
        """Conservative operational availability Â_o."""
        raw = self.a_long - self.config.deviation_margin * self.deviation
        return max(raw, self.config.operational_floor)

    def current(self) -> float:
        return self.a_operational

    def observe(self, positives: int, total: int) -> None:
        """Fold in one round's raw counts; rounds with no probes are no-ops."""
        if total <= 0:
            return
        if positives < 0 or positives > total:
            raise ValueError(f"bad counts p={positives}, t={total}")
        cfg = self.config
        a_s, a_l = cfg.alpha_short, cfg.alpha_long
        self.p_short = a_s * positives + (1.0 - a_s) * self.p_short
        self.t_short = a_s * total + (1.0 - a_s) * self.t_short
        self.p_long = a_l * positives + (1.0 - a_l) * self.p_long
        self.t_long = a_l * total + (1.0 - a_l) * self.t_long
        sample = positives / total
        self.deviation = (
            a_l * abs(self.a_long - sample) + (1.0 - a_l) * self.deviation
        )
        self.n_observed += 1

    def restart(self) -> None:
        """Apply the configured restart policy (prober relaunch)."""
        cfg = self.config
        if cfg.restart.reset_short:
            self.t_short = cfg.initial_weight
            self.p_short = cfg.initial_availability * cfg.initial_weight
        if cfg.restart.reset_long:
            self.t_long = cfg.initial_weight
            self.p_long = cfg.initial_availability * cfg.initial_weight
        if cfg.restart.reset_deviation:
            self.deviation = cfg.initial_deviation


class DirectEwmaEstimator:
    """Legacy variant: EWMA applied directly to the per-round ratio p/t.

    Dataset A_12w was collected with this estimator.  Because rounds with
    one probe contribute a 0-or-1 ratio with the same weight as a 15-probe
    round, and stop-on-first-positive makes 1-probe rounds mostly positive,
    smoothing the ratio consistently *over*-estimates availability.  The
    periodicity of the series is unaffected, which is why the paper could
    still use the dataset for diurnal detection.
    """

    def __init__(self, config: EstimatorConfig | None = None) -> None:
        self.config = config or EstimatorConfig()
        self.a_short = self.config.initial_availability
        self.a_long = self.config.initial_availability
        self.deviation = self.config.initial_deviation
        self.n_observed = 0

    @property
    def a_operational(self) -> float:
        raw = self.a_long - self.config.deviation_margin * self.deviation
        return max(raw, self.config.operational_floor)

    def current(self) -> float:
        return self.a_operational

    def observe(self, positives: int, total: int) -> None:
        if total <= 0:
            return
        cfg = self.config
        sample = positives / total
        self.a_short = cfg.alpha_short * sample + (1 - cfg.alpha_short) * self.a_short
        self.a_long = cfg.alpha_long * sample + (1 - cfg.alpha_long) * self.a_long
        self.deviation = (
            cfg.alpha_long * abs(self.a_long - sample)
            + (1 - cfg.alpha_long) * self.deviation
        )
        self.n_observed += 1

    def restart(self) -> None:
        if self.config.restart.reset_short:
            self.a_short = self.config.initial_availability


@dataclass
class AvailabilitySeries:
    """Batch estimator output: per-round estimates for one or many blocks.

    Every array has the same shape as the input counts: ``(n_rounds,)`` or
    ``(n_blocks, n_rounds)``.
    """

    a_short: np.ndarray
    a_long: np.ndarray
    a_operational: np.ndarray
    deviation: np.ndarray


def estimate_series(
    positives: np.ndarray,
    totals: np.ndarray,
    config: EstimatorConfig | None = None,
    restart_rounds: np.ndarray | None = None,
    initial_availability: np.ndarray | float | None = None,
) -> AvailabilitySeries:
    """Vectorized :class:`AvailabilityEstimator` over count arrays.

    ``positives`` and ``totals`` are integer arrays shaped ``(n_rounds,)``
    or ``(n_blocks, n_rounds)``.  Rounds with ``totals == 0`` leave that
    block's state unchanged (matching the streaming no-op).
    ``restart_rounds`` lists round indices at which the restart policy is
    applied to every block before that round's observation.
    ``initial_availability`` optionally overrides the config seed estimate,
    per block — the deployment initializes each block from years of
    history, so a scalar cold start misrepresents warm blocks.
    """
    config = config or EstimatorConfig()
    p_in = np.atleast_2d(np.asarray(positives, dtype=np.float64))
    t_in = np.atleast_2d(np.asarray(totals, dtype=np.float64))
    if p_in.shape != t_in.shape:
        raise ValueError(f"shape mismatch: {p_in.shape} vs {t_in.shape}")
    n_blocks, n_rounds = p_in.shape

    restarts = set()
    if restart_rounds is not None:
        restarts = set(np.asarray(restart_rounds, dtype=np.int64).tolist())

    cfg = config
    w0 = cfg.initial_weight
    if initial_availability is None:
        a0 = np.full(n_blocks, cfg.initial_availability)
    else:
        a0 = np.broadcast_to(
            np.asarray(initial_availability, dtype=np.float64), (n_blocks,)
        ).copy()
        if ((a0 < 0) | (a0 > 1)).any():
            raise ValueError("initial_availability must be in [0, 1]")
    p_s = a0 * w0
    t_s = np.full(n_blocks, w0)
    p_l = p_s.copy()
    t_l = t_s.copy()
    dev = np.full(n_blocks, cfg.initial_deviation)

    a_short = np.empty((n_blocks, n_rounds))
    a_long = np.empty((n_blocks, n_rounds))
    a_oper = np.empty((n_blocks, n_rounds))
    deviation = np.empty((n_blocks, n_rounds))

    a_s, a_l_gain = cfg.alpha_short, cfg.alpha_long
    for r in range(n_rounds):
        if r in restarts:
            if cfg.restart.reset_short:
                p_s[:] = a0 * w0
                t_s[:] = w0
            if cfg.restart.reset_long:
                p_l[:] = a0 * w0
                t_l[:] = w0
            if cfg.restart.reset_deviation:
                dev[:] = cfg.initial_deviation
        p = p_in[:, r]
        t = t_in[:, r]
        active = t > 0
        p_s[active] = a_s * p[active] + (1 - a_s) * p_s[active]
        t_s[active] = a_s * t[active] + (1 - a_s) * t_s[active]
        p_l[active] = a_l_gain * p[active] + (1 - a_l_gain) * p_l[active]
        t_l[active] = a_l_gain * t[active] + (1 - a_l_gain) * t_l[active]
        ratio_l = p_l / t_l
        sample = np.zeros(n_blocks)
        np.divide(p, t, out=sample, where=active)
        dev[active] = (
            a_l_gain * np.abs(ratio_l[active] - sample[active])
            + (1 - a_l_gain) * dev[active]
        )
        a_short[:, r] = p_s / t_s
        a_long[:, r] = ratio_l
        deviation[:, r] = dev
        a_oper[:, r] = np.maximum(
            ratio_l - cfg.deviation_margin * dev, cfg.operational_floor
        )

    if np.asarray(positives).ndim == 1:
        return AvailabilitySeries(
            a_short=a_short[0],
            a_long=a_long[0],
            a_operational=a_oper[0],
            deviation=deviation[0],
        )
    return AvailabilitySeries(
        a_short=a_short, a_long=a_long, a_operational=a_oper, deviation=deviation
    )

"""Spectral machinery: DFT amplitudes, phases, diurnal bins and harmonics.

Given an evenly sampled availability series of ``n`` rounds at period ``R``
seconds, bin ``k`` of the DFT corresponds to frequency ``k / (R·n)`` Hz,
i.e. ``k`` cycles over the whole observation.  For a window spanning ``N_d``
whole days, one cycle per day lands exactly in bin ``k = N_d`` — the paper
inspects that bin, plus ``N_d + 1`` to absorb noise and imperfect day
alignment (section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Spectrum",
    "compute_spectra",
    "compute_spectrum",
    "diurnal_bin",
    "diurnal_candidates",
    "goertzel",
    "harmonic_bins",
]

DAY_SECONDS = 86400.0


@dataclass
class Spectrum:
    """One block's one-sided DFT.

    Attributes:
        coefficients: complex rfft output, bins ``0 .. n//2``.
        n_samples: length of the input series.
        round_s: sampling period in seconds.
    """

    coefficients: np.ndarray
    n_samples: int
    round_s: float

    @property
    def amplitudes(self) -> np.ndarray:
        """Magnitude per bin (bin 0 is the DC component)."""
        return np.abs(self.coefficients)

    @property
    def n_bins(self) -> int:
        return len(self.coefficients)

    def _check_bin(self, k: int) -> None:
        # Negative indices would silently wrap to the mirrored bin via
        # numpy indexing; refuse anything outside the one-sided spectrum.
        if not 0 <= k < self.n_bins:
            raise ValueError(
                f"bin {k} out of range: valid bins are 0..{self.n_bins - 1} "
                f"for this {self.n_bins}-bin one-sided spectrum "
                f"({self.n_samples} samples)"
            )

    def phase(self, k: int) -> float:
        """Phase angle of bin ``k`` in radians, in [-pi, pi]."""
        self._check_bin(k)
        return float(np.angle(self.coefficients[k]))

    def frequency_hz(self, k: int) -> float:
        self._check_bin(k)
        return k / (self.round_s * self.n_samples)

    def cycles_per_day(self, k: int) -> float:
        """Frequency of bin ``k`` expressed in cycles per day."""
        return self.frequency_hz(k) * DAY_SECONDS

    def duration_days(self) -> float:
        return self.n_samples * self.round_s / DAY_SECONDS

    def dominant_bin(self) -> int:
        """Bin with the largest amplitude, excluding DC."""
        if self.n_bins < 2:
            raise ValueError("series too short for spectral analysis")
        return int(np.argmax(self.amplitudes[1:])) + 1


def compute_spectrum(values: np.ndarray, round_s: float) -> Spectrum:
    """DFT of one availability series (which must be NaN-free).

    The mean is *not* removed; classification ignores the DC bin instead,
    matching the paper's definition of the transform.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError("compute_spectrum takes a single series")
    if np.isnan(values).any():
        raise ValueError("series contains NaN; clean it first (fill_missing)")
    return Spectrum(
        coefficients=np.fft.rfft(values), n_samples=len(values), round_s=round_s
    )


def compute_spectra(matrix: np.ndarray, round_s: float) -> Spectrum:
    """Batched DFT: ``matrix`` is (n_blocks, n_rounds); bins along axis 1.

    Returns a :class:`Spectrum` whose ``coefficients`` is 2-D; the scalar
    accessors do not apply, but :func:`repro.core.classify.classify_many`
    consumes it directly.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("compute_spectra takes a 2-D matrix")
    if np.isnan(matrix).any():
        raise ValueError("matrix contains NaN; clean it first (fill_missing)")
    return Spectrum(
        coefficients=np.fft.rfft(matrix, axis=1),
        n_samples=matrix.shape[1],
        round_s=round_s,
    )


def goertzel(values: np.ndarray, bins: np.ndarray | int) -> np.ndarray:
    """Exact DFT coefficients at selected bins only (O(n) per bin).

    Returns the same complex values ``np.fft.rfft`` would produce at those
    bins, without transforming the rest of the spectrum.  This is the
    seed/verification primitive for the streaming engine's sliding DFT,
    which maintains the same coefficients incrementally.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError("goertzel takes a single series")
    if np.isnan(values).any():
        raise ValueError("series contains NaN; clean it first (fill_missing)")
    bins = np.atleast_1d(np.asarray(bins, dtype=np.int64))
    n = len(values)
    n_bins = n // 2 + 1
    if len(bins) and (bins.min() < 0 or bins.max() >= n_bins):
        raise ValueError(
            f"bins must be in [0, {n_bins}) for a {n}-sample series"
        )
    angles = -2j * np.pi * np.outer(bins, np.arange(n)) / n
    return np.exp(angles) @ values


def diurnal_bin(n_samples: int, round_s: float) -> int:
    """Bin index of the 1-cycle-per-day frequency (the paper's ``k = N_d``).

    Raises ValueError for observations shorter than one day, where no bin
    corresponds to the diurnal frequency (the paper uses two weeks or more).
    """
    k = int(round(n_samples * round_s / DAY_SECONDS))
    if k < 1:
        raise ValueError(
            f"observation spans {n_samples * round_s / DAY_SECONDS:.2f} days; "
            "diurnal analysis needs at least one full day"
        )
    return k


def diurnal_candidates(n_samples: int, round_s: float) -> tuple[int, ...]:
    """Diurnal bins to inspect: ``N_d`` and ``N_d + 1`` (noise allowance)."""
    k = diurnal_bin(n_samples, round_s)
    n_bins = n_samples // 2 + 1
    return tuple(b for b in (k, k + 1) if b < n_bins)


def harmonic_bins(
    k_diurnal: int, n_bins: int, max_harmonic: int = 8, tolerance: int = 1
) -> np.ndarray:
    """Bins belonging to harmonics of the diurnal frequency.

    Harmonic ``m`` (2 cycles/day and up) lives near ``m * k_diurnal``; a
    ``tolerance`` of ±1 bin absorbs the same alignment noise as the
    ``N_d + 1`` candidate.  The fundamental itself is *not* included.
    """
    bins: set[int] = set()
    for m in range(2, max_harmonic + 1):
        center = m * k_diurnal
        for delta in range(-tolerance, tolerance + m):
            b = center + delta
            if 1 <= b < n_bins:
                bins.add(b)
    return np.array(sorted(bins), dtype=np.int64)

"""Lightweight span tracing for pipeline stages.

``with tracer.trace("classify", block=7):`` records the wall time of one
stage as a :class:`Span`.  Spans nest: a span opened while another is
active on the same thread becomes its child, so one batch run yields a
tree (``batch.run`` → ``batch.block`` → ...).  The span stack is
thread-local — concurrent runs interleave without mixing trees.

Besides the tree (finished root spans, bounded by ``max_roots``), the
tracer aggregates per-stage timing statistics; :meth:`Tracer.
stage_timings` is what :class:`repro.obs.export.RunManifest` embeds.

Spans also carry identity for *distributed* correlation: every span gets
a process-unique ``span_id`` and inherits (or mints) a ``trace_id``.  A
:class:`TraceContext` is the picklable carrier that crosses a process
boundary: the supervisor opens a dispatch span, ships its context to the
worker, and the worker opens its spans with ``parent_context=ctx`` — the
worker's roots then name the supervisor's span as their parent, and
:meth:`Tracer.graft` reattaches the serialized worker tree under the
dispatch span when the result comes home.  Detached spans
(:meth:`Tracer.begin` / :meth:`Tracer.end`) cover the supervisor's
asynchronous dispatch window, which no ``with`` block can span.

:class:`NullTracer` is the default everywhere: ``trace`` hands back a
shared reusable no-op context manager, so untraced hot paths pay one
call and no allocation.

For *request* tracing across an HTTP boundary, the module also speaks
the W3C Trace Context wire grammar: :func:`parse_traceparent` accepts
an incoming ``traceparent`` header as a :class:`TraceContext`,
:func:`format_traceparent` renders one back out, and
:func:`new_trace_id` / :func:`new_span_id` mint wire-conformant hex
identifiers for request root spans (internal child spans keep the
cheaper pid-prefixed ids — only the ids that cross the HTTP boundary
need the W3C shape).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import uuid
from dataclasses import dataclass, field

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceContext",
    "Tracer",
    "format_traceparent",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
]

_span_counter = itertools.count(1)


def _new_id() -> str:
    """A process-unique span id (pid-prefixed so forks never collide)."""
    return f"{os.getpid():x}-{next(_span_counter):x}"


def new_trace_id() -> str:
    """A random 32-hex-digit trace id (the W3C ``trace-id`` field)."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A random 16-hex-digit span id (the W3C ``parent-id`` field)."""
    return uuid.uuid4().hex[:16]


_HEX = set("0123456789abcdef")


def _is_hex(value: str) -> bool:
    return bool(value) and all(c in _HEX for c in value)


def parse_traceparent(header: str | None) -> TraceContext | None:
    """Parse a W3C ``traceparent`` header into a :class:`TraceContext`.

    Grammar (version 00): ``00-<32 hex trace-id>-<16 hex parent-id>-
    <2 hex flags>``.  Unknown future versions are accepted as long as
    the first four fields parse (per spec); anything malformed — wrong
    lengths, non-hex digits, all-zero ids, the forbidden version
    ``ff`` — returns ``None`` so the caller mints a fresh trace
    instead of propagating garbage.
    """
    if not header:
        return None
    parts = header.strip().lower().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, span_id, flags = parts[0], parts[1], parts[2], parts[3]
    if len(version) != 2 or not _is_hex(version) or version == "ff":
        return None
    if version == "00" and len(parts) != 4:
        return None
    if len(trace_id) != 32 or not _is_hex(trace_id):
        return None
    if len(span_id) != 16 or not _is_hex(span_id):
        return None
    if len(flags) != 2 or not _is_hex(flags):
        return None
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return TraceContext(trace_id=trace_id, span_id=span_id)


def _wire_id(value: str, width: int) -> str:
    """Coerce an id to ``width`` lowercase hex digits for the wire.

    Request ids minted by :func:`new_trace_id`/:func:`new_span_id`
    pass through untouched; an internal pid-prefixed id (which
    contains ``-``) is defensively normalized so a caller can never
    emit a header other parsers reject.
    """
    cleaned = "".join(c for c in value.lower() if c in _HEX)
    if not cleaned:
        cleaned = "1"
    return cleaned[-width:].rjust(width, "0")


def format_traceparent(context: TraceContext, sampled: bool = True) -> str:
    """Render a :class:`TraceContext` as a W3C ``traceparent`` value."""
    return (
        f"00-{_wire_id(context.trace_id, 32)}"
        f"-{_wire_id(context.span_id, 16)}"
        f"-{'01' if sampled else '00'}"
    )


@dataclass(frozen=True)
class TraceContext:
    """The picklable identity of one live span, for cross-process parenting."""

    trace_id: str
    span_id: str

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id}


@dataclass
class Span:
    """One timed stage: name, attributes, duration, children.

    ``trace_id`` groups every span of one logical operation across
    processes; ``span_id`` is unique per span; ``parent_span_id`` is set
    for children (including remote children whose parent lives in
    another process).
    """

    name: str
    attrs: dict
    start_s: float = 0.0
    duration_s: float = 0.0
    children: list = field(default_factory=list)
    trace_id: str = ""
    span_id: str = ""
    parent_span_id: str | None = None

    @property
    def self_s(self) -> float:
        """Time spent in this span minus its direct children."""
        return self.duration_s - sum(c.duration_s for c in self.children)

    @property
    def context(self) -> TraceContext:
        """This span's identity as a shippable :class:`TraceContext`."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "attrs": self.attrs,
            "duration_s": self.duration_s,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Rebuild a span tree serialized by :meth:`to_dict`."""
        return cls(
            name=data["name"],
            attrs=dict(data.get("attrs", {})),
            duration_s=float(data.get("duration_s", 0.0)),
            trace_id=data.get("trace_id", ""),
            span_id=data.get("span_id", ""),
            parent_span_id=data.get("parent_span_id"),
            children=[cls.from_dict(c) for c in data.get("children", [])],
        )


class _SpanContext:
    """Context manager for one live span (one per trace() call)."""

    __slots__ = ("_tracer", "span", "_t0")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span
        self._t0 = 0.0

    def __enter__(self) -> Span:
        self._tracer._push(self.span)
        self._t0 = time.perf_counter()
        self.span.start_s = self._t0
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.span.duration_s = time.perf_counter() - self._t0
        self._tracer._pop(self.span)
        return False


class Tracer:
    """Collects nested wall-time spans and per-stage aggregates."""

    enabled = True

    def __init__(self, max_roots: int = 1000) -> None:
        if max_roots < 1:
            raise ValueError("max_roots must be positive")
        self.max_roots = max_roots
        self.roots: list[Span] = []
        self.n_dropped_roots = 0
        self._local = threading.local()
        self._lock = threading.Lock()
        # name -> [count, total_s, max_s]
        self._stages: dict[str, list] = {}

    def trace(
        self,
        name: str,
        parent_context: TraceContext | None = None,
        **attrs,
    ) -> _SpanContext:
        span = Span(name=name, attrs=attrs)
        if parent_context is not None:
            span.trace_id = parent_context.trace_id
            span.parent_span_id = parent_context.span_id
        return _SpanContext(self, span)

    def current_context(self) -> TraceContext | None:
        """The innermost active span's context on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        if not stack:
            return None
        return stack[-1].context

    def begin(
        self,
        name: str,
        parent: Span | None = None,
        parent_context: TraceContext | None = None,
        trace_id: str | None = None,
        span_id: str | None = None,
        **attrs,
    ) -> Span:
        """Start a detached span (not on the thread-local stack).

        For operations whose start and end happen in different stack
        frames — e.g. the supervisor's dispatch window, opened when a
        task is sent and closed when its result (or corpse) comes back.
        Finish it with :meth:`end`.

        ``trace_id``/``span_id`` override the minted identifiers —
        the HTTP layer passes W3C-shaped ids here so the span named in
        a ``traceparent`` response header is the span in the tree.
        """
        span = Span(name=name, attrs=attrs)
        span.span_id = span_id if span_id else _new_id()
        if parent is not None:
            span.trace_id = parent.trace_id
            span.parent_span_id = parent.span_id
        elif parent_context is not None:
            span.trace_id = parent_context.trace_id
            span.parent_span_id = parent_context.span_id
        if trace_id:
            span.trace_id = trace_id
        if not span.trace_id:
            span.trace_id = span.span_id
        span.start_s = time.perf_counter()
        return span

    def end(self, span: Span | None, parent: Span | None = None) -> None:
        """Finish a detached span, attaching it under ``parent`` (or as
        a root).  ``None`` is accepted (and ignored) so callers can hold
        a null tracer's span without branching."""
        if span is None:
            return
        span.duration_s = time.perf_counter() - span.start_s
        self._record(span, parent)

    def graft(self, span_data, parent: Span | None = None) -> Span:
        """Attach a remote (serialized) span tree under a local parent.

        ``span_data`` is a :class:`Span` or a :meth:`Span.to_dict`
        payload shipped from another process.  The remote tree's stage
        durations are folded into :meth:`stage_timings` so fleet-level
        aggregates cover worker time too.
        """
        span = (
            span_data
            if isinstance(span_data, Span)
            else Span.from_dict(span_data)
        )
        with self._lock:
            for s in span.walk():
                self._stage_stats(s)
            self._attach(span, parent)
        return span

    def resolve(self, span_id: str) -> Span | None:
        """Find a finished span by id (depth-first over the root trees)."""
        with self._lock:
            roots = list(self.roots)
        for root in roots:
            for span in root.walk():
                if span.span_id == span_id:
                    return span
        return None

    def trace_spans(self, trace_id: str) -> list[Span]:
        """Every finished span belonging to one trace, across roots.

        A distributed request lands as several root trees (the local
        request span plus grafted remote trees whose true parent
        finished later); this gathers them so a caller can stitch the
        full tree back together by ``parent_span_id``.
        """
        with self._lock:
            roots = list(self.roots)
        return [
            span
            for root in roots
            for span in root.walk()
            if span.trace_id == trace_id
        ]

    def drain_roots(self) -> list[Span]:
        """Remove and return every finished root span.

        Long-lived processes (shard workers, the service runner) ship
        or export spans periodically; draining keeps the retained set
        bounded without burning the ``max_roots`` budget on history
        that has already left the process.
        """
        with self._lock:
            roots = self.roots
            self.roots = []
        return roots

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if not span.span_id:
            span.span_id = _new_id()
        if not span.trace_id:
            if stack:
                span.trace_id = stack[-1].trace_id
                span.parent_span_id = stack[-1].span_id
            else:
                span.trace_id = span.span_id
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Exits are LIFO by construction (context managers unwind in
        # order), but a generator-held span could exit late; search from
        # the top so the common case is O(1).
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is span:
                del stack[i]
                break
        parent = stack[-1] if stack else None
        self._record(span, parent)

    def _record(self, span: Span, parent: Span | None) -> None:
        with self._lock:
            self._stage_stats(span)
            self._attach(span, parent)

    def _stage_stats(self, span: Span) -> None:
        stats = self._stages.get(span.name)
        if stats is None:
            self._stages[span.name] = [1, span.duration_s, span.duration_s]
        else:
            stats[0] += 1
            stats[1] += span.duration_s
            stats[2] = max(stats[2], span.duration_s)

    def _attach(self, span: Span, parent: Span | None) -> None:
        if parent is not None:
            parent.children.append(span)
        elif len(self.roots) < self.max_roots:
            self.roots.append(span)
        else:
            self.n_dropped_roots += 1

    def stage_timings(self) -> dict:
        """Per-stage aggregates: count, total, mean, and max seconds."""
        with self._lock:
            return {
                name: {
                    "count": count,
                    "total_s": total,
                    "mean_s": total / count if count else 0.0,
                    "max_s": peak,
                }
                for name, (count, total, peak) in sorted(self._stages.items())
            }


class _NullSpanContext:
    """Reusable, stateless no-op span context."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """Tracing off: one shared no-op context for every trace call."""

    enabled = False
    roots: list = []

    def trace(
        self, name: str, parent_context=None, **attrs
    ) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def current_context(self) -> None:
        return None

    def begin(self, name: str, parent=None, parent_context=None,
              **attrs) -> None:
        return None

    def end(self, span, parent=None) -> None:
        pass

    def graft(self, span_data, parent=None) -> None:
        return None

    def resolve(self, span_id: str) -> None:
        return None

    def trace_spans(self, trace_id: str) -> list:
        return []

    def drain_roots(self) -> list:
        return []

    def stage_timings(self) -> dict:
        return {}


NULL_TRACER = NullTracer()

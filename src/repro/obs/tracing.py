"""Lightweight span tracing for pipeline stages.

``with tracer.trace("classify", block=7):`` records the wall time of one
stage as a :class:`Span`.  Spans nest: a span opened while another is
active on the same thread becomes its child, so one batch run yields a
tree (``batch.run`` → ``batch.block`` → ...).  The span stack is
thread-local — concurrent runs interleave without mixing trees.

Besides the tree (finished root spans, bounded by ``max_roots``), the
tracer aggregates per-stage timing statistics; :meth:`Tracer.
stage_timings` is what :class:`repro.obs.export.RunManifest` embeds.

:class:`NullTracer` is the default everywhere: ``trace`` hands back a
shared reusable no-op context manager, so untraced hot paths pay one
call and no allocation.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
]


@dataclass
class Span:
    """One timed stage: name, attributes, duration, children."""

    name: str
    attrs: dict
    start_s: float = 0.0
    duration_s: float = 0.0
    children: list = field(default_factory=list)

    @property
    def self_s(self) -> float:
        """Time spent in this span minus its direct children."""
        return self.duration_s - sum(c.duration_s for c in self.children)

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "attrs": self.attrs,
            "duration_s": self.duration_s,
            "children": [c.to_dict() for c in self.children],
        }


class _SpanContext:
    """Context manager for one live span (one per trace() call)."""

    __slots__ = ("_tracer", "span", "_t0")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span
        self._t0 = 0.0

    def __enter__(self) -> Span:
        self._tracer._push(self.span)
        self._t0 = time.perf_counter()
        self.span.start_s = self._t0
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.span.duration_s = time.perf_counter() - self._t0
        self._tracer._pop(self.span)
        return False


class Tracer:
    """Collects nested wall-time spans and per-stage aggregates."""

    enabled = True

    def __init__(self, max_roots: int = 1000) -> None:
        if max_roots < 1:
            raise ValueError("max_roots must be positive")
        self.max_roots = max_roots
        self.roots: list[Span] = []
        self.n_dropped_roots = 0
        self._local = threading.local()
        self._lock = threading.Lock()
        # name -> [count, total_s, max_s]
        self._stages: dict[str, list] = {}

    def trace(self, name: str, **attrs) -> _SpanContext:
        return _SpanContext(self, Span(name=name, attrs=attrs))

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Exits are LIFO by construction (context managers unwind in
        # order), but a generator-held span could exit late; search from
        # the top so the common case is O(1).
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is span:
                del stack[i]
                break
        parent = stack[-1] if stack else None
        with self._lock:
            stats = self._stages.get(span.name)
            if stats is None:
                self._stages[span.name] = [1, span.duration_s, span.duration_s]
            else:
                stats[0] += 1
                stats[1] += span.duration_s
                stats[2] = max(stats[2], span.duration_s)
            if parent is not None:
                parent.children.append(span)
            elif len(self.roots) < self.max_roots:
                self.roots.append(span)
            else:
                self.n_dropped_roots += 1

    def stage_timings(self) -> dict:
        """Per-stage aggregates: count, total, mean, and max seconds."""
        with self._lock:
            return {
                name: {
                    "count": count,
                    "total_s": total,
                    "mean_s": total / count if count else 0.0,
                    "max_s": peak,
                }
                for name, (count, total, peak) in sorted(self._stages.items())
            }


class _NullSpanContext:
    """Reusable, stateless no-op span context."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """Tracing off: one shared no-op context for every trace call."""

    enabled = False
    roots: list = []

    def trace(self, name: str, **attrs) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def stage_timings(self) -> dict:
        return {}


NULL_TRACER = NullTracer()

"""Process-wide wiring of the core modules' module-level metrics.

The pipeline's pure functions (``classify_series``, ``clean_observations``,
checkpoint IO) cannot carry a registry parameter without threading it
through every caller, so each of those modules keeps a module-level
instrument bundle defaulting to the null registry.  :func:`install_metrics`
points them all at a real registry in one call; :func:`uninstall_metrics`
restores the free default.  Class-based entry points
(:class:`~repro.core.pipeline.BatchRunner`,
:class:`~repro.stream.engine.StreamEngine`) take their registry/tracer as
constructor arguments instead and are unaffected by these globals.

Imports of the instrumented modules happen lazily inside the functions —
``repro.obs`` must stay importable from ``repro.core`` without a cycle.
"""

from __future__ import annotations

from repro.obs.registry import NULL_REGISTRY

__all__ = ["install_metrics", "uninstall_metrics"]


def install_metrics(registry):
    """Point every module-level instrument at ``registry``; returns it."""
    from repro.core import classify, timeseries
    from repro.datasets import io

    classify.set_metrics(registry)
    timeseries.set_metrics(registry)
    io.set_metrics(registry)
    return registry


def uninstall_metrics() -> None:
    """Restore the no-op default in every instrumented module."""
    install_metrics(NULL_REGISTRY)

"""Thread-safe, zero-dependency metrics primitives.

The registry is the shared vocabulary every instrumented subsystem
speaks: counters (monotone event tallies), gauges (set-anywhere levels),
histograms (fixed bucket boundaries, Prometheus ``le`` semantics), and
EWMA rate meters that reuse the paper's section 2.1 gain conventions
(``alpha_short = 0.1``, ``alpha_long = 0.01``) so a metric's smoothed
rate and the availability estimators age observations identically.

Two registries exist:

* :class:`MetricsRegistry` — the real thing.  Every metric carries one
  lock; updates are exact under concurrency (hammered in
  ``tests/test_obs_registry.py``).
* :class:`NullRegistry` — the default everywhere.  Its factory methods
  hand back shared no-op singletons, so an uninstrumented hot path pays
  one attribute load and a no-op call per event — no locks, no
  allocation, no branches in caller code.

Instrumented code never checks "is observability on": it binds metric
objects once (at construction) and calls ``inc``/``observe``
unconditionally.  The registry chosen decides the cost.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "EwmaMeter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "diff_states",
    "escape_label_value",
    "histogram_quantile",
    "quantile_from_counts",
    "render_labels",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

# Latency buckets (seconds) spanning sub-millisecond metric updates to
# multi-second checkpoint writes; callers can override per histogram.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

# Paper section 2.1 gains, shared with repro.core.estimator.
PAPER_ALPHA_SHORT = 0.1
PAPER_ALPHA_LONG = 0.01


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double quote, and line feed are the three characters the
    format reserves inside a quoted label value; anything else passes
    through verbatim.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def render_labels(labels: dict) -> str:
    """Render a label set the Prometheus way: ``{a="x",b="y"}`` (sorted).

    Label *values* are escaped per the exposition format, so a value
    containing ``"``, ``\\``, or a newline still yields one parseable
    line.
    """
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{escape_label_value(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing event count."""

    kind = "counter"
    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: dict) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A level that can move both ways (queue depth, tracked blocks)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: dict) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-boundary histogram with Prometheus ``le`` bucket semantics.

    ``bounds`` are inclusive upper edges; an implicit ``+Inf`` bucket
    catches the tail.  Per-bucket counts are stored non-cumulatively and
    accumulated at export time, so ``observe`` is one bisect plus one
    locked increment.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "bounds", "_lock", "_counts", "_sum",
                 "_count")

    def __init__(
        self, name: str, labels: dict, bounds: tuple[float, ...]
    ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        i = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[i] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at ``+Inf``."""
        with self._lock:
            counts = list(self._counts)
        edges = [*self.bounds, float("inf")]
        total = 0
        out = []
        for edge, n in zip(edges, counts):
            total += n
            out.append((edge, total))
        return out


class EwmaMeter:
    """EWMA-smoothed rate meter using the paper's estimator gains.

    ``observe(value)`` feeds one per-interval sample (events this round,
    µs this stage, ...); the meter keeps a fast view (``rate_short``,
    gain 0.1) and a slow view (``rate_long``, gain 0.01), seeded from the
    first sample exactly as section 2.1 seeds Â from the first estimate.
    """

    kind = "meter"
    __slots__ = ("name", "labels", "alpha_short", "alpha_long", "_lock",
                 "_short", "_long", "_count", "_last")

    def __init__(
        self,
        name: str,
        labels: dict,
        alpha_short: float = PAPER_ALPHA_SHORT,
        alpha_long: float = PAPER_ALPHA_LONG,
    ) -> None:
        for alpha in (alpha_short, alpha_long):
            if not 0.0 < alpha <= 1.0:
                raise ValueError(f"meter gain must be in (0, 1], got {alpha}")
        self.name = name
        self.labels = labels
        self.alpha_short = alpha_short
        self.alpha_long = alpha_long
        self._lock = threading.Lock()
        self._short = 0.0
        self._long = 0.0
        self._count = 0
        self._last = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            if self._count == 0:
                self._short = self._long = value
            else:
                a_s, a_l = self.alpha_short, self.alpha_long
                self._short = a_s * value + (1.0 - a_s) * self._short
                self._long = a_l * value + (1.0 - a_l) * self._long
            self._last = value
            self._count += 1

    @property
    def rate_short(self) -> float:
        return self._short

    @property
    def rate_long(self) -> float:
        return self._long

    @property
    def count(self) -> int:
        return self._count

    @property
    def last(self) -> float:
        return self._last


class MetricsRegistry:
    """Get-or-create home for metrics, keyed by ``(name, labels)``.

    Creation is locked and idempotent: asking twice for the same name and
    label set returns the same object, so call sites can bind eagerly or
    lazily without coordination.  Re-registering a name as a different
    metric kind (or a histogram with different bounds) is an error — one
    name means one thing in an exposition.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple, object] = {}
        self._kinds: dict[str, str] = {}

    def _get(self, cls, name: str, labels: dict, *args):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        labels = {str(k): str(v) for k, v in labels.items()}
        for key in labels:
            if not _LABEL_RE.match(key):
                raise ValueError(f"invalid label name {key!r}")
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                if cls is Histogram and args and existing.bounds != tuple(
                    float(b) for b in args[0]
                ):
                    raise ValueError(
                        f"histogram {name!r} already registered with bounds "
                        f"{existing.bounds}"
                    )
                return existing
            kind = self._kinds.get(name)
            if kind is not None and kind != cls.kind:
                raise ValueError(
                    f"metric {name!r} already registered as {kind}, "
                    f"not {cls.kind}"
                )
            metric = cls(name, labels, *args)
            self._metrics[key] = metric
            self._kinds[name] = cls.kind
            return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None, **labels
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets or DEFAULT_BUCKETS)

    def meter(
        self,
        name: str,
        alpha_short: float = PAPER_ALPHA_SHORT,
        alpha_long: float = PAPER_ALPHA_LONG,
        **labels,
    ) -> EwmaMeter:
        return self._get(EwmaMeter, name, labels, alpha_short, alpha_long)

    def collect(self) -> list:
        """All registered metrics, sorted by (name, labels)."""
        with self._lock:
            return [self._metrics[k] for k in sorted(self._metrics)]

    def state(self) -> list[dict]:
        """Raw, plain-data state of every metric — the unit of transfer.

        Unlike :meth:`snapshot` (a human/JSON view), ``state`` preserves
        enough structure to reconstruct or merge each metric exactly:
        histogram bucket counts stay non-cumulative, meters keep their
        gains and both EWMA levels.  :func:`diff_states` subtracts two
        states into a delta and :meth:`merge` applies state to another
        registry — together they move telemetry across process
        boundaries (see :mod:`repro.obs.distributed`).
        """
        out: list[dict] = []
        for metric in self.collect():
            entry = {
                "name": metric.name,
                "labels": dict(metric.labels),
                "kind": metric.kind,
            }
            if isinstance(metric, (Counter, Gauge)):
                entry["value"] = metric.value
            elif isinstance(metric, Histogram):
                with metric._lock:
                    entry["counts"] = list(metric._counts)
                    entry["sum"] = metric._sum
                    entry["count"] = metric._count
                entry["bounds"] = list(metric.bounds)
            elif isinstance(metric, EwmaMeter):
                with metric._lock:
                    entry.update(
                        alpha_short=metric.alpha_short,
                        alpha_long=metric.alpha_long,
                        short=metric._short,
                        long=metric._long,
                        count=metric._count,
                        last=metric._last,
                    )
            out.append(entry)
        return out

    def merge(self, state: list[dict]) -> None:
        """Apply a :meth:`state` (or :func:`diff_states` delta) here.

        Merge semantics per kind: **counters** and **histograms** add
        (so applying a chain of deltas reconstructs the source's exact
        totals), **gauges** are set (a level's latest value wins), and
        **meters** are replaced wholesale (an EWMA has one writer; its
        latest state *is* the merge).  Metrics are created on demand, so
        merging into a fresh registry clones the source.
        """
        for entry in state:
            labels = entry["labels"]
            kind = entry["kind"]
            name = entry["name"]
            if kind == "counter":
                self.counter(name, **labels).inc(entry["value"])
            elif kind == "gauge":
                self.gauge(name, **labels).set(entry["value"])
            elif kind == "histogram":
                hist = self.histogram(
                    name, buckets=tuple(entry["bounds"]), **labels
                )
                counts = entry["counts"]
                with hist._lock:
                    for i, n in enumerate(counts):
                        hist._counts[i] += n
                    hist._sum += entry["sum"]
                    hist._count += entry["count"]
            elif kind == "meter":
                meter = self.meter(
                    name,
                    alpha_short=entry["alpha_short"],
                    alpha_long=entry["alpha_long"],
                    **labels,
                )
                with meter._lock:
                    meter._short = entry["short"]
                    meter._long = entry["long"]
                    meter._count = entry["count"]
                    meter._last = entry["last"]
            else:
                raise ValueError(f"unknown metric kind {kind!r} in state")

    def snapshot(self) -> dict:
        """Plain-data view of every metric (JSON-ready)."""
        out: dict[str, dict] = {
            "counters": {}, "gauges": {}, "histograms": {}, "meters": {},
        }
        for metric in self.collect():
            key = metric.name + render_labels(metric.labels)
            if isinstance(metric, Counter):
                out["counters"][key] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][key] = metric.value
            elif isinstance(metric, Histogram):
                out["histograms"][key] = {
                    "buckets": {
                        ("+Inf" if edge == float("inf") else repr(edge)): n
                        for edge, n in metric.cumulative_buckets()
                    },
                    "sum": metric.sum,
                    "count": metric.count,
                }
            elif isinstance(metric, EwmaMeter):
                out["meters"][key] = {
                    "count": metric.count,
                    "last": metric.last,
                    "rate_short": metric.rate_short,
                    "rate_long": metric.rate_long,
                }
        return out


def _state_key(entry: dict) -> tuple:
    return (entry["name"], tuple(sorted(entry["labels"].items())))


def diff_states(new: list[dict], old: list[dict]) -> list[dict]:
    """The delta that turns state ``old`` into state ``new``.

    Counters and histograms become increments (what happened since
    ``old``); gauges and meters carry their latest absolute state, and
    are included only when they changed.  Metrics absent from ``old``
    appear whole.  Applying the result with
    :meth:`MetricsRegistry.merge` after ``old`` reproduces ``new``
    exactly — the invariant the cross-process shipping relies on.
    """
    base = {_state_key(entry): entry for entry in old}
    delta: list[dict] = []
    for entry in new:
        prev = base.get(_state_key(entry))
        if prev is None:
            delta.append(entry)
            continue
        kind = entry["kind"]
        if kind == "counter":
            change = entry["value"] - prev["value"]
            if change:
                delta.append({**entry, "value": change})
        elif kind == "gauge":
            if entry["value"] != prev["value"]:
                delta.append(entry)
        elif kind == "histogram":
            if entry["count"] != prev["count"]:
                delta.append({
                    **entry,
                    "counts": [
                        n - p for n, p in zip(entry["counts"], prev["counts"])
                    ],
                    "sum": entry["sum"] - prev["sum"],
                    "count": entry["count"] - prev["count"],
                })
        elif kind == "meter":
            if entry["count"] != prev["count"]:
                delta.append(entry)
    return delta


def histogram_quantile(histograms, q: float) -> float:
    """Estimate the ``q`` quantile across one or more histograms.

    The Prometheus ``histogram_quantile`` estimator: merge the
    cumulative bucket counts (every histogram must share bounds —
    label variants of one family do by construction), find the bucket
    the target rank lands in, and interpolate linearly inside it.
    Observations in the ``+Inf`` bucket clamp to the highest finite
    bound (the standard, deliberately pessimistic-but-finite answer).
    Returns ``nan`` for empty merges — no histograms, or histograms
    with zero observations.  "No traffic" must read as *unknown*
    latency, not as a perfect 0.0 an SLO could mistake for health;
    callers that want a number substitute their own (the runner's SLO
    gauge maps ``nan`` to 0.0 for JSON export, alert predicates skip).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    histograms = list(histograms)
    if not histograms:
        return float("nan")
    bounds = histograms[0].bounds
    for hist in histograms[1:]:
        if hist.bounds != bounds:
            raise ValueError(
                "histogram_quantile requires identical bucket bounds; "
                f"got {bounds} and {hist.bounds}"
            )
    counts = [0] * (len(bounds) + 1)
    for hist in histograms:
        with hist._lock:
            for i, n in enumerate(hist._counts):
                counts[i] += n
    return quantile_from_counts(bounds, counts, q)


def quantile_from_counts(bounds, counts, q: float) -> float:
    """The interpolation core of :func:`histogram_quantile`, exposed
    for callers that already hold merged (or differenced) bucket
    counts — e.g. windowed quantiles over history samples.  ``nan``
    when the counts sum to zero.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return float("nan")
    rank = q * total
    cumulative = 0
    for i, n in enumerate(counts):
        cumulative += n
        if cumulative >= rank and n > 0:
            if i >= len(bounds):
                return bounds[-1]
            lower = bounds[i - 1] if i > 0 else 0.0
            upper = bounds[i]
            within = rank - (cumulative - n)
            return lower + (upper - lower) * (within / n)
    return bounds[-1]


class _NullMetric:
    """One object, every interface, no behaviour."""

    kind = "null"
    name = ""
    labels: dict = {}
    bounds: tuple = ()
    value = 0.0
    count = 0
    sum = 0.0
    last = 0.0
    rate_short = 0.0
    rate_long = 0.0
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def cumulative_buckets(self) -> list:
        return []


_NULL_METRIC = _NullMetric()


class NullRegistry:
    """Observability off: every factory returns the shared no-op metric."""

    enabled = False

    def counter(self, name: str, **labels) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, **labels) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, buckets=None, **labels) -> _NullMetric:
        return _NULL_METRIC

    def meter(self, name: str, alpha_short=PAPER_ALPHA_SHORT,
              alpha_long=PAPER_ALPHA_LONG, **labels) -> _NullMetric:
        return _NULL_METRIC

    def collect(self) -> list:
        return []

    def state(self) -> list:
        return []

    def merge(self, state) -> None:
        pass

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}, "meters": {}}


NULL_REGISTRY = NullRegistry()

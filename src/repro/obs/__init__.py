"""Observability: metrics, tracing, events, and fleet telemetry.

``registry``
    :class:`MetricsRegistry` — thread-safe counters, gauges,
    fixed-bucket histograms, and EWMA rate meters (paper gain
    conventions), plus plain-data ``state()``/``merge()`` and
    :func:`diff_states` for cross-process transfer.
    :data:`NULL_REGISTRY` is the allocation-free default every hot path
    binds when observability is off.
``tracing``
    :class:`Tracer` — nested wall-time spans per pipeline stage
    (``with tracer.trace("classify", block=...)``), with per-stage
    aggregates, :class:`TraceContext` carriers for cross-process
    parenting, and detached ``begin``/``end`` spans for async dispatch
    windows; :data:`NULL_TRACER` is the no-op default.
``events``
    :class:`EventLogger` — leveled JSON-lines structured logging with
    bound correlation fields and automatic trace stamping;
    :class:`FlightRecorder` — the bounded black box dumped on crashes;
    :data:`NULL_EVENT_LOG` is the no-op default.
``distributed``
    :class:`WorkerTelemetry` / :class:`TelemetryDelta` /
    :class:`FleetView` — worker-side delta cutting and the
    supervisor-side live fleet registry, exactly-once over the result
    channel.
``alerts``
    :class:`AlertRule` / :class:`AlertEngine` — declarative threshold
    and EWMA-drift rules over any registry, emitting typed alert events
    into the same log; :func:`default_pool_rules` for the supervised
    pool.
``history``
    :class:`HistoryConfig` / :class:`MetricsHistory` — the bounded
    time-series store behind the service: fixed-capacity raw rings
    with 1-min/15-min min/max/mean/last rollups, windowed queries
    (``range``/``rate``/``quantile_over_time``/``window_aggregate``),
    and bit-identical JSONL save/load across drain/restart.
``incidents``
    :class:`IncidentConfig` / :class:`IncidentRecorder` — alert-fired
    forensic capture: an atomic ``incidents/<ts>-<rule>/`` bundle of
    history windows, event-ring tail, flight-recorder snapshots,
    metric values, trace ids, and (optionally) a short CPU profile,
    deduplicated per firing episode.
``export``
    :func:`prometheus_text`, :func:`json_snapshot` /
    :func:`write_json_snapshot`, :class:`RunManifest` — the per-run
    record of seeds, fault plans, quality gates, stage timings, and
    final metrics — and :func:`sparkline_svg`, the server-rendered
    dashboard primitive.
``profiler``
    :class:`SamplingProfiler` / :func:`profile_for` — a thread-based
    wall-clock stack sampler emitting flamegraph-ready collapsed
    stacks, cheap enough (<5% gate) to leave reachable in production
    (``GET /debug/profile`` on the service API).
``instrument``
    :func:`install_metrics` / :func:`uninstall_metrics` — process-wide
    wiring of the module-level instruments in ``repro.core.classify``,
    ``repro.core.timeseries``, and ``repro.datasets.io``.

The contract instrumentation must honour everywhere: metrics, spans,
and events *observe* the pipeline, they never influence it — an
instrumented run is bit-identical to an uninstrumented one
(``tests/test_obs_parity.py``, ``tests/test_pool_telemetry.py``), and
the null defaults keep uninstrumented hot paths free of locks and
allocations (``benchmarks/test_abl_obs_overhead.py``).
"""

from repro.obs.alerts import (
    AlertEngine,
    AlertEvent,
    AlertRule,
    default_pool_rules,
    default_service_rules,
)
from repro.obs.distributed import (
    FleetView,
    TelemetryDelta,
    WorkerTelemetry,
    aggregate_registries,
)
from repro.obs.events import (
    EventLogger,
    FlightRecorder,
    LEVELS,
    NULL_EVENT_LOG,
    NullEventLogger,
    read_event_log,
)
from repro.obs.export import (
    RunManifest,
    json_snapshot,
    prometheus_text,
    sparkline_svg,
    write_json_snapshot,
)
from repro.obs.history import HistoryConfig, MetricsHistory
from repro.obs.incidents import IncidentConfig, IncidentRecorder
from repro.obs.instrument import install_metrics, uninstall_metrics
from repro.obs.profiler import SamplingProfiler, profile_for
from repro.obs.registry import (
    Counter,
    EwmaMeter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    diff_states,
    escape_label_value,
    histogram_quantile,
    quantile_from_counts,
)
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceContext,
    Tracer,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)

__all__ = [
    "AlertEngine",
    "AlertEvent",
    "AlertRule",
    "Counter",
    "EventLogger",
    "EwmaMeter",
    "FleetView",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "HistoryConfig",
    "IncidentConfig",
    "IncidentRecorder",
    "LEVELS",
    "MetricsHistory",
    "MetricsRegistry",
    "NULL_EVENT_LOG",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullEventLogger",
    "NullRegistry",
    "NullTracer",
    "RunManifest",
    "SamplingProfiler",
    "Span",
    "TelemetryDelta",
    "TraceContext",
    "Tracer",
    "WorkerTelemetry",
    "aggregate_registries",
    "default_pool_rules",
    "default_service_rules",
    "diff_states",
    "escape_label_value",
    "format_traceparent",
    "histogram_quantile",
    "install_metrics",
    "json_snapshot",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "profile_for",
    "prometheus_text",
    "quantile_from_counts",
    "read_event_log",
    "sparkline_svg",
    "uninstall_metrics",
    "write_json_snapshot",
]

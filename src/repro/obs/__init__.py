"""Observability: metrics, tracing, and run telemetry for the pipeline.

``registry``
    :class:`MetricsRegistry` — thread-safe counters, gauges,
    fixed-bucket histograms, and EWMA rate meters (paper gain
    conventions).  :data:`NULL_REGISTRY` is the allocation-free default
    every hot path binds when observability is off.
``tracing``
    :class:`Tracer` — nested wall-time spans per pipeline stage
    (``with tracer.trace("classify", block=...)``), with per-stage
    aggregates; :data:`NULL_TRACER` is the no-op default.
``export``
    :func:`prometheus_text`, :func:`json_snapshot` /
    :func:`write_json_snapshot`, and :class:`RunManifest` — the per-run
    record of seeds, fault plans, quality gates, stage timings, and
    final metrics.
``instrument``
    :func:`install_metrics` / :func:`uninstall_metrics` — process-wide
    wiring of the module-level instruments in ``repro.core.classify``,
    ``repro.core.timeseries``, and ``repro.datasets.io``.

The contract instrumentation must honour everywhere: metrics and spans
*observe* the pipeline, they never influence it — an instrumented run is
bit-identical to an uninstrumented one (``tests/test_obs_parity.py``),
and the null defaults keep uninstrumented hot paths free of locks and
allocations (``benchmarks/test_abl_obs_overhead.py``).
"""

from repro.obs.export import (
    RunManifest,
    json_snapshot,
    prometheus_text,
    write_json_snapshot,
)
from repro.obs.instrument import install_metrics, uninstall_metrics
from repro.obs.registry import (
    Counter,
    EwmaMeter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from repro.obs.tracing import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "EwmaMeter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "RunManifest",
    "Span",
    "Tracer",
    "install_metrics",
    "json_snapshot",
    "prometheus_text",
    "uninstall_metrics",
    "write_json_snapshot",
]

"""Bounded in-memory metrics time series with tiered downsampling.

The registry answers "what is the value *now*"; this module answers
"how did it get there".  A :class:`MetricsHistory` is fed one sample
per supervision cycle from a registry snapshot (normally the service
runner's fleet aggregate) and retains, per series:

* a **raw ring** of the most recent samples (full resolution);
* a **1-minute rollup ring** of closed buckets carrying
  ``min/max/mean/last/count`` — spikes survive compaction because the
  bucket keeps its extremes, not just an average;
* a **15-minute rollup ring** behind that, same shape.

Every ring is a fixed-capacity deque and the series count is capped
(``max_series``, overflow tracked — never silent), so memory is
deterministically bounded no matter how long the service runs.

Histogram series keep raw ``(t, bucket_counts, sum, count)`` samples
instead: cumulative counts are monotone, so the *last* sample in any
window carries everything the window needs and
:meth:`MetricsHistory.quantile_over_time` can difference two samples
to get the exact distribution of observations between them.

Windowed queries — :meth:`~MetricsHistory.range` (tier-stitched
points, optionally resampled onto a fixed step), :meth:`rate`
(counter increase per second), :meth:`quantile_over_time`, and
:meth:`window_aggregate` (the history-aware alert predicate hook) —
all read a stitched view: raw where raw still covers, 1-min buckets
behind it, 15-min buckets behind those.

Persistence is one JSONL file (header line + one line per series)
written through :func:`repro.datasets.io.atomic_write_text`; a
``save → load → save`` round trip is bit-identical, which is how the
service proves drained history survives a restart unharmed.

Like every ``repro.obs`` instrument, history *observes*: it never
mutates the registry it samples, and empty windows answer ``nan`` (or
``None``), never raise.
"""

from __future__ import annotations

import json
import math
import threading
from collections import deque
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.obs.registry import render_labels, quantile_from_counts

__all__ = [
    "HistoryConfig",
    "MetricsHistory",
]

# Rollup tier widths (seconds): raw -> 1-minute -> 15-minute.
ROLLUP_WIDTHS = (60.0, 900.0)


@dataclass(frozen=True)
class HistoryConfig:
    """Ring capacities and sampling bounds (all deterministic).

    Attributes:
        raw_capacity: full-resolution samples kept per scalar series.
        rollup_capacity: closed 1-minute buckets kept per series.
        coarse_capacity: closed 15-minute buckets kept per series
            (192 buckets = 48 hours).
        histogram_capacity: raw histogram samples kept per series.
        max_series: series the store will track; later series are
            dropped and counted, never silently absorbed.
        sample_min_interval_s: minimum seconds between accepted
            :meth:`MetricsHistory.sample` calls (0 = every call).  The
            supervision loop runs far faster than telemetry moves;
            throttling here bounds the history cost per cycle without
            slowing the loop itself.
    """

    raw_capacity: int = 512
    rollup_capacity: int = 256
    coarse_capacity: int = 192
    histogram_capacity: int = 256
    max_series: int = 512
    sample_min_interval_s: float = 0.25

    def __post_init__(self) -> None:
        for name in ("raw_capacity", "rollup_capacity", "coarse_capacity",
                     "histogram_capacity", "max_series"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be positive")
        if self.sample_min_interval_s < 0:
            raise ValueError("sample_min_interval_s must be >= 0")


class _Rollup:
    """One downsampling tier: closed buckets + the open bucket.

    A bucket is ``[start, min, max, sum, count, last]``; ``start`` is
    ``floor(t / width) * width``.  Buckets close when a sample crosses
    the boundary, so the open bucket is always the newest.
    """

    __slots__ = ("width", "closed", "open")

    def __init__(self, width: float, capacity: int) -> None:
        self.width = width
        self.closed: deque = deque(maxlen=capacity)
        self.open: list | None = None

    def add(self, t: float, value: float) -> None:
        start = math.floor(t / self.width) * self.width
        bucket = self.open
        if bucket is not None and bucket[0] == start:
            if value < bucket[1]:
                bucket[1] = value
            if value > bucket[2]:
                bucket[2] = value
            bucket[3] += value
            bucket[4] += 1
            bucket[5] = value
            return
        if bucket is not None:
            self.closed.append(bucket)
        self.open = [start, value, value, value, 1, value]

    def buckets(self) -> list[list]:
        out = list(self.closed)
        if self.open is not None:
            out.append(self.open)
        return out

    def to_dict(self) -> dict:
        return {
            "width": self.width,
            "closed": [list(b) for b in self.closed],
            "open": list(self.open) if self.open is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict, capacity: int) -> "_Rollup":
        rollup = cls(float(data["width"]), capacity)
        for bucket in data["closed"]:
            rollup.closed.append(list(bucket))
        if data["open"] is not None:
            rollup.open = list(data["open"])
        return rollup


def _bucket_point(bucket: list) -> dict:
    return {
        "t": bucket[0],
        "min": bucket[1],
        "max": bucket[2],
        "mean": bucket[3] / bucket[4],
        "last": bucket[5],
        "count": bucket[4],
    }


class _ScalarSeries:
    """Raw ring + two rollup tiers for one counter/gauge/meter series."""

    __slots__ = ("name", "labels", "kind", "raw", "rollups")

    def __init__(self, name: str, labels: dict, kind: str,
                 config: HistoryConfig) -> None:
        self.name = name
        self.labels = dict(labels)
        self.kind = kind
        self.raw: deque = deque(maxlen=config.raw_capacity)
        self.rollups = (
            _Rollup(ROLLUP_WIDTHS[0], config.rollup_capacity),
            _Rollup(ROLLUP_WIDTHS[1], config.coarse_capacity),
        )

    def add(self, t: float, value: float) -> None:
        self.raw.append((t, value))
        for rollup in self.rollups:
            rollup.add(t, value)

    def stitched(self) -> list[dict]:
        """Points ascending in t: coarse tier where only it reaches,
        then the 1-min tier, then raw.  A bucket joins only when it
        ends at or before the finer tier's coverage starts, so no
        observation is ever represented twice (double-counting would
        corrupt count-weighted means and window rates); the sub-width
        gap this can leave at each seam is the price of exactness.
        """
        points = [
            {"t": t, "min": v, "max": v, "mean": v, "last": v, "count": 1}
            for t, v in self.raw
        ]
        cut = points[0]["t"] if points else math.inf
        mid = [
            _bucket_point(b)
            for b in self.rollups[0].buckets()
            if b[0] + self.rollups[0].width <= cut
        ]
        if mid:
            cut = mid[0]["t"]
        coarse = [
            _bucket_point(b)
            for b in self.rollups[1].buckets()
            if b[0] + self.rollups[1].width <= cut
        ]
        return coarse + mid + points

    def n_points(self) -> int:
        return (len(self.raw)
                + sum(len(r.closed) + (r.open is not None)
                      for r in self.rollups))

    def to_dict(self, key: str) -> dict:
        return {
            "series": key,
            "name": self.name,
            "labels": self.labels,
            "kind": self.kind,
            "raw": [[t, v] for t, v in self.raw],
            "rollups": [r.to_dict() for r in self.rollups],
        }

    @classmethod
    def from_dict(cls, data: dict, config: HistoryConfig) -> "_ScalarSeries":
        series = cls(data["name"], data["labels"], data["kind"], config)
        for t, v in data["raw"]:
            series.raw.append((t, v))
        capacities = (config.rollup_capacity, config.coarse_capacity)
        series.rollups = tuple(
            _Rollup.from_dict(r, cap)
            for r, cap in zip(data["rollups"], capacities)
        )
        return series


class _HistogramSeries:
    """Raw ``(t, counts, sum, count)`` samples for one histogram series.

    Cumulative counts are monotone, so rollup tiers would only need
    ``last`` — which the raw ring's own samples already are.  One ring
    suffices; windows difference two of its samples.
    """

    __slots__ = ("name", "labels", "bounds", "raw")

    kind = "histogram"

    def __init__(self, name: str, labels: dict, bounds: tuple,
                 config: HistoryConfig) -> None:
        self.name = name
        self.labels = dict(labels)
        self.bounds = tuple(float(b) for b in bounds)
        self.raw: deque = deque(maxlen=config.histogram_capacity)

    def add(self, t: float, counts: tuple, total_sum: float,
            count: int) -> None:
        self.raw.append((t, tuple(counts), total_sum, count))

    def stitched(self) -> list[dict]:
        return [
            {"t": t, "min": c, "max": c, "mean": c, "last": c,
             "count": 1}
            for t, _counts, _sum, c in self.raw
        ]

    def n_points(self) -> int:
        return len(self.raw)

    def to_dict(self, key: str) -> dict:
        return {
            "series": key,
            "name": self.name,
            "labels": self.labels,
            "kind": "histogram",
            "bounds": list(self.bounds),
            "raw": [
                [t, list(counts), s, c] for t, counts, s, c in self.raw
            ],
        }

    @classmethod
    def from_dict(cls, data: dict,
                  config: HistoryConfig) -> "_HistogramSeries":
        series = cls(data["name"], data["labels"], tuple(data["bounds"]),
                     config)
        for t, counts, s, c in data["raw"]:
            series.raw.append((t, tuple(counts), s, c))
        return series


_AGGS = ("min", "max", "mean", "last", "delta", "rate")


class MetricsHistory:
    """The bounded store; one instance per service runner.

    Thread-safe: the supervision thread samples while API executor
    threads query and the drain path saves.
    """

    def __init__(self, config: HistoryConfig | None = None) -> None:
        self.config = config or HistoryConfig()
        self._lock = threading.Lock()
        self._series: dict[str, object] = {}
        self._dropped: set[str] = set()
        self.n_samples = 0
        self._last_sample_t: float | None = None

    # -- ingest ------------------------------------------------------------

    def sample(self, registry, t: float, force: bool = False) -> bool:
        """Record one snapshot of every metric in ``registry`` at ``t``.

        Counters and gauges record their value, meters their fast EWMA
        view (the "current rate"), histograms their cumulative bucket
        counts.  Returns False when the sample was skipped by the
        ``sample_min_interval_s`` throttle; ``force`` bypasses the
        throttle (the drain path's final state capture).
        """
        with self._lock:
            last = self._last_sample_t
            if (not force and last is not None
                    and t - last < self.config.sample_min_interval_s):
                return False
            self._last_sample_t = t
            for metric in registry.collect():
                kind = metric.kind
                key = metric.name + render_labels(metric.labels)
                if kind == "histogram":
                    series = self._get_histogram(
                        key, metric.name, metric.labels, metric.bounds
                    )
                    if series is None:
                        continue
                    with metric._lock:
                        counts = tuple(metric._counts)
                        total_sum = metric._sum
                        count = metric._count
                    series.add(t, counts, total_sum, count)
                    continue
                if kind == "meter":
                    value = metric.rate_short
                elif kind in ("counter", "gauge"):
                    value = metric.value
                else:
                    continue
                series = self._get_scalar(
                    key, metric.name, metric.labels, kind
                )
                if series is not None:
                    series.add(t, value)
            self.n_samples += 1
            return True

    def append(self, name: str, t: float, value: float,
               labels: dict | None = None, kind: str = "gauge") -> None:
        """Record one point on a derived scalar series (e.g. the
        runner's per-shard health flags, which exist nowhere in the
        fleet registry because worker metrics are unlabeled sums)."""
        labels = {str(k): str(v) for k, v in (labels or {}).items()}
        key = name + render_labels(labels)
        with self._lock:
            series = self._get_scalar(key, name, labels, kind)
            if series is not None:
                series.add(t, float(value))

    def _get_scalar(self, key, name, labels, kind):
        series = self._series.get(key)
        if series is None:
            if len(self._series) >= self.config.max_series:
                self._dropped.add(key)
                return None
            series = _ScalarSeries(name, labels, kind, self.config)
            self._series[key] = series
        return series

    def _get_histogram(self, key, name, labels, bounds):
        series = self._series.get(key)
        if series is None:
            if len(self._series) >= self.config.max_series:
                self._dropped.add(key)
                return None
            series = _HistogramSeries(name, labels, bounds, self.config)
            self._series[key] = series
        return series

    # -- queries -----------------------------------------------------------

    @property
    def n_dropped_series(self) -> int:
        return len(self._dropped)

    def point_count(self) -> int:
        """Total retained points — the deterministic-memory assertion."""
        with self._lock:
            return sum(s.n_points() for s in self._series.values())

    def series(self) -> list[dict]:
        """Catalog of every tracked series (sorted by key)."""
        with self._lock:
            out = []
            for key in sorted(self._series):
                s = self._series[key]
                points = s.stitched()
                out.append({
                    "series": key,
                    "name": s.name,
                    "labels": dict(s.labels),
                    "kind": s.kind,
                    "points": s.n_points(),
                    "oldest": points[0]["t"] if points else None,
                    "newest": points[-1]["t"] if points else None,
                })
            return out

    def latest(self, series: str) -> float | None:
        """The newest recorded value of a scalar series (None if unknown)."""
        with self._lock:
            s = self._series.get(series)
            if s is None or isinstance(s, _HistogramSeries):
                return None
            if s.raw:
                return s.raw[-1][1]
            points = s.stitched()
            return points[-1]["last"] if points else None

    def range(self, series: str, window_s: float,
              now: float | None = None,
              step_s: float | None = None) -> dict:
        """Tier-stitched points of one series over ``[now - window, now]``.

        Each point is ``{t, min, max, mean, last, count}``; raw points
        have ``min == max == mean == last``.  ``step_s`` re-buckets
        the stitched points onto a fixed grid (empty steps are
        omitted, not interpolated — a gap in history is information).
        """
        with self._lock:
            s = self._series.get(series)
            if s is None:
                return {"series": series, "kind": None, "points": []}
            points = s.stitched()
            kind = s.kind
        if now is None:
            now = points[-1]["t"] if points else 0.0
        start = now - window_s
        points = [p for p in points if start <= p["t"] <= now]
        if step_s and step_s > 0:
            points = _resample(points, step_s)
        return {"series": series, "kind": kind, "points": points}

    def rate(self, series: str, window_s: float,
             now: float | None = None) -> float:
        """Per-second increase of a (counter-like) series over the window.

        ``nan`` when the series is unknown, has fewer than two points
        in the window, spans no time, or decreased (a reset — the rate
        across it is meaningless, and ``nan`` is the honest answer).
        """
        points = self.range(series, window_s, now=now)["points"]
        if len(points) < 2:
            return float("nan")
        dt = points[-1]["t"] - points[0]["t"]
        dv = points[-1]["last"] - points[0]["last"]
        if dt <= 0 or dv < 0:
            return float("nan")
        return dv / dt

    def quantile_over_time(self, series: str, q: float, window_s: float,
                           now: float | None = None) -> float:
        """The ``q`` quantile of a histogram's observations in a window.

        Differences the cumulative bucket counts between the window's
        edges (baseline = the last sample at or before the window
        start, else the first sample inside it), then interpolates
        with the same estimator as
        :func:`~repro.obs.registry.histogram_quantile`.  ``nan`` for
        unknown series, non-histograms, or windows with no
        observations — idle never throws.
        """
        with self._lock:
            s = self._series.get(series)
            if not isinstance(s, _HistogramSeries):
                return float("nan")
            samples = list(s.raw)
            bounds = s.bounds
        if not samples:
            return float("nan")
        if now is None:
            now = samples[-1][0]
        start = now - window_s
        in_window = [smp for smp in samples if start <= smp[0] <= now]
        if not in_window:
            return float("nan")
        end_counts = in_window[-1][1]
        baseline = None
        for smp in reversed(samples):
            if smp[0] < start:
                baseline = smp[1]
                break
        if baseline is None:
            baseline = in_window[0][1]
        delta = [e - b for e, b in zip(end_counts, baseline)]
        if any(d < 0 for d in delta):
            # Counter reset inside the window (worker restart): the
            # difference is not a distribution.
            return float("nan")
        return quantile_from_counts(bounds, delta, q)

    def window_aggregate(self, metric: str, labels: dict,
                         window_s: float, agg: str,
                         now: float | None = None) -> float | None:
        """Aggregate every scalar series matching ``metric`` + label
        subset over the window — the alert engine's history predicate.

        ``agg``: ``min``/``max`` over all points, count-weighted
        ``mean``, ``last`` (summed across matching series, mirroring
        instantaneous rule matching), ``delta`` (summed last − first),
        or ``rate`` (summed per-series delta/dt).  ``None`` when
        nothing matches or no window has points — a skipped rule, not
        an error.
        """
        if agg not in _AGGS:
            raise ValueError(
                f"unknown aggregate {agg!r}; expected one of {_AGGS}"
            )
        with self._lock:
            matched = [
                s for s in self._series.values()
                if s.name == metric
                and not isinstance(s, _HistogramSeries)
                and all(s.labels.get(k) == str(v)
                        for k, v in labels.items())
            ]
            windows = []
            for s in matched:
                points = s.stitched()
                end = now if now is not None else (
                    points[-1]["t"] if points else 0.0
                )
                start = end - window_s
                points = [p for p in points if start <= p["t"] <= end]
                if points:
                    windows.append(points)
        if not windows:
            return None
        if agg == "min":
            return min(p["min"] for pts in windows for p in pts)
        if agg == "max":
            return max(p["max"] for pts in windows for p in pts)
        if agg == "mean":
            total = sum(p["mean"] * p["count"]
                        for pts in windows for p in pts)
            count = sum(p["count"] for pts in windows for p in pts)
            return total / count
        if agg == "last":
            return sum(pts[-1]["last"] for pts in windows)
        if agg == "delta":
            return sum(pts[-1]["last"] - pts[0]["last"] for pts in windows)
        # rate
        total = 0.0
        for pts in windows:
            dt = pts[-1]["t"] - pts[0]["t"]
            if dt > 0:
                total += (pts[-1]["last"] - pts[0]["last"]) / dt
        return total

    # -- persistence -------------------------------------------------------

    def save(self, path) -> Path:
        """Write the whole store as JSONL (atomic write + fsync).

        Deterministic: sorted series, sorted keys, exact float
        round-trip — ``save(load(save(x)))`` is byte-identical.
        """
        from repro.datasets.io import atomic_write_text

        with self._lock:
            header = {
                "kind": "metrics-history",
                "version": 1,
                "config": asdict(self.config),
                "n_samples": self.n_samples,
                "last_sample_t": self._last_sample_t,
                "dropped": sorted(self._dropped),
            }
            lines = [_json_line(header)]
            for key in sorted(self._series):
                lines.append(_json_line(self._series[key].to_dict(key)))
        return atomic_write_text(
            path, "\n".join(lines) + "\n", kind="history"
        )

    @classmethod
    def load(cls, path, config: HistoryConfig | None = None
             ) -> "MetricsHistory":
        """Rebuild a store from :meth:`save` output.

        ``config`` overrides the persisted capacities (rings are
        trimmed oldest-first if smaller); by default the file's own
        config is restored, which is what makes the round trip
        bit-identical.
        """
        lines = Path(path).read_text(encoding="utf-8").splitlines()
        if not lines:
            raise ValueError(f"empty history file {path}")
        header = json.loads(lines[0])
        if header.get("kind") != "metrics-history":
            raise ValueError(f"{path} is not a metrics-history file")
        if config is None:
            config = HistoryConfig(**header["config"])
        history = cls(config)
        history.n_samples = int(header.get("n_samples", 0))
        history._last_sample_t = header.get("last_sample_t")
        history._dropped = set(header.get("dropped", []))
        for line in lines[1:]:
            if not line.strip():
                continue
            data = json.loads(line)
            if data.get("kind") == "histogram":
                series = _HistogramSeries.from_dict(data, config)
            else:
                series = _ScalarSeries.from_dict(data, config)
            history._series[data["series"]] = series
        return history


def _resample(points: list[dict], step_s: float) -> list[dict]:
    """Fold stitched points onto a fixed grid, one point per occupied
    step: min of mins, max of maxes, count-weighted mean, last last."""
    bins: dict[float, dict] = {}
    for p in points:
        start = math.floor(p["t"] / step_s) * step_s
        b = bins.get(start)
        if b is None:
            bins[start] = {
                "t": start, "min": p["min"], "max": p["max"],
                "mean": p["mean"] * p["count"], "last": p["last"],
                "count": p["count"],
            }
        else:
            b["min"] = min(b["min"], p["min"])
            b["max"] = max(b["max"], p["max"])
            b["mean"] += p["mean"] * p["count"]
            b["last"] = p["last"]
            b["count"] += p["count"]
    out = []
    for start in sorted(bins):
        b = bins[start]
        b["mean"] /= b["count"]
        out.append(b)
    return out


def _json_line(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))

"""Cross-process telemetry: worker deltas, supervisor fleet view.

Worker processes run the measurement pipeline dark unless their
telemetry crosses the process boundary.  This module is that bridge,
built on three primitives from the registry/tracing layers:

* ``MetricsRegistry.state()`` / :func:`~repro.obs.registry.diff_states`
  / ``MetricsRegistry.merge()`` — exact, plain-data metric transfer;
* :class:`~repro.obs.tracing.TraceContext` — the picklable carrier that
  parents worker spans under the supervisor's dispatch span;
* :class:`~repro.obs.events.EventLogger` ring buffers — worker events
  buffered in memory and shipped with results.

The flow: each worker holds a :class:`WorkerTelemetry` (a real
registry, tracer, and buffering event logger).  After every task it
:meth:`~WorkerTelemetry.cut_delta`\\ s — metrics since the last cut,
newly finished span trees, buffered events — and ships the
:class:`TelemetryDelta` over the existing result channel.  Because a
delta rides *with* its result, telemetry is exactly-once by
construction: a killed worker's unsent delta dies with it, exactly as
its unsent result does, so the supervisor's fleet totals always equal
the sum of work it actually received.

Supervisor-side, a :class:`FleetView` maintains one registry per worker
plus :meth:`~FleetView.aggregate` — counters and histograms sum,
gauges sum (a fleet level is the sum of per-worker levels), EWMA
meters combine count-weighted.  Deltas are sequence-guarded per worker
incarnation, so a re-applied delta is a no-op.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.obs.events import EventLogger
from repro.obs.registry import MetricsRegistry, _state_key, diff_states
from repro.obs.tracing import Tracer

__all__ = [
    "FleetView",
    "TelemetryDelta",
    "WorkerTelemetry",
    "aggregate_registries",
]


@dataclass
class TelemetryDelta:
    """One worker's telemetry since its previous shipment (picklable).

    ``seq`` increases per cut within one worker incarnation; ``pid``
    distinguishes incarnations (a respawned worker restarts at seq 1
    under a new pid, so the supervisor's replay guard never confuses
    the two).
    """

    worker_id: int
    seq: int
    pid: int
    metrics: list = field(default_factory=list)
    spans: list = field(default_factory=list)
    events: list = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not (self.metrics or self.spans or self.events)


class WorkerTelemetry:
    """Everything a worker process records locally, plus delta cutting.

    Hands the worker a real :class:`MetricsRegistry`, a real
    :class:`Tracer`, and an :class:`EventLogger` that buffers records
    in memory (no file: the supervisor owns the log).  One
    :meth:`cut_delta` per completed task keeps shipments small and
    aligned with the exactly-once result channel.

    ``recorder`` optionally tees every record into a worker-local
    :class:`~repro.obs.events.FlightRecorder` as well, so a worker that
    dies at a crash point can dump its own black box on the way down —
    including the records a cut would only have shipped later.
    """

    def __init__(self, worker_id: int, recorder=None) -> None:
        self.worker_id = worker_id
        self.registry = MetricsRegistry()
        self.tracer = Tracer()
        self.recorder = recorder
        self._buffer: list[dict] = []
        self.events = EventLogger(
            ring=self._buffer,
            tracer=self.tracer,
            worker_id=worker_id,
        )
        if recorder is not None:
            self.events = self.events.bind(ring=recorder)
        self._last_state: list[dict] = []
        self._seq = 0

    def cut_delta(self) -> TelemetryDelta:
        """Package everything recorded since the last cut.

        Finished span trees are *drained* from the worker tracer, not
        copied: once a tree ships with a result it lives supervisor-
        side, and draining keeps a long-lived worker (an always-on
        shard cuts a delta per RPC, forever) from exhausting the
        tracer's ``max_roots`` retention budget on shipped history.
        """
        state = self.registry.state()
        metrics = diff_states(state, self._last_state)
        self._last_state = state
        spans = [s.to_dict() for s in self.tracer.drain_roots()]
        events = list(self._buffer)
        self._buffer.clear()
        self._seq += 1
        return TelemetryDelta(
            worker_id=self.worker_id,
            seq=self._seq,
            pid=os.getpid(),
            metrics=metrics,
            spans=spans,
            events=events,
        )


def aggregate_registries(registries) -> MetricsRegistry:
    """Combine registries into a fresh fleet-level registry.

    Counters and histograms add exactly; gauges add (fleet level = sum
    of member levels); EWMA meters combine count-weighted, which is the
    only well-defined merge for independently smoothed series (exact
    for the count, approximate for the levels — documented, not
    hidden).
    """
    out = MetricsRegistry()
    meter_acc: dict[tuple, dict] = {}
    for registry in registries:
        for entry in registry.state():
            kind = entry["kind"]
            if kind in ("counter", "histogram"):
                out.merge([entry])
            elif kind == "gauge":
                out.gauge(entry["name"], **entry["labels"]).inc(entry["value"])
            elif kind == "meter":
                acc = meter_acc.setdefault(
                    _state_key(entry),
                    {"entry": entry, "short": 0.0, "long": 0.0,
                     "count": 0, "last": 0.0},
                )
                count = entry["count"]
                acc["short"] += entry["short"] * count
                acc["long"] += entry["long"] * count
                acc["count"] += count
                if count:
                    acc["last"] = entry["last"]
    for acc in meter_acc.values():
        entry, count = acc["entry"], acc["count"]
        meter = out.meter(
            entry["name"],
            alpha_short=entry["alpha_short"],
            alpha_long=entry["alpha_long"],
            **entry["labels"],
        )
        with meter._lock:
            meter._short = acc["short"] / count if count else 0.0
            meter._long = acc["long"] / count if count else 0.0
            meter._count = count
            meter._last = acc["last"]
    return out


class FleetView:
    """Supervisor-side live view: one registry per worker + aggregates.

    :meth:`apply` merges a worker's delta into that worker's registry
    (sequence-guarded per worker incarnation); :meth:`aggregate`
    combines every worker registry — plus any extra registries, e.g.
    the supervisor's own — into one fleet registry on demand.
    """

    def __init__(self) -> None:
        self._workers: dict[int, MetricsRegistry] = {}
        self._applied: dict[tuple[int, int], int] = {}
        self.n_deltas = 0
        self.n_replayed = 0

    def apply(self, delta: TelemetryDelta) -> bool:
        """Merge one delta; returns False for an already-applied seq."""
        incarnation = (delta.worker_id, delta.pid)
        if delta.seq <= self._applied.get(incarnation, 0):
            self.n_replayed += 1
            return False
        self._applied[incarnation] = delta.seq
        registry = self._workers.get(delta.worker_id)
        if registry is None:
            registry = self._workers[delta.worker_id] = MetricsRegistry()
        registry.merge(delta.metrics)
        self.n_deltas += 1
        return True

    def worker_ids(self) -> list[int]:
        return sorted(self._workers)

    def worker(self, worker_id: int) -> MetricsRegistry:
        """That worker's accumulated registry (KeyError if never heard)."""
        return self._workers[worker_id]

    def aggregate(self, *extra_registries) -> MetricsRegistry:
        """Fleet-level registry: every worker plus ``extra_registries``."""
        members = [self._workers[w] for w in self.worker_ids()]
        members.extend(extra_registries)
        return aggregate_registries(members)

    def snapshot(self) -> dict:
        """JSON-ready per-worker and aggregate metric views."""
        return {
            "n_deltas": self.n_deltas,
            "workers": {
                str(wid): self._workers[wid].snapshot()
                for wid in self.worker_ids()
            },
            "aggregate": self.aggregate().snapshot(),
        }

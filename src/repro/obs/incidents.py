"""Alert-triggered forensic capture: correlated incident bundles.

When an alert fires, the state that explains it — the metric values
that breached, the minutes of history leading up to the breach, the
event-log tail, the per-worker flight recorders, the traces in flight
— is exactly the state the next supervision cycle overwrites.  An
:class:`IncidentRecorder` sits on the alert engine's fired/resolved
transitions and freezes that state to disk *at the moment of firing*,
so a 3am page comes with its own evidence attached.

One bundle per rule per firing episode: the first ``fired``
transition captures, every cycle the rule stays breached is
deduplicated, and the dedup latch clears on ``resolved`` so a relapse
captures again (subject to a per-rule ``min_interval_s`` rate limit
and a global ``max_incidents`` cap — a flapping rule must not fill
the disk).

A bundle is a directory ``incidents/<utc-ts>-<rule>/``::

    manifest.json        rule, level, breached value/threshold,
                         capture time, trace ids, file inventory
    history.jsonl        last N minutes of related series (one
                         range() result per line)
    events.jsonl         the event-log ring tail (same record shape
                         as the service event log)
    flight/worker-N.json per-worker flight-recorder snapshots
    profile.collapsed    optional short CPU profile (profile_s > 0)

Publication is atomic: everything is staged in a dot-prefixed temp
directory (manifest written last) and renamed into place, so an
observer never sees a half-written bundle — the same contract as
every other artifact this repo writes.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "IncidentConfig",
    "IncidentRecorder",
]

# Series captured in every bundle alongside the firing rule's own
# metric — the service-level signals any incident needs for context.
CORE_SERIES = (
    "service_requests_total",
    "service_request_p99_seconds",
    "service_error_ratio",
    "service_shards_unhealthy",
    "service_shard_respawns_total",
    "service_replicas_syncing",
    "service_hints_held",
    "stream_shed_ratio",
    "stream_queue_depth",
    "ingest_rejections_total",
)


@dataclass(frozen=True)
class IncidentConfig:
    """Where and how eagerly to capture.

    Attributes:
        dir: bundle root; ``incidents/<ts>-<rule>/`` appears inside.
        history_window_s: how many seconds of history each related
            series contributes to ``history.jsonl``.
        min_interval_s: per-rule floor between captures — a rule that
            flaps faster than this is recorded once per interval.
        max_incidents: global cap on bundles per recorder lifetime.
        max_series: cap on related series per bundle.
        max_trace_ids: cap on trace ids listed in the manifest.
        profile_s: seconds of CPU profile to capture into the bundle
            (0 disables — profiling blocks the supervision thread for
            the duration, so it is opt-in).
    """

    dir: str | Path = "incidents"
    history_window_s: float = 600.0
    min_interval_s: float = 30.0
    max_incidents: int = 32
    max_series: int = 32
    max_trace_ids: int = 64
    profile_s: float = 0.0

    def __post_init__(self) -> None:
        if self.history_window_s <= 0:
            raise ValueError("history_window_s must be positive")
        if self.min_interval_s < 0:
            raise ValueError("min_interval_s must be >= 0")
        for name in ("max_incidents", "max_series", "max_trace_ids"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be positive")
        if self.profile_s < 0:
            raise ValueError("profile_s must be >= 0")


class IncidentRecorder:
    """Captures one correlated bundle per alert-firing episode.

    Driven by the supervision loop: ``observe(transitions, ...)``
    once per cycle with whatever the alert engine returned.  All
    inputs are optional — a recorder with no history, no ring, and no
    flights still writes a useful manifest.

    Single-threaded by design (only the supervision loop calls it),
    so it carries no lock.
    """

    def __init__(self, config: IncidentConfig, history=None,
                 ring=None, events=None, clock=time.time) -> None:
        self.config = config
        self.history = history
        self.ring = ring
        self.events = events
        self.clock = clock
        self.n_captured = 0
        self.n_suppressed = 0
        self._firing: set[str] = set()
        self._last_capture: dict[str, float] = {}

    def observe(self, transitions, flights=None, registry=None,
                now: float | None = None) -> list[Path]:
        """Process one cycle's alert transitions; returns new bundles.

        ``transitions`` is the alert engine's list of
        ``(rule, fired, value)``-shaped objects (anything with
        ``.rule``/``.fired``/``.value``/``.level``/``.threshold``/
        ``.description`` attributes, or the engine's own transition
        tuples).  ``flights`` maps worker id → FlightRecorder.
        """
        captured: list[Path] = []
        for tr in transitions:
            if not tr.fired:
                # Resolved: clear the dedup latch so a relapse can
                # capture again.
                self._firing.discard(tr.rule)
                continue
            if tr.rule in self._firing:
                continue
            self._firing.add(tr.rule)
            t = self.clock() if now is None else now
            last = self._last_capture.get(tr.rule)
            if last is not None and t - last < self.config.min_interval_s:
                self.n_suppressed += 1
                continue
            if self.n_captured >= self.config.max_incidents:
                self.n_suppressed += 1
                continue
            self._last_capture[tr.rule] = t
            path = self._capture(tr, flights or {}, registry, t)
            if path is not None:
                captured.append(path)
        return captured

    # -- capture -----------------------------------------------------------

    def _capture(self, transition, flights, registry,
                 t: float) -> Path | None:
        base = Path(self.config.dir)
        base.mkdir(parents=True, exist_ok=True)
        stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime(t))
        name = f"{stamp}-{transition.rule}"
        final = base / name
        n = 2
        while final.exists():
            final = base / f"{name}-{n}"
            n += 1
        tmp = base / f".tmp-{final.name}"
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir(parents=True)
        try:
            files = []
            tail = self._event_tail()
            files.append(self._write_events(tmp, tail))
            files.extend(self._write_history(tmp, transition))
            files.extend(self._write_flights(tmp, flights))
            files.extend(self._write_metrics(tmp, registry))
            files.extend(self._write_profile(tmp))
            manifest = {
                "kind": "incident",
                "version": 1,
                "rule": transition.rule,
                "level": getattr(transition, "level", None),
                "value": getattr(transition, "value", None),
                "threshold": getattr(transition, "threshold", None),
                "description": getattr(transition, "description", None),
                "captured_unix": t,
                "captured_utc": stamp,
                "trace_ids": self._trace_ids(tail),
                "n_events": len(tail),
                "files": sorted(f for f in files if f),
            }
            _write_json(tmp / "manifest.json", manifest)
            os.replace(tmp, final)
        except Exception:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        self.n_captured += 1
        if self.events is not None:
            self.events.warning(
                "incident.captured",
                rule=transition.rule,
                path=str(final),
                value=getattr(transition, "value", None),
            )
        return final

    def _event_tail(self) -> list[dict]:
        if self.ring is None:
            return []
        return self.ring.snapshot()["events"]

    def _trace_ids(self, tail: list[dict]) -> list[str]:
        seen: dict[str, None] = {}
        for record in tail:
            trace_id = record.get("trace_id")
            if trace_id:
                seen[trace_id] = None
        return list(seen)[-self.config.max_trace_ids:]

    def _write_events(self, tmp: Path, tail: list[dict]) -> str:
        lines = [json.dumps(r, sort_keys=True, default=str)
                 for r in tail]
        (tmp / "events.jsonl").write_text(
            "\n".join(lines) + ("\n" if lines else ""), encoding="utf-8"
        )
        return "events.jsonl"

    def _related_series(self, transition) -> list[str]:
        """The firing rule's own series first, core signals after."""
        if self.history is None:
            return []
        rule_metric = getattr(transition, "metric", None)
        catalog = self.history.series()
        keys = []
        for entry in catalog:
            if rule_metric and entry["name"] == rule_metric:
                keys.append(entry["series"])
        for entry in catalog:
            if entry["name"] in CORE_SERIES and entry["series"] not in keys:
                keys.append(entry["series"])
        return keys[: self.config.max_series]

    def _write_history(self, tmp: Path, transition) -> list[str]:
        keys = self._related_series(transition)
        if not keys:
            return []
        lines = []
        for key in keys:
            window = self.history.range(
                key, self.config.history_window_s
            )
            lines.append(json.dumps(window, sort_keys=True))
        (tmp / "history.jsonl").write_text(
            "\n".join(lines) + "\n", encoding="utf-8"
        )
        return ["history.jsonl"]

    def _write_flights(self, tmp: Path, flights) -> list[str]:
        if not flights:
            return []
        out = []
        flight_dir = tmp / "flight"
        flight_dir.mkdir()
        for worker_id in sorted(flights):
            snapshot = flights[worker_id].snapshot()
            rel = f"flight/worker-{worker_id}.json"
            _write_json(tmp / rel, snapshot)
            out.append(rel)
        return out

    def _write_metrics(self, tmp: Path, registry) -> list[str]:
        if registry is None:
            return []
        _write_json(tmp / "metrics.json", registry.snapshot())
        return ["metrics.json"]

    def _write_profile(self, tmp: Path) -> list[str]:
        if self.config.profile_s <= 0:
            return []
        from repro.obs.profiler import profile_for

        try:
            collapsed = profile_for(self.config.profile_s)
        except Exception:
            # A profiler failure must never kill the capture that
            # needed it; the bundle just ships without a profile.
            return []
        (tmp / "profile.collapsed").write_text(
            collapsed, encoding="utf-8"
        )
        return ["profile.collapsed"]


def _write_json(path: Path, payload) -> None:
    path.write_text(
        json.dumps(payload, sort_keys=True, indent=2, default=str) + "\n",
        encoding="utf-8",
    )

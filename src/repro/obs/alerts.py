"""Declarative alert rules evaluated over a metrics registry.

An :class:`AlertRule` names a metric, a condition, and a severity; an
:class:`AlertEngine` evaluates a rule set against any registry (the
supervisor's own, or a :class:`~repro.obs.distributed.FleetView`
aggregate) and turns threshold breaches into typed
:class:`AlertEvent`\\ s with hysteresis:

* a rule must breach ``for_cycles`` *consecutive* evaluations before it
  fires (1 = immediate), so a single noisy sample doesn't page anyone;
* a firing rule emits exactly one ``alert.fired`` event until it clears,
  then one ``alert.resolved`` — state transitions, not level samples;
* firings are counted in ``alerts_fired_total{rule=...,level=...}`` and
  logged through the same structured event log as everything else, so
  alerts are correlated records, not a side channel.

Two rule kinds:

``threshold``
    Compare the metric's value (counter/gauge value, histogram count,
    meter ``rate_short``) against ``threshold`` with ``op``.  When
    several metrics match ``name`` + ``labels`` subset (e.g. a labeled
    counter family), counter/gauge/histogram values are *summed* before
    comparison.
``ewma_drift``
    For EWMA meters: fire when the fast view departs from the slow view
    by more than ``threshold`` (relative): ``|short − long| >
    threshold · max(|long|, drift_floor)``.  Requires ``min_count``
    samples first, so a meter still warming up cannot drift-fire.

A rule can also look *backwards*: setting ``window_s`` evaluates the
rule against a :class:`~repro.obs.history.MetricsHistory` window
instead of the instantaneous registry value — aggregated by
``window_agg`` (``mean``/``max``/``min``/``last``/``delta``/``rate``)
or, with ``trend`` set, as a signed change over the window
(``rising`` compares the window delta against ``threshold``,
``falling`` the negated delta), so "shed ratio has been climbing for
ten minutes" is one declarative rule, not a monitoring script.
Windowed rules are skipped when the engine is given no history.

Rules whose metric does not exist yet are skipped, not errored — a rule
set can describe metrics that only appear under fault conditions.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field

from repro.obs.events import NULL_EVENT_LOG
from repro.obs.registry import Counter, EwmaMeter, Gauge, Histogram

__all__ = [
    "AlertEngine",
    "AlertEvent",
    "AlertRule",
    "default_pool_rules",
    "default_service_rules",
]

_OPS = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
    "==": operator.eq,
    "!=": operator.ne,
}

_LEVELS = ("warning", "critical")

_LOG_LEVEL = {"warning": "warning", "critical": "error"}

_WINDOW_AGGS = ("min", "max", "mean", "last", "delta", "rate")

_TRENDS = ("rising", "falling")


@dataclass(frozen=True)
class AlertRule:
    """One declarative rule over one metric (family).

    Attributes:
        name: unique rule identifier (appears in events and counters).
        metric: metric name to evaluate.
        labels: label subset a metric must carry to match (empty
            matches every label set of that name).
        kind: ``"threshold"`` or ``"ewma_drift"``.
        op: comparison for threshold rules.
        threshold: threshold value (or relative drift for drift rules).
        for_cycles: consecutive breaching evaluations before firing.
        min_count: drift rules only — meter samples required before the
            rule is eligible.
        drift_floor: drift rules only — denominator floor that keeps
            the relative drift finite around zero.
        level: ``"warning"`` or ``"critical"``.
        description: operator-facing one-liner, carried on events.
        window_s: > 0 makes this a *history* rule — the value compared
            comes from a :class:`~repro.obs.history.MetricsHistory`
            window of this many seconds instead of the live registry.
        window_agg: how the window collapses to one number
            (threshold-kind history rules only).
        trend: ``"rising"``/``"falling"`` — compare the signed window
            delta against ``threshold`` instead of ``window_agg``.
    """

    name: str
    metric: str
    labels: dict = field(default_factory=dict)
    kind: str = "threshold"
    op: str = ">"
    threshold: float = 0.0
    for_cycles: int = 1
    min_count: int = 2
    drift_floor: float = 1e-9
    level: str = "warning"
    description: str = ""
    window_s: float = 0.0
    window_agg: str = "mean"
    trend: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("threshold", "ewma_drift"):
            raise ValueError(f"unknown rule kind {self.kind!r}")
        if self.op not in _OPS:
            raise ValueError(
                f"unknown op {self.op!r}; expected one of {sorted(_OPS)}"
            )
        if self.level not in _LEVELS:
            raise ValueError(
                f"unknown level {self.level!r}; expected one of {_LEVELS}"
            )
        if self.for_cycles < 1:
            raise ValueError("for_cycles must be at least 1")
        if self.min_count < 1:
            raise ValueError("min_count must be at least 1")
        if self.window_s < 0:
            raise ValueError("window_s must be >= 0")
        if self.window_agg not in _WINDOW_AGGS:
            raise ValueError(
                f"unknown window_agg {self.window_agg!r}; "
                f"expected one of {_WINDOW_AGGS}"
            )
        if self.trend is not None and self.trend not in _TRENDS:
            raise ValueError(
                f"unknown trend {self.trend!r}; expected one of {_TRENDS}"
            )
        if (self.window_s > 0 or self.trend is not None) and (
            self.kind != "threshold"
        ):
            raise ValueError("window/trend predicates require kind='threshold'")
        if self.trend is not None and self.window_s <= 0:
            raise ValueError("trend rules require window_s > 0")


@dataclass(frozen=True)
class AlertEvent:
    """One alert state transition (fired or resolved)."""

    rule: str
    metric: str
    level: str
    kind: str  # "fired" | "resolved"
    value: float
    threshold: float
    description: str = ""

    @property
    def fired(self) -> bool:
        return self.kind == "fired"


class _RuleState:
    __slots__ = ("consecutive", "firing", "n_fired", "last_value")

    def __init__(self) -> None:
        self.consecutive = 0
        self.firing = False
        self.n_fired = 0
        self.last_value: float | None = None


class AlertEngine:
    """Evaluate a rule set against a registry; emit transition events.

    ``events`` is an :class:`~repro.obs.events.EventLogger` (alert
    transitions become ``alert.fired`` / ``alert.resolved`` records);
    ``metrics`` counts firings per rule into the supervising registry.
    """

    def __init__(self, rules, events=None, metrics=None) -> None:
        self.rules = tuple(rules)
        names = [r.name for r in self.rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names in {names}")
        self.events = NULL_EVENT_LOG if events is None else events
        self._metrics = metrics
        self._states = {r.name: _RuleState() for r in self.rules}

    @property
    def n_fired(self) -> int:
        """Total firings across all rules since construction."""
        return sum(s.n_fired for s in self._states.values())

    def firing(self) -> list[str]:
        """Names of rules currently in the firing state."""
        return [
            r.name for r in self.rules if self._states[r.name].firing
        ]

    def evaluate(self, registry, history=None) -> list[AlertEvent]:
        """One evaluation cycle; returns the transitions it produced.

        ``history`` is an optional
        :class:`~repro.obs.history.MetricsHistory`; rules with
        ``window_s`` set evaluate against it (and are skipped — not
        errored — when no history is wired in).
        """
        transitions: list[AlertEvent] = []
        for rule in self.rules:
            if rule.window_s > 0:
                value = self._window_value(rule, history)
            else:
                value = self._value(rule, registry)
            state = self._states[rule.name]
            if value is None:
                continue
            state.last_value = value
            breached = self._breached(rule, value)
            state.consecutive = state.consecutive + 1 if breached else 0
            if breached and not state.firing and (
                state.consecutive >= rule.for_cycles
            ):
                state.firing = True
                state.n_fired += 1
                transitions.append(self._transition(rule, "fired", value))
            elif not breached and state.firing:
                state.firing = False
                transitions.append(self._transition(rule, "resolved", value))
        return transitions

    def _transition(self, rule: AlertRule, kind: str, value: float):
        event = AlertEvent(
            rule=rule.name,
            metric=rule.metric,
            level=rule.level,
            kind=kind,
            value=value,
            threshold=rule.threshold,
            description=rule.description,
        )
        self.events.log(
            _LOG_LEVEL[rule.level] if kind == "fired" else "info",
            f"alert.{kind}",
            rule=rule.name,
            metric=rule.metric,
            alert_level=rule.level,
            value=value,
            threshold=rule.threshold,
            description=rule.description,
        )
        if self._metrics is not None and kind == "fired":
            self._metrics.counter(
                "alerts_fired_total", rule=rule.name, level=rule.level
            ).inc()
        return event

    def _window_value(self, rule: AlertRule, history) -> float | None:
        """A history rule's comparison value (None skips the rule)."""
        if history is None:
            return None
        if rule.trend is not None:
            delta = history.window_aggregate(
                rule.metric, rule.labels, rule.window_s, "delta"
            )
            if delta is None:
                return None
            return delta if rule.trend == "rising" else -delta
        return history.window_aggregate(
            rule.metric, rule.labels, rule.window_s, rule.window_agg
        )

    def _value(self, rule: AlertRule, registry) -> float | None:
        matched = [
            m for m in registry.collect()
            if m.name == rule.metric
            and all(m.labels.get(k) == str(v) for k, v in rule.labels.items())
        ]
        if not matched:
            return None
        if rule.kind == "ewma_drift":
            meters = [m for m in matched if isinstance(m, EwmaMeter)]
            if not meters:
                return None
            meter = meters[0]
            if meter.count < rule.min_count:
                return None
            denom = max(abs(meter.rate_long), rule.drift_floor)
            return abs(meter.rate_short - meter.rate_long) / denom
        total = 0.0
        for m in matched:
            if isinstance(m, (Counter, Gauge)):
                total += m.value
            elif isinstance(m, Histogram):
                total += m.count
            elif isinstance(m, EwmaMeter):
                total += m.rate_short
        return total

    def _breached(self, rule: AlertRule, value: float) -> bool:
        if rule.kind == "ewma_drift":
            return value > rule.threshold
        return _OPS[rule.op](value, rule.threshold)


def default_pool_rules(
    max_heartbeat_age_s: float | None = None,
    max_failure_ratio: float = 0.5,
    max_journal_lag: float = 10_000.0,
    max_shed_ratio: float = 0.05,
    max_ingest_queue_depth: float | None = None,
) -> tuple[AlertRule, ...]:
    """The supervised-pool rule set the ISSUE's runbook starts from.

    Covers the fleet pathologies the supervisor can see coming: blocks
    failing at a rate that suggests environment sickness, worker
    heartbeats aging toward the kill deadline, (when a journal's
    metrics are installed) the write-ahead journal lagging its replay,
    and (when an admission controller's metrics are installed) the
    ingest path shedding more than ``max_shed_ratio`` of offered
    observations or holding a queue past ``max_ingest_queue_depth``.
    Quarantines and breaker trips alert unconditionally — those are
    never routine.
    """
    rules = [
        AlertRule(
            name="pool-block-failure-ratio",
            metric="pool_block_failure_ratio",
            op=">",
            threshold=max_failure_ratio,
            for_cycles=2,
            level="warning",
            description=(
                f"more than {max_failure_ratio:.0%} of completed blocks "
                "are failing"
            ),
        ),
        AlertRule(
            name="pool-block-quarantined",
            metric="pool_blocks_quarantined_total",
            op=">",
            threshold=0,
            level="critical",
            description="at least one poison block was quarantined",
        ),
        AlertRule(
            name="pool-breaker-tripped",
            metric="pool_breaker_trips_total",
            op=">",
            threshold=0,
            level="critical",
            description="the circuit breaker tripped",
        ),
        AlertRule(
            name="journal-lag",
            metric="journal_appends_total",
            op=">",
            threshold=max_journal_lag,
            level="warning",
            description=(
                "journal has grown past its expected replay budget"
            ),
        ),
        AlertRule(
            name="stream-shed-ratio",
            metric="stream_shed_ratio",
            op=">",
            threshold=max_shed_ratio,
            for_cycles=2,
            level="critical",
            description=(
                f"overload shedder is dropping more than "
                f"{max_shed_ratio:.0%} of offered observations"
            ),
        ),
    ]
    if max_ingest_queue_depth is not None:
        rules.append(
            AlertRule(
                name="stream-ingest-queue-depth",
                metric="stream_ingest_queue_depth",
                op=">",
                threshold=max_ingest_queue_depth,
                for_cycles=2,
                level="warning",
                description=(
                    f"ingest queue has stayed above "
                    f"{max_ingest_queue_depth:g} observations"
                ),
            )
        )
    if max_heartbeat_age_s is not None:
        rules.append(
            AlertRule(
                name="pool-heartbeat-age",
                metric="pool_heartbeat_age_seconds",
                op=">",
                threshold=max_heartbeat_age_s,
                level="warning",
                description=(
                    f"a busy worker has not heartbeaten for "
                    f"{max_heartbeat_age_s:g}s"
                ),
            )
        )
    return tuple(rules)


def default_service_rules(
    max_respawns: float = 3.0,
    max_rejected: float = 10_000.0,
    max_shed_ratio: float = 0.05,
    max_request_p99_s: float = 1.0,
    max_error_ratio: float = 0.05,
    max_degraded: float = 0.0,
    max_hint_backlog: float = 50_000.0,
) -> tuple[AlertRule, ...]:
    """The always-on service's rule set (``repro.serve``).

    Evaluated by the :class:`~repro.serve.runner.ServiceRunner`'s
    supervision thread over the fleet-aggregate registry each cycle.
    A shard briefly out of the ring is routine (the supervisor is
    respawning it); a shard *staying* out, a respawn streak, or a
    sustained rejection/shed rate is an operator page.

    Two replication rules watch the hinted-handoff machinery: writes
    landing on fewer than R replicas (quorum shrink —
    ``service_ingest_degraded_total`` past ``max_degraded``) and the
    hint backlog a dead replica is owed (``service_hint_backlog`` past
    ``max_hint_backlog`` — the rejoin sync is losing the race with
    offered load, or nothing is rejoining).  Both read zero forever at
    ``replication=1``.

    The two latency-SLO rules ride the gauges the runner derives each
    supervision cycle from its request telemetry:
    ``service_request_p99_seconds`` (the p99 of the per-route request
    histograms, via :func:`~repro.obs.registry.histogram_quantile`)
    and ``service_error_ratio`` (an EWMA meter fed the per-cycle 5xx
    ratio — its fast view is the burn rate, so a sustained error
    plateau fires while one unlucky cycle decays away).

    One rule is history-aware: ``service-shed-ratio-rising`` watches
    the shed ratio's *trend* over a 10-minute window (firing while the
    instantaneous ``service-shed-ratio`` threshold may still look
    acceptable), and silently skips when the runner has no
    :class:`~repro.obs.history.MetricsHistory` wired in.
    """
    return (
        AlertRule(
            name="service-shard-unhealthy",
            metric="service_shards_unhealthy",
            op=">",
            threshold=0,
            for_cycles=3,
            level="warning",
            description=(
                "a shard has been out of the ring for several "
                "supervision cycles"
            ),
        ),
        AlertRule(
            name="service-respawn-storm",
            metric="service_shard_respawns_total",
            op=">",
            threshold=max_respawns,
            level="critical",
            description=(
                f"shards have been respawned more than "
                f"{max_respawns:g} times — likely crash-looping"
            ),
        ),
        AlertRule(
            name="service-ingest-rejections",
            metric="service_ingest_rejected_total",
            op=">",
            threshold=max_rejected,
            for_cycles=2,
            level="warning",
            description=(
                f"more than {max_rejected:g} observations rejected "
                "(backpressure or dead owners)"
            ),
        ),
        AlertRule(
            name="service-shed-ratio",
            metric="stream_shed_ratio",
            op=">",
            threshold=max_shed_ratio,
            for_cycles=2,
            level="critical",
            description=(
                f"shard admission queues are shedding more than "
                f"{max_shed_ratio:.0%} of offered observations"
            ),
        ),
        AlertRule(
            name="service-shed-ratio-rising",
            metric="stream_shed_ratio",
            op=">",
            threshold=0.01,
            window_s=600.0,
            trend="rising",
            for_cycles=2,
            level="warning",
            description=(
                "shed ratio has risen over the last 10 minutes — "
                "overload is building, not transient"
            ),
        ),
        AlertRule(
            name="service-request-p99",
            metric="service_request_p99_seconds",
            op=">",
            threshold=max_request_p99_s,
            for_cycles=3,
            level="warning",
            description=(
                f"request p99 latency has stayed above "
                f"{max_request_p99_s:g}s for several supervision cycles"
            ),
        ),
        AlertRule(
            name="service-error-ratio",
            metric="service_error_ratio",
            op=">",
            threshold=max_error_ratio,
            for_cycles=2,
            level="critical",
            description=(
                f"more than {max_error_ratio:.0%} of requests are "
                "failing (5xx burn rate over the EWMA fast view)"
            ),
        ),
        AlertRule(
            name="service-quorum-shrink",
            metric="service_ingest_degraded_total",
            op=">",
            threshold=max_degraded,
            for_cycles=2,
            level="critical",
            description=(
                "writes are landing on fewer than the configured "
                "replica count (quorum shrunk; hinted handoff active)"
            ),
        ),
        AlertRule(
            name="service-hint-backlog",
            metric="service_hint_backlog",
            op=">",
            threshold=max_hint_backlog,
            for_cycles=2,
            level="warning",
            description=(
                f"a dead replica is owed more than "
                f"{max_hint_backlog:g} hinted observations"
            ),
        ),
    )

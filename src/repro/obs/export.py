"""Exporters: Prometheus text, JSON snapshots, and per-run manifests.

Three consumers, three formats:

* :func:`prometheus_text` — the standard text exposition format, for
  scraping a long-lived process (counters/gauges verbatim, histograms as
  cumulative ``_bucket{le=...}`` series, meters as two derived gauges).
* :func:`json_snapshot` / :func:`write_json_snapshot` — a plain-data
  dump of every metric plus optional stage timings; CI uploads this as
  an artifact so a regression's metrics are attached to the failing run.
* :class:`RunManifest` — the "why did this run do what it did" record: a
  batch or streaming campaign's seeds, fault plan, quality gates, stage
  timings, and final metric values, serialized as JSON next to the
  checkpoint it describes.
* :func:`sparkline_svg` — a dependency-free inline-SVG sparkline over
  history points, the rendering primitive behind the service's
  ``/dashboard`` page (server-side, no scripts, styled by CSS custom
  properties so light/dark theming stays in the embedding page).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.registry import (
    Counter,
    EwmaMeter,
    Gauge,
    Histogram,
    render_labels,
)

__all__ = [
    "RunManifest",
    "json_snapshot",
    "prometheus_text",
    "sparkline_svg",
    "write_json_snapshot",
]


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry) -> str:
    """Render a registry in the Prometheus text exposition format."""
    by_name: dict[str, list] = {}
    for metric in registry.collect():
        by_name.setdefault(metric.name, []).append(metric)

    lines: list[str] = []
    for name in sorted(by_name):
        group = by_name[name]
        kind = group[0].kind
        if kind == "meter":
            # Meters decompose into two gauges; emit them grouped.
            for suffix, attr in (("rate_short", "rate_short"),
                                 ("rate_long", "rate_long"),
                                 ("updates_total", "count")):
                sub = f"{name}_{suffix}"
                lines.append(
                    f"# TYPE {sub} "
                    f"{'counter' if suffix == 'updates_total' else 'gauge'}"
                )
                for metric in group:
                    labels = render_labels(metric.labels)
                    lines.append(
                        f"{sub}{labels} "
                        f"{_format_value(getattr(metric, attr))}"
                    )
            continue
        lines.append(f"# TYPE {name} {kind}")
        for metric in group:
            labels = render_labels(metric.labels)
            if isinstance(metric, (Counter, Gauge)):
                lines.append(f"{name}{labels} {_format_value(metric.value)}")
            elif isinstance(metric, Histogram):
                for edge, cumulative in metric.cumulative_buckets():
                    le = dict(metric.labels)
                    le["le"] = _format_value(edge)
                    lines.append(
                        f"{name}_bucket{render_labels(le)} {cumulative}"
                    )
                lines.append(
                    f"{name}_sum{labels} {_format_value(metric.sum)}"
                )
                lines.append(f"{name}_count{labels} {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def json_snapshot(registry, tracer=None) -> dict:
    """Plain-data snapshot of a registry (and optionally stage timings)."""
    snap = {"metrics": registry.snapshot()}
    if tracer is not None:
        snap["stages"] = tracer.stage_timings()
    return snap


def write_json_snapshot(path, registry, tracer=None, indent: int = 2) -> Path:
    """Serialize :func:`json_snapshot` to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(json_snapshot(registry, tracer), indent=indent,
                               sort_keys=True) + "\n")
    return path


@dataclass
class RunManifest:
    """Everything needed to explain (and re-run) one campaign.

    Attributes:
        kind: what produced it (``"batch"``, ``"stream"``, free-form).
        seed: the run's root seed (None when not applicable).
        n_blocks: blocks the run covered.
        fault_plan: human-readable fault scenario (``FaultPlan.describe``).
        quality_gates: the classifier's refusal thresholds, as a dict.
        stage_timings: per-stage wall-time aggregates from the tracer.
        metrics: final registry snapshot.
        extra: free-form additions (dataset name, git rev, ...).
        created_unix: wall-clock creation time (``time.time()``).
    """

    kind: str
    seed: int | None = None
    n_blocks: int | None = None
    fault_plan: str | None = None
    quality_gates: dict = field(default_factory=dict)
    stage_timings: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)
    created_unix: float = 0.0

    @classmethod
    def capture(
        cls,
        kind: str,
        registry=None,
        tracer=None,
        seed: int | None = None,
        n_blocks: int | None = None,
        fault_plan: str | None = None,
        quality_gates: dict | None = None,
        **extra,
    ) -> "RunManifest":
        """Snapshot the current registry/tracer state into a manifest."""
        return cls(
            kind=kind,
            seed=seed,
            n_blocks=n_blocks,
            fault_plan=fault_plan,
            quality_gates=dict(quality_gates or {}),
            stage_timings=tracer.stage_timings() if tracer is not None else {},
            metrics=registry.snapshot() if registry is not None else {},
            extra=extra,
            created_unix=time.time(),
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "seed": self.seed,
            "n_blocks": self.n_blocks,
            "fault_plan": self.fault_plan,
            "quality_gates": self.quality_gates,
            "stage_timings": self.stage_timings,
            "metrics": self.metrics,
            "extra": self.extra,
            "created_unix": self.created_unix,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path) -> "RunManifest":
        data = json.loads(Path(path).read_text())
        return cls(**data)


def sparkline_svg(
    points,
    width: int = 240,
    height: int = 48,
    value_key: str = "mean",
    band: bool = True,
) -> str:
    """Render history points as one inline SVG sparkline.

    ``points`` is a :meth:`~repro.obs.history.MetricsHistory.range`
    result's point list (``{t, min, max, mean, last, count}``).  The
    main trace is a 2px polyline of ``value_key``; when ``band`` is
    set and any point's min/max straddle its mean (i.e. the window
    includes rollup buckets), a translucent min→max band is drawn
    behind it so compacted spikes stay visible.

    Colors come from CSS custom properties (``--series-1``,
    ``--muted``) so the embedding page owns light/dark theming; the
    SVG itself is theme-neutral and dependency-free.
    """
    points = [
        p for p in points
        if _finite(p.get(value_key)) and _finite(p.get("t"))
    ]
    if len(points) < 2:
        return (
            f'<svg class="spark" viewBox="0 0 {width} {height}" '
            f'width="{width}" height="{height}" role="img" '
            f'aria-label="no data">'
            f'<line x1="0" y1="{height / 2:g}" x2="{width}" '
            f'y2="{height / 2:g}" stroke="var(--muted, #898781)" '
            'stroke-width="1" stroke-dasharray="2 4"/></svg>'
        )
    t0 = points[0]["t"]
    t1 = points[-1]["t"]
    span = (t1 - t0) or 1.0
    lo = min(min(p["min"] for p in points), 0.0)
    hi = max(p["max"] for p in points)
    if hi == lo:
        hi = lo + 1.0
    pad = 3.0
    usable = height - 2 * pad

    def x(t: float) -> float:
        return (t - t0) / span * width

    def y(v: float) -> float:
        return pad + (1.0 - (v - lo) / (hi - lo)) * usable

    def fmt(v: float) -> str:
        return f"{v:.2f}".rstrip("0").rstrip(".") or "0"

    trace = " ".join(
        f"{fmt(x(p['t']))},{fmt(y(p[value_key]))}" for p in points
    )
    parts = [
        f'<svg class="spark" viewBox="0 0 {width} {height}" '
        f'width="{width}" height="{height}" role="img" '
        f'aria-label="sparkline, latest {points[-1][value_key]:g}">'
    ]
    if band and any(p["max"] > p["min"] for p in points):
        upper = [f"{fmt(x(p['t']))},{fmt(y(p['max']))}" for p in points]
        lower = [
            f"{fmt(x(p['t']))},{fmt(y(p['min']))}"
            for p in reversed(points)
        ]
        parts.append(
            f'<polygon points="{" ".join(upper + lower)}" '
            'fill="var(--series-1, #2a78d6)" fill-opacity="0.15" '
            'stroke="none"/>'
        )
    parts.append(
        f'<polyline points="{trace}" fill="none" '
        'stroke="var(--series-1, #2a78d6)" stroke-width="2" '
        'stroke-linejoin="round" stroke-linecap="round"/>'
    )
    parts.append("</svg>")
    return "".join(parts)


def _finite(value) -> bool:
    return (
        isinstance(value, (int, float))
        and value == value
        and value not in (float("inf"), float("-inf"))
    )

"""Structured, leveled, JSON-lines event logging + the flight recorder.

Metrics say *how much*; spans say *how long*; this module says *what
happened*.  An :class:`EventLogger` writes one JSON object per line,
each record carrying a wall-clock timestamp, a level, an event name,
and whatever correlation fields the caller bound (``run_id``,
``worker_id``, ``block_id``) or stamped per call.  When a tracer is
attached, every record is automatically stamped with the current
span's ``trace_id``/``span_id``, so a line in the log resolves to a
node in the span tree — the property the pool-telemetry tests assert.

Three design rules keep it pipeline-safe:

* **null by default** — :data:`NULL_EVENT_LOG` has the full interface
  and does nothing; instrumented code logs unconditionally and the
  bound logger decides the cost;
* **binding, not formatting** — :meth:`EventLogger.bind` returns a
  child logger sharing the same sink with extra fields baked in, so a
  supervisor binds ``worker_id`` once instead of threading it through
  every call site;
* **rings see everything** — a logger can tee records into a
  :class:`FlightRecorder` (a bounded ring buffer).  The ring captures
  *below-threshold* records too: the black box wants the debug chatter
  from just before the crash even when the log file only keeps info+.

:class:`FlightRecorder` additionally holds recent metric samples and
dumps the whole box atomically (via :func:`repro.datasets.io.
atomic_write_text`) when something dies — every chaos failure then
comes with its last seconds of history.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path

__all__ = [
    "EventLogger",
    "FlightRecorder",
    "LEVELS",
    "NULL_EVENT_LOG",
    "NullEventLogger",
    "read_event_log",
]

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class _Sink:
    """The shared, locked write side of one logger family."""

    __slots__ = ("lock", "handle", "owns_handle", "clock", "n_records")

    def __init__(self, sink, clock) -> None:
        self.lock = threading.Lock()
        self.clock = clock
        self.n_records = 0
        if sink is None:
            self.handle = None
            self.owns_handle = False
        elif hasattr(sink, "write"):
            self.handle = sink
            self.owns_handle = False
        else:
            path = Path(sink)
            path.parent.mkdir(parents=True, exist_ok=True)
            self.handle = open(path, "a", encoding="utf-8")
            self.owns_handle = True

    def write(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        with self.lock:
            self.n_records += 1
            if self.handle is not None:
                self.handle.write(line + "\n")
                # Flush per record: the log must be tail-able while the
                # run is live, and must survive the process dying next.
                self.handle.flush()

    def close(self) -> None:
        with self.lock:
            if self.owns_handle and self.handle is not None:
                self.handle.close()
                self.handle = None


class EventLogger:
    """Leveled JSONL logger with bound fields and optional ring tee.

    ``sink`` is a path (opened append), an open file-like, or ``None``
    (ring/counter only).  ``level`` is the sink threshold; rings attached
    via ``ring`` (or :meth:`bind`) receive records at every level.
    ``tracer`` enables automatic ``trace_id``/``span_id`` stamping from
    the tracer's current span.  Keyword ``bound`` fields are merged into
    every record (explicit per-call fields win).
    """

    enabled = True

    def __init__(
        self,
        sink=None,
        *,
        level: str = "info",
        ring=None,
        tracer=None,
        clock=time.time,
        _sink_state: _Sink | None = None,
        **bound,
    ) -> None:
        if level not in LEVELS:
            raise ValueError(
                f"unknown level {level!r}; expected one of {sorted(LEVELS)}"
            )
        self._sink = (
            _sink_state if _sink_state is not None else _Sink(sink, clock)
        )
        self._level_no = LEVELS[level]
        self._level = level
        self._rings = tuple(r for r in [ring] if r is not None)
        self._tracer = tracer
        self._bound = dict(bound)

    @property
    def n_records(self) -> int:
        """Records written to the sink (bound children share the count)."""
        return self._sink.n_records

    def bind(
        self, *, ring=None, level: str | None = None, tracer=None, **fields
    ) -> "EventLogger":
        """A child logger: same sink, extra bound fields/rings."""
        child = EventLogger(
            level=level if level is not None else self._level,
            tracer=tracer if tracer is not None else self._tracer,
            _sink_state=self._sink,
            **{**self._bound, **fields},
        )
        child._rings = self._rings + tuple(
            r for r in [ring] if r is not None
        )
        return child

    def log(self, level: str, event: str, **fields) -> None:
        level_no = LEVELS[level]
        to_sink = level_no >= self._level_no
        if not to_sink and not self._rings:
            return
        record = {
            "ts": self._sink.clock(),
            "level": level,
            "event": event,
            **self._bound,
            **fields,
        }
        if self._tracer is not None and "trace_id" not in record:
            ctx = self._tracer.current_context()
            if ctx is not None:
                record["trace_id"] = ctx.trace_id
                record["span_id"] = ctx.span_id
        for ring in self._rings:
            ring.append(record)
        if to_sink:
            self._sink.write(record)

    def emit(self, record: dict) -> None:
        """Write a pre-formed record (e.g. one shipped from a worker).

        The record keeps its own timestamp and correlation ids; bound
        fields are merged underneath it (the record wins), and level
        filtering and ring tees apply exactly as for :meth:`log`.
        """
        level_no = LEVELS.get(record.get("level"), LEVELS["info"])
        to_sink = level_no >= self._level_no
        if not to_sink and not self._rings:
            return
        if self._bound:
            record = {**self._bound, **record}
        for ring in self._rings:
            ring.append(record)
        if to_sink:
            self._sink.write(record)

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)

    def close(self) -> None:
        self._sink.close()

    def __enter__(self) -> "EventLogger":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class NullEventLogger:
    """Event logging off: full interface, no behaviour, no allocation."""

    enabled = False
    n_records = 0

    def bind(self, **fields) -> "NullEventLogger":
        return self

    def log(self, level: str, event: str, **fields) -> None:
        pass

    def emit(self, record: dict) -> None:
        pass

    def debug(self, event: str, **fields) -> None:
        pass

    def info(self, event: str, **fields) -> None:
        pass

    def warning(self, event: str, **fields) -> None:
        pass

    def error(self, event: str, **fields) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullEventLogger":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_EVENT_LOG = NullEventLogger()


def read_event_log(path) -> list[dict]:
    """Parse a JSONL event log; a torn final line is tolerated.

    A process killed mid-write can leave a truncated last line — that is
    damage to exactly one record, so everything before it is returned
    and the tail is dropped (same torn-tail semantics as the stream
    journal).  A bad line *followed by* good lines is real corruption
    and raises.
    """
    records: list[dict] = []
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break
            raise
    return records


class FlightRecorder:
    """Bounded black box: recent events + recent metric samples.

    ``append(record)`` is the ring interface :class:`EventLogger` tees
    into; :meth:`sample` stores an arbitrary plain-data payload on the
    metric ring (a registry snapshot, a worker's shipped delta, ...).
    Both rings evict oldest-first at their capacity, so memory is O(1)
    no matter how long the run.  :meth:`dump` serializes the whole
    recorder to disk atomically — called at crash points, hung-worker
    kills, and circuit breaks so the failure ships its own evidence.
    """

    def __init__(self, capacity: int = 256, metric_capacity: int = 64) -> None:
        if capacity < 1 or metric_capacity < 1:
            raise ValueError("flight recorder capacities must be positive")
        self.capacity = capacity
        self.metric_capacity = metric_capacity
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=capacity)
        self._samples: deque = deque(maxlen=metric_capacity)
        self.n_events_total = 0
        self.n_samples_total = 0
        self.n_dumps = 0

    def append(self, record: dict) -> None:
        with self._lock:
            self._events.append(record)
            self.n_events_total += 1

    def sample(self, payload: dict) -> None:
        with self._lock:
            self._samples.append(payload)
            self.n_samples_total += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "events": list(self._events),
                "metric_samples": list(self._samples),
                "n_events_total": self.n_events_total,
                "n_samples_total": self.n_samples_total,
            }

    def dump(self, path, reason: str = "", **context) -> Path:
        """Atomically write the black box to ``path``; returns the path."""
        from repro.datasets.io import atomic_write_text

        payload = {
            "reason": reason,
            "dumped_unix": time.time(),
            **context,
            **self.snapshot(),
        }
        text = json.dumps(payload, indent=2, sort_keys=True, default=str)
        out = atomic_write_text(path, text + "\n", kind="flight")
        self.n_dumps += 1
        return out

"""Sampling wall-clock profiler: collapsed stacks, flamegraph-ready.

Metrics say how much, spans say how long each *instrumented* stage
took — but when a latency SLO burns, the question is "where is the
wall time actually going *right now*", including in code nobody
thought to instrument.  That is a profiler's job, and a production
service needs one it can afford to leave reachable: a **sampling**
profiler observes the process from outside the hot path (a background
thread snapshots every thread's Python stack at a fixed interval via
``sys._current_frames``), so its cost is bounded by the sampling rate
no matter how hot the workload — the same <5% overhead contract the
metrics registry and event log already honour, gated by
``benchmarks/test_abl_profiler_overhead.py``.

Output is the *collapsed stack* format flamegraph tooling consumes
(one line per unique stack, root first, semicolon-separated, trailing
sample count)::

    MainThread;api.py:_dispatch;runner.py:ingest;shard.py:request 42

Each frame is ``file.py:function`` — function granularity, so stacks
aggregate across lines and the output stays compact.  The sampler
thread excludes itself; every other thread is sampled under its
thread name, so an idle executor pool shows up honestly as
``threading.py:wait`` rather than vanishing.

Usage::

    profiler = SamplingProfiler(interval_s=0.005)
    profiler.start()
    ...                       # run the suspect workload
    profiler.stop()
    print(profiler.collapsed())

or one-shot: ``collapsed = profile_for(1.0)`` — which is exactly what
``GET /debug/profile?seconds=N`` on the service API serves.
"""

from __future__ import annotations

import os
import sys
import threading
import time

__all__ = ["SamplingProfiler", "profile_for"]


class SamplingProfiler:
    """Thread-based stack sampler with start/stop and collapsed output.

    Attributes:
        interval_s: target wall-clock seconds between samples (the
            sampler sleeps this long between snapshots; a busy GIL can
            stretch it, never shrink it).
        max_depth: stack frames kept per sample, deepest-first —
            deeper tails are dropped so one pathological recursion
            cannot bloat every key.
        n_samples: snapshot rounds taken so far.
        n_stacks: total (thread, stack) observations recorded.
    """

    def __init__(self, interval_s: float = 0.01, max_depth: int = 64) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self.interval_s = interval_s
        self.max_depth = max_depth
        self.n_samples = 0
        self.n_stacks = 0
        self.started_at: float | None = None
        self.duration_s = 0.0
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        """Begin sampling in a daemon thread; idempotent while running."""
        if self.running:
            return self
        self._stop.clear()
        self.started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="obs-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop the sampler and wait for its thread to exit."""
        thread = self._thread
        if thread is None:
            return self
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None
        if self.started_at is not None:
            self.duration_s += time.perf_counter() - self.started_at
            self.started_at = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    def _run(self) -> None:
        own_id = threading.get_ident()
        while not self._stop.wait(self.interval_s):
            self._sample(own_id)

    def _sample(self, own_id: int) -> None:
        names = {t.ident: t.name for t in threading.enumerate()}
        frames = sys._current_frames()
        keys = []
        for thread_id, frame in frames.items():
            if thread_id == own_id:
                continue
            stack = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                code = frame.f_code
                stack.append(
                    f"{os.path.basename(code.co_filename)}:{code.co_name}"
                )
                frame = frame.f_back
                depth += 1
            stack.reverse()
            thread_name = names.get(thread_id, f"thread-{thread_id}")
            keys.append(";".join([thread_name, *stack]))
        # One locked pass per snapshot round, not per thread: the lock
        # is shared with collapsed()/snapshot() readers only.
        with self._lock:
            for key in keys:
                self._counts[key] = self._counts.get(key, 0) + 1
            self.n_samples += 1
            self.n_stacks += len(keys)

    def counts(self) -> dict[str, int]:
        """Collapsed-stack sample counts (a copy; safe while running)."""
        with self._lock:
            return dict(self._counts)

    def collapsed(self) -> str:
        """The profile in collapsed-stack format, hottest stacks first.

        Ready for ``flamegraph.pl`` / speedscope / inferno as-is.
        """
        with self._lock:
            items = sorted(
                self._counts.items(), key=lambda kv: (-kv[1], kv[0])
            )
        return "\n".join(f"{stack} {count}" for stack, count in items)

    def snapshot(self) -> dict:
        """JSON-ready summary: meta plus the collapsed stack counts."""
        with self._lock:
            return {
                "interval_s": self.interval_s,
                "n_samples": self.n_samples,
                "n_stacks": self.n_stacks,
                "duration_s": (
                    self.duration_s
                    + (
                        time.perf_counter() - self.started_at
                        if self.started_at is not None
                        else 0.0
                    )
                ),
                "stacks": dict(self._counts),
            }


def profile_for(
    seconds: float, interval_s: float = 0.005, max_depth: int = 64
) -> str:
    """Sample this process for ``seconds`` and return collapsed stacks.

    The convenience the debug endpoint uses: blocks the *calling*
    thread (which the service API parks on an executor) while the
    sampler thread does the work.
    """
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    profiler = SamplingProfiler(interval_s=interval_s, max_depth=max_depth)
    with profiler:
        time.sleep(seconds)
    return profiler.collapsed()

"""repro — reproduction of "When the Internet Sleeps" (IMC 2014).

The package reimplements the paper's full stack: a Trinocular-style
adaptive prober over simulated /24 blocks, EWMA block-availability
estimators, FFT-based diurnal detection with phase analysis, and the
geolocation / AS / link-type / economics substrates used to correlate
diurnal behaviour with external factors.

Quick start::

    import numpy as np
    from repro import net, probing, core

    behavior = net.merge_behaviors(
        net.make_always_on(50), net.make_diurnal(100, phase_s=8 * 3600)
    )
    block = net.Block24(net.parse_block("27.186.9/24"), behavior)
    schedule = probing.RoundSchedule.for_days(14)
    result = core.measure_block(block, schedule, np.random.default_rng(0))
    print(result.report.label)   # DiurnalClass.STRICT

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro import (
    analysis,
    asn,
    core,
    datasets,
    geo,
    linktype,
    net,
    probing,
    simulation,
    stats,
    stream,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "asn",
    "core",
    "datasets",
    "geo",
    "linktype",
    "net",
    "probing",
    "simulation",
    "stats",
    "stream",
    "__version__",
]
